// Timer wheel tests: arm/cancel/rearm semantics, hierarchical cascade
// correctness across slot and level boundaries, NextDeadlineNs bounds,
// periodic (self-owning) timers, and a 100k-timer churn run exercising the
// cross-thread arm/cancel contract (meaningful under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "runtime/timer_wheel.h"

namespace flick::runtime {
namespace {

constexpr uint64_t kTick = TimerWheel::kDefaultTickNs;

TEST(TimerWheelTest, FiresAtDeadline) {
  TimerWheel wheel(0);
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, 5 * kTick);
  EXPECT_TRUE(entry.pending());
  EXPECT_EQ(wheel.armed_count(), 1u);

  EXPECT_EQ(wheel.Advance(4 * kTick), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.Advance(5 * kTick), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(entry.pending());
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(100 * kTick);
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, 3 * kTick);  // long past
  EXPECT_EQ(wheel.Advance(101 * kTick), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFire) {
  TimerWheel wheel(0);
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, 2 * kTick);
  EXPECT_TRUE(wheel.Cancel(&entry));
  EXPECT_FALSE(entry.pending());
  EXPECT_FALSE(wheel.Cancel(&entry));  // second cancel is a no-op
  wheel.Advance(10 * kTick);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.stats().cancelled, 1u);
}

TEST(TimerWheelTest, RearmMovesDeadline) {
  TimerWheel wheel(0);
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, 2 * kTick);
  wheel.Rearm(&entry, 10 * kTick);  // slide forward: old slot must not fire
  EXPECT_EQ(wheel.Advance(5 * kTick), 0u);
  EXPECT_EQ(fired, 0);
  wheel.Advance(10 * kTick);
  EXPECT_EQ(fired, 1);
  // Rearm on a fired (non-pending) entry arms fresh.
  wheel.Rearm(&entry, 12 * kTick);
  wheel.Advance(12 * kTick);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheelTest, CallbackMayRearmItself) {
  TimerWheel wheel(0);
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] {
    if (++fired < 3) {
      wheel.Arm(&entry, entry.deadline_ns + kTick);
    }
  };
  wheel.Arm(&entry, kTick);
  for (uint64_t t = 1; t <= 10; ++t) {
    wheel.Advance(t * kTick);
  }
  EXPECT_EQ(fired, 3);
}

TEST(TimerWheelTest, CascadeAcrossLevelBoundary) {
  TimerWheel wheel(0);
  // Far enough to land on level 1 (>= 256 ticks), not aligned to a slot
  // boundary — firing requires a cascade down to level 0 first.
  const uint64_t deadline_tick = 300;
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, deadline_tick * kTick);

  // Walk tick by tick up to just before the deadline: no early fire.
  for (uint64_t t = 1; t < deadline_tick; ++t) {
    wheel.Advance(t * kTick);
    ASSERT_EQ(fired, 0) << "early fire at tick " << t;
  }
  wheel.Advance(deadline_tick * kTick);
  EXPECT_EQ(fired, 1);
  EXPECT_GE(wheel.stats().cascade_moves, 1u);
}

TEST(TimerWheelTest, CascadeExactnessAtLevelTwo) {
  TimerWheel wheel(0);
  // Level 2 horizon: >= 256*256 ticks. Advance in coarse jumps (the poller
  // never steps tick-by-tick over minutes) and verify exactness anyway.
  const uint64_t deadline_tick = 256 * 256 + 1000;
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, deadline_tick * kTick);
  wheel.Advance((deadline_tick - 1) * kTick);
  EXPECT_EQ(fired, 0);
  wheel.Advance(deadline_tick * kTick);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, BeyondHorizonClampsAndStillFires) {
  TimerWheel wheel(0);
  // Past the top level's reach: entry re-hashes closer every revolution and
  // must fire at (not before) its deadline.
  const uint64_t horizon_ticks = uint64_t{256} * 256 * 256 * 256;
  const uint64_t deadline_tick = horizon_ticks + 42;
  int fired = 0;
  TimerEntry entry;
  entry.on_fire = [&] { ++fired; };
  wheel.Arm(&entry, deadline_tick * kTick);
  wheel.Advance((deadline_tick - 1) * kTick);
  EXPECT_EQ(fired, 0);
  wheel.Advance(deadline_tick * kTick);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, NextDeadlineIsConservativeLowerBound) {
  TimerWheel wheel(0);
  EXPECT_EQ(wheel.NextDeadlineNs(), TimerWheel::kNoDeadline);

  TimerEntry near, far;
  near.on_fire = [] {};
  far.on_fire = [] {};
  wheel.Arm(&far, 5000 * kTick);  // level 1 territory
  const uint64_t far_bound = wheel.NextDeadlineNs();
  EXPECT_NE(far_bound, TimerWheel::kNoDeadline);
  EXPECT_LE(far_bound, 5000 * kTick);  // never later than the true deadline
  EXPECT_GT(far_bound, 0u);

  wheel.Arm(&near, 3 * kTick);
  const uint64_t near_bound = wheel.NextDeadlineNs();
  EXPECT_LE(near_bound, 3 * kTick);
  EXPECT_LT(near_bound, far_bound);

  wheel.Cancel(&near);
  wheel.Cancel(&far);
  EXPECT_EQ(wheel.NextDeadlineNs(), TimerWheel::kNoDeadline);
}

TEST(TimerWheelTest, PeriodicFiresUntilDoneAndCancels) {
  TimerWheel wheel(0);
  int calls = 0;
  const uint64_t token = wheel.AddPeriodic(2 * kTick, [&] {
    ++calls;
    return false;
  });
  for (uint64_t t = 1; t <= 20; ++t) {
    wheel.Advance(t * kTick);
  }
  EXPECT_GE(calls, 5);
  EXPECT_TRUE(wheel.CancelPeriodic(token));
  const int at_cancel = calls;
  for (uint64_t t = 21; t <= 40; ++t) {
    wheel.Advance(t * kTick);
  }
  EXPECT_EQ(calls, at_cancel);
  EXPECT_FALSE(wheel.CancelPeriodic(token));  // unknown token
}

TEST(TimerWheelTest, PeriodicSelfCancelMidFire) {
  TimerWheel wheel(0);
  // A periodic cancelling ITSELF from inside its callback exercises the
  // detached-midfire path (the fire must drop the record, not re-arm it).
  uint64_t token = 0;
  int calls = 0;
  token = wheel.AddPeriodic(kTick, [&] {
    ++calls;
    EXPECT_TRUE(wheel.CancelPeriodic(token));
    return false;  // cancellation must win over the false return
  });
  for (uint64_t t = 1; t <= 10; ++t) {
    wheel.Advance(t * kTick);
  }
  EXPECT_EQ(calls, 1);
}

TEST(TimerWheelTest, BackoffPollDoublesInterval) {
  TimerWheel wheel(0);
  std::vector<uint64_t> fire_ticks;
  uint64_t now_tick = 0;
  wheel.AddBackoffPoll(kTick, 8 * kTick, [&] {
    fire_ticks.push_back(now_tick);
    return fire_ticks.size() >= 5;
  });
  for (now_tick = 1; now_tick <= 64; ++now_tick) {
    wheel.Advance(now_tick * kTick);
  }
  ASSERT_EQ(fire_ticks.size(), 5u);
  // Gaps double (2, 4, 8) then clamp at the max (8).
  EXPECT_EQ(fire_ticks[1] - fire_ticks[0], 2u);
  EXPECT_EQ(fire_ticks[2] - fire_ticks[1], 4u);
  EXPECT_EQ(fire_ticks[3] - fire_ticks[2], 8u);
  EXPECT_EQ(fire_ticks[4] - fire_ticks[3], 8u);
}

TEST(TimerWheelTest, HundredThousandTimerChurn) {
  TimerWheel wheel(0);
  constexpr size_t kTimers = 100'000;
  std::atomic<uint64_t> fired{0};
  std::vector<TimerEntry> entries(kTimers);
  std::mt19937_64 rng(42);
  for (size_t i = 0; i < kTimers; ++i) {
    entries[i].on_fire = [&] { fired.fetch_add(1, std::memory_order_relaxed); };
    wheel.Arm(&entries[i], (1 + rng() % 4096) * kTick);
  }
  EXPECT_EQ(wheel.armed_count(), kTimers);

  // A second thread churns arm/cancel/rearm on its own slice while the
  // "poller" advances — the cross-thread contract under TSan.
  std::thread churner([&] {
    std::mt19937_64 rng2(7);
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < kTimers / 2; ++i) {
        if (!wheel.Cancel(&entries[i])) {
          continue;  // fired (or firing) already
        }
        wheel.Arm(&entries[i], (1 + rng2() % 4096) * kTick);
      }
    }
  });
  for (uint64_t t = 1; t <= 512; ++t) {
    wheel.Advance(t * 8 * kTick);
  }
  churner.join();
  wheel.Advance(8 * 4096 * kTick);  // drain everything re-armed late

  EXPECT_EQ(wheel.armed_count(), 0u);
  const TimerStats s = wheel.stats();
  EXPECT_EQ(s.fired, fired.load());
  // Every armed entry either fired or was cancelled; re-arms add to armed.
  EXPECT_EQ(s.armed, s.fired + s.cancelled);
}

}  // namespace
}  // namespace flick::runtime
