// Test helper: stops the platform when the enclosing scope unwinds — even
// through a failed ASSERT's early return. Without this, a test-local service
// (and its GraphRegistry / BackendPool) is destroyed while the poller and
// scheduler threads still run, racing reapers against the destructors.
// Declare AFTER the services under test (destroyed first) and right after
// Platform::Start(); the explicit platform.Stop() at a test's end stays
// valid because Stop() is idempotent.
#ifndef FLICK_TESTS_PLATFORM_STOP_GUARD_H_
#define FLICK_TESTS_PLATFORM_STOP_GUARD_H_

#include "runtime/platform.h"

namespace flick {

class ScopedPlatformStop {
 public:
  explicit ScopedPlatformStop(runtime::Platform& platform) : platform_(&platform) {}
  ~ScopedPlatformStop() { platform_->Stop(); }

  ScopedPlatformStop(const ScopedPlatformStop&) = delete;
  ScopedPlatformStop& operator=(const ScopedPlatformStop&) = delete;

 private:
  runtime::Platform* platform_;
};

}  // namespace flick

#endif  // FLICK_TESTS_PLATFORM_STOP_GUARD_H_
