// StateStore suite: the §4.3 shared key/value abstraction. Covers the
// per-dict shard bound, FIFO-eviction bookkeeping under overwrite and
// erase/re-put (the generation-stamp regression: a stale FIFO record must
// never evict the live entry it no longer owns), and concurrent access
// across shards (the TSan target).
#include "runtime/state_store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace flick::runtime {
namespace {

TEST(StateStoreSuite, PutGetEraseRoundTrip) {
  StateStore store;
  EXPECT_FALSE(store.Get("d", "k").has_value());
  store.Put("d", "k", "v1");
  EXPECT_EQ(store.Get("d", "k").value(), "v1");
  EXPECT_TRUE(store.Erase("d", "k"));
  EXPECT_FALSE(store.Get("d", "k").has_value());
  EXPECT_FALSE(store.Erase("d", "k"));
}

TEST(StateStoreSuite, ShardBoundHoldsPerDict) {
  StateStore store(/*max_entries_per_dict=*/64);
  for (int i = 0; i < 10000; ++i) {
    store.Put("bounded", "key" + std::to_string(i), "v");
  }
  // Bound is enforced per shard (max/16 + 1), so the dict-wide ceiling is
  // max + 16 in the worst hash distribution.
  EXPECT_LE(store.Size("bounded"), 64u + 16u);
  // A second dict is bounded independently and unaffected.
  store.Put("other", "k", "v");
  EXPECT_EQ(store.Size("other"), 1u);
}

// Overwriting a key must reuse its FIFO record, not push a duplicate:
// otherwise the phantom records inflate the FIFO against the bound and the
// first eviction of the key leaves a second record that later evicts the
// re-inserted entry prematurely.
TEST(StateStoreSuite, OverwriteDoesNotDuplicateFifoRecord) {
  StateStore store(/*max_entries_per_dict=*/1);  // per-shard bound = 1
  store.Put("d", "k", "v1");
  for (int i = 0; i < 100; ++i) {
    store.Put("d", "k", "v" + std::to_string(i));
  }
  // With duplicated records the eviction loop would have popped the live
  // entry long before the 100th overwrite.
  EXPECT_EQ(store.Get("d", "k").value(), "v99");
  EXPECT_EQ(store.Size("d"), 1u);
}

// THE regression this suite exists for: Erase left the key's FIFO record
// behind, so a re-Put pushed a second record; eviction then popped the stale
// record first and erased the LIVE entry prematurely. With a per-shard bound
// of 1 the old code lost the re-put value during the Put itself.
TEST(StateStoreSuite, EraseThenRePutSurvivesEviction) {
  StateStore store(/*max_entries_per_dict=*/1);  // per-shard bound = 1
  store.Put("d", "k", "v1");
  EXPECT_TRUE(store.Erase("d", "k"));
  store.Put("d", "k", "v2");
  EXPECT_EQ(store.Get("d", "k").value(), "v2")
      << "stale FIFO record from the erase evicted the live re-put entry";
  EXPECT_EQ(store.Size("d"), 1u);
}

// Erase/re-put cycles must not let stale FIFO records accumulate (the
// compaction path) nor drift the bound.
TEST(StateStoreSuite, EraseRePutCyclesStayBounded) {
  StateStore store(/*max_entries_per_dict=*/64);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "cycle" + std::to_string(i % 8);
    store.Put("d", key, "v" + std::to_string(i));
    if (i % 2 == 1) {
      EXPECT_TRUE(store.Erase("d", key));
    }
  }
  EXPECT_LE(store.Size("d"), 8u);
  // Every surviving key must hold its most recent value.
  for (int k = 0; k < 8; ++k) {
    const auto v = store.Get("d", "cycle" + std::to_string(k));
    if (v.has_value()) {
      EXPECT_EQ(v->substr(0, 1), "v");
    }
  }
}

// Interleaved erase/re-put with enough distinct keys to run evictions while
// stale records sit mid-FIFO: no premature loss of re-inserted entries.
TEST(StateStoreSuite, EvictionSkipsStaleRecordsMidFifo) {
  StateStore store(/*max_entries_per_dict=*/16);  // per-shard bound = 2
  store.Put("d", "victim", "old");
  EXPECT_TRUE(store.Erase("d", "victim"));
  store.Put("d", "victim", "new");
  // Push unrelated keys through to run the eviction/scrub machinery in
  // every shard.
  for (int i = 0; i < 200; ++i) {
    store.Put("d", "filler" + std::to_string(i), "x");
    // The re-put entry may legitimately age out in FIFO order, but while it
    // IS present it must hold the re-put value, never the pre-erase one.
    const auto v = store.Get("d", "victim");
    if (v.has_value()) {
      EXPECT_EQ(*v, "new");
    }
  }
}

// Concurrent Put/Get/Erase across shards — the TSan target for the shard
// mutexes and the eviction bookkeeping.
TEST(StateStoreSuite, ConcurrentPutGetEraseAcrossShards) {
  StateStore store(/*max_entries_per_dict=*/256);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "k" + std::to_string(i % 64);
        store.Put("shared", key, std::to_string(t));
        (void)store.Get("shared", key);
        if (i % 7 == 0) {
          (void)store.Erase("shared", key);
        }
        (void)store.Size("shared");
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_LE(store.Size("shared"), 64u);
}

}  // namespace
}  // namespace flick::runtime
