// Tests for the C++ code-generation pass (extension; paper §5: the FLICK
// compiler emits C++ linked against the platform).
#include <gtest/gtest.h>

#include "lang/codegen_cpp.h"
#include "lang/compile.h"
#include "services/dsl_service.h"

namespace flick::lang {
namespace {

TEST(CodegenTest, EmitsUnitBuilderForTypes) {
  auto compiled = CompileSource(services::kMemcachedRouterSource);
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  EXPECT_NE(cpp.find("Make_cmd_Unit"), std::string::npos);
  EXPECT_NE(cpp.find(".UInt(\"keylen\", 2)"), std::string::npos);
  EXPECT_NE(cpp.find("grammar::LenExpr::Field(\"keylen\")"), std::string::npos);
}

TEST(CodegenTest, EmitsHandlersForProcs) {
  auto compiled = CompileSource(services::kMemcachedRouterSource);
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  EXPECT_NE(cpp.find("Make_memcached_Handler"), std::string::npos);
  EXPECT_NE(cpp.find("runtime::ComputeTask::Handler"), std::string::npos);
}

TEST(CodegenTest, EmitsFunctionBodies) {
  auto compiled = CompileSource(services::kMemcachedRouterSource);
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  // update_cache's conditional and test_cache's hash dispatch must appear.
  EXPECT_NE(cpp.find("auto update_cache"), std::string::npos);
  EXPECT_NE(cpp.find("auto test_cache"), std::string::npos);
  EXPECT_NE(cpp.find("flick::HashBytes("), std::string::npos);
  EXPECT_NE(cpp.find("% std::size(backends)"), std::string::npos);
}

TEST(CodegenTest, EmitsNativeDispatchFromLoweringPlans) {
  auto compiled = CompileSource(services::kMemcachedRouterSource);
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  // Both rules lower: the client input runs the cache-test/route plan, the
  // backend inputs run cache-update/forward — with interp-parity hashing.
  EXPECT_NE(cpp.find("cache-test / hash-route"), std::string::npos);
  EXPECT_NE(cpp.find("cache-update + forward"), std::string::npos);
  EXPECT_NE(cpp.find("& 0x7fffffffffffffffull"), std::string::npos);
  EXPECT_NE(cpp.find("state->Get(\"memcached.cache\""), std::string::npos);
  EXPECT_NE(cpp.find("runtime::HandleResult::kBlocked"), std::string::npos);
}

TEST(CodegenTest, EmitsGraphWiringForCanonicalShape) {
  auto compiled = CompileSource(services::kMemcachedRouterSource);
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  EXPECT_NE(cpp.find("Build_memcached_Graph"), std::string::npos);
  EXPECT_NE(cpp.find("FanOutPooled"), std::string::npos);
  EXPECT_NE(cpp.find("GrammarDeserializer"), std::string::npos);
}

TEST(CodegenTest, RespProgramUsesAsciiIntegerFields) {
  auto compiled = CompileSource(services::kRespRouterSource);
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  EXPECT_NE(cpp.find(".AsciiUInt(\"keylen\")"), std::string::npos);
  EXPECT_NE(cpp.find("Make_reply_Unit"), std::string::npos);
  EXPECT_NE(cpp.find("Build_resp_router_Graph"), std::string::npos);
}

TEST(CodegenTest, AutoFramedStringsGetSynthesizedLengths) {
  auto compiled = CompileSource(
      "type kv: record\n"
      "    key : string\n"
      "    value : string\n");
  ASSERT_TRUE(compiled.ok());
  const std::string cpp = GenerateCpp(**compiled);
  EXPECT_NE(cpp.find("__len_key"), std::string::npos);
  EXPECT_NE(cpp.find("__len_value"), std::string::npos);
}

TEST(CodegenTest, FoldtEmitsMergeTreeComment) {
  auto compiled = CompileSource(
      "type kv: record\n"
      "    key : string\n"
      "    value : string\n"
      "proc hadoop: ([kv/-] mappers, -/kv reducer)\n"
      "    foldt on mappers ordering by key combine combine_kv => reducer\n"
      "fun combine_kv: (e1: kv, e2: kv) -> (kv)\n"
      "    kv(e1.key, add(e1.value, e2.value))\n");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string cpp = GenerateCpp(**compiled);
  EXPECT_NE(cpp.find("MergeTask tree"), std::string::npos);
}

}  // namespace
}  // namespace flick::lang
