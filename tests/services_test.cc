// End-to-end service tests over the simulated fabric: the three paper use
// cases (HTTP LB, Memcached proxy, Hadoop aggregator), the static web server,
// the DSL-driven router, the baseline middleboxes and the load generators.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "baseline/baseline_proxies.h"
#include "load/backends.h"
#include "load/http_load.h"
#include "load/mapper_load.h"
#include "load/memcached_load.h"
#include "net/sim_transport.h"
#include "proto/memcached.h"
#include "runtime/platform.h"
#include "services/dsl_service.h"
#include "services/hadoop_agg.h"
#include "services/http_lb.h"
#include "services/memcached_proxy.h"
#include "services/static_http.h"
#include "platform_stop_guard.h"

namespace flick {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : transport_(&net_, StackCostModel::Null()) {
    config_.scheduler.num_workers = 2;
  }

  runtime::Platform& MakePlatform() {
    platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
    return *platform_;
  }

  SimNetwork net_;
  SimTransport transport_;
  runtime::PlatformConfig config_;
  std::unique_ptr<runtime::Platform> platform_;
};

// --------------------------------------------------------------- StaticHttp ----

TEST_F(ServiceTest, StaticHttpServesFixedResponse) {
  auto& platform = MakePlatform();
  services::StaticHttpService service("static-body-137-bytes");
  ASSERT_TRUE(platform.RegisterProgram(80, &service).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::HttpLoadConfig cfg;
  cfg.port = 80;
  cfg.concurrency = 8;
  cfg.threads = 1;
  cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, cfg);
  EXPECT_GT(result.requests, 50u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(service.requests(), 0u);
  platform.Stop();
}

TEST_F(ServiceTest, StaticHttpNonPersistentConnections) {
  auto& platform = MakePlatform();
  services::StaticHttpService service("body");
  ASSERT_TRUE(platform.RegisterProgram(80, &service).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::HttpLoadConfig cfg;
  cfg.port = 80;
  cfg.concurrency = 8;
  cfg.threads = 1;
  cfg.persistent = false;
  cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, cfg);
  EXPECT_GT(result.requests, 20u);
  // Retirement runs on poller sweeps, so give the reaper a bounded window to
  // catch up with the final burst of closes before stopping the platform.
  EXPECT_TRUE(WaitFor([&] { return service.live_graphs() <= 8; }))
      << "closed connections must retire their graphs, live=" << service.live_graphs();
  platform.Stop();
}

// ------------------------------------------------------------------ HTTP LB ----

TEST_F(ServiceTest, HttpLbBalancesAcrossBackends) {
  std::vector<std::unique_ptr<load::HttpBackend>> backends;
  std::vector<uint16_t> ports;
  for (int b = 0; b < 4; ++b) {
    backends.push_back(std::make_unique<load::HttpBackend>(
        &transport_, static_cast<uint16_t>(8000 + b), "backend-" + std::to_string(b)));
    ASSERT_TRUE(backends.back()->Start().ok());
    ports.push_back(static_cast<uint16_t>(8000 + b));
  }

  auto& platform = MakePlatform();
  services::HttpLbService lb(ports);
  ASSERT_TRUE(platform.RegisterProgram(80, &lb).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::HttpLoadConfig cfg;
  cfg.port = 80;
  cfg.concurrency = 16;
  cfg.threads = 2;
  cfg.duration_ns = 300'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, cfg);
  EXPECT_GT(result.requests, 100u);
  EXPECT_EQ(result.errors, 0u);

  // With 16 connections and id-hash selection, several backends see traffic.
  int used = 0;
  for (const auto& b : backends) {
    used += b->requests_served() > 0;
  }
  EXPECT_GE(used, 2);
  platform.Stop();
  for (auto& b : backends) {
    b->Stop();
  }
}

TEST_F(ServiceTest, HttpLbNonPersistentMode) {
  load::HttpBackend backend(&transport_, 8000, "resp");
  ASSERT_TRUE(backend.Start().ok());
  auto& platform = MakePlatform();
  services::HttpLbService lb({8000});
  ASSERT_TRUE(platform.RegisterProgram(80, &lb).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::HttpLoadConfig cfg;
  cfg.port = 80;
  cfg.concurrency = 4;
  cfg.threads = 1;
  cfg.persistent = false;
  cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, cfg);
  EXPECT_GT(result.requests, 10u);
  platform.Stop();
  backend.Stop();
}

// ----------------------------------------------------------- MemcachedProxy ----

class MemcachedProxyTest : public ServiceTest {
 protected:
  void StartBackends(int n) {
    for (int b = 0; b < n; ++b) {
      backends_.push_back(std::make_unique<load::MemcachedBackend>(
          &transport_, static_cast<uint16_t>(11000 + b)));
      ASSERT_TRUE(backends_.back()->Start().ok());
      ports_.push_back(static_cast<uint16_t>(11000 + b));
    }
  }

  // Issues one request and returns the parsed response. On timeout the
  // returned message is bound but zeroed (status reads as 0/not-found).
  grammar::Message RoundTrip(uint16_t port, uint8_t opcode, const std::string& key) {
    auto conn = transport_.Connect(port);
    FLICK_CHECK(conn.ok());
    grammar::Message req;
    proto::BuildRequest(&req, opcode, key);
    const std::string wire = proto::ToWire(req);
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = (*conn)->Write(wire.data() + off, wire.size() - off);
      FLICK_CHECK(wrote.ok());
      off += *wrote;
    }
    BufferPool pool(16, 4096);
    BufferChain rx(&pool);
    grammar::UnitParser parser(&proto::MemcachedUnit());
    grammar::Message resp;
    resp.BindUnit(&proto::MemcachedUnit());
    char buf[4096];
    const auto deadline = std::chrono::steady_clock::now() + 3s;
    while (std::chrono::steady_clock::now() < deadline) {
      auto got = (*conn)->Read(buf, sizeof(buf));
      if (!got.ok()) {
        break;
      }
      if (*got == 0) {
        std::this_thread::sleep_for(100us);
        continue;
      }
      rx.Append(buf, *got);
      if (parser.Feed(rx, &resp) == grammar::ParseStatus::kDone) {
        (*conn)->Close();
        return resp;
      }
    }
    (*conn)->Close();
    return resp;
  }

  std::vector<std::unique_ptr<load::MemcachedBackend>> backends_;
  std::vector<uint16_t> ports_;
};

TEST_F(MemcachedProxyTest, RoutesGetToOwningBackend) {
  StartBackends(4);
  // Each backend holds a disjoint key space; preload markers everywhere.
  for (int b = 0; b < 4; ++b) {
    for (int k = 0; k < 64; ++k) {
      backends_[static_cast<size_t>(b)]->Preload("key-" + std::to_string(k),
                                                 "value-" + std::to_string(k));
    }
  }
  auto& platform = MakePlatform();
  services::MemcachedProxyService proxy(ports_);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  for (int k = 0; k < 16; ++k) {
    grammar::Message resp = RoundTrip(11211, proto::kMemcachedGet, "key-" + std::to_string(k));
    proto::MemcachedCommand cmd(&resp);
    EXPECT_EQ(cmd.status(), proto::kMemcachedStatusOk) << "key-" << k;
    EXPECT_EQ(cmd.value(), "value-" + std::to_string(k));
  }
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

TEST_F(MemcachedProxyTest, SameKeyAlwaysSameBackend) {
  StartBackends(4);
  auto& platform = MakePlatform();
  services::MemcachedProxyService proxy(ports_);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  // SET then GET through the proxy: the GET must find the SET's backend.
  {
    auto conn = transport_.Connect(11211);
    ASSERT_TRUE(conn.ok());
    grammar::Message set;
    proto::BuildRequest(&set, proto::kMemcachedSet, "sticky", "glue");
    const std::string wire = proto::ToWire(set);
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = (*conn)->Write(wire.data() + off, wire.size() - off);
      ASSERT_TRUE(wrote.ok());
      off += *wrote;
    }
    // Await the SET response before closing so ordering is guaranteed.
    BufferPool pool(16, 4096);
    BufferChain rx(&pool);
    grammar::UnitParser parser(&proto::MemcachedUnit());
    grammar::Message resp;
    char buf[1024];
    ASSERT_TRUE(WaitFor([&] {
      auto got = (*conn)->Read(buf, sizeof(buf));
      if (got.ok() && *got > 0) {
        rx.Append(buf, *got);
      }
      return parser.Feed(rx, &resp) == grammar::ParseStatus::kDone;
    }));
  }
  grammar::Message resp = RoundTrip(11211, proto::kMemcachedGet, "sticky");
  proto::MemcachedCommand cmd(&resp);
  EXPECT_EQ(cmd.status(), proto::kMemcachedStatusOk);
  EXPECT_EQ(cmd.value(), "glue");
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

TEST_F(MemcachedProxyTest, SustainedClosedLoopLoad) {
  StartBackends(4);
  for (auto& b : backends_) {
    for (int k = 0; k < 1000; ++k) {
      b->Preload("key-" + std::to_string(k), "v");
    }
  }
  auto& platform = MakePlatform();
  services::MemcachedProxyService proxy(ports_);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::MemcachedLoadConfig cfg;
  cfg.port = 11211;
  cfg.clients = 16;
  cfg.threads = 2;
  cfg.opcode = proto::kMemcachedGet;
  cfg.duration_ns = 300'000'000;
  const load::LoadResult result = load::RunMemcachedLoad(&transport_, cfg);
  EXPECT_GT(result.requests, 100u);
  EXPECT_EQ(result.errors, 0u);
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

// ---------------------------------------------------------------- DSL router ----

TEST_F(MemcachedProxyTest, DslRouterServesAndCaches) {
  StartBackends(2);
  for (auto& b : backends_) {
    b->Preload("cached-key", "cached-value");
  }
  auto& platform = MakePlatform();
  auto service = services::DslService::Create(services::kMemcachedRouterSource,
                                              "memcached", ports_);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(platform.RegisterProgram(11211, service->get()).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  // First GETK goes to a backend and populates the router cache.
  grammar::Message r1 = RoundTrip(11211, proto::kMemcachedGetK, "cached-key");
  EXPECT_EQ(proto::MemcachedCommand(&r1).value(), "cached-value");

  // The cache is shared across connections (global dict): a second request
  // on a NEW connection must be served from the middlebox cache.
  ASSERT_TRUE(WaitFor([&] {
    return platform.state().Get("memcached.cache", "cached-key").has_value();
  }));
  const uint64_t backend_hits_before =
      backends_[0]->requests_served() + backends_[1]->requests_served();
  grammar::Message r2 = RoundTrip(11211, proto::kMemcachedGetK, "cached-key");
  EXPECT_EQ(proto::MemcachedCommand(&r2).value(), "cached-value");
  const uint64_t backend_hits_after =
      backends_[0]->requests_served() + backends_[1]->requests_served();
  EXPECT_EQ(backend_hits_after, backend_hits_before)
      << "cache hit must not reach any backend";
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

TEST_F(MemcachedProxyTest, DslRouterPooledModeCountsLoweredDispatch) {
  StartBackends(2);
  for (auto& b : backends_) {
    b->Preload("pooled-key", "pooled-value");
  }
  auto& platform = MakePlatform();
  services::DslService::Options options;
  options.wire.mode = services::BackendMode::kPooled;
  options.wire.conns_per_backend = 2;
  auto service = services::DslService::Create(services::kMemcachedRouterSource,
                                              "memcached", ports_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_NE((*service)->pool(), nullptr) << "pooled mode must build a BackendPool";
  ASSERT_TRUE(platform.RegisterProgram(11211, service->get()).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  grammar::Message r = RoundTrip(11211, proto::kMemcachedGet, "pooled-key");
  EXPECT_EQ(proto::MemcachedCommand(&r).value(), "pooled-value");

  // Both rules of Listing 1 lower, so every message (request in, response
  // back) takes the native path and none leaks to the evaluator.
  const services::RegistryStats stats = (*service)->stats();
  EXPECT_GT(stats.dsl_lowered_msgs, 0u);
  EXPECT_EQ(stats.dsl_interp_fallbacks, 0u);
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

TEST_F(MemcachedProxyTest, DslRouterInterpArmCountsFallbacks) {
  StartBackends(2);
  for (auto& b : backends_) {
    b->Preload("interp-key", "interp-value");
  }
  auto& platform = MakePlatform();
  services::DslService::Options options;
  options.lower = false;  // the BM_DslAblation interp arm
  auto service = services::DslService::Create(services::kMemcachedRouterSource,
                                              "memcached", ports_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(platform.RegisterProgram(11211, service->get()).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  grammar::Message r = RoundTrip(11211, proto::kMemcachedGet, "interp-key");
  EXPECT_EQ(proto::MemcachedCommand(&r).value(), "interp-value");

  const services::RegistryStats stats = (*service)->stats();
  EXPECT_EQ(stats.dsl_lowered_msgs, 0u);
  EXPECT_GT(stats.dsl_interp_fallbacks, 0u);
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

// WireOptions lifetime overrides must reach the DSL graphs end-to-end: a
// quiet keep-alive client gets reaped by the per-service idle window even
// though the platform default would keep it open forever.
TEST_F(MemcachedProxyTest, DslWireLifetimeOverridesReachLegs) {
  StartBackends(2);
  for (auto& b : backends_) {
    b->Preload("idle-key", "idle-value");
  }
  auto& platform = MakePlatform();
  services::DslService::Options options;
  options.wire.idle_timeout_ns = 30'000'000;  // 30ms
  auto service = services::DslService::Create(services::kMemcachedRouterSource,
                                              "memcached", ports_, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(platform.RegisterProgram(11211, service->get()).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(11211);
  ASSERT_TRUE(conn.ok());
  grammar::Message req;
  proto::BuildRequest(&req, proto::kMemcachedGet, "idle-key");
  const std::string wire = proto::ToWire(req);
  size_t off = 0;
  while (off < wire.size()) {
    auto wrote = (*conn)->Write(wire.data() + off, wire.size() - off);
    ASSERT_TRUE(wrote.ok());
    off += *wrote;
  }
  // Drain the response, then go quiet.
  BufferPool pool(16, 4096);
  BufferChain rx(&pool);
  grammar::UnitParser parser(&proto::MemcachedUnit());
  grammar::Message resp;
  resp.BindUnit(&proto::MemcachedUnit());
  char buf[4096];
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*conn)->Read(buf, sizeof(buf));
    if (got.ok() && *got > 0) {
      rx.Append(buf, *got);
    }
    return parser.Feed(rx, &resp) == grammar::ParseStatus::kDone;
  }));
  EXPECT_EQ(proto::MemcachedCommand(&resp).value(), "idle-value");

  // Idle client: the wire-level override closes it server-side.
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*conn)->Read(buf, sizeof(buf));
    return !got.ok();
  }));
  ASSERT_TRUE(
      WaitFor([&] { return (*service)->registry().stats().idle_closed >= 1; }));
  (*conn)->Close();
  platform.Stop();
  for (auto& b : backends_) {
    b->Stop();
  }
}

// ---------------------------------------------------------------- RESP router ----

class RespRouterTest : public ServiceTest {
 protected:
  // `*3\r\n$<n>\r\n<cmd>\r\n$<n>\r\n<key>\r\n$<n>\r\n<val>\r\n` (the DSL
  // router's fixed-arity-3 subset; GET carries an empty value).
  static std::string RespCmd(std::string_view cmd, std::string_view key,
                             std::string_view val) {
    std::string out = "*3\r\n";
    for (std::string_view part : {cmd, key, val}) {
      out += "$" + std::to_string(part.size()) + "\r\n";
      out.append(part);
      out += "\r\n";
    }
    return out;
  }

  // Consumes one complete bulk-string reply from `rx` if present.
  static std::optional<std::string> TryParseBulk(std::string& rx) {
    if (rx.empty() || rx[0] != '$') {
      return std::nullopt;
    }
    const size_t nl = rx.find("\r\n");
    if (nl == std::string::npos) {
      return std::nullopt;
    }
    const size_t len = std::stoul(rx.substr(1, nl - 1));
    const size_t total = nl + 2 + len + 2;
    if (rx.size() < total) {
      return std::nullopt;
    }
    std::string data = rx.substr(nl + 2, len);
    rx.erase(0, total);
    return data;
  }

  // Writes `request` and blocks for the bulk reply (empty on timeout).
  std::string RoundTrip(Connection& conn, const std::string& request) {
    size_t off = 0;
    while (off < request.size()) {
      auto wrote = conn.Write(request.data() + off, request.size() - off);
      FLICK_CHECK(wrote.ok());
      off += *wrote;
    }
    std::string reply;
    char buf[4096];
    const bool got_reply = WaitFor([&] {
      auto got = conn.Read(buf, sizeof(buf));
      if (got.ok() && *got > 0) {
        rx_.append(buf, *got);
      }
      if (auto bulk = TryParseBulk(rx_); bulk.has_value()) {
        reply = std::move(*bulk);
        return true;
      }
      return false;
    });
    FLICK_CHECK(got_reply);
    return reply;
  }

  std::string rx_;
};

TEST_F(RespRouterTest, ServesGetAndSetThroughPooledPlane) {
  load::RespBackend b0(&transport_, 6400);
  load::RespBackend b1(&transport_, 6401);
  ASSERT_TRUE(b0.Start().ok());
  ASSERT_TRUE(b1.Start().ok());

  auto& platform = MakePlatform();
  auto service = services::DslService::Create(services::kRespRouterSource,
                                              "resp_router", {6400, 6401});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(platform.RegisterProgram(6379, service->get()).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(6379);
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(RoundTrip(**conn, RespCmd("SET", "alpha", "one")), "OK");
  EXPECT_EQ(RoundTrip(**conn, RespCmd("SET", "beta", "two")), "OK");
  EXPECT_EQ(RoundTrip(**conn, RespCmd("GET", "alpha", "")), "one");
  EXPECT_EQ(RoundTrip(**conn, RespCmd("GET", "beta", "")), "two");
  EXPECT_EQ(RoundTrip(**conn, RespCmd("GET", "missing", "")), "");
  (*conn)->Close();

  // The RESP program is fully lowerable: zero evaluator fallbacks.
  const services::RegistryStats stats = (*service)->stats();
  EXPECT_GT(stats.dsl_lowered_msgs, 0u);
  EXPECT_EQ(stats.dsl_interp_fallbacks, 0u);
  // Keys hash across both backends; at least one request reached each or the
  // split landed on one — either way every request was served by a backend.
  EXPECT_GE(b0.requests_served() + b1.requests_served(), 5u);
  platform.Stop();
  b0.Stop();
  b1.Stop();
}

// ---------------------------------------------------------------- Hadoop agg ----

TEST_F(ServiceTest, HadoopAggregatorPreservesCounts) {
  load::ReducerSink sink(&transport_, 9900);
  ASSERT_TRUE(sink.Start().ok());

  auto& platform = MakePlatform();
  services::HadoopAggService agg(/*expected_mappers=*/4, /*reducer_port=*/9900);
  ASSERT_TRUE(platform.RegisterProgram(9800, &agg).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::MapperLoadConfig cfg;
  cfg.port = 9800;
  cfg.mappers = 4;
  cfg.word_length = 8;
  cfg.vocabulary = 64;
  cfg.bytes_per_mapper = 128 * 1024;
  const load::MapperResult sent = load::RunMapperLoad(&transport_, cfg);
  ASSERT_GT(sent.pairs_sent, 0u);

  // The combiner may merge pairs (fewer pairs out than in) but every pair's
  // count must be preserved. Wait for the pipeline to drain: data reaches the
  // sink, then the graph retires once all mapper EOFs propagated.
  ASSERT_TRUE(WaitFor([&] { return sink.pairs_received() > 0; }, 10'000ms));
  ASSERT_TRUE(WaitFor([&] { return agg.live_graphs() == 0; }, 10'000ms));
  EXPECT_GT(sink.pairs_received(), 0u);
  EXPECT_LE(sink.pairs_received(), sent.pairs_sent);
  platform.Stop();
  sink.Stop();
}

// ----------------------------------------------------------------- Baselines ----

TEST_F(ServiceTest, ThreadedProxyStaticMode) {
  baseline::ProxyConfig cfg;
  cfg.listen_port = 80;
  cfg.static_body = "apache-like";
  cfg.threads = 4;
  baseline::ThreadedProxy proxy(&transport_, cfg);
  ASSERT_TRUE(proxy.Start().ok());

  load::HttpLoadConfig load_cfg;
  load_cfg.port = 80;
  load_cfg.concurrency = 4;
  load_cfg.threads = 1;
  load_cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, load_cfg);
  EXPECT_GT(result.requests, 20u);
  proxy.Stop();
}

TEST_F(ServiceTest, ThreadedProxyForwardsToBackends) {
  load::HttpBackend backend(&transport_, 8000, "origin-response");
  ASSERT_TRUE(backend.Start().ok());
  baseline::ProxyConfig cfg;
  cfg.listen_port = 80;
  cfg.backend_ports = {8000};
  cfg.threads = 4;
  baseline::ThreadedProxy proxy(&transport_, cfg);
  ASSERT_TRUE(proxy.Start().ok());

  load::HttpLoadConfig load_cfg;
  load_cfg.port = 80;
  load_cfg.concurrency = 2;
  load_cfg.threads = 1;
  load_cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, load_cfg);
  EXPECT_GT(result.requests, 10u);
  EXPECT_GT(backend.requests_served(), 0u);
  proxy.Stop();
  backend.Stop();
}

TEST_F(ServiceTest, EventProxyStaticMode) {
  baseline::ProxyConfig cfg;
  cfg.listen_port = 80;
  cfg.static_body = "nginx-like";
  cfg.threads = 2;
  baseline::EventProxy proxy(&transport_, cfg);
  ASSERT_TRUE(proxy.Start().ok());

  load::HttpLoadConfig load_cfg;
  load_cfg.port = 80;
  load_cfg.concurrency = 8;
  load_cfg.threads = 1;
  load_cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunHttpLoad(&transport_, load_cfg);
  EXPECT_GT(result.requests, 50u);
  proxy.Stop();
}

TEST_F(ServiceTest, MoxiProxyRoutesRequests) {
  std::vector<std::unique_ptr<load::MemcachedBackend>> backends;
  std::vector<uint16_t> ports;
  for (int b = 0; b < 2; ++b) {
    backends.push_back(std::make_unique<load::MemcachedBackend>(
        &transport_, static_cast<uint16_t>(11000 + b)));
    ASSERT_TRUE(backends.back()->Start().ok());
    for (int k = 0; k < 100; ++k) {
      backends.back()->Preload("key-" + std::to_string(k), "v");
    }
    ports.push_back(static_cast<uint16_t>(11000 + b));
  }
  baseline::ProxyConfig cfg;
  cfg.listen_port = 11211;
  cfg.backend_ports = ports;
  cfg.threads = 2;
  baseline::MoxiProxy proxy(&transport_, cfg);
  ASSERT_TRUE(proxy.Start().ok());

  load::MemcachedLoadConfig load_cfg;
  load_cfg.port = 11211;
  load_cfg.clients = 8;
  load_cfg.threads = 1;
  load_cfg.key_space = 100;
  load_cfg.opcode = proto::kMemcachedGet;
  load_cfg.duration_ns = 200'000'000;
  const load::LoadResult result = load::RunMemcachedLoad(&transport_, load_cfg);
  EXPECT_GT(result.requests, 20u);
  EXPECT_EQ(result.errors, 0u);
  proxy.Stop();
  for (auto& b : backends) {
    b->Stop();
  }
}

}  // namespace
}  // namespace flick
