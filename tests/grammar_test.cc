// Tests for the message-grammar engine: unit building/validation, length
// expressions, incremental parsing under arbitrary fragmentation, projection,
// and serialisation round-trips.
#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "buffer/buffer_chain.h"
#include "buffer/buffer_pool.h"
#include "grammar/len_expr.h"
#include "grammar/message.h"
#include "grammar/parser.h"
#include "grammar/serializer.h"
#include "grammar/unit.h"

namespace flick::grammar {
namespace {

// ----------------------------------------------------------------- LenExpr ----

TEST(LenExprTest, ConstEval) {
  EXPECT_EQ(LenExpr::Const(7).Eval({}), 7u);
  EXPECT_TRUE(LenExpr::Const(7).is_const());
}

TEST(LenExprTest, Arithmetic) {
  const LenExpr e = LenExpr::Const(10) + LenExpr::Const(5) * LenExpr::Const(2);
  EXPECT_EQ(e.Eval({}), 20u);
  EXPECT_FALSE(e.is_const());
}

TEST(LenExprTest, SubClampsAtZero) {
  const LenExpr e = LenExpr::Const(3) - LenExpr::Const(10);
  EXPECT_EQ(e.Eval({}), 0u) << "malformed lengths must not wrap around";
}

TEST(LenExprTest, FieldResolutionAndEval) {
  LenExpr e = LenExpr::Field("a") + LenExpr::Field("b");
  ASSERT_TRUE(e.Resolve([](const std::string& n) { return n == "a" ? 0 : (n == "b" ? 1 : -1); }));
  EXPECT_EQ(e.Eval({4, 6}), 10u);
}

TEST(LenExprTest, UnknownFieldFailsResolve) {
  LenExpr e = LenExpr::Field("nope");
  EXPECT_FALSE(e.Resolve([](const std::string&) { return -1; }));
}

TEST(LenExprTest, DollarSubstitution) {
  const LenExpr e = LenExpr::Field("a") + LenExpr::Dollar();
  LenExpr copy = e;
  ASSERT_TRUE(copy.Resolve([](const std::string&) { return 0; }));
  EXPECT_EQ(copy.Eval({5}, 37), 42u);
  EXPECT_TRUE(copy.uses_dollar());
}

// -------------------------------------------------------------------- Unit ----

TEST(UnitTest, BuildSimple) {
  auto unit = UnitBuilder("t").UInt("len", 2).Bytes("data", LenExpr::Field("len")).Build();
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->name(), "t");
  EXPECT_EQ(unit->fields().size(), 2u);
  EXPECT_EQ(unit->FieldIndex("len"), 0);
  EXPECT_EQ(unit->FieldIndex("data"), 1);
  EXPECT_EQ(unit->FieldIndex("missing"), -1);
  EXPECT_EQ(unit->fixed_prefix_size(), 2u);
}

TEST(UnitTest, DuplicateNameRejected) {
  auto unit = UnitBuilder("t").UInt("x", 1).UInt("x", 2).Build();
  EXPECT_FALSE(unit.ok());
  EXPECT_EQ(unit.status().code(), StatusCode::kInvalidArgument);
}

TEST(UnitTest, AnonymousFieldsMayRepeat) {
  auto unit = UnitBuilder("t").SkipUInt(1).SkipUInt(2).SkipBytes(LenExpr::Const(3)).Build();
  EXPECT_TRUE(unit.ok());
}

TEST(UnitTest, ForwardLengthReferenceRejected) {
  // LL(1) rule: lengths may only depend on earlier fields.
  auto unit =
      UnitBuilder("t").Bytes("data", LenExpr::Field("len")).UInt("len", 2).Build();
  EXPECT_FALSE(unit.ok());
}

TEST(UnitTest, LengthReferencingBytesFieldRejected) {
  auto unit = UnitBuilder("t")
                  .Bytes("blob", LenExpr::Const(4))
                  .Bytes("data", LenExpr::Field("blob"))
                  .Build();
  EXPECT_FALSE(unit.ok()) << "lengths must reference numeric fields";
}

TEST(UnitTest, ZeroWidthIntRejected) {
  auto unit = UnitBuilder("t").UInt("x", 0).Build();
  EXPECT_FALSE(unit.ok());
}

TEST(UnitTest, NineByteIntRejected) {
  auto unit = UnitBuilder("t").UInt("x", 9).Build();
  EXPECT_FALSE(unit.ok());
}

TEST(UnitTest, UnknownSerializeTargetRejected) {
  auto unit = UnitBuilder("t")
                  .UInt("len", 2)
                  .Var("v", LenExpr::Field("len"))
                  .SerializeWriteback("ghost", LenExpr::Dollar(), "len")
                  .Build();
  EXPECT_FALSE(unit.ok());
}

TEST(UnitTest, FixedPrefixStopsAtDynamicField) {
  auto unit = UnitBuilder("t")
                  .UInt("a", 4)
                  .Bytes("pad", 8)
                  .UInt("len", 2)
                  .Bytes("data", LenExpr::Field("len"))
                  .UInt("trailer", 4)
                  .Build();
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->fixed_prefix_size(), 14u);
}

// ------------------------------------------------------------ Parse basics ----

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    auto unit = UnitBuilder("msg")
                    .ByteOrder(ByteOrder::kBig)
                    .UInt("tag", 1)
                    .UInt("key_len", 2)
                    .UInt("val_len", 4)
                    .Bytes("key", LenExpr::Field("key_len"))
                    .Bytes("val", LenExpr::Field("val_len"))
                    .Build();
    FLICK_CHECK(unit.ok());
    unit_ = std::move(unit).value();
  }

  // Wire encoding of (tag, key, val) under unit_.
  static std::string Encode(uint8_t tag, std::string_view key, std::string_view val) {
    std::string out;
    out.push_back(static_cast<char>(tag));
    uint8_t raw[4];
    StoreUInt(raw, 2, ByteOrder::kBig, key.size());
    out.append(reinterpret_cast<char*>(raw), 2);
    StoreUInt(raw, 4, ByteOrder::kBig, val.size());
    out.append(reinterpret_cast<char*>(raw), 4);
    out.append(key);
    out.append(val);
    return out;
  }

  Unit unit_;
  BufferPool pool_{256, 128};
};

TEST_F(ParserTest, ParsesWholeMessage) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(Encode(7, "hello", "world!")));
  UnitParser parser(&unit_);
  Message msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.GetUInt("tag"), 7u);
  EXPECT_EQ(msg.GetBytes("key"), "hello");
  EXPECT_EQ(msg.GetBytes("val"), "world!");
  EXPECT_EQ(msg.wire_size(), 7u + 5 + 6);
  EXPECT_TRUE(input.empty());
}

TEST_F(ParserTest, EmptyVariableFields) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(Encode(1, "", "")));
  UnitParser parser(&unit_);
  Message msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.GetBytes("key"), "");
  EXPECT_EQ(msg.GetBytes("val"), "");
}

TEST_F(ParserTest, BackToBackMessages) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(Encode(1, "a", "x") + Encode(2, "b", "y")));
  UnitParser parser(&unit_);
  Message m1, m2;
  ASSERT_EQ(parser.Feed(input, &m1), ParseStatus::kDone);
  ASSERT_EQ(parser.Feed(input, &m2), ParseStatus::kDone);
  EXPECT_EQ(m1.GetUInt("tag"), 1u);
  EXPECT_EQ(m2.GetUInt("tag"), 2u);
  EXPECT_EQ(m2.GetBytes("key"), "b");
}

TEST_F(ParserTest, NeedMoreOnPartialHeader) {
  BufferChain input(&pool_);
  const std::string wire = Encode(1, "abc", "defg");
  ASSERT_TRUE(input.Append(wire.substr(0, 3)));  // mid key_len/val_len
  UnitParser parser(&unit_);
  Message msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kNeedMore);
  ASSERT_TRUE(input.Append(wire.substr(3)));
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.GetBytes("key"), "abc");
  EXPECT_EQ(msg.GetBytes("val"), "defg");
}

TEST_F(ParserTest, OversizeFieldIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(Encode(1, "k", std::string(2000, 'v'))));
  UnitParser parser(&unit_);
  parser.set_max_field_size(1000);
  Message msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

// Property: for EVERY split point, feeding the message in two fragments
// yields the same result as one-shot parsing (§4.2 incremental parsing).
class FragmentationTest : public ParserTest,
                          public ::testing::WithParamInterface<size_t> {};

TEST_P(FragmentationTest, SplitAtEveryOffset) {
  const std::string wire = Encode(9, "fragmented-key", "fragmented-value-bytes");
  const size_t split = GetParam() % (wire.size() + 1);
  BufferChain input(&pool_);
  UnitParser parser(&unit_);
  Message msg;

  ASSERT_TRUE(input.Append(wire.substr(0, split)));
  const ParseStatus first = parser.Feed(input, &msg);
  if (split < wire.size()) {
    ASSERT_EQ(first, ParseStatus::kNeedMore) << "split=" << split;
    ASSERT_TRUE(input.Append(wire.substr(split)));
    ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone) << "split=" << split;
  } else {
    ASSERT_EQ(first, ParseStatus::kDone);
  }
  EXPECT_EQ(msg.GetUInt("tag"), 9u);
  EXPECT_EQ(msg.GetBytes("key"), "fragmented-key");
  EXPECT_EQ(msg.GetBytes("val"), "fragmented-value-bytes");
}

INSTANTIATE_TEST_SUITE_P(AllSplits, FragmentationTest,
                         ::testing::Range<size_t>(0, 44));

TEST_F(ParserTest, RandomFragmentationStress) {
  Rng rng(2024);
  UnitParser parser(&unit_);
  for (int round = 0; round < 200; ++round) {
    const std::string key(rng.NextInRange(0, 40), 'k');
    const std::string val(rng.NextInRange(0, 60), 'v');
    const std::string wire = Encode(static_cast<uint8_t>(round), key, val);
    BufferChain input(&pool_);
    Message msg;
    size_t sent = 0;
    ParseStatus status = ParseStatus::kNeedMore;
    while (status == ParseStatus::kNeedMore) {
      if (sent < wire.size()) {
        const size_t n = rng.NextInRange(1, 7);
        const size_t take = std::min(n, wire.size() - sent);
        ASSERT_TRUE(input.Append(wire.substr(sent, take)));
        sent += take;
      }
      status = parser.Feed(input, &msg);
      ASSERT_NE(status, ParseStatus::kError);
      if (status == ParseStatus::kNeedMore && sent >= wire.size()) {
        FAIL() << "parser did not complete after full message";
      }
    }
    ASSERT_EQ(msg.GetBytes("key"), key) << "round " << round;
    ASSERT_EQ(msg.GetBytes("val"), val) << "round " << round;
  }
}

// -------------------------------------------------------------- Projection ----

TEST_F(ParserTest, ProjectionSkipsUnaccessedBytes) {
  const Unit projected = unit_.Project({"key"});
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(Encode(3, "wanted", "unwanted-payload")));
  UnitParser parser(&projected);
  Message msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.GetBytes("key"), "wanted");
  EXPECT_EQ(msg.GetBytes("val"), "") << "val must not be materialised";
  EXPECT_EQ(msg.FieldWireSize(unit_.FieldIndex("val")), 16u)
      << "val must still be framed and counted";
}

TEST(ProjectionTest, LengthDrivingFieldsAreKept) {
  auto unit = UnitBuilder("t")
                  .UInt("len", 2)
                  .Bytes("data", LenExpr::Field("len"))
                  .Build();
  ASSERT_TRUE(unit.ok());
  const Unit projected = unit->Project({});  // nothing accessed
  // `len` still drives framing: parsing must consume exactly the message.
  EXPECT_EQ(projected.fields()[0].materialize, true);
  EXPECT_EQ(projected.fields()[1].materialize, false);
}

// ----------------------------------------------------------- Serialisation ----

TEST_F(ParserTest, SerializeRoundTrip) {
  Message msg;
  msg.BindUnit(&unit_);
  msg.SetUInt("tag", 5);
  msg.SetBytes("key", "round");
  msg.SetBytes("val", "trip-payload");
  // Lengths left stale on purpose; serializer must fix them up.
  BufferChain out(&pool_);
  UnitSerializer serializer(&unit_);
  ASSERT_TRUE(serializer.Serialize(msg, out).ok());

  UnitParser parser(&unit_);
  Message parsed;
  ASSERT_EQ(parser.Feed(out, &parsed), ParseStatus::kDone);
  EXPECT_EQ(parsed.GetUInt("tag"), 5u);
  EXPECT_EQ(parsed.GetBytes("key"), "round");
  EXPECT_EQ(parsed.GetBytes("val"), "trip-payload");
  EXPECT_EQ(parsed.GetUInt("key_len"), 5u);
  EXPECT_EQ(parsed.GetUInt("val_len"), 12u);
}

TEST_F(ParserTest, SerializeWireSizeMatches) {
  Message msg;
  msg.BindUnit(&unit_);
  msg.SetUInt("tag", 1);
  msg.SetBytes("key", "abc");
  msg.SetBytes("val", "defgh");
  UnitSerializer serializer(&unit_);
  EXPECT_EQ(serializer.WireSize(msg), 7u + 3 + 5);
}

TEST_F(ParserTest, SerializeUnitMismatchFails) {
  auto other = UnitBuilder("other").UInt("x", 1).Build();
  ASSERT_TRUE(other.ok());
  Message msg;
  msg.BindUnit(&*other);
  msg.SetUInt("x", 1);
  BufferChain out(&pool_);
  UnitSerializer serializer(&unit_);
  EXPECT_EQ(serializer.Serialize(msg, out).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ParserTest, SerializeFailsOnExhaustedPool) {
  BufferPool tiny(1, 8);
  BufferChain out(&tiny);
  Message msg;
  msg.BindUnit(&unit_);
  msg.SetUInt("tag", 1);
  msg.SetBytes("key", "0123456789");
  msg.SetBytes("val", "0123456789");
  UnitSerializer serializer(&unit_);
  EXPECT_EQ(serializer.Serialize(msg, out).code(), StatusCode::kResourceExhausted);
}

// Property sweep: random messages round-trip bit-exactly.
TEST_F(ParserTest, RandomRoundTripProperty) {
  Rng rng(77);
  UnitSerializer serializer(&unit_);
  UnitParser parser(&unit_);
  for (int i = 0; i < 300; ++i) {
    std::string key, val;
    for (size_t k = rng.NextBelow(30); k > 0; --k) {
      key.push_back(static_cast<char>(rng.NextInRange(32, 126)));
    }
    for (size_t v = rng.NextBelow(50); v > 0; --v) {
      val.push_back(static_cast<char>(rng.NextInRange(0, 255)));
    }
    Message msg;
    msg.BindUnit(&unit_);
    msg.SetUInt("tag", rng.NextBelow(256));
    msg.SetBytes("key", key);
    msg.SetBytes("val", val);
    BufferChain wire(&pool_);
    ASSERT_TRUE(serializer.Serialize(msg, wire).ok());
    Message parsed;
    ASSERT_EQ(parser.Feed(wire, &parsed), ParseStatus::kDone);
    ASSERT_EQ(parsed.GetBytes("key"), key);
    ASSERT_EQ(parsed.GetBytes("val"), val);
  }
}

// ---------------------------------------------------------- ASCII integers ----
// RESP-style line framing: AsciiUInt fields are decimal digit runs whose CRLF
// terminator is consumed with the field, and their value can drive the length
// of a later Bytes field (the `$<len>\r\n<data>\r\n` bulk-string shape).

class AsciiParserTest : public ::testing::Test {
 protected:
  AsciiParserTest() {
    auto unit = UnitBuilder("bulk")
                    .Bytes("marker", 1)
                    .AsciiUInt("len")
                    .Bytes("data", LenExpr::Field("len"))
                    .Bytes("crlf", 2)
                    .Build();
    FLICK_CHECK(unit.ok());
    unit_ = std::move(unit).value();
  }
  Unit unit_;
  BufferPool pool_{256, 128};
};

TEST_F(AsciiParserTest, ParsesBulkString) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("$5\r\nhello\r\n"));
  UnitParser parser(&unit_);
  Message msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.GetUInt("len"), 5u);
  EXPECT_EQ(msg.GetBytes("data"), "hello");
}

// Digits and the CRLF terminator may straddle reads at any byte boundary.
TEST_F(AsciiParserTest, SplitAtEveryOffset) {
  const std::string wire = "$12\r\nsplit-me-now\r\n";
  for (size_t split = 1; split < wire.size(); ++split) {
    BufferChain input(&pool_);
    ASSERT_TRUE(input.Append(wire.substr(0, split)));
    UnitParser parser(&unit_);
    Message msg;
    ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kNeedMore) << "split=" << split;
    ASSERT_TRUE(input.Append(wire.substr(split)));
    ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone) << "split=" << split;
    EXPECT_EQ(msg.GetBytes("data"), "split-me-now");
  }
}

TEST_F(AsciiParserTest, NonDigitIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("$x5\r\nhello\r\n"));
  UnitParser parser(&unit_);
  Message msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(AsciiParserTest, EmptyDigitRunIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("$\r\n\r\n"));
  UnitParser parser(&unit_);
  Message msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(AsciiParserTest, BareCarriageReturnIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("$5\rXhello\r\n"));
  UnitParser parser(&unit_);
  Message msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(AsciiParserTest, OverflowGuardIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("$" + std::string(20, '9') + "\r\n"));
  UnitParser parser(&unit_);
  Message msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(AsciiParserTest, SerializeRecomputesDigitRun) {
  Message msg;
  msg.BindUnit(&unit_);
  msg.SetBytes("marker", "$");
  msg.SetUInt("len", 999);  // stale on purpose; serializer must fix it up
  msg.SetBytes("data", "abcdefghij");
  msg.SetBytes("crlf", "\r\n");
  BufferChain out(&pool_);
  UnitSerializer serializer(&unit_);
  ASSERT_TRUE(serializer.Serialize(msg, out).ok());
  EXPECT_EQ(out.ToString(), "$10\r\nabcdefghij\r\n");

  UnitParser parser(&unit_);
  Message parsed;
  ASSERT_EQ(parser.Feed(out, &parsed), ParseStatus::kDone);
  EXPECT_EQ(parsed.GetUInt("len"), 10u);
  EXPECT_EQ(parsed.GetBytes("data"), "abcdefghij");
}

}  // namespace
}  // namespace flick::grammar
