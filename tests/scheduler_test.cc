// Scheduler shard-group tests: pinned tasks never leave their home worker
// group, stealing is shard-local-first with cross-group steals taking only
// unpinned work (counted), group layout clamps/splits correctly, and Stop
// drains leftover queue entries instead of dropping them silently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/hash.h"
#include "runtime/scheduler.h"

namespace flick::runtime {
namespace {

using namespace std::chrono_literals;

// Records every worker index it ran on; optionally requeues itself a fixed
// number of times so one task samples several scheduling decisions.
class RecordingTask : public Task {
 public:
  RecordingTask(std::string name, int reruns = 0)
      : Task(std::move(name)), reruns_left_(reruns) {}

  TaskRunResult Run(TaskContext& ctx) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      workers_seen_.push_back(ctx.worker_index());
    }
    runs_.fetch_add(1, std::memory_order_relaxed);
    if (reruns_left_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return TaskRunResult::kMoreWork;
    }
    return TaskRunResult::kIdle;
  }

  std::vector<int> workers_seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_seen_;
  }
  uint64_t runs() const { return runs_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mutex_;
  std::vector<int> workers_seen_;
  std::atomic<uint64_t> runs_{0};
  std::atomic<int> reruns_left_;
};

// Occupies its worker until released; used to force queue build-up behind a
// busy worker.
class BlockerTask : public Task {
 public:
  explicit BlockerTask(std::string name) : Task(std::move(name)) {}

  TaskRunResult Run(TaskContext&) override {
    entered_.store(true, std::memory_order_release);
    while (!released_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(100us);
    }
    return TaskRunResult::kIdle;
  }

  bool entered() const { return entered_.load(std::memory_order_acquire); }
  void Release() { released_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> entered_{false};
  std::atomic<bool> released_{false};
};

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

SchedulerConfig Config(int workers, size_t groups) {
  SchedulerConfig config;
  config.num_workers = workers;
  config.shard_groups = groups;
  config.pin_threads = false;
  return config;
}

TEST(SchedulerGroups, LayoutClampsAndSplitsEvenly) {
  {
    // 5 workers, 2 groups: leading group takes the remainder -> [0,3) [3,5).
    Scheduler s(Config(5, 2));
    EXPECT_EQ(s.shard_groups(), 2u);
    EXPECT_EQ(s.group_begin(0), 0);
    EXPECT_EQ(s.group_end(0), 3);
    EXPECT_EQ(s.group_begin(1), 3);
    EXPECT_EQ(s.group_end(1), 5);
    // Shards beyond the group count wrap.
    EXPECT_EQ(s.group_begin(2), 0);
    EXPECT_EQ(s.group_begin(3), 3);
  }
  {
    // More groups than workers: clamped so every group owns >= 1 worker.
    Scheduler s(Config(3, 8));
    EXPECT_EQ(s.shard_groups(), 3u);
    for (size_t g = 0; g < 3; ++g) {
      EXPECT_EQ(s.group_end(g) - s.group_begin(g), 1);
    }
  }
  {
    // 0 (and 1) groups = the pre-sharding single-group shape.
    Scheduler s(Config(4, 0));
    EXPECT_EQ(s.shard_groups(), 1u);
    EXPECT_EQ(s.group_begin(0), 0);
    EXPECT_EQ(s.group_end(0), 4);
  }
}

TEST(SchedulerGroups, PinnedTasksNeverRunOffGroup) {
  Scheduler sched(Config(4, 2));
  sched.Start();

  // Many multi-run pinned tasks per shard: every observed placement — home
  // queue or steal — must stay inside the task's home group even while both
  // groups are saturated.
  std::vector<std::unique_ptr<RecordingTask>> tasks;
  for (int shard = 0; shard < 2; ++shard) {
    for (int i = 0; i < 16; ++i) {
      auto task = std::make_unique<RecordingTask>(
          "pinned-" + std::to_string(shard) + "-" + std::to_string(i),
          /*reruns=*/8);
      task->shard_affinity = shard;
      tasks.push_back(std::move(task));
    }
  }
  for (auto& task : tasks) {
    sched.NotifyRunnable(task.get());
  }
  ASSERT_TRUE(WaitFor([&] {
    for (auto& task : tasks) {
      if (task->runs() < 9) {
        return false;
      }
    }
    return true;
  }));
  for (auto& task : tasks) {
    sched.Quiesce(task.get());
  }

  for (auto& task : tasks) {
    const auto shard = static_cast<size_t>(task->shard_affinity);
    const int begin = sched.group_begin(shard);
    const int end = sched.group_end(shard);
    for (int w : task->workers_seen()) {
      EXPECT_GE(w, begin) << task->name();
      EXPECT_LT(w, end) << task->name();
    }
  }
  // Pinned-only load: no steal may have crossed a group boundary.
  EXPECT_EQ(sched.stats().cross_shard_steals, 0u);
  sched.Stop();
}

TEST(SchedulerGroups, CrossGroupStealTakesOnlyUnpinnedWork) {
  // Two workers, two single-worker groups. Worker 0 is occupied by a pinned
  // blocker while pinned and unpinned tasks queue behind it; the only idle
  // worker (group 1) may relieve the backlog of UNPINNED tasks only.
  Scheduler sched(Config(2, 2));
  sched.Start();

  BlockerTask blocker("blocker");
  blocker.shard_affinity = 0;  // group 0 == worker 0
  sched.NotifyRunnable(&blocker);
  ASSERT_TRUE(WaitFor([&] { return blocker.entered(); }));

  // Unpinned tasks whose affinity hashes them onto busy worker 0.
  std::vector<std::unique_ptr<RecordingTask>> unpinned;
  for (uint64_t key = 1; unpinned.size() < 8; ++key) {
    if (MixU64(key) % 2 != 0) {
      continue;
    }
    auto task = std::make_unique<RecordingTask>("unpinned-" +
                                                std::to_string(unpinned.size()));
    task->affinity_key = key;
    unpinned.push_back(std::move(task));
  }
  // Pinned backlog on the same worker: must WAIT for the blocker, not
  // migrate to the idle group.
  std::vector<std::unique_ptr<RecordingTask>> pinned;
  for (int i = 0; i < 4; ++i) {
    auto task = std::make_unique<RecordingTask>("pinned-" + std::to_string(i));
    task->shard_affinity = 0;
    pinned.push_back(std::move(task));
  }
  for (auto& task : pinned) {
    sched.NotifyRunnable(task.get());
  }
  for (auto& task : unpinned) {
    sched.NotifyRunnable(task.get());
  }

  // Worker 1 drains every unpinned task while worker 0 is still blocked.
  ASSERT_TRUE(WaitFor([&] {
    for (auto& task : unpinned) {
      if (task->runs() == 0) {
        return false;
      }
    }
    return true;
  }));
  for (auto& task : unpinned) {
    for (int w : task->workers_seen()) {
      EXPECT_EQ(w, 1) << task->name();
    }
  }
  // The pinned backlog has not moved: worker 0 never ran it (blocked) and
  // worker 1 must not have taken it.
  for (auto& task : pinned) {
    EXPECT_EQ(task->runs(), 0u) << task->name();
  }
  EXPECT_GE(sched.stats().cross_shard_steals, static_cast<uint64_t>(unpinned.size()));

  blocker.Release();
  ASSERT_TRUE(WaitFor([&] {
    for (auto& task : pinned) {
      if (task->runs() == 0) {
        return false;
      }
    }
    return true;
  }));
  for (auto& task : pinned) {
    sched.Quiesce(task.get());
    for (int w : task->workers_seen()) {
      EXPECT_EQ(w, 0) << task->name();
    }
  }
  sched.Quiesce(&blocker);
  for (auto& task : unpinned) {
    sched.Quiesce(task.get());
  }
  sched.Stop();
}

TEST(SchedulerGroups, StealPrefersOwnGroupBeforeCrossing) {
  // 4 workers, 2 groups. Group 0's two workers share a pinned backlog: the
  // idle group-0 worker must relieve its sibling (shard-local steal), so the
  // whole backlog completes inside group 0 with zero cross-group steals even
  // though group 1 is idle and hungry.
  Scheduler sched(Config(4, 2));
  sched.Start();

  std::vector<std::unique_ptr<RecordingTask>> tasks;
  for (int i = 0; i < 32; ++i) {
    auto task = std::make_unique<RecordingTask>("t" + std::to_string(i),
                                                /*reruns=*/4);
    task->shard_affinity = 0;
    tasks.push_back(std::move(task));
  }
  for (auto& task : tasks) {
    sched.NotifyRunnable(task.get());
  }
  ASSERT_TRUE(WaitFor([&] {
    for (auto& task : tasks) {
      if (task->runs() < 5) {
        return false;
      }
    }
    return true;
  }));
  for (auto& task : tasks) {
    sched.Quiesce(task.get());
  }

  std::set<int> seen;
  for (auto& task : tasks) {
    for (int w : task->workers_seen()) {
      seen.insert(w);
    }
  }
  for (int w : seen) {
    EXPECT_GE(w, sched.group_begin(0));
    EXPECT_LT(w, sched.group_end(0));
  }
  EXPECT_EQ(sched.stats().cross_shard_steals, 0u);
  sched.Stop();
}

TEST(SchedulerStop, DrainsQueuedTasksAndCountsThem) {
  SchedulerConfig config = Config(1, 1);
  Scheduler sched(config);
  sched.Start();

  BlockerTask blocker("blocker");
  sched.NotifyRunnable(&blocker);
  ASSERT_TRUE(WaitFor([&] { return blocker.entered(); }));

  // Queue a backlog behind the (only) busy worker, then stop. The worker
  // exits after the blocker returns; the backlog must be drained and counted,
  // and every drained task reset to kIdle so Quiesce cannot hang.
  std::vector<std::unique_ptr<RecordingTask>> backlog;
  for (int i = 0; i < 6; ++i) {
    backlog.push_back(std::make_unique<RecordingTask>("q" + std::to_string(i)));
    sched.NotifyRunnable(backlog.back().get());
  }

  std::thread stopper([&] { sched.Stop(); });
  std::this_thread::sleep_for(20ms);  // let Stop clear running_ first
  blocker.Release();
  stopper.join();

  uint64_t ran = 0;
  for (auto& task : backlog) {
    ran += task->runs();
    sched.Quiesce(task.get());  // must return immediately after the drain
    EXPECT_EQ(task->sched_state.load(), Task::SchedState::kIdle);
  }
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(ran + stats.tasks_dropped_at_stop, backlog.size());
  EXPECT_GT(stats.tasks_dropped_at_stop, 0u);
}

}  // namespace
}  // namespace flick::runtime
