// BackendPool tests: shared pooled connections under concurrent client
// graphs, pipelined response correlation on one wire, reconnect after a
// backend closes, pool/launch/registry stats, and the unified failure path
// (a poisoned launch returns its lease instead of closing pooled wires).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "grammar/parser.h"
#include "load/backends.h"
#include "load/mapper_load.h"
#include "net/sim_transport.h"
#include "proto/memcached.h"
#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/graph_builder.h"
#include "services/hadoop_agg.h"
#include "services/memcached_proxy.h"
#include "platform_stop_guard.h"

namespace flick {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

// Closed-loop memcached binary client over a raw sim connection.
class TestClient {
 public:
  TestClient(Transport* transport, uint16_t port)
      : pool_(64, 8192), parser_(&proto::MemcachedUnit()) {
    auto conn = transport->Connect(port);
    ok_ = conn.ok();
    if (ok_) {
      conn_ = std::move(conn).value();
      rx_.set_pool(&pool_);
    }
  }

  bool ok() const { return ok_; }
  Connection& conn() { return *conn_; }

  // Pipelined burst: writes `count` GETs back to back (giving the pooled
  // wire a backlog to coalesce), then reads all `count` responses. Returns
  // responses whose value matched `expected`.
  size_t GetBurst(const std::string& key, const std::string& expected, size_t count,
                  std::chrono::milliseconds timeout = 5000ms) {
    grammar::Message req;
    proto::BuildRequest(&req, proto::kMemcachedGet, key);
    const std::string one = proto::ToWire(req);
    std::string wire;
    for (size_t i = 0; i < count; ++i) {
      wire += one;
    }
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = conn_->Write(wire.data() + off, wire.size() - off);
      if (!wrote.ok()) {
        return 0;
      }
      off += *wrote;
    }
    size_t matched = 0;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (matched < count && std::chrono::steady_clock::now() < deadline) {
      char buf[4096];
      auto got = conn_->Read(buf, sizeof(buf));
      if (!got.ok()) {
        return matched;
      }
      if (*got > 0) {
        rx_.Append(buf, *got);
        while (parser_.Feed(rx_, &msg_) == grammar::ParseStatus::kDone) {
          if (proto::MemcachedCommand(&msg_).value() == expected) {
            ++matched;
          }
        }
      } else {
        std::this_thread::sleep_for(100us);
      }
    }
    return matched;
  }

  // Sends one GET and blocks (polling) for its response value.
  bool Get(const std::string& key, std::string* value_out,
           std::chrono::milliseconds timeout = 5000ms) {
    grammar::Message req;
    proto::BuildRequest(&req, proto::kMemcachedGet, key);
    const std::string wire = proto::ToWire(req);
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = conn_->Write(wire.data() + off, wire.size() - off);
      if (!wrote.ok()) {
        return false;
      }
      off += *wrote;
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      char buf[4096];
      auto got = conn_->Read(buf, sizeof(buf));
      if (!got.ok()) {
        return false;
      }
      if (*got > 0) {
        rx_.Append(buf, *got);
        if (parser_.Feed(rx_, &msg_) == grammar::ParseStatus::kDone) {
          proto::MemcachedCommand resp(&msg_);
          *value_out = std::string(resp.value());
          return true;
        }
      } else {
        std::this_thread::sleep_for(100us);
      }
    }
    return false;
  }

 private:
  BufferPool pool_;
  std::unique_ptr<Connection> conn_;
  BufferChain rx_;
  grammar::UnitParser parser_;
  grammar::Message msg_;
  bool ok_ = false;
};

// Minimal pooled middlebox owning nothing: the test owns the pool, so pool
// state stays inspectable after launch failures and graph retirements. Shape
// matches the memcached proxy (client in/out + one pooled leg per backend).
class PoolProbeService : public runtime::ServiceProgram {
 public:
  // `dead_port` != 0 injects a failing dedicated Connect AFTER the pooled
  // legs — the unified-cleanup case.
  PoolProbeService(services::BackendPool* pool, uint16_t dead_port = 0)
      : pool_(pool), dead_port_(dead_port) {}

  const char* name() const override { return "pool-probe"; }

  void OnConnection(std::unique_ptr<Connection> conn,
                    runtime::PlatformEnv& env) override {
    const grammar::Unit* unit = &proto::MemcachedUnit();
    const size_t n = pool_->backend_count();
    services::GraphBuilder b("pool-probe", env);
    auto client = b.Adopt(std::move(conn));
    auto request = b.Source("client-in", client,
                            std::make_unique<runtime::GrammarDeserializer>(unit));
    auto dispatch =
        b.Stage("dispatch",
                [n](runtime::Msg& msg, size_t input_index,
                    runtime::EmitContext& emit) {
                  if (msg.kind == runtime::Msg::Kind::kEof) {
                    if (input_index == 0) {
                      for (size_t o = 0; o <= n; ++o) {
                        runtime::MsgRef eof = emit.NewMsg();
                        eof->kind = runtime::Msg::Kind::kEof;
                        (void)emit.Emit(o, std::move(eof));
                      }
                    }
                    return runtime::HandleResult::kConsumed;
                  }
                  runtime::MsgRef fwd = emit.NewMsg();
                  fwd->kind = runtime::Msg::Kind::kGrammar;
                  fwd->gmsg = msg.gmsg;
                  const size_t out = input_index == 0 ? 0 : n;
                  return emit.Emit(out, std::move(fwd))
                             ? runtime::HandleResult::kConsumed
                             : runtime::HandleResult::kBlocked;
                })
            .From(request);
    auto legs = b.FanOutPooled(*pool_, /*capacity=*/16);
    if (dead_port_ != 0) {
      (void)b.Connect(dead_port_);  // poisons: nobody listens there
    }
    for (auto& leg : legs) {
      leg.sink.From(dispatch);
    }
    b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(dispatch);
    for (auto& leg : legs) {
      dispatch.From(leg.source);
    }
    last_status = b.Launch(registry);
    last_stats = b.stats();
    launched.fetch_add(1, std::memory_order_release);
  }

  services::GraphRegistry registry;
  Status last_status;
  services::GraphLaunchStats last_stats;
  std::atomic<int> launched{0};

 private:
  services::BackendPool* pool_;
  uint16_t dead_port_;
};

services::BackendPoolConfig MemcachedPoolConfig(std::vector<uint16_t> ports,
                                                size_t conns_per_backend,
                                                size_t flush_watermark = 32 * 1024) {
  const grammar::Unit* unit = &proto::MemcachedUnit();
  services::BackendPoolConfig cfg;
  cfg.ports = std::move(ports);
  cfg.conns_per_backend = conns_per_backend;
  cfg.flush_watermark_bytes = flush_watermark;
  cfg.make_serializer = [unit] {
    return std::make_unique<runtime::GrammarSerializer>(unit);
  };
  cfg.make_deserializer = [unit] {
    return std::make_unique<runtime::GrammarDeserializer>(unit);
  };
  return cfg;
}

class BackendPoolTest : public ::testing::Test {
 protected:
  BackendPoolTest() : transport_(&net_, StackCostModel::Null()) {
    config_.scheduler.num_workers = 2;
  }

  runtime::Platform& MakePlatform() {
    platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
    return *platform_;
  }

  SimNetwork net_;
  SimTransport transport_;
  runtime::PlatformConfig config_;
  std::unique_ptr<runtime::Platform> platform_;
};

// Backend connection count stays at ports*conns_per_backend while client
// graphs come and go; every lease is released by graph retirement.
TEST_F(BackendPoolTest, SharedConnectionsAcrossConcurrentClientGraphs) {
  constexpr int kClients = 8;
  load::MemcachedBackend backend_a(&transport_, 11001);
  load::MemcachedBackend backend_b(&transport_, 11002);
  ASSERT_TRUE(backend_a.Start().ok() && backend_b.Start().ok());
  for (int i = 0; i < kClients; ++i) {
    // Preload everywhere: routing hash does not matter for the assertion.
    backend_a.Preload("key-" + std::to_string(i), "value-" + std::to_string(i));
    backend_b.Preload("key-" + std::to_string(i), "value-" + std::to_string(i));
  }

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001, 11002}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  {
    std::vector<std::unique_ptr<TestClient>> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<TestClient>(&transport_, 11211));
      ASSERT_TRUE(clients.back()->ok());
    }
    for (int i = 0; i < kClients; ++i) {
      std::string value;
      ASSERT_TRUE(clients[i]->Get("key-" + std::to_string(i), &value)) << i;
      EXPECT_EQ(value, "value-" + std::to_string(i));
    }
    // One pooled wire per backend despite kClients concurrent graphs. (The
    // dials are asynchronous; both have landed once traffic flowed, but the
    // unused-slot case still needs a wait.)
    ASSERT_TRUE(
        WaitFor([&] { return proxy.pool()->stats().conns_dialed == 2; }));
    EXPECT_EQ(backend_a.connections_accepted(), 1u);
    EXPECT_EQ(backend_b.connections_accepted(), 1u);
    EXPECT_EQ(proxy.pool()->stats().leases_acquired,
              static_cast<uint64_t>(kClients));
    for (auto& c : clients) {
      c->conn().Close();
    }
  }

  ASSERT_TRUE(WaitFor([&] { return proxy.live_graphs() == 0; }));
  ASSERT_TRUE(WaitFor([&] {
    return proxy.pool()->stats().leases_released ==
           static_cast<uint64_t>(kClients);
  }));
  EXPECT_EQ(proxy.registry().stats().detaches_run, static_cast<uint64_t>(kClients));
  EXPECT_TRUE(WaitFor([&] {
    return proxy.pool()->live_connections() == 2;  // wires survive the graphs
  }));
  platform.Stop();
}

// All clients multiplex ONE backend connection; pipelined responses must
// come back to the graph that issued the request, in order.
TEST_F(BackendPoolTest, PipelinedResponsesCorrelateAcrossSharedWire) {
  constexpr int kThreads = 6;
  constexpr int kGetsPerThread = 40;
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  for (int t = 0; t < kThreads; ++t) {
    backend.Preload("key-" + std::to_string(t), "value-" + std::to_string(t));
  }

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;  // force full sharing
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(&transport_, 11211);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string key = "key-" + std::to_string(t);
      const std::string expected = "value-" + std::to_string(t);
      for (int i = 0; i < kGetsPerThread; ++i) {
        std::string value;
        if (!client.Get(key, &value)) {
          failures.fetch_add(1);
          return;
        }
        if (value != expected) {
          mismatches.fetch_add(1);
          return;
        }
      }
      client.conn().Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(backend.connections_accepted(), 1u);
  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.requests_forwarded, static_cast<uint64_t>(kThreads * kGetsPerThread));
  EXPECT_GE(stats.responses_routed, static_cast<uint64_t>(kThreads * kGetsPerThread));
  EXPECT_GE(stats.max_pipeline_depth, 1u);
  platform.Stop();
}

// A backend restart must be survived transparently: the pool redials and new
// requests succeed without any client graph being rebuilt.
TEST_F(BackendPoolTest, ReconnectsAfterBackendClose) {
  auto backend = std::make_unique<load::MemcachedBackend>(&transport_, 11001);
  ASSERT_TRUE(backend->Start().ok());
  backend->Preload("key", "before");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  TestClient client(&transport_, 11211);
  ASSERT_TRUE(client.ok());
  std::string value;
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "before");

  // Kill the backend: the pooled wire dies and the pool notices on its own.
  backend->Stop();
  backend.reset();
  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 0; }));

  // Bring it back on the same port; the redial ticker must re-establish the
  // wire and requests from the SAME client graph must flow again.
  backend = std::make_unique<load::MemcachedBackend>(&transport_, 11001);
  ASSERT_TRUE(backend->Start().ok());
  backend->Preload("key", "after");
  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 1; }));
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "after");

  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.disconnects, 1u);
  client.conn().Close();
  platform.Stop();
}

// Redial pacing now lives on the shard's timer wheel: a dropped wire with a
// redial hold must stay down for the WHOLE hold (no eager per-sweep dialling)
// and then come back via the wheel's periodic ticker — not a poller reaper.
TEST_F(BackendPoolTest, RedialPacingIsDrivenByTheShardWheel) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  TestClient client(&transport_, 11211);
  ASSERT_TRUE(client.ok());
  std::string value;
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "value");

  const uint64_t wheel_fired_before =
      platform.poller(0).wheel().stats().fired;
  constexpr auto kHold = 150ms;
  const auto dropped_at = std::chrono::steady_clock::now();
  proxy.mutable_pool()->CloseConnectionForTest(
      /*backend_index=*/0, /*slot=*/0, /*stripe=*/0,
      /*redial_hold_ns=*/std::chrono::nanoseconds(kHold).count());
  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 0; }));

  // Mid-hold: the ticker keeps firing but must NOT dial early.
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(proxy.pool()->live_connections(), 0u)
      << "redial hold violated: dialled before the pacing window elapsed";

  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 1; }));
  EXPECT_GE(std::chrono::steady_clock::now() - dropped_at, kHold);
  // The reconnect was driven by wheel fires (the pool has no other clock).
  EXPECT_GT(platform.poller(0).wheel().stats().fired, wheel_fired_before);
  EXPECT_GE(proxy.pool()->stats().reconnects, 1u);

  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "value");
  client.conn().Close();
  platform.Stop();
}

// Unified failure path: a dedicated Connect failing AFTER FanOutPooled must
// close the client and dialled legs but only RETURN the pool lease — the
// pooled wire stays connected and keeps serving.
TEST_F(BackendPoolTest, PoisonedLaunchReturnsLeaseWithoutClosingPooledWire) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 1));
  PoolProbeService probe(&pool, /*dead_port=*/59999);
  ASSERT_TRUE(platform.RegisterProgram(11211, &probe).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(11211);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return probe.launched.load(std::memory_order_acquire) == 1; }));
  EXPECT_FALSE(probe.last_status.ok());

  // Client leg closed by the failure path...
  char buf[8];
  EXPECT_TRUE(WaitFor([&] { return !(*conn)->Read(buf, sizeof(buf)).ok(); }));
  // ...but the pooled wire survived and the lease went back.
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 1; }));
  const services::BackendPoolStats stats = pool.stats();
  EXPECT_EQ(stats.leases_acquired, 1u);
  EXPECT_EQ(stats.leases_released, 1u);
  EXPECT_EQ(stats.disconnects, 0u);
  EXPECT_EQ(probe.registry.stats().graphs_adopted, 0u);
  platform.Stop();
}

// Launch stats surface the pooled topology; a successful pooled graph routes
// end to end and detaches through the registry hook.
TEST_F(BackendPoolTest, LaunchAndRegistryStatsCoverPooledLegs) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 2));
  PoolProbeService probe(&pool);
  ASSERT_TRUE(platform.RegisterProgram(11211, &probe).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  TestClient client(&transport_, 11211);
  ASSERT_TRUE(client.ok());
  std::string value;
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "value");

  ASSERT_TRUE(WaitFor(
      [&] { return probe.launched.load(std::memory_order_acquire) == 1; }));
  EXPECT_TRUE(probe.last_status.ok());
  EXPECT_EQ(probe.last_stats.pooled_legs, 1u);
  EXPECT_EQ(probe.last_stats.sources, 1u);
  EXPECT_EQ(probe.last_stats.sinks, 1u);
  EXPECT_EQ(probe.last_stats.fill_window, runtime::kDefaultFillWindow);
  EXPECT_EQ(probe.last_stats.connections, 1u);  // only the client wire
  EXPECT_EQ(probe.last_stats.watched, 1u);
  // 4 edges: client-in->dispatch, dispatch->pool, pool->dispatch,
  // dispatch->client-out; only 3 tasks (pool legs own no graph task).
  EXPECT_EQ(probe.last_stats.channels, 4u);
  EXPECT_EQ(probe.last_stats.tasks, 3u);

  client.conn().Close();
  ASSERT_TRUE(WaitFor([&] { return probe.registry.stats().graphs_retired == 1; }));
  EXPECT_EQ(probe.registry.stats().detaches_run, 1u);
  EXPECT_EQ(pool.stats().leases_released, 1u);
  // The second (unused) connection's initial dial is asynchronous — it may
  // land well after the traffic above on a loaded host.
  EXPECT_TRUE(WaitFor([&] { return pool.live_connections() == 2; }));
  platform.Stop();
}

// --- batched output path -------------------------------------------------------

// Pipelined bursts from several clients onto one pooled wire must coalesce:
// strictly fewer vectored writes than requests, batches > 1, and with the
// default watermark no forced flush (slice-end flushing carries the load).
TEST_F(BackendPoolTest, BatchedWritesCoalesceOnPooledWire) {
  constexpr int kThreads = 4;
  constexpr size_t kBurst = 32;
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;  // force full sharing
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  std::atomic<size_t> matched{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TestClient client(&transport_, 11211);
      if (!client.ok()) {
        return;
      }
      for (int round = 0; round < 3; ++round) {
        matched.fetch_add(client.GetBurst("key", "value", kBurst));
      }
      client.conn().Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(matched.load(), static_cast<size_t>(kThreads * 3) * kBurst);

  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.requests_forwarded, matched.load());
  EXPECT_LT(stats.writev_calls, stats.requests_forwarded)
      << "vectored writes must stay below the message count";
  EXPECT_GE(stats.msgs_per_writev, 2u) << "no batch ever exceeded one message";
  EXPECT_EQ(stats.flushes_forced, 0u)
      << "small requests must never hit the default high-water mark";
  platform.Stop();
}

// The read-side mirror of the batching test: pipelined replies from many
// client graphs drain the shared wire through vectored fills that each span
// several responses, so transport reads stay below both the response count
// and the legacy one-read-per-buffer count.
TEST_F(BackendPoolTest, PipelinedRepliesCoalesceIntoVectoredFills) {
  constexpr int kThreads = 4;
  constexpr size_t kBurst = 32;
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;  // force full sharing
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  std::atomic<size_t> matched{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TestClient client(&transport_, 11211);
      if (!client.ok()) {
        return;
      }
      for (int round = 0; round < 3; ++round) {
        matched.fetch_add(client.GetBurst("key", "value", kBurst));
      }
      client.conn().Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(matched.load(), static_cast<size_t>(kThreads * 3) * kBurst);

  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.responses_routed, matched.load());
  EXPECT_GT(stats.readv_calls, 0u);
  EXPECT_LT(stats.readv_calls, stats.responses_routed)
      << "vectored fills must span multiple pipelined responses";
  EXPECT_LT(stats.readv_calls, stats.reads_legacy_equivalent)
      << "the coalesced ingest path must amortise the per-buffer read loop";
  // At least one fill carried more than one ~35-byte response.
  EXPECT_GE(stats.bytes_per_readv, 70u);

  // The client-side InputTasks fill the same way, and the registry folds
  // their counters in at graph retirement exactly like the write side.
  ASSERT_TRUE(WaitFor([&] { return proxy.live_graphs() == 0; }));
  const services::RegistryStats rstats = proxy.registry().stats();
  EXPECT_GT(rstats.readv_calls, 0u);
  EXPECT_GT(rstats.bytes_per_readv, 0u);
  platform.Stop();
}

// Forced short reads (injected socket-buffer boundaries smaller than one
// response) split replies mid-fill on the shared wire; framing and FIFO
// correlation must survive every boundary.
TEST_F(BackendPoolTest, RepliesSplitMidFillStayCorrelated) {
  StackCostModel capped = StackCostModel::Null();
  capped.max_bytes_per_op = 20;  // below one serialized response
  SimTransport capped_transport(&net_, capped);

  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key-a", "value-a");
  backend.Preload("key-b", "value-b");

  runtime::Platform platform(config_, &capped_transport);
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  std::atomic<size_t> matched{0};
  std::thread a([&] {
    TestClient client(&transport_, 11211);
    if (client.ok()) {
      matched.fetch_add(client.GetBurst("key-a", "value-a", 24));
      client.conn().Close();
    }
  });
  std::thread b([&] {
    TestClient client(&transport_, 11211);
    if (client.ok()) {
      matched.fetch_add(client.GetBurst("key-b", "value-b", 24));
      client.conn().Close();
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(matched.load(), 48u);
  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.responses_routed, 48u);
  EXPECT_EQ(stats.responses_dropped, 0u);
  platform.Stop();
}

// A tiny watermark must force mid-slice flushes — the knob that bounds
// buffer-pool pressure when a slice carries bulk data.
TEST_F(BackendPoolTest, TinyWatermarkForcesMidSliceFlushes) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  options.wire.flush_watermark_bytes = 48;  // below two serialized GETs
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  TestClient client(&transport_, 11211);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.GetBurst("key", "value", 64), 64u);
  client.conn().Close();

  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GT(stats.flushes_forced, 0u);
  platform.Stop();
}

// EOF arriving while a batch is still pending must not strand it: every
// request written before the client vanished reaches the backend.
TEST_F(BackendPoolTest, EofWhileBatchPendingStillFlushes) {
  constexpr size_t kRequests = 48;
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  {
    // Fire-and-close: the burst and the EOF land in the same run slices.
    auto conn = transport_.Connect(11211);
    ASSERT_TRUE(conn.ok());
    grammar::Message req;
    proto::BuildRequest(&req, proto::kMemcachedGet, "key");
    const std::string one = proto::ToWire(req);
    std::string wire;
    for (size_t i = 0; i < kRequests; ++i) {
      wire += one;
    }
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = (*conn)->Write(wire.data() + off, wire.size() - off);
      ASSERT_TRUE(wrote.ok());
      off += *wrote;
    }
    (*conn)->Close();
  }

  const services::BackendPoolStats mid = proxy.pool()->stats();
  ASSERT_TRUE(WaitFor([&] { return backend.requests_served() >= kRequests; }))
      << "served " << backend.requests_served() << " of " << kRequests
      << " (forwarded " << proxy.pool()->stats().requests_forwarded
      << ", writev " << proxy.pool()->stats().writev_calls << ", hwm depth "
      << proxy.pool()->stats().max_pipeline_depth << ", disconnects "
      << proxy.pool()->stats().disconnects << ", at-start forwarded "
      << mid.requests_forwarded << ", released "
      << proxy.pool()->stats().leases_released << ", unwatched "
      << proxy.registry().stats().graphs_unwatched << ", routed "
      << proxy.pool()->stats().responses_routed << ", dropped "
      << proxy.pool()->stats().responses_dropped << ", live_conns "
      << proxy.pool()->live_connections() << ")";
  ASSERT_TRUE(WaitFor([&] { return proxy.live_graphs() == 0; }))
      << "live " << proxy.live_graphs() << ", adopted "
      << proxy.registry().stats().graphs_adopted << ", unwatched "
      << proxy.registry().stats().graphs_unwatched << ", retired "
      << proxy.registry().stats().graphs_retired << ", detaches "
      << proxy.registry().stats().detaches_run << ", timed_out "
      << proxy.registry().stats().detaches_timed_out << ", released "
      << proxy.pool()->stats().leases_released;
  EXPECT_EQ(proxy.pool()->stats().disconnects, 0u);
  platform.Stop();
}

// Short writes injected mid-iovec (max_bytes_per_op) must never corrupt the
// shared stream: correlation and framing survive every partial flush.
TEST_F(BackendPoolTest, PartialWritevMidIovecKeepsStreamCorrect) {
  StackCostModel capped = StackCostModel::Null();
  capped.max_bytes_per_op = 7;  // every flush is a short write mid-batch
  SimTransport capped_transport(&net_, capped);

  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  for (int t = 0; t < 3; ++t) {
    backend.Preload("key-" + std::to_string(t), "value-" + std::to_string(t));
  }

  config_.scheduler.num_workers = 2;
  platform_ = std::make_unique<runtime::Platform>(config_, &capped_transport);
  auto& platform = *platform_;
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(&transport_, 11211);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string key = "key-" + std::to_string(t);
      const std::string expected = "value-" + std::to_string(t);
      if (client.GetBurst(key, expected, 24) != 24) {
        failures.fetch_add(1);
      }
      client.conn().Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(proxy.pool()->stats().disconnects, 0u)
      << "partial writes must not be mistaken for wire errors";
  platform.Stop();
}

// --- exclusive (streaming) leases ----------------------------------------------

// An exclusive claim takes the slot out of circulation for everyone until
// released; release returns it without touching the wire.
TEST_F(BackendPoolTest, ExclusiveLeaseExcludesOtherAcquires) {
  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 1));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  auto exclusive = pool.AcquireExclusive(0);
  ASSERT_TRUE(exclusive.ok());
  EXPECT_TRUE(exclusive->exclusive());

  auto shared = pool.Acquire();
  EXPECT_FALSE(shared.ok());
  EXPECT_EQ(shared.status().code(), StatusCode::kResourceExhausted);
  auto second = pool.AcquireExclusive(0);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  services::PoolLease lease = std::move(exclusive).value();
  pool.Release(lease);
  EXPECT_TRUE(pool.Acquire().ok()) << "released slot must re-enter circulation";
  platform.Stop();
}

// A failed shared Acquire (a later backend fully claimed) must roll back
// cleanly: no stranded per-slot lease accounting that would block future
// exclusive claims on the earlier backends.
TEST_F(BackendPoolTest, FailedSharedAcquireLeavesNoLeaseResidue) {
  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001, 11002}, 1));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  auto exclusive_b = pool.AcquireExclusive(1);  // backend 1's only slot
  ASSERT_TRUE(exclusive_b.ok());

  // Shared acquire picks backend 0's slot, then fails on backend 1 — the
  // pick on backend 0 must not count as a live lease.
  auto shared = pool.Acquire();
  ASSERT_FALSE(shared.ok());

  services::PoolLease lease_b = std::move(exclusive_b).value();
  pool.Release(lease_b);
  EXPECT_TRUE(pool.AcquireExclusive(0).ok())
      << "backend 0's slot must be idle after the aborted shared acquire";
  platform.Stop();
}

// The hadoop shape end to end: aggregation graphs stream to the reducer over
// an exclusive pooled lease. Successive batches must REUSE the persistent
// reducer wire (one dial total), retire cleanly (the detach gate waits for
// each stream's EOF), and deliver every batch's pairs.
TEST_F(BackendPoolTest, ExclusiveStreamingLegReusesReducerWireAcrossGraphs) {
  load::ReducerSink sink(&transport_, 9900);
  ASSERT_TRUE(sink.Start().ok());

  auto& platform = MakePlatform();
  services::HadoopAggService::Options options;
  options.wire.conns_per_backend = 1;  // both batches must land on the SAME wire
  services::HadoopAggService agg(/*expected_mappers=*/2, /*reducer_port=*/9900,
                                 options);
  ASSERT_TRUE(platform.RegisterProgram(9800, &agg).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  load::MapperLoadConfig cfg;
  cfg.port = 9800;
  cfg.mappers = 2;
  cfg.vocabulary = 32;
  cfg.bytes_per_mapper = 64 * 1024;

  const load::MapperResult first = load::RunMapperLoad(&transport_, cfg);
  ASSERT_GT(first.pairs_sent, 0u);
  ASSERT_TRUE(WaitFor([&] { return sink.pairs_received() > 0; }, 10'000ms));
  // graphs_retired (not live_graphs): the second graph is adopted on the
  // poller thread, so "no live graphs" is trivially true before adoption.
  ASSERT_TRUE(WaitFor(
      [&] { return agg.registry().stats().graphs_retired == 1; }, 10'000ms));

  const load::MapperResult second = load::RunMapperLoad(&transport_, cfg);
  ASSERT_GT(second.pairs_sent, 0u);
  ASSERT_TRUE(WaitFor(
      [&] { return agg.registry().stats().graphs_retired == 2; }, 10'000ms));

  ASSERT_NE(agg.pool(), nullptr);
  EXPECT_GT(sink.pairs_received(), 0u);
  const services::BackendPoolStats stats = agg.pool()->stats();
  EXPECT_EQ(stats.conns_dialed, 1u) << "second batch must reuse the reducer wire";
  EXPECT_EQ(stats.leases_acquired, 2u);
  EXPECT_EQ(stats.leases_released, 2u);
  EXPECT_EQ(stats.disconnects, 0u);
  EXPECT_GE(stats.requests_forwarded, 2u);
  EXPECT_EQ(agg.registry().stats().detaches_run, 2u);
  platform.Stop();
}

// --- striped pool (sharded IO plane) -------------------------------------------

// Leases land on the caller's home stripe; each stripe carries its own
// conns_per_backend wires, cursors and lease bookkeeping.
TEST_F(BackendPoolTest, StripedPoolKeepsLeasesOnHomeStripe) {
  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({11001}, 1);
  cfg.io_shards = 2;
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());
  EXPECT_EQ(pool.stripes(), 2u);

  auto lease0 = pool.Acquire(/*preferred_stripe=*/0);
  auto lease1 = pool.Acquire(/*preferred_stripe=*/1);
  ASSERT_TRUE(lease0.ok() && lease1.ok());
  EXPECT_EQ(lease0->stripe(), 0u);
  EXPECT_EQ(lease1->stripe(), 1u);
  EXPECT_EQ(pool.stats().stripe_spills, 0u);
  // Each stripe accounts its own lease.
  EXPECT_EQ(pool.SlotActiveLeases(0, 0), std::vector<uint32_t>{1});
  EXPECT_EQ(pool.SlotActiveLeases(0, 1), std::vector<uint32_t>{1});

  services::PoolLease l0 = std::move(lease0).value();
  services::PoolLease l1 = std::move(lease1).value();
  pool.Release(l0);
  pool.Release(l1);
  EXPECT_EQ(pool.SlotActiveLeases(0, 0), std::vector<uint32_t>{0});
  EXPECT_EQ(pool.SlotActiveLeases(0, 1), std::vector<uint32_t>{0});
  platform.Stop();
}

// An exhausted home stripe spills to the neighbour (counted); once the home
// stripe frees up, later leases stay home again.
TEST_F(BackendPoolTest, ExhaustedStripeSpillsToNeighbourAndCounts) {
  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({11001}, 1);
  cfg.io_shards = 2;
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  // Claim stripe 0's only slot exclusively: shared acquires preferring
  // stripe 0 must spill to stripe 1.
  auto exclusive = pool.AcquireExclusive(0, /*preferred_stripe=*/0);
  ASSERT_TRUE(exclusive.ok());
  EXPECT_EQ(exclusive->stripe(), 0u);

  auto spilled = pool.Acquire(/*preferred_stripe=*/0);
  ASSERT_TRUE(spilled.ok());
  EXPECT_EQ(spilled->stripe(), 1u);
  EXPECT_EQ(pool.stats().stripe_spills, 1u);

  services::PoolLease ex = std::move(exclusive).value();
  pool.Release(ex);
  auto home_again = pool.Acquire(/*preferred_stripe=*/0);
  ASSERT_TRUE(home_again.ok());
  EXPECT_EQ(home_again->stripe(), 0u);
  EXPECT_EQ(pool.stats().stripe_spills, 1u) << "no spill once home has room";

  services::PoolLease s = std::move(spilled).value();
  services::PoolLease h = std::move(home_again).value();
  pool.Release(s);
  pool.Release(h);
  platform.Stop();
}

// Every stripe exhausted -> the acquire fails instead of silently blocking.
TEST_F(BackendPoolTest, AllStripesExclusivelyClaimedFailsAcquire) {
  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({11001}, 1);
  cfg.io_shards = 2;
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  auto ex0 = pool.AcquireExclusive(0, 0);
  auto ex1 = pool.AcquireExclusive(0, 1);
  ASSERT_TRUE(ex0.ok() && ex1.ok());
  EXPECT_EQ(ex0->stripe(), 0u);
  EXPECT_EQ(ex1->stripe(), 1u);
  EXPECT_EQ(pool.stats().stripe_spills, 0u) << "both went to their home stripe";

  auto shared = pool.Acquire(0);
  EXPECT_FALSE(shared.ok());
  EXPECT_EQ(shared.status().code(), StatusCode::kResourceExhausted);

  services::PoolLease a = std::move(ex0).value();
  services::PoolLease b = std::move(ex1).value();
  pool.Release(a);
  pool.Release(b);
  platform.Stop();
}

// Round-robin placement must spread leases evenly over connected slots, and
// the cursor must keep cycling in bounds (the next_rr guard).
TEST_F(BackendPoolTest, RoundRobinSpreadsLeasesOverConnectedSlots) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());

  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 2));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 2; }));

  std::vector<services::PoolLease> leases;
  for (int i = 0; i < 4; ++i) {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok()) << i;
    leases.push_back(std::move(lease).value());
  }
  EXPECT_EQ(pool.SlotActiveLeases(0), (std::vector<uint32_t>{2, 2}));
  for (auto& lease : leases) {
    pool.Release(lease);
  }
  // Many acquire/release cycles keep the cursor cycling without ever
  // indexing out of bounds (ASan guards the indexing).
  for (int i = 0; i < 100; ++i) {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok());
    services::PoolLease l = std::move(lease).value();
    pool.Release(l);
  }
  EXPECT_EQ(pool.SlotActiveLeases(0), (std::vector<uint32_t>{0, 0}));
  platform.Stop();
}

// A dead slot must not capture placement while a connected sibling exists —
// the "redial-shrunk" skew: the cursor keeps rotating over the full slot
// vector, but placement prefers live wires.
TEST_F(BackendPoolTest, DeadSlotDoesNotCapturePlacement) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());

  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 2));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 2; }));

  // Kill slot 0 and hold its redial far in the future: a mixed dead/live
  // state the placement loop must route around.
  pool.CloseConnectionForTest(/*backend_index=*/0, /*slot=*/0, /*stripe=*/0,
                              /*redial_hold_ns=*/60'000'000'000);
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 1; }));

  std::vector<services::PoolLease> leases;
  for (int i = 0; i < 4; ++i) {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok()) << i;
    leases.push_back(std::move(lease).value());
  }
  EXPECT_EQ(pool.SlotActiveLeases(0), (std::vector<uint32_t>{0, 4}))
      << "placement skewed onto the dead slot";
  EXPECT_EQ(pool.stats().lease_waits, 0u)
      << "no lease should have had to wait while a live slot existed";
  for (auto& lease : leases) {
    pool.Release(lease);
  }
  platform.Stop();
}

// A malformed response on a pooled HTTP wire (non-numeric status, garbage
// Content-Length) must surface — parse-error counter + wire drop — instead
// of stalling the wire (pre-fix, an overflowed Content-Length wrapped into a
// bogus body size the framing loop waited on forever).
TEST_F(BackendPoolTest, MalformedHttpResponseSurfacesInsteadOfStalling) {
  auto listener = transport_.Listen(8088);
  ASSERT_TRUE(listener.ok());
  std::atomic<bool> stop{false};
  std::thread backend([&] {
    std::vector<std::unique_ptr<Connection>> conns;
    while (!stop.load(std::memory_order_acquire)) {
      if (auto c = (*listener)->Accept()) {
        conns.push_back(std::move(c));
      }
      for (auto& c : conns) {
        char buf[512];
        auto got = c->Read(buf, sizeof(buf));
        if (got.ok() && *got > 0) {
          // Content-Length overflows uint64: the parser must reject it.
          const std::string resp =
              "HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n";
          (void)c->Write(resp.data(), resp.size());
        }
      }
      std::this_thread::sleep_for(200us);
    }
  });
  // Joins the backend thread on ANY exit path (incl. failed ASSERTs) before
  // the listener above unwinds.
  struct BackendGuard {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~BackendGuard() {
      stop.store(true, std::memory_order_release);
      if (thread.joinable()) {
        thread.join();
      }
    }
  } backend_guard{stop, backend};

  auto& platform = MakePlatform();
  services::BackendPoolConfig cfg;
  cfg.ports = {8088};
  cfg.conns_per_backend = 1;
  cfg.make_serializer = [] { return std::make_unique<runtime::HttpSerializer>(); };
  cfg.make_deserializer = [] {
    return std::make_unique<runtime::HttpDeserializer>(
        proto::HttpParser::Mode::kResponse);
  };
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  auto lease = pool.Acquire();
  ASSERT_TRUE(lease.ok());
  runtime::Channel requests(16);
  runtime::Channel replies(16);
  pool.Attach(*lease, /*backend_index=*/0, &requests, &replies);

  runtime::MsgPool msgs(16);
  runtime::MsgRef req = msgs.Acquire();
  req->kind = runtime::Msg::Kind::kHttp;
  req->http = proto::MakeRequest("GET", "/");
  ASSERT_TRUE(requests.TryPush(std::move(req)));

  // The malformed response must be SURFACED: counted and the wire dropped —
  // not silently waited on.
  ASSERT_TRUE(WaitFor([&] { return pool.stats().response_parse_errors >= 1; }));
  EXPECT_GE(pool.stats().disconnects, 1u);
  EXPECT_EQ(pool.stats().responses_routed, 0u);

  services::PoolLease l = std::move(lease).value();
  pool.Release(l);
  platform.Stop();
}

}  // namespace
}  // namespace flick
