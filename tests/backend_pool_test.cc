// BackendPool tests: shared pooled connections under concurrent client
// graphs, pipelined response correlation on one wire, reconnect after a
// backend closes, pool/launch/registry stats, and the unified failure path
// (a poisoned launch returns its lease instead of closing pooled wires).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "grammar/parser.h"
#include "load/backends.h"
#include "net/sim_transport.h"
#include "proto/memcached.h"
#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/graph_builder.h"
#include "services/memcached_proxy.h"
#include "platform_stop_guard.h"

namespace flick {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

// Closed-loop memcached binary client over a raw sim connection.
class TestClient {
 public:
  TestClient(Transport* transport, uint16_t port)
      : pool_(64, 8192), parser_(&proto::MemcachedUnit()) {
    auto conn = transport->Connect(port);
    ok_ = conn.ok();
    if (ok_) {
      conn_ = std::move(conn).value();
      rx_.set_pool(&pool_);
    }
  }

  bool ok() const { return ok_; }
  Connection& conn() { return *conn_; }

  // Sends one GET and blocks (polling) for its response value.
  bool Get(const std::string& key, std::string* value_out,
           std::chrono::milliseconds timeout = 5000ms) {
    grammar::Message req;
    proto::BuildRequest(&req, proto::kMemcachedGet, key);
    const std::string wire = proto::ToWire(req);
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = conn_->Write(wire.data() + off, wire.size() - off);
      if (!wrote.ok()) {
        return false;
      }
      off += *wrote;
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      char buf[4096];
      auto got = conn_->Read(buf, sizeof(buf));
      if (!got.ok()) {
        return false;
      }
      if (*got > 0) {
        rx_.Append(buf, *got);
        if (parser_.Feed(rx_, &msg_) == grammar::ParseStatus::kDone) {
          proto::MemcachedCommand resp(&msg_);
          *value_out = std::string(resp.value());
          return true;
        }
      } else {
        std::this_thread::sleep_for(100us);
      }
    }
    return false;
  }

 private:
  BufferPool pool_;
  std::unique_ptr<Connection> conn_;
  BufferChain rx_;
  grammar::UnitParser parser_;
  grammar::Message msg_;
  bool ok_ = false;
};

// Minimal pooled middlebox owning nothing: the test owns the pool, so pool
// state stays inspectable after launch failures and graph retirements. Shape
// matches the memcached proxy (client in/out + one pooled leg per backend).
class PoolProbeService : public runtime::ServiceProgram {
 public:
  // `dead_port` != 0 injects a failing dedicated Connect AFTER the pooled
  // legs — the unified-cleanup case.
  PoolProbeService(services::BackendPool* pool, uint16_t dead_port = 0)
      : pool_(pool), dead_port_(dead_port) {}

  const char* name() const override { return "pool-probe"; }

  void OnConnection(std::unique_ptr<Connection> conn,
                    runtime::PlatformEnv& env) override {
    const grammar::Unit* unit = &proto::MemcachedUnit();
    const size_t n = pool_->backend_count();
    services::GraphBuilder b("pool-probe", env);
    auto client = b.Adopt(std::move(conn));
    auto request = b.Source("client-in", client,
                            std::make_unique<runtime::GrammarDeserializer>(unit));
    auto dispatch =
        b.Stage("dispatch",
                [n](runtime::Msg& msg, size_t input_index,
                    runtime::EmitContext& emit) {
                  if (msg.kind == runtime::Msg::Kind::kEof) {
                    if (input_index == 0) {
                      for (size_t o = 0; o <= n; ++o) {
                        runtime::MsgRef eof = emit.NewMsg();
                        eof->kind = runtime::Msg::Kind::kEof;
                        (void)emit.Emit(o, std::move(eof));
                      }
                    }
                    return runtime::HandleResult::kConsumed;
                  }
                  runtime::MsgRef fwd = emit.NewMsg();
                  fwd->kind = runtime::Msg::Kind::kGrammar;
                  fwd->gmsg = msg.gmsg;
                  const size_t out = input_index == 0 ? 0 : n;
                  return emit.Emit(out, std::move(fwd))
                             ? runtime::HandleResult::kConsumed
                             : runtime::HandleResult::kBlocked;
                })
            .From(request);
    auto legs = b.FanOutPooled(*pool_, /*capacity=*/16);
    if (dead_port_ != 0) {
      (void)b.Connect(dead_port_);  // poisons: nobody listens there
    }
    for (auto& leg : legs) {
      leg.sink.From(dispatch);
    }
    b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(dispatch);
    for (auto& leg : legs) {
      dispatch.From(leg.source);
    }
    last_status = b.Launch(registry);
    last_stats = b.stats();
    launched.fetch_add(1, std::memory_order_release);
  }

  services::GraphRegistry registry;
  Status last_status;
  services::GraphLaunchStats last_stats;
  std::atomic<int> launched{0};

 private:
  services::BackendPool* pool_;
  uint16_t dead_port_;
};

services::BackendPoolConfig MemcachedPoolConfig(std::vector<uint16_t> ports,
                                                size_t conns_per_backend) {
  const grammar::Unit* unit = &proto::MemcachedUnit();
  services::BackendPoolConfig cfg;
  cfg.ports = std::move(ports);
  cfg.conns_per_backend = conns_per_backend;
  cfg.make_serializer = [unit] {
    return std::make_unique<runtime::GrammarSerializer>(unit);
  };
  cfg.make_deserializer = [unit] {
    return std::make_unique<runtime::GrammarDeserializer>(unit);
  };
  return cfg;
}

class BackendPoolTest : public ::testing::Test {
 protected:
  BackendPoolTest() : transport_(&net_, StackCostModel::Null()) {
    config_.scheduler.num_workers = 2;
  }

  runtime::Platform& MakePlatform() {
    platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
    return *platform_;
  }

  SimNetwork net_;
  SimTransport transport_;
  runtime::PlatformConfig config_;
  std::unique_ptr<runtime::Platform> platform_;
};

// Backend connection count stays at ports*conns_per_backend while client
// graphs come and go; every lease is released by graph retirement.
TEST_F(BackendPoolTest, SharedConnectionsAcrossConcurrentClientGraphs) {
  constexpr int kClients = 8;
  load::MemcachedBackend backend_a(&transport_, 11001);
  load::MemcachedBackend backend_b(&transport_, 11002);
  ASSERT_TRUE(backend_a.Start().ok() && backend_b.Start().ok());
  for (int i = 0; i < kClients; ++i) {
    // Preload everywhere: routing hash does not matter for the assertion.
    backend_a.Preload("key-" + std::to_string(i), "value-" + std::to_string(i));
    backend_b.Preload("key-" + std::to_string(i), "value-" + std::to_string(i));
  }

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001, 11002}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  {
    std::vector<std::unique_ptr<TestClient>> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<TestClient>(&transport_, 11211));
      ASSERT_TRUE(clients.back()->ok());
    }
    for (int i = 0; i < kClients; ++i) {
      std::string value;
      ASSERT_TRUE(clients[i]->Get("key-" + std::to_string(i), &value)) << i;
      EXPECT_EQ(value, "value-" + std::to_string(i));
    }
    // One pooled wire per backend despite kClients concurrent graphs. (The
    // dials are asynchronous; both have landed once traffic flowed, but the
    // unused-slot case still needs a wait.)
    ASSERT_TRUE(
        WaitFor([&] { return proxy.pool()->stats().conns_dialed == 2; }));
    EXPECT_EQ(backend_a.connections_accepted(), 1u);
    EXPECT_EQ(backend_b.connections_accepted(), 1u);
    EXPECT_EQ(proxy.pool()->stats().leases_acquired,
              static_cast<uint64_t>(kClients));
    for (auto& c : clients) {
      c->conn().Close();
    }
  }

  ASSERT_TRUE(WaitFor([&] { return proxy.live_graphs() == 0; }));
  ASSERT_TRUE(WaitFor([&] {
    return proxy.pool()->stats().leases_released ==
           static_cast<uint64_t>(kClients);
  }));
  EXPECT_EQ(proxy.registry().stats().detaches_run, static_cast<uint64_t>(kClients));
  EXPECT_TRUE(WaitFor([&] {
    return proxy.pool()->live_connections() == 2;  // wires survive the graphs
  }));
  platform.Stop();
}

// All clients multiplex ONE backend connection; pipelined responses must
// come back to the graph that issued the request, in order.
TEST_F(BackendPoolTest, PipelinedResponsesCorrelateAcrossSharedWire) {
  constexpr int kThreads = 6;
  constexpr int kGetsPerThread = 40;
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  for (int t = 0; t < kThreads; ++t) {
    backend.Preload("key-" + std::to_string(t), "value-" + std::to_string(t));
  }

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.conns_per_backend = 1;  // force full sharing
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(&transport_, 11211);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string key = "key-" + std::to_string(t);
      const std::string expected = "value-" + std::to_string(t);
      for (int i = 0; i < kGetsPerThread; ++i) {
        std::string value;
        if (!client.Get(key, &value)) {
          failures.fetch_add(1);
          return;
        }
        if (value != expected) {
          mismatches.fetch_add(1);
          return;
        }
      }
      client.conn().Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(backend.connections_accepted(), 1u);
  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.requests_forwarded, static_cast<uint64_t>(kThreads * kGetsPerThread));
  EXPECT_GE(stats.responses_routed, static_cast<uint64_t>(kThreads * kGetsPerThread));
  EXPECT_GE(stats.max_pipeline_depth, 1u);
  platform.Stop();
}

// A backend restart must be survived transparently: the pool redials and new
// requests succeed without any client graph being rebuilt.
TEST_F(BackendPoolTest, ReconnectsAfterBackendClose) {
  auto backend = std::make_unique<load::MemcachedBackend>(&transport_, 11001);
  ASSERT_TRUE(backend->Start().ok());
  backend->Preload("key", "before");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.conns_per_backend = 1;
  services::MemcachedProxyService proxy({11001}, options);
  ASSERT_TRUE(platform.RegisterProgram(11211, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  TestClient client(&transport_, 11211);
  ASSERT_TRUE(client.ok());
  std::string value;
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "before");

  // Kill the backend: the pooled wire dies and the pool notices on its own.
  backend->Stop();
  backend.reset();
  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 0; }));

  // Bring it back on the same port; the redial ticker must re-establish the
  // wire and requests from the SAME client graph must flow again.
  backend = std::make_unique<load::MemcachedBackend>(&transport_, 11001);
  ASSERT_TRUE(backend->Start().ok());
  backend->Preload("key", "after");
  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 1; }));
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "after");

  const services::BackendPoolStats stats = proxy.pool()->stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.disconnects, 1u);
  client.conn().Close();
  platform.Stop();
}

// Unified failure path: a dedicated Connect failing AFTER FanOutPooled must
// close the client and dialled legs but only RETURN the pool lease — the
// pooled wire stays connected and keeps serving.
TEST_F(BackendPoolTest, PoisonedLaunchReturnsLeaseWithoutClosingPooledWire) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 1));
  PoolProbeService probe(&pool, /*dead_port=*/59999);
  ASSERT_TRUE(platform.RegisterProgram(11211, &probe).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(11211);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return probe.launched.load(std::memory_order_acquire) == 1; }));
  EXPECT_FALSE(probe.last_status.ok());

  // Client leg closed by the failure path...
  char buf[8];
  EXPECT_TRUE(WaitFor([&] { return !(*conn)->Read(buf, sizeof(buf)).ok(); }));
  // ...but the pooled wire survived and the lease went back.
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 1; }));
  const services::BackendPoolStats stats = pool.stats();
  EXPECT_EQ(stats.leases_acquired, 1u);
  EXPECT_EQ(stats.leases_released, 1u);
  EXPECT_EQ(stats.disconnects, 0u);
  EXPECT_EQ(probe.registry.stats().graphs_adopted, 0u);
  platform.Stop();
}

// Launch stats surface the pooled topology; a successful pooled graph routes
// end to end and detaches through the registry hook.
TEST_F(BackendPoolTest, LaunchAndRegistryStatsCoverPooledLegs) {
  load::MemcachedBackend backend(&transport_, 11001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  auto& platform = MakePlatform();
  services::BackendPool pool(MemcachedPoolConfig({11001}, 2));
  PoolProbeService probe(&pool);
  ASSERT_TRUE(platform.RegisterProgram(11211, &probe).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  TestClient client(&transport_, 11211);
  ASSERT_TRUE(client.ok());
  std::string value;
  ASSERT_TRUE(client.Get("key", &value));
  EXPECT_EQ(value, "value");

  ASSERT_TRUE(WaitFor(
      [&] { return probe.launched.load(std::memory_order_acquire) == 1; }));
  EXPECT_TRUE(probe.last_status.ok());
  EXPECT_EQ(probe.last_stats.pooled_legs, 1u);
  EXPECT_EQ(probe.last_stats.sources, 1u);
  EXPECT_EQ(probe.last_stats.sinks, 1u);
  EXPECT_EQ(probe.last_stats.connections, 1u);  // only the client wire
  EXPECT_EQ(probe.last_stats.watched, 1u);
  // 4 edges: client-in->dispatch, dispatch->pool, pool->dispatch,
  // dispatch->client-out; only 3 tasks (pool legs own no graph task).
  EXPECT_EQ(probe.last_stats.channels, 4u);
  EXPECT_EQ(probe.last_stats.tasks, 3u);

  client.conn().Close();
  ASSERT_TRUE(WaitFor([&] { return probe.registry.stats().graphs_retired == 1; }));
  EXPECT_EQ(probe.registry.stats().detaches_run, 1u);
  EXPECT_EQ(pool.stats().leases_released, 1u);
  // The second (unused) connection's initial dial is asynchronous — it may
  // land well after the traffic above on a loaded host.
  EXPECT_TRUE(WaitFor([&] { return pool.live_connections() == 2; }));
  platform.Stop();
}

}  // namespace
}  // namespace flick
