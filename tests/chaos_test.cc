// Chaos suite: the deterministic fault-injection plane and the backend
// health plane it exercises, asserted by EXACT counts against scripted
// fault schedules:
//   * SimNetwork fault delivery — refusals, blackholes, mid-stream RST,
//     truncation, single-byte corruption, read/write stalls — each landing
//     exactly where scripted and each tallied once,
//   * circuit breaker lifecycle: scripted dial refusals open the circuit at
//     the threshold, the half-open window admits exactly ONE probe, and a
//     successful probe closes the circuit and restores traffic,
//   * request deadlines: a stalled backend fails the in-flight request with
//     kError instead of pinning the lease,
//   * budgeted retries: an expired request re-issues onto a DIFFERENT
//     healthy backend (kAnyBackend), and budget exhaustion fails fast
//     instead of hanging,
//   * degradation: http_lb answers an immediate 502 + close when every
//     breaker is open, and memcached cache mode serves the last-known-good
//     value during a backend outage (cache_stale_served).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "grammar/parser.h"
#include "load/backends.h"
#include "net/sim_transport.h"
#include "proto/memcached.h"
#include "runtime/channel.h"
#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/http_lb.h"
#include "services/memcached_proxy.h"
#include "platform_stop_guard.h"

namespace flick {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

// Polls a sim listener until a dialled connection lands (accepts are queued
// by Connect, so this never blocks the fabric).
std::unique_ptr<Connection> AcceptOne(Listener& listener) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto conn = listener.Accept()) {
      return conn;
    }
    std::this_thread::sleep_for(100us);
  }
  return nullptr;
}

// Reads until `want` bytes, a read error, or the timeout; returns the bytes
// collected and leaves the terminal status in *final (OK while still short).
std::string ReadUpTo(Connection& conn, size_t want, Status* final,
                     std::chrono::milliseconds timeout = 2000ms) {
  std::string got;
  *final = Status();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (got.size() < want && std::chrono::steady_clock::now() < deadline) {
    char buf[256];
    auto r = conn.Read(buf, std::min(sizeof(buf), want - got.size()));
    if (!r.ok()) {
      *final = r.status();
      return got;
    }
    if (*r > 0) {
      got.append(buf, *r);
    } else {
      std::this_thread::sleep_for(100us);
    }
  }
  return got;
}

// One persistent binary-protocol client connection (same shape as the cache
// mode suite's ProxyClient: sequential round trips over one wire so requests
// share one client graph).
class ProxyClient {
 public:
  ProxyClient(Transport* transport, uint16_t port)
      : pool_(16, 4096), rx_(&pool_), parser_(&proto::MemcachedUnit()) {
    auto conn = transport->Connect(port);
    FLICK_CHECK(conn.ok());
    conn_ = std::move(conn).value();
  }
  ~ProxyClient() { conn_->Close(); }

  // Issues one request and returns the parsed response. On timeout the
  // returned message is bound but zeroed (status reads as 0).
  grammar::Message RoundTrip(uint8_t opcode, const std::string& key,
                             const std::string& value = {}) {
    grammar::Message req;
    proto::BuildRequest(&req, opcode, key, value);
    const std::string wire = proto::ToWire(req);
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = conn_->Write(wire.data() + off, wire.size() - off);
      FLICK_CHECK(wrote.ok());
      off += *wrote;
    }
    grammar::Message resp;
    resp.BindUnit(&proto::MemcachedUnit());
    char buf[4096];
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      auto got = conn_->Read(buf, sizeof(buf));
      if (!got.ok()) {
        break;
      }
      if (*got == 0) {
        std::this_thread::sleep_for(100us);
        continue;
      }
      rx_.Append(buf, *got);
      if (parser_.Feed(rx_, &resp) == grammar::ParseStatus::kDone) {
        return resp;
      }
    }
    return resp;
  }

 private:
  BufferPool pool_;
  BufferChain rx_;
  grammar::UnitParser parser_;
  std::unique_ptr<Connection> conn_;
};

services::BackendPoolConfig MemcachedPoolConfig(std::vector<uint16_t> ports) {
  const grammar::Unit* unit = &proto::MemcachedUnit();
  services::BackendPoolConfig cfg;
  cfg.ports = std::move(ports);
  cfg.conns_per_backend = 1;
  cfg.redial_interval_ns = 5'000'000;
  cfg.make_serializer = [unit] {
    return std::make_unique<runtime::GrammarSerializer>(unit);
  };
  cfg.make_deserializer = [unit] {
    return std::make_unique<runtime::GrammarDeserializer>(unit);
  };
  return cfg;
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() : transport_(&net_, StackCostModel::Null()) {
    config_.scheduler.num_workers = 2;
  }

  runtime::Platform& MakePlatform() {
    platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
    return *platform_;
  }

  SimNetwork net_;
  SimTransport transport_;
  runtime::PlatformConfig config_;
  std::unique_ptr<runtime::Platform> platform_;
};

// --- fault plane delivery -------------------------------------------------------

// A scripted schedule lands EXACTLY as written: the first two dials are
// refused, the third is blackholed (accepted, never answered), and the next
// three pick up their ConnFaultSpec in FIFO order — RST after 4 response
// bytes, clean truncation after 4, one corrupted byte at offset 2. Every
// fault tallies once.
TEST_F(ChaosTest, FaultScheduleDeliversExactly) {
  auto listener = transport_.Listen(7001);
  ASSERT_TRUE(listener.ok());

  FaultPlan plan;
  plan.seed = 42;
  plan.refuse_connects = 2;
  plan.blackhole_connects = 1;
  ConnFaultSpec rst;
  rst.rst_after_rx_bytes = 4;
  ConnFaultSpec trunc;
  trunc.truncate_after_rx_bytes = 4;
  ConnFaultSpec corrupt;
  corrupt.corrupt_rx_at_byte = 2;
  plan.conn_faults = {rst, trunc, corrupt};
  net_.InjectFaults(7001, std::move(plan));

  // Dials 1-2: refused outright.
  EXPECT_FALSE(transport_.Connect(7001).ok());
  EXPECT_FALSE(transport_.Connect(7001).ok());

  // Dial 3: blackholed — the dial "succeeds" but no server side exists, so
  // reads would-block forever against a peer that stays nominally open.
  auto dark = transport_.Connect(7001);
  ASSERT_TRUE(dark.ok());
  char probe[8];
  auto r = (*dark)->Read(probe, sizeof(probe));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_TRUE((*dark)->IsOpen());

  const std::string payload = "abcdefgh";
  auto serve = [&](Connection& server) {
    auto wrote = server.Write(payload.data(), payload.size());
    ASSERT_TRUE(wrote.ok());
    ASSERT_EQ(*wrote, payload.size());
  };

  // Dial 4: mid-stream RST — exactly 4 bytes delivered, then reads fail.
  auto rst_conn = transport_.Connect(7001);
  ASSERT_TRUE(rst_conn.ok());
  auto rst_server = AcceptOne(**listener);
  ASSERT_NE(rst_server, nullptr);
  serve(*rst_server);
  Status final;
  EXPECT_EQ(ReadUpTo(**rst_conn, 8, &final), "abcd");
  EXPECT_FALSE(final.ok()) << "the 5th byte must be an injected reset";

  // Dial 5: truncation — 4 bytes, then the clean peer-closed EOF.
  auto trunc_conn = transport_.Connect(7001);
  ASSERT_TRUE(trunc_conn.ok());
  auto trunc_server = AcceptOne(**listener);
  ASSERT_NE(trunc_server, nullptr);
  serve(*trunc_server);
  EXPECT_EQ(ReadUpTo(**trunc_conn, 8, &final), "abcd");
  EXPECT_FALSE(final.ok()) << "the truncated stream must end in EOF";

  // Dial 6: corruption — all 8 bytes arrive, exactly byte 2 differs.
  auto corrupt_conn = transport_.Connect(7001);
  ASSERT_TRUE(corrupt_conn.ok());
  auto corrupt_server = AcceptOne(**listener);
  ASSERT_NE(corrupt_server, nullptr);
  serve(*corrupt_server);
  const std::string got = ReadUpTo(**corrupt_conn, 8, &final);
  ASSERT_EQ(got.size(), 8u);
  for (size_t i = 0; i < got.size(); ++i) {
    if (i == 2) {
      EXPECT_NE(got[i], payload[i]) << "scripted byte must be corrupted";
    } else {
      EXPECT_EQ(got[i], payload[i]) << "byte " << i << " must be untouched";
    }
  }

  const FaultCountersSnapshot snap = net_.fault_counters(7001);
  EXPECT_EQ(snap.connects_refused, 2u);
  EXPECT_EQ(snap.connects_blackholed, 1u);
  EXPECT_EQ(snap.faulted_connects, 3u);
  EXPECT_EQ(snap.rsts, 1u);
  EXPECT_EQ(snap.truncations, 1u);
  EXPECT_EQ(snap.bytes_corrupted, 1u);
  EXPECT_EQ(snap.read_stalls, 0u);
  EXPECT_EQ(snap.write_stalls, 0u);
}

// Stalls would-block for the scripted window on the faulted direction, then
// the stream resumes — each stall counted once.
TEST_F(ChaosTest, StallsWouldBlockForTheScriptedWindow) {
  auto listener = transport_.Listen(7002);
  ASSERT_TRUE(listener.ok());

  constexpr uint64_t kStallNs = 80'000'000;
  FaultPlan plan;
  ConnFaultSpec read_stall;
  read_stall.stall_rx_after_bytes = 0;
  read_stall.stall_rx_for_ns = kStallNs;
  ConnFaultSpec write_stall;
  write_stall.stall_tx_after_bytes = 0;
  write_stall.stall_tx_for_ns = kStallNs;
  plan.conn_faults = {read_stall, write_stall};
  net_.InjectFaults(7002, std::move(plan));

  // Read side: data is on the wire immediately, but the gate holds it back.
  auto rx_conn = transport_.Connect(7002);
  ASSERT_TRUE(rx_conn.ok());
  auto rx_server = AcceptOne(**listener);
  ASSERT_NE(rx_server, nullptr);
  ASSERT_TRUE(rx_server->Write("hi", 2).ok());
  const auto rx_start = std::chrono::steady_clock::now();
  Status final;
  EXPECT_EQ(ReadUpTo(**rx_conn, 2, &final), "hi");
  EXPECT_GE(std::chrono::steady_clock::now() - rx_start, 40ms)
      << "the read stall window was not honoured";

  // Write side: the first write would-blocks for the window, then lands.
  auto tx_conn = transport_.Connect(7002);
  ASSERT_TRUE(tx_conn.ok());
  const auto tx_start = std::chrono::steady_clock::now();
  size_t wrote = 0;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (wrote == 0 && std::chrono::steady_clock::now() < deadline) {
    auto w = (*tx_conn)->Write("hi", 2);
    ASSERT_TRUE(w.ok());
    wrote = *w;
    if (wrote == 0) {
      std::this_thread::sleep_for(100us);
    }
  }
  EXPECT_EQ(wrote, 2u);
  EXPECT_GE(std::chrono::steady_clock::now() - tx_start, 40ms)
      << "the write stall window was not honoured";

  const FaultCountersSnapshot snap = net_.fault_counters(7002);
  EXPECT_EQ(snap.read_stalls, 1u);
  EXPECT_EQ(snap.write_stalls, 1u);
}

// --- circuit breaker ------------------------------------------------------------

// Exactly `threshold` scripted refusals open the circuit; once the refusal
// budget is spent, the half-open window's single probe succeeds, closes the
// circuit, and pooled traffic flows — every transition counted exactly once.
TEST_F(ChaosTest, ScriptedRefusalsOpenThenProbeCloses) {
  load::MemcachedBackend backend(&transport_, 12001);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  FaultPlan plan;
  plan.refuse_connects = 2;
  net_.InjectFaults(12001, std::move(plan));

  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({12001});
  cfg.breaker_failure_threshold = 2;
  cfg.breaker_open_ns = 50'000'000;
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  // Two refusals -> open; +50ms -> half-open; the probe (refusal budget now
  // spent) dials through -> closed, wire up.
  ASSERT_TRUE(WaitFor([&] { return pool.stats().breaker_closes == 1; }));
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 1; }));

  const services::BackendPoolStats stats = pool.stats();
  EXPECT_EQ(stats.dial_failures, 2u);
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_half_opens, 1u);
  EXPECT_EQ(stats.breaker_closes, 1u);
  EXPECT_EQ(stats.conns_dialed, 1u);
  EXPECT_EQ(net_.fault_counters(12001).connects_refused, 2u);
  EXPECT_FALSE(pool.BackendBreakerOpen(0));

  // The healed circuit serves traffic end to end.
  auto lease = pool.Acquire();
  ASSERT_TRUE(lease.ok());
  runtime::Channel requests(16);
  runtime::Channel replies(16);
  pool.Attach(*lease, /*backend_index=*/0, &requests, &replies);
  runtime::MsgPool msgs(16);
  runtime::MsgRef req = msgs.Acquire();
  req->kind = runtime::Msg::Kind::kGrammar;
  proto::BuildRequest(&req->gmsg, proto::kMemcachedGet, "key");
  ASSERT_TRUE(requests.TryPush(std::move(req)));
  runtime::MsgRef reply;
  ASSERT_TRUE(WaitFor([&] {
    reply = replies.TryPop();
    return static_cast<bool>(reply);
  }));
  ASSERT_EQ(reply->kind, runtime::Msg::Kind::kGrammar);
  EXPECT_EQ(proto::MemcachedCommand(&reply->gmsg).value(), "value");

  services::PoolLease l = std::move(lease).value();
  pool.Release(l);
  platform.Stop();
}

// Against a backend that never comes up, every half-open window admits
// EXACTLY one probe dial — two connections share the breaker, yet dials
// never exceed threshold + one-per-window (the single-probe claim).
TEST_F(ChaosTest, HalfOpenWindowAdmitsExactlyOneProbe) {
  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({12002});  // nobody listens here
  cfg.conns_per_backend = 2;
  cfg.breaker_failure_threshold = 2;
  cfg.breaker_open_ns = 30'000'000;
  cfg.redial_interval_ns = 20'000'000;
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());

  ASSERT_TRUE(WaitFor([&] { return pool.stats().breaker_half_opens >= 3; }));
  const services::BackendPoolStats stats = pool.stats();
  EXPECT_GE(stats.breaker_opens, 2u) << "failed probes must re-open";
  EXPECT_EQ(stats.breaker_closes, 0u);
  EXPECT_EQ(stats.conns_dialed, 0u);
  EXPECT_EQ(pool.live_connections(), 0u);
  // The single-probe invariant: after the threshold dials that opened the
  // circuit, at most ONE dial per half-open window ever happened — even with
  // two connection tasks racing for the probe.
  EXPECT_LE(stats.dial_failures, 2u + stats.breaker_half_opens)
      << "a half-open window admitted more than one probe";
  // And probes actually happen: every re-open was caused by a failed probe
  // (one dial each), modulo one probe possibly in flight at snapshot time.
  EXPECT_GE(stats.dial_failures, 2u + (stats.breaker_opens - 1));
  // The state oscillates open <-> half-open as probes keep failing, so a
  // point-in-time snapshot may land inside a probe window — wait for the
  // next re-open instead of asserting the instantaneous state.
  EXPECT_TRUE(WaitFor([&] { return pool.BackendBreakerOpen(0); }))
      << "a failed probe must re-open the circuit";
  platform.Stop();
}

// --- request deadlines + retries ------------------------------------------------

// A backend that accepts requests but never answers (scripted rx stall) must
// fail the in-flight request with kError once the response deadline expires
// — and the expiry counts a breaker failure.
TEST_F(ChaosTest, DeadlineExpiryFailsRequestFast) {
  load::MemcachedBackend backend(&transport_, 12003);
  ASSERT_TRUE(backend.Start().ok());
  backend.Preload("key", "value");

  FaultPlan plan;
  ConnFaultSpec stall;
  stall.stall_rx_after_bytes = 0;
  stall.stall_rx_for_ns = 60'000'000'000;  // far beyond the test
  plan.conn_faults = {stall};
  plan.repeat_last = true;
  net_.InjectFaults(12003, std::move(plan));

  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({12003});
  cfg.request_deadline_ns = 50'000'000;
  cfg.breaker_failure_threshold = 1;
  cfg.breaker_open_ns = 10'000'000'000;  // stay open for the whole test
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 1; }));

  auto lease = pool.Acquire();
  ASSERT_TRUE(lease.ok());
  runtime::Channel requests(16);
  runtime::Channel replies(16);
  pool.Attach(*lease, /*backend_index=*/0, &requests, &replies);
  runtime::MsgPool msgs(16);
  runtime::MsgRef req = msgs.Acquire();
  req->kind = runtime::Msg::Kind::kGrammar;
  proto::BuildRequest(&req->gmsg, proto::kMemcachedGet, "key");
  ASSERT_TRUE(requests.TryPush(std::move(req)));

  runtime::MsgRef reply;
  ASSERT_TRUE(WaitFor([&] {
    reply = replies.TryPop();
    return static_cast<bool>(reply);
  })) << "an unanswerable request must fail, not hang";
  EXPECT_EQ(reply->kind, runtime::Msg::Kind::kError);

  const services::BackendPoolStats stats = pool.stats();
  EXPECT_EQ(stats.request_deadline_expiries, 1u);
  EXPECT_EQ(stats.requests_failed, 1u);
  EXPECT_EQ(stats.responses_routed, 0u);
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.retries_spent, 0u);
  EXPECT_EQ(net_.fault_counters(12003).read_stalls, 1u);
  EXPECT_TRUE(pool.BackendBreakerOpen(0));

  services::PoolLease l = std::move(lease).value();
  pool.Release(l);
  platform.Stop();
}

// kAnyBackend: the expired request re-issues onto a DIFFERENT healthy
// backend, and its response is handed back through the origin leg — the
// client sees the other backend's answer, not an error.
TEST_F(ChaosTest, ExpiredRequestRetriesOntoAnotherBackend) {
  load::MemcachedBackend stalled(&transport_, 12004);
  load::MemcachedBackend healthy(&transport_, 12005);
  ASSERT_TRUE(stalled.Start().ok() && healthy.Start().ok());
  stalled.Preload("key", "value-stalled");
  healthy.Preload("key", "value-healthy");

  FaultPlan plan;
  ConnFaultSpec stall;
  stall.stall_rx_after_bytes = 0;
  stall.stall_rx_for_ns = 60'000'000'000;
  plan.conn_faults = {stall};
  plan.repeat_last = true;
  net_.InjectFaults(12004, std::move(plan));

  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({12004, 12005});
  cfg.request_deadline_ns = 50'000'000;
  cfg.breaker_failure_threshold = 3;  // one expiry must not open the circuit
  cfg.retry_policy = services::RetryPolicy::kAnyBackend;
  cfg.max_retries_per_request = 1;
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 2; }));

  auto lease = pool.Acquire();
  ASSERT_TRUE(lease.ok());
  runtime::Channel requests(16);
  runtime::Channel replies(16);
  pool.Attach(*lease, /*backend_index=*/0, &requests, &replies);  // stalled leg
  runtime::MsgPool msgs(16);
  runtime::MsgRef req = msgs.Acquire();
  req->kind = runtime::Msg::Kind::kGrammar;
  proto::BuildRequest(&req->gmsg, proto::kMemcachedGet, "key");
  ASSERT_TRUE(requests.TryPush(std::move(req)));

  runtime::MsgRef reply;
  ASSERT_TRUE(WaitFor([&] {
    reply = replies.TryPop();
    return static_cast<bool>(reply);
  }));
  ASSERT_EQ(reply->kind, runtime::Msg::Kind::kGrammar)
      << "the retry must deliver a real response, not an error";
  EXPECT_EQ(proto::MemcachedCommand(&reply->gmsg).value(), "value-healthy")
      << "the retry must land on the OTHER backend";
  EXPECT_GE(healthy.requests_served(), 1u);

  const services::BackendPoolStats stats = pool.stats();
  EXPECT_EQ(stats.request_deadline_expiries, 1u);
  EXPECT_EQ(stats.retries_spent, 1u);
  EXPECT_EQ(stats.retries_denied, 0u);
  EXPECT_EQ(stats.responses_routed, 1u);
  EXPECT_EQ(stats.requests_failed, 0u);

  services::PoolLease l = std::move(lease).value();
  pool.Release(l);
  platform.Stop();
}

// An exhausted retry budget fails the request with kError — never a hang,
// never an unbudgeted re-issue.
TEST_F(ChaosTest, RetryBudgetExhaustionFailsInsteadOfHanging) {
  load::MemcachedBackend stalled(&transport_, 12006);
  load::MemcachedBackend healthy(&transport_, 12007);
  ASSERT_TRUE(stalled.Start().ok() && healthy.Start().ok());
  healthy.Preload("key", "value-healthy");

  FaultPlan plan;
  ConnFaultSpec stall;
  stall.stall_rx_after_bytes = 0;
  stall.stall_rx_for_ns = 60'000'000'000;
  plan.conn_faults = {stall};
  plan.repeat_last = true;
  net_.InjectFaults(12006, std::move(plan));

  auto& platform = MakePlatform();
  auto cfg = MemcachedPoolConfig({12006, 12007});
  cfg.request_deadline_ns = 50'000'000;
  cfg.breaker_failure_threshold = 3;
  cfg.retry_policy = services::RetryPolicy::kAnyBackend;
  cfg.max_retries_per_request = 1;
  cfg.retry_budget_per_sec = 0.0;  // bone-dry bucket:
  cfg.retry_burst = 0;             // every retry must be denied
  services::BackendPool pool(std::move(cfg));
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  ASSERT_TRUE(pool.EnsureStarted(platform.env()).ok());
  ASSERT_TRUE(WaitFor([&] { return pool.live_connections() == 2; }));

  auto lease = pool.Acquire();
  ASSERT_TRUE(lease.ok());
  runtime::Channel requests(16);
  runtime::Channel replies(16);
  pool.Attach(*lease, /*backend_index=*/0, &requests, &replies);
  runtime::MsgPool msgs(16);
  runtime::MsgRef req = msgs.Acquire();
  req->kind = runtime::Msg::Kind::kGrammar;
  proto::BuildRequest(&req->gmsg, proto::kMemcachedGet, "key");
  ASSERT_TRUE(requests.TryPush(std::move(req)));

  runtime::MsgRef reply;
  ASSERT_TRUE(WaitFor([&] {
    reply = replies.TryPop();
    return static_cast<bool>(reply);
  })) << "a denied retry must fail the request, not hang it";
  EXPECT_EQ(reply->kind, runtime::Msg::Kind::kError);

  const services::BackendPoolStats stats = pool.stats();
  EXPECT_EQ(stats.retries_denied, 1u);
  EXPECT_EQ(stats.retries_spent, 0u);
  EXPECT_EQ(stats.requests_failed, 1u);
  EXPECT_EQ(healthy.requests_served(), 0u)
      << "nothing may reach the healthy backend without a budget token";

  services::PoolLease l = std::move(lease).value();
  pool.Release(l);
  platform.Stop();
}

// --- service-level degradation --------------------------------------------------

// When every backend's circuit is open, http_lb answers new connections with
// an immediate 502 + Connection: close — no graph, no lease, no waiting.
TEST_F(ChaosTest, HttpLbFastFails502WhenEveryBreakerIsOpen) {
  auto& platform = MakePlatform();
  services::HttpLbService::Options options;
  options.wire.conns_per_backend = 1;
  options.wire.breaker_failure_threshold = 1;
  options.wire.breaker_open_ns = 10'000'000'000;  // stay open once tripped
  services::HttpLbService lb({8085}, options);  // nobody listens on 8085
  ASSERT_TRUE(platform.RegisterProgram(8080, &lb).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  // First connection starts the pool; its dial fails and opens the breaker.
  auto kick = transport_.Connect(8080);
  ASSERT_TRUE(kick.ok());
  ASSERT_TRUE(WaitFor([&] {
    return lb.pool() != nullptr && lb.pool()->started() &&
           lb.pool()->BackendBreakerOpen(0);
  }));

  // With the only breaker open, a new connection gets the fast 502.
  auto victim = transport_.Connect(8080);
  ASSERT_TRUE(victim.ok());
  std::string got;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    char buf[256];
    auto r = (*victim)->Read(buf, sizeof(buf));
    if (!r.ok()) {
      break;  // served and closed
    }
    if (*r > 0) {
      got.append(buf, *r);
    } else {
      std::this_thread::sleep_for(100us);
    }
  }
  EXPECT_EQ(got.rfind("HTTP/1.1 502", 0), 0u) << "got: " << got;
  EXPECT_NE(got.find("Connection: close"), std::string::npos) << "got: " << got;
  EXPECT_GE(lb.fast_fails(), 1u);

  (*victim)->Close();
  (*kick)->Close();
  platform.Stop();
}

// Cache mode degrades to the last-known-good copy during an outage: a key
// whose fresh cache entry was invalidated is served from the stale dict when
// the backend leg fails, counted in cache_stale_served.
TEST_F(ChaosTest, CacheModeServesStaleDuringBackendOutage) {
  auto backend = std::make_unique<load::MemcachedBackend>(&transport_, 12010);
  ASSERT_TRUE(backend->Start().ok());
  backend->Preload("key", "v1");

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.conns_per_backend = 1;
  options.wire.breaker_failure_threshold = 1;
  options.wire.breaker_open_ns = 10'000'000'000;
  options.cache.enabled = true;  // serve_stale defaults on
  services::MemcachedProxyService proxy({12010}, options);
  ASSERT_TRUE(platform.RegisterProgram(11311, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  ProxyClient client(&transport_, 11311);

  // Miss -> proxied -> populates both the fresh dict and the stale fallback.
  grammar::Message first = client.RoundTrip(proto::kMemcachedGet, "key");
  ASSERT_EQ(proto::MemcachedCommand(&first).status(), proto::kMemcachedStatusOk);
  EXPECT_EQ(proto::MemcachedCommand(&first).value(), "v1");

  // Outage: the wire drops and (threshold 1) the circuit opens.
  backend->Stop();
  backend.reset();
  ASSERT_TRUE(WaitFor([&] { return proxy.pool()->live_connections() == 0; }));

  // Write-through invalidates the fresh entry, then fails against the dead
  // backend — the client sees the standard internal error.
  grammar::Message set = client.RoundTrip(proto::kMemcachedSet, "key", "v2");
  EXPECT_EQ(proto::MemcachedCommand(&set).status(),
            proto::kMemcachedStatusInternalError);

  // The re-fetch misses the fresh dict, the backend leg fails, and the stale
  // fallback answers with the last-known-good value.
  grammar::Message degraded = client.RoundTrip(proto::kMemcachedGet, "key");
  EXPECT_EQ(proto::MemcachedCommand(&degraded).status(),
            proto::kMemcachedStatusOk);
  EXPECT_EQ(proto::MemcachedCommand(&degraded).value(), "v1");

  EXPECT_GE(proxy.registry().stats().cache_stale_served, 1u);
  EXPECT_GE(proxy.pool()->stats().breaker_opens, 1u);
  EXPECT_TRUE(proxy.pool()->BackendBreakerOpen(0));
  platform.Stop();
}

}  // namespace
}  // namespace flick
