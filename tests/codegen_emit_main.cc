// Emits the generated C++ for one of the built-in FLICK programs to a file.
// Used by the ctest codegen compile smoke: the output must compile against
// the project headers with no further editing.
//
//   codegen_emit <memcached|resp> <out.cc>
#include <cstdio>
#include <fstream>
#include <string>

#include "lang/codegen_cpp.h"
#include "lang/compile.h"
#include "services/dsl_service.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <memcached|resp> <out.cc>\n", argv[0]);
    return 2;
  }
  const std::string which = argv[1];
  const char* source = nullptr;
  if (which == "memcached") {
    source = flick::services::kMemcachedRouterSource;
  } else if (which == "resp") {
    source = flick::services::kRespRouterSource;
  } else {
    std::fprintf(stderr, "unknown program '%s'\n", which.c_str());
    return 2;
  }

  auto compiled = flick::lang::CompileSource(source);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::ofstream out(argv[2]);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
    return 1;
  }
  out << flick::lang::GenerateCpp(**compiled);
  return out.good() ? 0 : 1;
}
