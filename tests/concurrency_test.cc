// Unit + stress tests for the lock-free rings, MPMC queue and Notifier.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/mpmc_queue.h"
#include "concurrency/notifier.h"
#include "concurrency/spsc_byte_ring.h"
#include "concurrency/spsc_ring.h"

namespace flick {
namespace {

// ---------------------------------------------------------------- SpscRing ----

TEST(SpscRingTest, PushPopOrdered) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  for (int i = 0; i < 5; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FullRejectsPush) {
  SpscRing<int> ring(4);
  size_t pushed = 0;
  while (ring.TryPush(static_cast<int>(pushed))) {
    pushed++;
  }
  EXPECT_GE(pushed, 4u);
  EXPECT_FALSE(ring.TryPush(999));
  ring.TryPop();
  EXPECT_TRUE(ring.TryPush(999));
}

TEST(SpscRingTest, FrontPeeksWithoutPop) {
  SpscRing<std::string> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);
  ring.TryPush("x");
  ASSERT_NE(ring.Front(), nullptr);
  EXPECT_EQ(*ring.Front(), "x");
  EXPECT_EQ(ring.SizeApprox(), 1u);
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ring.TryPush(std::make_unique<int>(5));
  auto v = ring.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(SpscRingTest, TwoThreadStressPreservesSequence) {
  SpscRing<uint64_t> ring(256);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.TryPush(i)) {
        ++i;
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    auto v = ring.TryPop();
    if (v.has_value()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

// ------------------------------------------------------------ SpscByteRing ----

TEST(SpscByteRingTest, RoundTrip) {
  SpscByteRing ring(64);
  EXPECT_EQ(ring.Write("hello", 5), 5u);
  char out[8];
  EXPECT_EQ(ring.Read(out, 8), 5u);
  EXPECT_EQ(std::string(out, 5), "hello");
}

TEST(SpscByteRingTest, PartialWriteWhenFull) {
  SpscByteRing ring(16);
  std::string data(32, 'a');
  const size_t n = ring.Write(data.data(), data.size());
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(ring.WritableBytes(), 0u);
}

TEST(SpscByteRingTest, WrapAroundPreservesData) {
  SpscByteRing ring(16);
  char out[16];
  for (int round = 0; round < 100; ++round) {
    std::string data = "chunk" + std::to_string(round % 10);
    ASSERT_EQ(ring.Write(data.data(), data.size()), data.size());
    ASSERT_EQ(ring.Read(out, data.size()), data.size());
    ASSERT_EQ(std::string(out, data.size()), data);
  }
}

TEST(SpscByteRingTest, TwoThreadByteStress) {
  SpscByteRing ring(128);
  constexpr size_t kTotal = 1 << 20;
  std::thread producer([&] {
    uint8_t next = 0;
    size_t sent = 0;
    uint8_t chunk[64];
    while (sent < kTotal) {
      size_t want = std::min<size_t>(sizeof(chunk), kTotal - sent);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>(next + i);
      }
      const size_t n = ring.Write(chunk, want);
      sent += n;
      next = static_cast<uint8_t>(next + n);
    }
  });
  size_t received = 0;
  uint8_t expect = 0;
  uint8_t chunk[64];
  while (received < kTotal) {
    const size_t n = ring.Read(chunk, sizeof(chunk));
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(chunk[i], expect) << "at byte " << received + i;
      ++expect;
    }
    received += n;
  }
  producer.join();
}

// --------------------------------------------------------------- MpmcQueue ----

TEST(MpmcQueueTest, TryPushPop) {
  MpmcQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_EQ(*q.TryPop(), 2);
}

TEST(MpmcQueueTest, BoundedRejectsWhenFull) {
  MpmcQueue<int> q(1);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(MpmcQueueTest, PopBlockingWakesOnPush) {
  MpmcQueue<int> q;
  std::thread t([&] {
    auto v = q.PopBlocking();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.TryPush(7);
  t.join();
}

TEST(MpmcQueueTest, CloseUnblocksWaiters) {
  MpmcQueue<int> q;
  std::thread t([&] { EXPECT_FALSE(q.PopBlocking().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  t.join();
}

TEST(MpmcQueueTest, MultiProducerMultiConsumer) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 10000;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!q.TryPush(i)) {
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < 2 * kPerProducer) {
        auto v = q.TryPop();
        if (v.has_value()) {
          sum += *v;
          popped++;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const long expected = 2L * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

// ---------------------------------------------------------------- Notifier ----

TEST(NotifierTest, NotifyBeforeWaitCancelsWait) {
  Notifier n;
  const uint64_t token = n.PrepareWait();
  n.Notify();
  // Must return immediately despite the long timeout.
  const auto start = std::chrono::steady_clock::now();
  n.Wait(token, std::chrono::seconds(5));
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(1));
}

TEST(NotifierTest, WaitTimesOut) {
  Notifier n;
  const uint64_t token = n.PrepareWait();
  const auto start = std::chrono::steady_clock::now();
  n.Wait(token, std::chrono::milliseconds(20));
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(15));
}

TEST(NotifierTest, CrossThreadWake) {
  Notifier n;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    const uint64_t token = n.PrepareWait();
    n.Wait(token, std::chrono::seconds(5));
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  n.Notify();
  t.join();
  EXPECT_TRUE(woke.load());
}

}  // namespace
}  // namespace flick
