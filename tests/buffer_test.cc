// Unit tests for the pre-allocated buffer pool and buffer chains (§5: all
// buffers come from a pre-allocated pool; exhaustion must be reported, not
// grown past).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"
#include "buffer/buffer_chain.h"
#include "buffer/buffer_pool.h"

namespace flick {
namespace {

TEST(BufferPoolTest, AcquireGivesEmptyBuffer) {
  BufferPool pool(4, 128);
  BufferRef b = pool.Acquire();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->capacity(), 128u);
  EXPECT_EQ(b->readable(), 0u);
  EXPECT_EQ(b->writable(), 128u);
}

TEST(BufferPoolTest, ProduceConsumeCursors) {
  BufferPool pool(1, 64);
  BufferRef b = pool.Acquire();
  memcpy(b->write_ptr(), "hello", 5);
  b->Produce(5);
  EXPECT_EQ(b->readable(), 5u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(b->read_ptr()), 5), "hello");
  b->Consume(2);
  EXPECT_EQ(b->readable(), 3u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(b->read_ptr()), 3), "llo");
}

TEST(BufferPoolTest, ExhaustionReturnsNull) {
  BufferPool pool(2, 32);
  BufferRef a = pool.Acquire();
  BufferRef b = pool.Acquire();
  BufferRef c = pool.Acquire();
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_FALSE(c);
  EXPECT_EQ(pool.stats().exhausted_count, 1u);
}

TEST(BufferPoolTest, ReleaseRecycles) {
  BufferPool pool(1, 32);
  {
    BufferRef a = pool.Acquire();
    ASSERT_TRUE(a);
    a->Produce(10);
  }
  BufferRef b = pool.Acquire();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->readable(), 0u) << "recycled buffer must be reset";
}

TEST(BufferPoolTest, StatsTrackHighWatermark) {
  BufferPool pool(4, 32);
  {
    BufferRef a = pool.Acquire();
    BufferRef b = pool.Acquire();
    BufferRef c = pool.Acquire();
    EXPECT_EQ(pool.stats().in_use, 3u);
  }
  EXPECT_EQ(pool.stats().in_use, 0u);
  EXPECT_EQ(pool.stats().high_watermark, 3u);
  EXPECT_EQ(pool.stats().acquire_count, 3u);
}

TEST(BufferPoolTest, MoveTransfersOwnership) {
  BufferPool pool(1, 32);
  BufferRef a = pool.Acquire();
  BufferRef b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is tested null
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.stats().in_use, 1u);
}

// ------------------------------------------------------------ BufferChain ----

class BufferChainTest : public ::testing::Test {
 protected:
  BufferPool pool_{64, 64};  // small buffers force multi-buffer chains
};

TEST_F(BufferChainTest, AppendAndRead) {
  BufferChain chain(&pool_);
  ASSERT_TRUE(chain.Append("hello world"));
  EXPECT_EQ(chain.readable(), 11u);
  char out[16];
  EXPECT_EQ(chain.Read(out, 11), 11u);
  EXPECT_EQ(std::string(out, 11), "hello world");
  EXPECT_TRUE(chain.empty());
}

TEST_F(BufferChainTest, AppendSpansMultipleBuffers) {
  BufferChain chain(&pool_);
  std::string big(300, 'x');
  big[0] = 'a';
  big[299] = 'z';
  ASSERT_TRUE(chain.Append(big));
  EXPECT_EQ(chain.readable(), 300u);
  EXPECT_EQ(chain.ToString(), big);
}

TEST_F(BufferChainTest, PeekDoesNotConsume) {
  BufferChain chain(&pool_);
  ASSERT_TRUE(chain.Append("abcdef"));
  char out[4];
  EXPECT_EQ(chain.Peek(2, out, 3), 3u);
  EXPECT_EQ(std::string(out, 3), "cde");
  EXPECT_EQ(chain.readable(), 6u);
}

TEST_F(BufferChainTest, PeekAcrossBufferBoundary) {
  BufferChain chain(&pool_);
  std::string data(100, '?');
  for (int i = 0; i < 100; ++i) {
    data[static_cast<size_t>(i)] = static_cast<char>('0' + i % 10);
  }
  ASSERT_TRUE(chain.Append(data));
  char out[100];
  EXPECT_EQ(chain.Peek(60, out, 10), 10u);  // straddles the 64-byte boundary
  EXPECT_EQ(std::string(out, 10), data.substr(60, 10));
}

TEST_F(BufferChainTest, ConsumeReleasesDrainedBuffers) {
  BufferChain chain(&pool_);
  ASSERT_TRUE(chain.Append(std::string(200, 'x')));
  const size_t in_use_full = pool_.stats().in_use;
  chain.Consume(190);
  EXPECT_LT(pool_.stats().in_use, in_use_full);
  EXPECT_EQ(chain.readable(), 10u);
}

TEST_F(BufferChainTest, MoveFromTransfersBytes) {
  BufferChain a(&pool_), b(&pool_);
  ASSERT_TRUE(a.Append("front-"));
  ASSERT_TRUE(b.Append("back"));
  a.MoveFrom(b);
  EXPECT_EQ(a.ToString(), "front-back");
  EXPECT_TRUE(b.empty());
}

TEST_F(BufferChainTest, FrontViewIsContiguousPrefix) {
  BufferChain chain(&pool_);
  ASSERT_TRUE(chain.Append("0123456789"));
  std::string_view v = chain.FrontView();
  EXPECT_FALSE(v.empty());
  EXPECT_EQ(v.substr(0, 5), "01234");
}

TEST_F(BufferChainTest, AppendFailsWhenPoolExhausted) {
  BufferPool tiny(1, 16);
  BufferChain chain(&tiny);
  EXPECT_TRUE(chain.Append(std::string(16, 'a')));
  EXPECT_FALSE(chain.Append(std::string(16, 'b')));  // needs a second buffer
  EXPECT_EQ(chain.readable(), 16u);                  // first append intact
}

TEST_F(BufferChainTest, AppendBufferZeroCopyHandoff) {
  BufferChain chain(&pool_);
  BufferRef b = pool_.Acquire();
  memcpy(b->write_ptr(), "direct", 6);
  b->Produce(6);
  chain.AppendBuffer(std::move(b));
  EXPECT_EQ(chain.ToString(), "direct");
}

TEST_F(BufferChainTest, ClearReleasesEverything) {
  BufferChain chain(&pool_);
  ASSERT_TRUE(chain.Append(std::string(500, 'x')));
  chain.Clear();
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(pool_.stats().in_use, 0u);
}

TEST_F(BufferChainTest, PeekSlicesExposesSegmentsWithoutFlattening) {
  BufferChain chain(&pool_);
  // 150 bytes over 64-byte buffers -> three segments (64 + 64 + 22).
  std::string data;
  for (int i = 0; i < 150; ++i) {
    data.push_back(static_cast<char>('a' + i % 26));
  }
  ASSERT_TRUE(chain.Append(data));

  IoSlice slices[8];
  const size_t n = chain.PeekSlices(slices, 8);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(slices[0].len, 64u);
  EXPECT_EQ(slices[1].len, 64u);
  EXPECT_EQ(slices[2].len, 22u);
  // The slices point INTO the chain's buffers (zero copy) and concatenate to
  // the stream in order.
  std::string joined;
  for (size_t i = 0; i < n; ++i) {
    joined.append(static_cast<const char*>(slices[i].data), slices[i].len);
  }
  EXPECT_EQ(joined, data);
  EXPECT_EQ(slices[0].data, chain.FrontView().data());

  // A partial consume shifts the first slice past the read position.
  chain.Consume(10);
  const size_t n2 = chain.PeekSlices(slices, 8);
  ASSERT_EQ(n2, 3u);
  EXPECT_EQ(slices[0].len, 54u);
  EXPECT_EQ(std::string(static_cast<const char*>(slices[0].data), 4), data.substr(10, 4));

  // max_slices caps the view without losing stream order.
  const size_t n3 = chain.PeekSlices(slices, 2);
  ASSERT_EQ(n3, 2u);
  EXPECT_EQ(slices[0].len + slices[1].len, 54u + 64u);
}

TEST_F(BufferChainTest, ReserveSlicesExposesWritableWindows) {
  BufferChain chain(&pool_);
  MutIoSlice slices[4];
  ASSERT_EQ(chain.ReserveSlices(slices, 3), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(slices[i].data, nullptr);
    EXPECT_EQ(slices[i].len, 64u);  // fresh pool buffers: full capacity
  }
  // Fill the window like a scatter read would: 64 + 36 bytes.
  std::memset(slices[0].data, 'x', 64);
  std::memset(slices[1].data, 'y', 36);
  chain.CommitFill(100);
  EXPECT_EQ(chain.readable(), 100u);
  std::string s = chain.ToString();
  EXPECT_EQ(s.substr(0, 64), std::string(64, 'x'));
  EXPECT_EQ(s.substr(64), std::string(36, 'y'));
}

TEST_F(BufferChainTest, CommitFillAppendsExactPrefixAndKeepsTailReserved) {
  BufferChain chain(&pool_);
  MutIoSlice slices[4];
  ASSERT_EQ(chain.ReserveSlices(slices, 4), 4u);
  EXPECT_EQ(pool_.stats().in_use, 4u);
  std::memset(slices[0].data, 'a', 10);
  chain.CommitFill(10);  // short fill: only a prefix of the first buffer
  EXPECT_EQ(chain.readable(), 10u);
  EXPECT_EQ(chain.ToString(), std::string(10, 'a'));
  // Unfilled buffers stay reserved for the next fill; a shrinking window is
  // what returns them — release-only, never release-then-reacquire.
  EXPECT_EQ(chain.reserved_buffers(), 3u);
  const uint64_t acquires = pool_.stats().acquire_count;
  ASSERT_EQ(chain.ReserveSlices(slices, 1), 1u);  // window halved to 1
  EXPECT_EQ(pool_.stats().in_use, 2u);            // 1 in the chain + 1 reserved
  EXPECT_EQ(pool_.stats().acquire_count, acquires);
}

TEST_F(BufferChainTest, WouldBlockFillConsumesNoPoolBuffers) {
  BufferChain chain(&pool_);
  MutIoSlice slices[2];
  ASSERT_EQ(chain.ReserveSlices(slices, 1), 1u);
  chain.CommitFill(0);  // would-block: nothing produced
  const uint64_t acquires_after_first = pool_.stats().acquire_count;
  // Every further would-block wakeup reuses the cached reservation: the
  // pool-churn counter must not move — this is the per-wakeup
  // acquire-then-release-empty round-trip the fill window eliminates.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(chain.ReserveSlices(slices, 1), 1u);
    chain.CommitFill(0);
  }
  EXPECT_EQ(pool_.stats().acquire_count, acquires_after_first);
  EXPECT_EQ(pool_.stats().in_use, 1u);  // the cached spare, nothing else
  chain.ReleaseReserve();
  EXPECT_EQ(pool_.stats().in_use, 0u);
}

TEST_F(BufferChainTest, ReserveShrinksWhenWindowShrinks) {
  BufferChain chain(&pool_);
  MutIoSlice slices[8];
  ASSERT_EQ(chain.ReserveSlices(slices, 4), 4u);
  // The adaptive window halved: the reservation must shrink with it instead
  // of pinning buffers the fill will never use.
  ASSERT_EQ(chain.ReserveSlices(slices, 2), 2u);
  EXPECT_EQ(pool_.stats().in_use, 2u);
}

TEST_F(BufferChainTest, ReserveSlicesReportsPoolPressure) {
  BufferPool tiny(2, 64);
  BufferChain chain(&tiny);
  MutIoSlice slices[4];
  EXPECT_EQ(chain.ReserveSlices(slices, 4), 2u);  // all the pool has
  // A shrinking window hands the excess back to the pool...
  EXPECT_EQ(chain.ReserveSlices(slices, 1), 1u);
  BufferChain other(&tiny);
  MutIoSlice more[4];
  // ...where another connection's fill can pick it up.
  EXPECT_EQ(other.ReserveSlices(more, 4), 1u);
}

TEST_F(BufferChainTest, ClearReturnsReservedBuffers) {
  BufferChain chain(&pool_);
  MutIoSlice slices[4];
  ASSERT_EQ(chain.ReserveSlices(slices, 3), 3u);
  chain.Clear();
  EXPECT_EQ(pool_.stats().in_use, 0u);
}

TEST_F(BufferChainTest, InterleavedAppendConsumeStress) {
  BufferChain chain(&pool_);
  Rng rng(42);
  std::string model;  // reference model of chain contents
  size_t produced = 0;
  for (int round = 0; round < 500; ++round) {
    if (rng.NextBelow(2) == 0) {
      const size_t n = rng.NextInRange(1, 80);
      std::string data;
      for (size_t i = 0; i < n; ++i) {
        data.push_back(static_cast<char>('a' + (produced + i) % 26));
      }
      if (chain.Append(data)) {
        model += data;
        produced += n;
      }
    } else if (!model.empty()) {
      const size_t n = rng.NextInRange(1, model.size());
      std::string out(n, '\0');
      EXPECT_EQ(chain.Read(out.data(), n), n);
      EXPECT_EQ(out, model.substr(0, n));
      model.erase(0, n);
    }
    ASSERT_EQ(chain.readable(), model.size());
  }
}

}  // namespace
}  // namespace flick
