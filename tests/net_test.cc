// Tests for both transports: the simulated fabric (cost-model substrate for
// the benches) and the real kernel loopback transport.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/kernel_transport.h"
#include "net/sim_transport.h"

namespace flick {
namespace {

// ------------------------------------------------------------ SimTransport ----

class SimTransportTest : public ::testing::Test {
 protected:
  SimNetwork net_;
  SimTransport transport_{&net_, StackCostModel::Null()};
};

TEST_F(SimTransportTest, ListenConnectAccept) {
  auto listener = transport_.Listen(7000);
  ASSERT_TRUE(listener.ok());
  EXPECT_EQ((*listener)->port(), 7000);

  auto client = transport_.Connect(7000);
  ASSERT_TRUE(client.ok());

  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->IsOpen());
}

TEST_F(SimTransportTest, ConnectRefusedWithoutListener) {
  auto conn = transport_.Connect(7999);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST_F(SimTransportTest, DuplicateListenRejected) {
  auto l1 = transport_.Listen(7001);
  ASSERT_TRUE(l1.ok());
  auto l2 = transport_.Listen(7001);
  EXPECT_FALSE(l2.ok());
  EXPECT_EQ(l2.status().code(), StatusCode::kAlreadyExists);
}

// The sharded-accept path: ListenShared joins the port's accept group and
// connections are placed round-robin across the members — the sim's
// SO_REUSEPORT equivalent.
TEST_F(SimTransportTest, ListenSharedRoundRobinsAcceptPlacement) {
  auto l1 = transport_.Listen(7400);
  ASSERT_TRUE(l1.ok());
  auto l2 = transport_.ListenShared(7400);
  ASSERT_TRUE(l2.ok());

  std::vector<std::unique_ptr<Connection>> clients;
  for (int i = 0; i < 6; ++i) {
    auto c = transport_.Connect(7400);
    ASSERT_TRUE(c.ok()) << i;
    clients.push_back(std::move(c).value());
  }
  size_t accepted1 = 0, accepted2 = 0;
  while ((*l1)->Accept() != nullptr) {
    ++accepted1;
  }
  while ((*l2)->Accept() != nullptr) {
    ++accepted2;
  }
  EXPECT_EQ(accepted1, 3u);
  EXPECT_EQ(accepted2, 3u);
}

// A closed group member is skipped; the survivors keep accepting.
TEST_F(SimTransportTest, ListenSharedSurvivesMemberClose) {
  auto l1 = transport_.Listen(7401);
  ASSERT_TRUE(l1.ok());
  auto l2 = transport_.ListenShared(7401);
  ASSERT_TRUE(l2.ok());
  (*l1)->Close();

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(transport_.Connect(7401).ok()) << i;
  }
  size_t accepted2 = 0;
  while ((*l2)->Accept() != nullptr) {
    ++accepted2;
  }
  EXPECT_EQ(accepted2, 4u);
}

TEST_F(SimTransportTest, PortReusableAfterListenerClose) {
  {
    auto l1 = transport_.Listen(7002);
    ASSERT_TRUE(l1.ok());
  }
  auto l2 = transport_.Listen(7002);
  EXPECT_TRUE(l2.ok());
}

TEST_F(SimTransportTest, BidirectionalData) {
  auto listener = transport_.Listen(7010);
  ASSERT_TRUE(listener.ok());
  auto client = transport_.Connect(7010);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  auto wrote = (*client)->Write("ping", 4);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 4u);

  char buf[8];
  auto got = server->Read(buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, *got), "ping");

  ASSERT_TRUE(server->Write("pong", 4).ok());
  got = (*client)->Read(buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, *got), "pong");
}

TEST_F(SimTransportTest, ReadOnEmptyReturnsZero) {
  auto listener = transport_.Listen(7011);
  auto client = transport_.Connect(7011);
  auto server = (*listener)->Accept();
  char buf[8];
  auto got = server->Read(buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0u);
  EXPECT_FALSE(server->ReadReady());
  ASSERT_TRUE((*client)->Write("x", 1).ok());
  EXPECT_TRUE(server->ReadReady());
}

TEST_F(SimTransportTest, PeerCloseDrainsThenSignals) {
  auto listener = transport_.Listen(7012);
  auto client = transport_.Connect(7012);
  auto server = (*listener)->Accept();
  ASSERT_TRUE((*client)->Write("bye", 3).ok());
  (*client)->Close();

  char buf[8];
  auto got = server->Read(buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, *got), "bye");  // buffered data still readable

  got = server->Read(buf, sizeof(buf));
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_F(SimTransportTest, WriteToClosedPeerFails) {
  auto listener = transport_.Listen(7013);
  auto client = transport_.Connect(7013);
  auto server = (*listener)->Accept();
  server->Close();
  auto wrote = (*client)->Write("x", 1);
  EXPECT_FALSE(wrote.ok());
}

TEST_F(SimTransportTest, ReadReadyTrueAfterPeerClose) {
  auto listener = transport_.Listen(7014);
  auto client = transport_.Connect(7014);
  auto server = (*listener)->Accept();
  EXPECT_FALSE(server->ReadReady());
  (*client)->Close();
  EXPECT_TRUE(server->ReadReady()) << "close must be observable as readability";
}

TEST_F(SimTransportTest, BackpressureWhenRingFull) {
  SimNetwork small_net(/*ring_capacity=*/1024);
  SimTransport t(&small_net, StackCostModel::Null());
  auto listener = t.Listen(1);
  auto client = t.Connect(1);
  auto server = (*listener)->Accept();
  (void)server;
  std::string big(4096, 'x');
  size_t total = 0;
  for (int i = 0; i < 10; ++i) {
    auto wrote = (*client)->Write(big.data(), big.size());
    ASSERT_TRUE(wrote.ok());
    total += *wrote;
    if (*wrote == 0) {
      break;
    }
  }
  EXPECT_LE(total, 1024u);
}

TEST_F(SimTransportTest, WritevPreservesSegmentsAndOrder) {
  auto listener = transport_.Listen(7030);
  auto client = transport_.Connect(7030);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  const IoSlice slices[] = {{"alpha", 5}, {"", 0}, {"beta", 4}, {"gamma!", 6}};
  auto wrote = (*client)->Writev(slices, 4);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 15u);  // empty slice contributes nothing

  char buf[32];
  auto got = server->Read(buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, *got), "alphabetagamma!");
}

TEST_F(SimTransportTest, WritevPartialMidIovecWithInjectedCap) {
  // Cap every write call at 10 bytes: the first Writev must stop mid-second-
  // slice, and the caller's retry-with-remainder must complete the stream.
  StackCostModel capped = StackCostModel::Null();
  capped.max_bytes_per_op = 10;
  SimTransport t(&net_, capped);
  auto listener = t.Listen(7031);
  auto client = t.Connect(7031);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  const IoSlice slices[] = {{"12345678", 8}, {"abcdefgh", 8}};
  auto wrote = (*client)->Writev(slices, 2);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 10u);  // 8 from slice 0 + 2 from slice 1

  const IoSlice rest[] = {{"cdefgh", 6}};
  wrote = (*client)->Writev(rest, 1);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 6u);

  char buf[32];
  size_t total = 0;
  while (total < 16) {
    auto got = server->Read(buf + total, sizeof(buf) - total);
    ASSERT_TRUE(got.ok());
    total += *got;
  }
  EXPECT_EQ(std::string(buf, total), "12345678abcdefgh");
}

TEST_F(SimTransportTest, WritevBackpressureWhenRingFull) {
  SimNetwork small_net(/*ring_capacity=*/64);
  SimTransport t(&small_net, StackCostModel::Null());
  auto listener = t.Listen(1);
  auto client = t.Connect(1);
  auto server = (*listener)->Accept();
  (void)server;

  std::string big(100, 'x');
  const IoSlice slices[] = {{big.data(), big.size()}, {big.data(), big.size()}};
  auto wrote = (*client)->Writev(slices, 2);
  ASSERT_TRUE(wrote.ok());
  EXPECT_GT(*wrote, 0u);
  EXPECT_LE(*wrote, 64u);  // stops at the ring, mid-first-slice

  auto again = (*client)->Writev(slices, 2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);  // would block
}

TEST_F(SimTransportTest, WritevToClosedPeerFails) {
  auto listener = transport_.Listen(7032);
  auto client = transport_.Connect(7032);
  auto server = (*listener)->Accept();
  server->Close();
  const IoSlice slices[] = {{"x", 1}};
  EXPECT_FALSE((*client)->Writev(slices, 1).ok());
}

TEST_F(SimTransportTest, ReadvScatterFillsSlicesInOrder) {
  auto listener = transport_.Listen(7040);
  auto client = transport_.Connect(7040);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE((*client)->Write("alphabetagamma!", 15).ok());

  char a[5], b[4], c[32];
  MutIoSlice slices[] = {{a, 5}, {nullptr, 0}, {b, 4}, {c, sizeof(c)}};
  auto got = server->Readv(slices, 4);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 15u);  // empty slice contributes nothing
  EXPECT_EQ(std::string(a, 5), "alpha");
  EXPECT_EQ(std::string(b, 4), "beta");
  EXPECT_EQ(std::string(c, 6), "gamma!");
}

TEST_F(SimTransportTest, ReadvShortReadEndsMidIovec) {
  auto listener = transport_.Listen(7041);
  auto client = transport_.Connect(7041);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);
  // Only 10 bytes buffered: the fill stops mid-second-slice and reports
  // exactly what it moved — the caller's proof the wire is drained.
  ASSERT_TRUE((*client)->Write("12345678ab", 10).ok());

  char a[8], b[8];
  MutIoSlice slices[] = {{a, 8}, {b, 8}};
  auto got = server->Readv(slices, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 10u);
  EXPECT_EQ(std::string(a, 8), "12345678");
  EXPECT_EQ(std::string(b, 2), "ab");

  got = server->Readv(slices, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0u);  // would block
}

TEST_F(SimTransportTest, ReadvInjectedCapLandsMidIovec) {
  // Cap every read call at 10 bytes on the ACCEPTING side (accepted
  // connections inherit the listener's cost model); the writer stays
  // uncapped. The first Readv must stop mid-second-slice even though 16
  // bytes are buffered; the retry completes the stream.
  StackCostModel capped = StackCostModel::Null();
  capped.max_bytes_per_op = 10;
  SimTransport capped_t(&net_, capped);
  auto listener = capped_t.Listen(7042);
  auto client = transport_.Connect(7042);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE((*client)->Write("0123456789abcdef", 16).ok());

  char a[8], b[8];
  MutIoSlice slices[] = {{a, 8}, {b, 8}};
  auto got = server->Readv(slices, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 10u);  // 8 from slice 0 + 2 from slice 1
  EXPECT_EQ(std::string(a, 8), "01234567");
  EXPECT_EQ(std::string(b, 2), "89");

  got = server->Readv(slices, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 6u);
  EXPECT_EQ(std::string(a, 6), "abcdef");
}

TEST_F(SimTransportTest, ReadvEofMidFillDeliversTailThenSignals) {
  auto listener = transport_.Listen(7043);
  auto client = transport_.Connect(7043);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE((*client)->Write("bye", 3).ok());
  (*client)->Close();

  char a[8], b[8];
  MutIoSlice slices[] = {{a, 8}, {b, 8}};
  auto got = server->Readv(slices, 2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 3u);  // buffered tail still delivered after peer close
  EXPECT_EQ(std::string(a, 3), "bye");

  got = server->Readv(slices, 2);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_F(SimTransportTest, CostModelsHaveExpectedOrdering) {
  const auto kernel = StackCostModel::Kernel();
  const auto mtcp = StackCostModel::Mtcp();
  EXPECT_GT(kernel.connect_cost, mtcp.connect_cost);
  EXPECT_GT(kernel.accept_cost, mtcp.accept_cost);
  EXPECT_GT(kernel.op_cost, mtcp.op_cost);
  // Data copy cost is stack-independent.
  EXPECT_EQ(kernel.per_kb_cost, mtcp.per_kb_cost);
}

TEST_F(SimTransportTest, CrossThreadEcho) {
  auto listener = transport_.Listen(7020);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] {
    std::unique_ptr<Connection> conn;
    while (conn == nullptr) {
      conn = (*listener)->Accept();
    }
    char buf[64];
    size_t echoed = 0;
    while (echoed < 5) {
      auto got = conn->Read(buf, sizeof(buf));
      if (!got.ok()) {
        break;
      }
      if (*got > 0) {
        size_t off = 0;
        while (off < *got) {
          auto w = conn->Write(buf + off, *got - off);
          if (!w.ok()) {
            return;
          }
          off += *w;
        }
        echoed += *got;
      }
    }
  });
  auto client = transport_.Connect(7020);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Write("hello", 5).ok());
  std::string response;
  char buf[64];
  while (response.size() < 5) {
    auto got = (*client)->Read(buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    response.append(buf, *got);
  }
  EXPECT_EQ(response, "hello");
  server_thread.join();
}

// --------------------------------------------------------- KernelTransport ----

TEST(KernelTransportTest, LoopbackEcho) {
  KernelTransport transport;
  auto listener = transport.Listen(0);  // ephemeral port
  ASSERT_TRUE(listener.ok());
  const uint16_t port = (*listener)->port();
  ASSERT_NE(port, 0);

  auto client = transport.Connect(port);
  ASSERT_TRUE(client.ok());

  std::unique_ptr<Connection> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    server = (*listener)->Accept();
    if (server == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE((*client)->Write("ping", 4).ok());
  char buf[8];
  size_t got = 0;
  for (int i = 0; i < 1000 && got == 0; ++i) {
    auto r = server->Read(buf, sizeof(buf));
    ASSERT_TRUE(r.ok());
    got = *r;
    if (got == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(std::string(buf, got), "ping");
}

// SO_REUSEPORT accept group: a second listener on the same port must bind,
// and a connection lands on exactly one member.
TEST(KernelTransportTest, ListenSharedBindsSamePort) {
  KernelTransport transport;
  auto l1 = transport.Listen(0);  // ephemeral port
  ASSERT_TRUE(l1.ok());
  const uint16_t port = (*l1)->port();
  auto l2 = transport.ListenShared(port);
  ASSERT_TRUE(l2.ok()) << l2.status().message();
  EXPECT_EQ((*l2)->port(), port);

  auto client = transport.Connect(port);
  ASSERT_TRUE(client.ok());
  std::unique_ptr<Connection> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    server = (*l1)->Accept();
    if (server == nullptr) {
      server = (*l2)->Accept();
    }
    if (server == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->IsOpen());
}

TEST(KernelTransportTest, WritevGatherLoopback) {
  KernelTransport transport;
  auto listener = transport.Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = transport.Connect((*listener)->port());
  ASSERT_TRUE(client.ok());
  std::unique_ptr<Connection> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    server = (*listener)->Accept();
    if (server == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_NE(server, nullptr);

  // Three segments, one sendmsg: the receiver sees one contiguous stream.
  const IoSlice slices[] = {{"scatter-", 8}, {"gather-", 7}, {"write", 5}};
  size_t sent = 0;
  while (sent < 20) {
    auto wrote = (*client)->Writev(slices, 3);  // loopback: completes at once
    ASSERT_TRUE(wrote.ok());
    ASSERT_EQ(*wrote, 20u) << "loopback sendmsg should take all 20 bytes";
    sent += *wrote;
  }
  char buf[32];
  size_t got = 0;
  for (int i = 0; i < 1000 && got < 20; ++i) {
    auto r = server->Read(buf + got, sizeof(buf) - got);
    ASSERT_TRUE(r.ok());
    got += *r;
    if (got < 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(std::string(buf, got), "scatter-gather-write");
}

TEST(KernelTransportTest, ReadvScatterLoopback) {
  KernelTransport transport;
  auto listener = transport.Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = transport.Connect((*listener)->port());
  ASSERT_TRUE(client.ok());
  std::unique_ptr<Connection> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    server = (*listener)->Accept();
    if (server == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE((*client)->Write("scatter-gather-read!", 20).ok());

  // One recvmsg spreads the stream across three segments in order.
  char a[8], b[7], c[8];
  std::string assembled;
  for (int i = 0; i < 1000 && assembled.size() < 20; ++i) {
    MutIoSlice slices[] = {{a, sizeof(a)}, {b, sizeof(b)}, {c, sizeof(c)}};
    auto got = server->Readv(slices, 3);
    ASSERT_TRUE(got.ok());
    size_t rem = *got;
    for (const MutIoSlice& s : slices) {
      const size_t n = rem < s.len ? rem : s.len;
      assembled.append(static_cast<const char*>(s.data), n);
      rem -= n;
    }
    if (assembled.size() < 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(assembled, "scatter-gather-read!");
}

TEST(KernelTransportTest, ConnectRefused) {
  KernelTransport transport;
  // Port 1 on loopback is almost certainly closed in the test environment.
  auto conn = transport.Connect(1);
  EXPECT_FALSE(conn.ok());
}

TEST(KernelTransportTest, PeerCloseObservedAsUnavailable) {
  KernelTransport transport;
  auto listener = transport.Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = transport.Connect((*listener)->port());
  ASSERT_TRUE(client.ok());
  std::unique_ptr<Connection> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    server = (*listener)->Accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(server, nullptr);
  (*client)->Close();
  char buf[8];
  Status status = OkStatus();
  for (int i = 0; i < 1000; ++i) {
    auto r = server->Read(buf, sizeof(buf));
    if (!r.ok()) {
      status = r.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace flick
