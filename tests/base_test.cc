// Unit tests for src/base: Result/Status, hashing, RNG, byte order,
// histogram, intrusive list.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "base/byte_order.h"
#include "base/hash.h"
#include "base/histogram.h"
#include "base/intrusive_list.h"
#include "base/result.h"
#include "base/rng.h"
#include "base/time_util.h"

namespace flick {
namespace {

// ---------------------------------------------------------------- Status ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad port");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad port");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad port");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kParseError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------ Hash ----

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, MixAvalanches) {
  // Consecutive integers should land in different buckets most of the time.
  std::set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 64; ++i) {
    low_bits.insert(MixU64(i) % 64);
  }
  EXPECT_GT(low_bits.size(), 32u);
}

TEST(HashTest, DispatchIsRoughlyUniform) {
  constexpr int kBackends = 10;
  constexpr int kKeys = 10000;
  std::vector<int> counts(kBackends, 0);
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "key-" + std::to_string(i);
    counts[HashBytes(key) % kBackends]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kKeys / kBackends / 2);
    EXPECT_LT(c, kKeys / kBackends * 2);
  }
}

// ------------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ------------------------------------------------------------- ByteOrder ----

TEST(ByteOrderTest, BigEndianRoundTrip) {
  uint8_t buf[8];
  StoreUInt(buf, 4, ByteOrder::kBig, 0x12345678);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(LoadUInt(buf, 4, ByteOrder::kBig), 0x12345678u);
}

TEST(ByteOrderTest, LittleEndianRoundTrip) {
  uint8_t buf[8];
  StoreUInt(buf, 4, ByteOrder::kLittle, 0x12345678);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(LoadUInt(buf, 4, ByteOrder::kLittle), 0x12345678u);
}

TEST(ByteOrderTest, AllWidthsRoundTrip) {
  for (size_t width = 1; width <= 8; ++width) {
    const uint64_t value = 0xfedcba9876543210ull >> (8 * (8 - width));
    uint8_t buf[8];
    StoreUInt(buf, width, ByteOrder::kBig, value);
    EXPECT_EQ(LoadUInt(buf, width, ByteOrder::kBig), value) << "width=" << width;
    StoreUInt(buf, width, ByteOrder::kLittle, value);
    EXPECT_EQ(LoadUInt(buf, width, ByteOrder::kLittle), value) << "width=" << width;
  }
}

// ------------------------------------------------------------- Histogram ----

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.5)), 1000.0, 1000.0 * 0.10);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.NextInRange(1, 1000000));
  }
  EXPECT_LE(h.Quantile(0.10), h.Quantile(0.50));
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.99));
  EXPECT_LE(h.Quantile(0.99), h.max());
}

TEST(HistogramTest, QuantileAccuracyOnUniform) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.5)), 50000.0, 50000.0 * 0.10);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.9)), 90000.0, 90000.0 * 0.10);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.sum(), 1010u);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(5);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

// Values below kMinor (16) land in width-1 buckets whose upper bound is the
// value itself, so quantiles on a known small distribution are EXACT — this
// pins the rank arithmetic (target rank floor(q*(n-1))+1 over cumulative
// bucket counts) independent of bucket error.
TEST(HistogramTest, ExactQuantilesOnSmallValues) {
  Histogram h;
  for (uint64_t v = 1; v <= 15; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.0), 1u);   // rank 1
  EXPECT_EQ(h.Quantile(0.50), 8u);  // rank 8: the true median of 1..15
  EXPECT_EQ(h.Quantile(0.95), 14u);  // rank floor(0.95*14)+1 = 14
  EXPECT_EQ(h.Quantile(1.0), 15u);  // rank 15
}

// Tail percentiles on a known trimodal distribution: 9800 fast ops at
// ~1us, 189 at ~100us, 11 outliers at 10ms. p50 must report the fast mode,
// p99 the slow mode, p999 the outliers — each within the documented <=~4%
// relative bucket error (the outlier bucket's bound clamps to max, which is
// exact here).
TEST(HistogramTest, TailPercentilesOnTrimodalDistribution) {
  Histogram h;
  for (int i = 0; i < 9800; ++i) {
    h.Record(1000);
  }
  for (int i = 0; i < 189; ++i) {
    h.Record(100000);
  }
  for (int i = 0; i < 11; ++i) {
    h.Record(10000000);
  }
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.50)), 1000.0, 1000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.99)), 100000.0, 100000.0 * 0.05);
  EXPECT_EQ(h.Quantile(0.999), 10000000u);
}

// Merging two histograms must be indistinguishable from recording every
// sample into one: same count/sum/min/max and same quantiles at every probe.
TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextInRange(1, 1000000);
    a.Record(v);
    combined.Record(v);
  }
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextInRange(1, 1000000);
    b.Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

// --------------------------------------------------------- IntrusiveList ----

struct Item {
  int value = 0;
  IntrusiveListNode node;
};

TEST(IntrusiveListTest, PushPopFifo) {
  IntrusiveList<Item, &Item::node> list;
  Item a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushFront) {
  IntrusiveList<Item, &Item::node> list;
  Item a{1}, b{2};
  list.PushBack(&a);
  list.PushFront(&b);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 1);
}

TEST(IntrusiveListTest, RemoveMiddle) {
  IntrusiveList<Item, &Item::node> list;
  Item a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  using ItemList = IntrusiveList<Item, &Item::node>;
  EXPECT_FALSE(ItemList::IsLinked(&b));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
}

TEST(IntrusiveListTest, ReinsertAfterPop) {
  IntrusiveList<Item, &Item::node> list;
  Item a{1};
  list.PushBack(&a);
  EXPECT_EQ(list.PopFront(), &a);
  list.PushBack(&a);  // must not CHECK: node was unlinked by pop
  EXPECT_EQ(list.Front(), &a);
}

// ------------------------------------------------------------- Stopwatch ----

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.ElapsedNanos(), 4'000'000u);
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace flick
