// Tests for the protocol grammars: Memcached binary (Listing 2), HTTP/1.x,
// and the Hadoop KV stream.
#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "buffer/buffer_chain.h"
#include "buffer/buffer_pool.h"
#include "proto/hadoop.h"
#include "proto/http.h"
#include "proto/memcached.h"

namespace flick::proto {
namespace {

using grammar::Message;
using grammar::ParseStatus;
using grammar::UnitParser;
using grammar::UnitSerializer;

class MemcachedTest : public ::testing::Test {
 protected:
  BufferPool pool_{256, 256};
};

TEST_F(MemcachedTest, UnitMatchesListing2Layout) {
  const auto& unit = MemcachedUnit();
  EXPECT_EQ(unit.name(), "cmd");
  EXPECT_EQ(unit.fixed_prefix_size(), kMemcachedHeaderSize);
  EXPECT_EQ(unit.FieldIndex("magic_code"), MemcachedCommand::kMagic);
  EXPECT_EQ(unit.FieldIndex("opcode"), MemcachedCommand::kOpcode);
  EXPECT_EQ(unit.FieldIndex("total_len"), MemcachedCommand::kTotalLen);
  EXPECT_EQ(unit.FieldIndex("value"), MemcachedCommand::kValue);
}

TEST_F(MemcachedTest, RequestRoundTrip) {
  Message msg;
  BuildRequest(&msg, kMemcachedGetK, "user:42", "", /*opaque=*/7);
  const std::string wire = ToWire(msg);
  ASSERT_EQ(wire.size(), kMemcachedHeaderSize + 7);
  EXPECT_EQ(static_cast<uint8_t>(wire[0]), kMemcachedMagicRequest);
  EXPECT_EQ(static_cast<uint8_t>(wire[1]), kMemcachedGetK);

  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&MemcachedUnit());
  Message parsed;
  ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone);
  MemcachedCommand cmd(&parsed);
  EXPECT_TRUE(cmd.is_request());
  EXPECT_EQ(cmd.opcode(), kMemcachedGetK);
  EXPECT_EQ(cmd.key(), "user:42");
  EXPECT_EQ(cmd.value(), "");
  EXPECT_EQ(cmd.opaque(), 7u);
}

TEST_F(MemcachedTest, ResponseRoundTripWithValue) {
  Message msg;
  BuildResponse(&msg, kMemcachedGetK, kMemcachedStatusOk, "k1", "payload-bytes", 3);
  const std::string wire = ToWire(msg);

  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&MemcachedUnit());
  Message parsed;
  ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone);
  MemcachedCommand cmd(&parsed);
  EXPECT_TRUE(cmd.is_response());
  EXPECT_EQ(cmd.status(), kMemcachedStatusOk);
  EXPECT_EQ(cmd.key(), "k1");
  EXPECT_EQ(cmd.value(), "payload-bytes");
}

TEST_F(MemcachedTest, TotalLenWritebackIsCorrect) {
  Message msg;
  BuildResponse(&msg, kMemcachedGetK, 0, "abc", "0123456789", 0);
  const std::string wire = ToWire(msg);
  // total_len (big-endian u32 at offset 8) = key + extras + value.
  const uint32_t total = static_cast<uint8_t>(wire[8]) << 24 |
                         static_cast<uint8_t>(wire[9]) << 16 |
                         static_cast<uint8_t>(wire[10]) << 8 |
                         static_cast<uint8_t>(wire[11]);
  EXPECT_EQ(total, 3u + 0 + 10);
}

TEST_F(MemcachedTest, ValueLenComputedOnParse) {
  Message msg;
  BuildResponse(&msg, kMemcachedGetK, 0, "abc", "0123456789", 0);
  const std::string wire = ToWire(msg);
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&MemcachedUnit());
  Message parsed;
  ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone);
  EXPECT_EQ(parsed.GetUInt("value_len"), 10u);
}

TEST_F(MemcachedTest, RoutingUnitSkipsValueBytes) {
  Message msg;
  BuildResponse(&msg, kMemcachedGetK, 0, "routed-key", std::string(100, 'v'), 0);
  const std::string wire = ToWire(msg);
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&MemcachedRoutingUnit());
  Message parsed;
  ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone);
  MemcachedCommand cmd(&parsed);
  EXPECT_EQ(cmd.key(), "routed-key");
  EXPECT_EQ(cmd.value(), "") << "projected unit must not materialise value";
  EXPECT_EQ(parsed.wire_size(), wire.size()) << "framing must still consume everything";
}

TEST_F(MemcachedTest, FragmentedAcrossHeaderBoundary) {
  Message msg;
  BuildRequest(&msg, kMemcachedGet, "split-key", "vvv");
  const std::string wire = ToWire(msg);
  UnitParser parser(&MemcachedUnit());
  Message parsed;
  for (size_t split : {1ul, 8ul, 23ul, 24ul, 25ul, wire.size() - 1}) {
    BufferChain input(&pool_);
    ASSERT_TRUE(input.Append(wire.substr(0, split)));
    ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kNeedMore) << split;
    ASSERT_TRUE(input.Append(wire.substr(split)));
    ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone) << split;
    MemcachedCommand cmd(&parsed);
    EXPECT_EQ(cmd.key(), "split-key");
    EXPECT_EQ(cmd.value(), "vvv");
  }
}

TEST_F(MemcachedTest, PipelinedCommands) {
  std::string wire;
  for (int i = 0; i < 10; ++i) {
    Message msg;
    BuildRequest(&msg, kMemcachedGet, "key-" + std::to_string(i), "");
    wire += ToWire(msg);
  }
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&MemcachedUnit());
  for (int i = 0; i < 10; ++i) {
    Message parsed;
    ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone) << i;
    EXPECT_EQ(MemcachedCommand(&parsed).key(), "key-" + std::to_string(i));
  }
  EXPECT_TRUE(input.empty());
}

// --------------------------------------------------------------------- HTTP ----

class HttpTest : public ::testing::Test {
 protected:
  BufferPool pool_{256, 256};
};

TEST_F(HttpTest, ParsesSimpleRequest) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.method, "GET");
  EXPECT_EQ(msg.target, "/index.html");
  EXPECT_EQ(msg.version, "HTTP/1.1");
  EXPECT_EQ(msg.Header("Host"), "example.com");
  EXPECT_TRUE(msg.keep_alive);
  EXPECT_EQ(msg.content_length, 0u);
}

TEST_F(HttpTest, ParsesRequestWithBody) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("POST /submit HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.method, "POST");
  EXPECT_EQ(msg.body, "hello world");
}

TEST_F(HttpTest, ParsesResponse) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc"));
  HttpParser parser(HttpParser::Mode::kResponse);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_FALSE(msg.is_request);
  EXPECT_EQ(msg.status_code, 200);
  EXPECT_EQ(msg.body, "abc");
}

TEST_F(HttpTest, ConnectionCloseDisablesKeepAlive) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_FALSE(msg.keep_alive);
}

TEST_F(HttpTest, Http10DefaultsToClose) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET / HTTP/1.0\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_FALSE(msg.keep_alive);
}

TEST_F(HttpTest, HeaderLookupIsCaseInsensitive) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET / HTTP/1.1\r\ncOnTeNt-TyPe: text/html\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.Header("content-type"), "text/html");
}

TEST_F(HttpTest, BareLfLineEndingsAccepted) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET / HTTP/1.1\nHost: x\n\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.Header("Host"), "x");
}

TEST_F(HttpTest, MalformedStartLineIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("NONSENSE\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(HttpTest, HeaderWithoutColonIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET / HTTP/1.1\r\nBadHeader\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

// --- strict numeric fields -----------------------------------------------
// atoi/strtoull used to coerce garbage into 0 (a phantom zero-length body
// desyncing the stream) or wrap overflow into a bogus size_t the framing
// loop then waited on forever — on a pooled wire that stalled every lease.
// Malformed values must be parse ERRORS so the pool drops the wire instead.

TEST_F(HttpTest, NonNumericStatusCodeIsError) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("HTTP/1.1 2x0 OK\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kResponse);
  HttpMessage msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(HttpTest, StatusCodeMustBeThreeDigits) {
  for (const char* code : {"20", "2000", "099", "", "-20"}) {
    BufferChain input(&pool_);
    ASSERT_TRUE(input.Append(std::string("HTTP/1.1 ") + code + " OK\r\n\r\n"));
    HttpParser parser(HttpParser::Mode::kResponse);
    HttpMessage msg;
    EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError) << code;
  }
}

TEST_F(HttpTest, NonNumericContentLengthIsError) {
  // (A whitespace-only value trims to empty and means "no header".)
  for (const char* cl : {"abc", "12abc", "-1", "+5", "1e3"}) {
    BufferChain input(&pool_);
    ASSERT_TRUE(input.Append(std::string("HTTP/1.1 200 OK\r\nContent-Length: ") +
                             cl + "\r\n\r\n"));
    HttpParser parser(HttpParser::Mode::kResponse);
    HttpMessage msg;
    EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError) << cl;
  }
}

TEST_F(HttpTest, OverflowingContentLengthIsError) {
  // 2^64 and beyond: strtoull wrapped these into a bogus size_t; they must
  // be rejected outright, before any narrowing.
  for (const char* cl : {"18446744073709551616", "99999999999999999999999999"}) {
    BufferChain input(&pool_);
    ASSERT_TRUE(input.Append(std::string("GET / HTTP/1.1\r\nContent-Length: ") +
                             cl + "\r\n\r\n"));
    HttpParser parser(HttpParser::Mode::kRequest);
    HttpMessage msg;
    EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError) << cl;
  }
}

TEST_F(HttpTest, ContentLengthAboveBodyCapIsError) {
  BufferChain input(&pool_);
  HttpParser parser(HttpParser::Mode::kResponse);
  parser.set_max_body_bytes(1024);
  ASSERT_TRUE(input.Append("HTTP/1.1 200 OK\r\nContent-Length: 2048\r\n\r\n"));
  HttpMessage msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(HttpTest, ValidContentLengthStillFramesBody) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("HTTP/1.1 404 Not Found\r\nContent-Length: 4\r\n\r\ngone"));
  HttpParser parser(HttpParser::Mode::kResponse);
  HttpMessage msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  EXPECT_EQ(msg.status_code, 404);
  EXPECT_EQ(msg.body, "gone");
}

TEST_F(HttpTest, OversizeHeadersRejected) {
  BufferChain input(&pool_);
  HttpParser parser(HttpParser::Mode::kRequest);
  parser.set_max_header_bytes(64);
  ASSERT_TRUE(input.Append("GET / HTTP/1.1\r\nX: " + std::string(200, 'a') + "\r\n\r\n"));
  HttpMessage msg;
  EXPECT_EQ(parser.Feed(input, &msg), ParseStatus::kError);
}

TEST_F(HttpTest, PipelinedRequests) {
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage m1, m2;
  ASSERT_EQ(parser.Feed(input, &m1), ParseStatus::kDone);
  ASSERT_EQ(parser.Feed(input, &m2), ParseStatus::kDone);
  EXPECT_EQ(m1.target, "/a");
  EXPECT_EQ(m2.target, "/b");
}

TEST_F(HttpTest, SerializeRequestRoundTrip) {
  HttpMessage msg = MakeRequest("POST", "/path", "body-data");
  msg.SetHeader("Host", "unit.test");
  std::string wire;
  SerializeRequest(msg, &wire);

  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage parsed;
  ASSERT_EQ(parser.Feed(input, &parsed), ParseStatus::kDone);
  EXPECT_EQ(parsed.method, "POST");
  EXPECT_EQ(parsed.target, "/path");
  EXPECT_EQ(parsed.Header("Host"), "unit.test");
  EXPECT_EQ(parsed.body, "body-data");
}

TEST_F(HttpTest, SerializeFixesContentLength) {
  HttpMessage msg = MakeResponse(200, "12345");
  msg.SetHeader("Content-Length", "999");  // stale; serializer must rewrite
  std::string wire;
  SerializeResponse(msg, &wire);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

// Property: every split point of a request with body parses identically.
class HttpFragmentationTest : public HttpTest,
                              public ::testing::WithParamInterface<size_t> {};

TEST_P(HttpFragmentationTest, SplitAtEveryOffset) {
  const std::string wire =
      "POST /frag HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\n0123456789";
  const size_t split = GetParam() % (wire.size() + 1);
  BufferChain input(&pool_);
  HttpParser parser(HttpParser::Mode::kRequest);
  HttpMessage msg;
  ASSERT_TRUE(input.Append(wire.substr(0, split)));
  ParseStatus s = parser.Feed(input, &msg);
  if (split < wire.size()) {
    ASSERT_EQ(s, ParseStatus::kNeedMore) << "split=" << split;
    ASSERT_TRUE(input.Append(wire.substr(split)));
    s = parser.Feed(input, &msg);
  }
  ASSERT_EQ(s, ParseStatus::kDone) << "split=" << split;
  EXPECT_EQ(msg.target, "/frag");
  EXPECT_EQ(msg.body, "0123456789");
}

INSTANTIATE_TEST_SUITE_P(AllSplits, HttpFragmentationTest,
                         ::testing::Range<size_t>(0, 64));

// ------------------------------------------------------------------- Hadoop ----

class HadoopTest : public ::testing::Test {
 protected:
  BufferPool pool_{256, 256};
};

TEST_F(HadoopTest, EncodeParseRoundTrip) {
  std::string wire;
  EncodeKv("word", "12", &wire);
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&HadoopKvUnit());
  Message msg;
  ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone);
  HadoopKv kv(&msg);
  EXPECT_EQ(kv.key(), "word");
  EXPECT_EQ(kv.value(), "12");
}

TEST_F(HadoopTest, StreamOfPairs) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    EncodeKv("w" + std::to_string(i), std::to_string(i), &wire);
  }
  BufferChain input(&pool_);
  ASSERT_TRUE(input.Append(wire));
  UnitParser parser(&HadoopKvUnit());
  for (int i = 0; i < 50; ++i) {
    Message msg;
    ASSERT_EQ(parser.Feed(input, &msg), ParseStatus::kDone) << i;
    EXPECT_EQ(HadoopKv(&msg).key(), "w" + std::to_string(i));
  }
}

TEST_F(HadoopTest, CombineCountsAdds) {
  EXPECT_EQ(CombineCounts("1", "2"), "3");
  EXPECT_EQ(CombineCounts("999", "1"), "1000");
  EXPECT_EQ(CombineCounts("0", "0"), "0");
  EXPECT_EQ(CombineCounts("123456789", "987654321"), "1111111110");
}

TEST_F(HadoopTest, BuildKvSerializes) {
  Message msg;
  BuildKv(&msg, "the", "42");
  BufferChain out(&pool_);
  UnitSerializer serializer(&HadoopKvUnit());
  ASSERT_TRUE(serializer.Serialize(msg, out).ok());
  std::string expect;
  EncodeKv("the", "42", &expect);
  EXPECT_EQ(out.ToString(), expect);
}

}  // namespace
}  // namespace flick::proto
