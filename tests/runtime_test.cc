// Runtime tests: message pool, scheduler (policies, affinity, stealing,
// notify-while-running), channels (notification + backpressure), IO poller,
// IO tasks, compute/merge tasks, graph pool, state store, and a platform-level
// end-to-end echo service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/sim_transport.h"
#include "runtime/channel.h"
#include "runtime/compute_task.h"
#include "runtime/io_poller.h"
#include "runtime/io_tasks.h"
#include "runtime/msg.h"
#include "runtime/platform.h"
#include "runtime/scheduler.h"
#include "runtime/state_store.h"
#include "runtime/task_graph.h"
#include "services/static_http.h"

namespace flick::runtime {
namespace {

using namespace std::chrono_literals;

// Spin-waits (bounded) until `cond` holds.
template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(100us);
  }
  return cond();
}

// ----------------------------------------------------------------- MsgPool ----

TEST(MsgPoolTest, AcquireReleasesBackToPool) {
  MsgPool pool(2);
  {
    MsgRef a = pool.Acquire();
    MsgRef b = pool.Acquire();
    EXPECT_TRUE(a && b);
    EXPECT_EQ(pool.overflow_count(), 0u);
  }
  MsgRef c = pool.Acquire();
  EXPECT_TRUE(c);
  EXPECT_EQ(pool.overflow_count(), 0u);
}

TEST(MsgPoolTest, OverflowFallsBackToHeap) {
  MsgPool pool(1);
  MsgRef a = pool.Acquire();
  MsgRef b = pool.Acquire();  // pool dry
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.overflow_count(), 1u);
}

TEST(MsgPoolTest, AcquiredMsgIsClean) {
  MsgPool pool(1);
  {
    MsgRef a = pool.Acquire();
    a->kind = Msg::Kind::kEof;
    a->bytes = "junk";
    a->route = 3;
  }
  MsgRef b = pool.Acquire();
  EXPECT_EQ(b->kind, Msg::Kind::kBytes);
  EXPECT_TRUE(b->bytes.empty());
  EXPECT_EQ(b->route, -1);
}

// ------------------------------------------------------------- TaskContext ----

TEST(TaskContextTest, CooperativeYieldsAfterTimeslice) {
  TaskContext ctx(SchedulingPolicy::kCooperative, 1'000'000 /*1ms*/, 0);
  ctx.BeginSlice();
  EXPECT_FALSE(ctx.ShouldYield());
  std::this_thread::sleep_for(2ms);
  // The clock is only consulted every few calls (amortisation); within one
  // stride of calls the expired timeslice must be noticed.
  bool yielded = false;
  for (int i = 0; i < 16 && !yielded; ++i) {
    yielded = ctx.ShouldYield();
  }
  EXPECT_TRUE(yielded);
}

TEST(TaskContextTest, NonCooperativeNeverYields) {
  TaskContext ctx(SchedulingPolicy::kNonCooperative, 1, 0);
  ctx.BeginSlice();
  std::this_thread::sleep_for(1ms);
  ctx.ItemDone();
  EXPECT_FALSE(ctx.ShouldYield());
}

TEST(TaskContextTest, RoundRobinYieldsPerItem) {
  TaskContext ctx(SchedulingPolicy::kRoundRobin, 1'000'000'000, 0);
  ctx.BeginSlice();
  EXPECT_FALSE(ctx.ShouldYield());
  ctx.ItemDone();
  EXPECT_TRUE(ctx.ShouldYield());
}

// --------------------------------------------------------------- Scheduler ----

class CountingTask : public Task {
 public:
  explicit CountingTask(int work_items = 1)
      : Task("counting"), remaining_(work_items) {}

  TaskRunResult Run(TaskContext& ctx) override {
    runs.fetch_add(1);
    int left = remaining_.load();
    while (left > 0) {
      left = remaining_.fetch_sub(1) - 1;
      items.fetch_add(1);
      ctx.ItemDone();
      if (left > 0 && ctx.ShouldYield()) {
        return TaskRunResult::kMoreWork;
      }
    }
    return TaskRunResult::kIdle;
  }

  std::atomic<int> remaining_;
  std::atomic<int> runs{0};
  std::atomic<int> items{0};
};

TEST(SchedulerTest, RunsNotifiedTask) {
  Scheduler sched(SchedulerConfig{.num_workers = 2});
  sched.Start();
  CountingTask task(5);
  sched.NotifyRunnable(&task);
  EXPECT_TRUE(WaitFor([&] { return task.items.load() == 5; }));
  sched.Quiesce(&task);
  sched.Stop();
}

TEST(SchedulerTest, DuplicateNotifyCoalesces) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  CountingTask task(1);
  // Before Start the task stays queued; multiple notifies must enqueue once.
  sched.NotifyRunnable(&task);
  sched.NotifyRunnable(&task);
  sched.NotifyRunnable(&task);
  sched.Start();
  EXPECT_TRUE(WaitFor([&] { return task.items.load() == 1; }));
  sched.Quiesce(&task);
  // With coalescing, the task ran at most twice (once + possible requeue).
  EXPECT_LE(task.runs.load(), 2);
  sched.Stop();
}

TEST(SchedulerTest, RoundRobinRequeuesPerItem) {
  Scheduler sched(SchedulerConfig{.num_workers = 1,
                                  .policy = SchedulingPolicy::kRoundRobin});
  sched.Start();
  CountingTask task(10);
  sched.NotifyRunnable(&task);
  EXPECT_TRUE(WaitFor([&] { return task.items.load() == 10; }));
  sched.Quiesce(&task);
  EXPECT_GE(task.runs.load(), 10) << "round robin must yield after every item";
  sched.Stop();
}

TEST(SchedulerTest, NonCooperativeRunsToCompletion) {
  Scheduler sched(SchedulerConfig{.num_workers = 1,
                                  .policy = SchedulingPolicy::kNonCooperative});
  sched.Start();
  CountingTask task(1000);
  sched.NotifyRunnable(&task);
  EXPECT_TRUE(WaitFor([&] { return task.items.load() == 1000; }));
  sched.Quiesce(&task);
  EXPECT_EQ(task.runs.load(), 1);
  sched.Stop();
}

TEST(SchedulerTest, ManyTasksAllComplete) {
  Scheduler sched(SchedulerConfig{.num_workers = 4});
  sched.Start();
  std::vector<std::unique_ptr<CountingTask>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back(std::make_unique<CountingTask>(20));
  }
  for (auto& t : tasks) {
    sched.NotifyRunnable(t.get());
  }
  EXPECT_TRUE(WaitFor([&] {
    for (auto& t : tasks) {
      if (t->items.load() != 20) {
        return false;
      }
    }
    return true;
  }));
  for (auto& t : tasks) {
    sched.Quiesce(t.get());
  }
  sched.Stop();
  EXPECT_EQ(sched.stats().tasks_run > 0, true);
}

TEST(SchedulerTest, WorkStealingBalances) {
  // One worker's home queue gets all tasks (forced by single notify burst);
  // with 4 workers the steal counter should move.
  Scheduler sched(SchedulerConfig{.num_workers = 4});
  sched.Start();
  std::vector<std::unique_ptr<CountingTask>> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.push_back(std::make_unique<CountingTask>(50));
    sched.NotifyRunnable(tasks.back().get());
  }
  EXPECT_TRUE(WaitFor([&] {
    for (auto& t : tasks) {
      if (t->items.load() != 50) {
        return false;
      }
    }
    return true;
  }, 5000ms));
  for (auto& t : tasks) {
    sched.Quiesce(t.get());
  }
  EXPECT_GT(sched.stats().steals, 0u);
  sched.Stop();
}

// Notify while running must requeue, not get lost.
class SelfCheckTask : public Task {
 public:
  SelfCheckTask() : Task("selfcheck") {}
  TaskRunResult Run(TaskContext&) override {
    runs.fetch_add(1);
    if (runs.load() == 1) {
      // Simulate a notification racing with the run.
      busy.store(true);
      while (!notified.load()) {
        std::this_thread::yield();
      }
    }
    return TaskRunResult::kIdle;
  }
  std::atomic<int> runs{0};
  std::atomic<bool> busy{false};
  std::atomic<bool> notified{false};
};

TEST(SchedulerTest, NotifyWhileRunningRequeues) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  SelfCheckTask task;
  sched.NotifyRunnable(&task);
  ASSERT_TRUE(WaitFor([&] { return task.busy.load(); }));
  sched.NotifyRunnable(&task);  // lands in kRunning state
  task.notified.store(true);
  EXPECT_TRUE(WaitFor([&] { return task.runs.load() >= 2; }));
  sched.Quiesce(&task);
  sched.Stop();
}

// ----------------------------------------------------------------- Channel ----

TEST(ChannelTest, PushNotifiesConsumer) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  MsgPool msgs(8);
  Channel ch(8);
  CountingTask consumer(1);
  ch.BindConsumer(&consumer, &sched);
  MsgRef m = msgs.Acquire();
  EXPECT_TRUE(ch.TryPush(std::move(m)));
  EXPECT_TRUE(WaitFor([&] { return consumer.runs.load() >= 1; }));
  sched.Quiesce(&consumer);
  sched.Stop();
  // Drain so MsgPool's destructor sees all messages returned.
  while (ch.TryPop()) {
  }
}

TEST(ChannelTest, FailedPushKeepsMessage) {
  MsgPool msgs(8);
  Channel ch(1);
  MsgRef a = msgs.Acquire();
  MsgRef b = msgs.Acquire();
  b->bytes = "keep-me";
  ASSERT_TRUE(ch.TryPush(std::move(a)));
  // Fill remaining capacity.
  while (ch.SizeApprox() < ch.capacity()) {
    MsgRef filler = msgs.Acquire();
    if (!ch.TryPush(std::move(filler))) {
      break;
    }
  }
  const bool pushed = ch.TryPush(std::move(b));
  if (!pushed) {
    ASSERT_TRUE(b) << "failed push must not consume the message";
    EXPECT_EQ(b->bytes, "keep-me");
  }
  while (ch.TryPop()) {
  }
}

TEST(ChannelTest, BackpressureWakesProducer) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  MsgPool msgs(16);
  Channel ch(2);
  CountingTask producer(1);  // stands in for the blocked upstream
  ch.BindProducer(&producer);
  ch.BindConsumer(nullptr, &sched);

  // Fill the channel, then fail a push to register the producer as blocked.
  while (true) {
    MsgRef m = msgs.Acquire();
    if (!ch.TryPush(std::move(m))) {
      break;
    }
  }
  const int runs_before = producer.runs.load();
  MsgRef popped = ch.TryPop();  // must wake the producer
  EXPECT_TRUE(popped);
  EXPECT_TRUE(WaitFor([&] { return producer.runs.load() > runs_before; }));
  sched.Quiesce(&producer);
  sched.Stop();
  while (ch.TryPop()) {
  }
}

// ---------------------------------------------------------------- IoPoller ----

TEST(IoPollerTest, AcceptCallbackRuns) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  IoPoller poller(&sched, 1000);
  poller.Start();

  auto listener = transport.Listen(9000);
  ASSERT_TRUE(listener.ok());
  std::atomic<int> accepted{0};
  poller.AddListener(listener->get(), [&](std::unique_ptr<Connection> conn) {
    accepted.fetch_add(1);
    conn->Close();
  });

  auto c1 = transport.Connect(9000);
  auto c2 = transport.Connect(9000);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_TRUE(WaitFor([&] { return accepted.load() == 2; }));
  poller.Stop();
  sched.Stop();
}

TEST(IoPollerTest, ReadReadyNotifiesIdleTask) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  IoPoller poller(&sched, 1000);
  poller.Start();

  auto listener = transport.Listen(9001);
  auto client = transport.Connect(9001);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  CountingTask task(1);
  task.remaining_.store(0);  // run() completes instantly; we count runs
  poller.WatchConnection(server.get(), &task);
  const int runs_before = task.runs.load();
  ASSERT_TRUE((*client)->Write("x", 1).ok());
  EXPECT_TRUE(WaitFor([&] { return task.runs.load() > runs_before; }));
  poller.UnwatchConnection(server.get());
  poller.Stop();
  sched.Stop();
}

TEST(IoPollerTest, PeriodicTimerRemovedWhenDone) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  IoPoller poller(&sched, 1000);
  poller.Start();
  std::atomic<int> calls{0};
  poller.wheel().AddPeriodic(1'000'000, [&] {
    calls.fetch_add(1);
    return calls.load() >= 3;  // done on third firing
  });
  EXPECT_TRUE(WaitFor([&] { return calls.load() >= 3; }));
  std::this_thread::sleep_for(10ms);
  const int after = calls.load();
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(calls.load(), after) << "periodic must not fire after completing";
  poller.Stop();
}

// ------------------------------------------------------------- ComputeTask ----

TEST(ComputeTaskTest, RoutesByHandlerDecision) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  MsgPool msgs(32);
  Channel in(8), out0(8), out1(8);

  ComputeTask task(
      "router",
      [](Msg& msg, size_t, EmitContext& emit) {
        const size_t target = msg.bytes == "left" ? 0 : 1;
        MsgRef copy = emit.NewMsg();
        copy->kind = Msg::Kind::kBytes;
        copy->bytes = msg.bytes;
        if (!emit.Emit(target, std::move(copy))) {
          return HandleResult::kBlocked;
        }
        return HandleResult::kConsumed;
      },
      &msgs);
  task.AddInput(&in, &sched);
  task.AddOutput(&out0);
  task.AddOutput(&out1);

  MsgRef a = msgs.Acquire();
  a->bytes = "left";
  MsgRef b = msgs.Acquire();
  b->bytes = "right";
  ASSERT_TRUE(in.TryPush(std::move(a)));
  ASSERT_TRUE(in.TryPush(std::move(b)));

  EXPECT_TRUE(WaitFor([&] { return task.messages_handled() == 2; }));
  sched.Quiesce(&task);
  MsgRef r0 = out0.TryPop();
  MsgRef r1 = out1.TryPop();
  ASSERT_TRUE(r0 && r1);
  EXPECT_EQ(r0->bytes, "left");
  EXPECT_EQ(r1->bytes, "right");
  sched.Stop();
}

TEST(ComputeTaskTest, BlockedHandlerRetriesSameMessage) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  MsgPool msgs(64);
  Channel in(16), out(1);  // tiny output to force blocking

  ComputeTask task(
      "fwd",
      [](Msg& msg, size_t, EmitContext& emit) {
        MsgRef copy = emit.NewMsg();
        copy->kind = Msg::Kind::kBytes;
        copy->bytes = msg.bytes;
        return emit.Emit(0, std::move(copy)) ? HandleResult::kConsumed
                                             : HandleResult::kBlocked;
      },
      &msgs);
  task.AddInput(&in, &sched);
  task.AddOutput(&out);
  out.BindConsumer(nullptr, &sched);  // no consumer task, but producer wakeups work

  constexpr int kCount = 10;
  for (int i = 0; i < kCount; ++i) {
    MsgRef m = msgs.Acquire();
    m->bytes = "m" + std::to_string(i);
    ASSERT_TRUE(in.TryPush(std::move(m)));
  }
  // Slowly drain the output; every message must arrive exactly once, in order.
  std::vector<std::string> got;
  while (static_cast<int>(got.size()) < kCount) {
    MsgRef m = out.TryPop();
    if (m) {
      got.push_back(m->bytes);
    } else {
      std::this_thread::sleep_for(200us);
    }
  }
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], "m" + std::to_string(i));
  }
  sched.Quiesce(&task);
  sched.Stop();
}

// --------------------------------------------------------------- MergeTask ----

MsgRef MakeKvMsg(MsgPool& pool, const std::string& key, const std::string& value) {
  MsgRef m = pool.Acquire();
  m->kind = Msg::Kind::kBytes;
  m->bytes = key + "=" + value;
  return m;
}

std::pair<std::string, std::string> SplitKv(const Msg& m) {
  const size_t eq = m.bytes.find('=');
  return {m.bytes.substr(0, eq), m.bytes.substr(eq + 1)};
}

TEST(MergeTaskTest, MergesOrderedStreamsCombiningEqualKeys) {
  Scheduler sched(SchedulerConfig{.num_workers = 1});
  sched.Start();
  MsgPool msgs(64);
  Channel left(16), right(16), out(16);

  MergeTask task(
      "merge",
      [](const Msg& a, const Msg& b) {
        return SplitKv(a).first.compare(SplitKv(b).first);
      },
      [](Msg& into, const Msg& from) {
        auto [k, v1] = SplitKv(into);
        auto [k2, v2] = SplitKv(from);
        into.bytes = k + "=" + std::to_string(std::stoi(v1) + std::stoi(v2));
      });
  task.BindInputs(&left, &right, &sched);
  task.BindOutput(&out);

  // Left: a=1, c=3. Right: a=2, b=5. Expect a=3, b=5, c=3 in key order.
  ASSERT_TRUE(left.TryPush(MakeKvMsg(msgs, "a", "1")));
  ASSERT_TRUE(left.TryPush(MakeKvMsg(msgs, "c", "3")));
  ASSERT_TRUE(right.TryPush(MakeKvMsg(msgs, "a", "2")));
  ASSERT_TRUE(right.TryPush(MakeKvMsg(msgs, "b", "5")));
  MsgRef eof_l(new Msg(), nullptr);
  eof_l->kind = Msg::Kind::kEof;
  MsgRef eof_r(new Msg(), nullptr);
  eof_r->kind = Msg::Kind::kEof;
  ASSERT_TRUE(left.TryPush(std::move(eof_l)));
  ASSERT_TRUE(right.TryPush(std::move(eof_r)));

  std::vector<std::string> results;
  EXPECT_TRUE(WaitFor([&] {
    while (MsgRef m = out.TryPop()) {
      if (m->kind == Msg::Kind::kEof) {
        return true;
      }
      results.push_back(m->bytes);
    }
    return false;
  }));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], "a=3");
  EXPECT_EQ(results[1], "b=5");
  EXPECT_EQ(results[2], "c=3");
  sched.Quiesce(&task);
  sched.Stop();
}

// --------------------------------------------------------------- GraphPool ----

TEST(GraphPoolTest, PreallocatesAndReuses) {
  int built = 0;
  GraphPool pool(
      [&] {
        built++;
        return std::make_unique<TaskGraph>("g");
      },
      /*preallocate=*/2);
  EXPECT_EQ(built, 2);
  EXPECT_EQ(pool.available(), 2u);

  TaskGraph* a = pool.Acquire();
  TaskGraph* b = pool.Acquire();
  EXPECT_EQ(pool.available(), 0u);
  TaskGraph* c = pool.Acquire();  // forces a build
  EXPECT_EQ(built, 3);
  pool.Release(a);
  pool.Release(b);
  pool.Release(c);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.Acquire(), a) << "pool must hand back pooled graphs FIFO";
  pool.Release(a);
}

// -------------------------------------------------------------- StateStore ----

TEST(StateStoreTest, PutGetErase) {
  StateStore store;
  EXPECT_FALSE(store.Get("cache", "k").has_value());
  store.Put("cache", "k", "v1");
  EXPECT_EQ(store.Get("cache", "k").value(), "v1");
  store.Put("cache", "k", "v2");
  EXPECT_EQ(store.Get("cache", "k").value(), "v2");
  EXPECT_TRUE(store.Erase("cache", "k"));
  EXPECT_FALSE(store.Get("cache", "k").has_value());
  EXPECT_FALSE(store.Erase("cache", "k"));
}

TEST(StateStoreTest, DictsAreIndependent) {
  StateStore store;
  store.Put("a", "k", "1");
  store.Put("b", "k", "2");
  EXPECT_EQ(store.Get("a", "k").value(), "1");
  EXPECT_EQ(store.Get("b", "k").value(), "2");
}

TEST(StateStoreTest, BoundedEviction) {
  StateStore store(/*max_entries_per_dict=*/64);
  for (int i = 0; i < 10000; ++i) {
    store.Put("d", "key" + std::to_string(i), "v");
  }
  EXPECT_LE(store.Size("d"), 64u + 16u) << "per-dict size must stay bounded";
}

TEST(StateStoreTest, ConcurrentAccessIsSafe) {
  StateStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "k" + std::to_string(i % 50);
        store.Put("shared", key, std::to_string(t));
        (void)store.Get("shared", key);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_LE(store.Size("shared"), 50u);
}

// ------------------------------------------------------------ vectored fill ----

TEST(AdaptiveFillWindowTest, DoublesOnFullHalvesOnShort) {
  AdaptiveFillWindow w;
  EXPECT_EQ(w.next(), 1u);
  w.OnFullFill();
  EXPECT_EQ(w.next(), 2u);
  w.OnFullFill();
  w.OnFullFill();
  EXPECT_EQ(w.next(), 8u);
  w.OnFullFill();
  EXPECT_EQ(w.next(), 8u) << "capped at kDefaultFillWindow";
  w.OnShortFill();
  EXPECT_EQ(w.next(), 4u);
  w.OnShortFill();
  w.OnShortFill();
  w.OnShortFill();
  EXPECT_EQ(w.next(), 1u) << "floor is one buffer";

  w.ClampTo(3);  // pool pressure while at 1: no-op upward
  EXPECT_EQ(w.next(), 1u);
  w.OnFullFill();
  w.OnFullFill();
  w.ClampTo(3);  // pool could only reserve 3 of 4
  EXPECT_EQ(w.next(), 3u);

  AdaptiveFillWindow capped(2);
  capped.OnFullFill();
  capped.OnFullFill();
  EXPECT_EQ(capped.next(), 2u) << "configured cap respected";
  AdaptiveFillWindow legacy(1);
  legacy.OnFullFill();
  EXPECT_EQ(legacy.next(), 1u) << "window 1 = legacy one-buffer reads";
}

class WireFillTest : public ::testing::Test {
 protected:
  // Streams `data` into the sink ring; Null-cost stack on both ends unless a
  // capped listener injected otherwise.
  static void Pump(Connection& conn, std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      auto wrote = conn.Write(data.data() + off, data.size() - off);
      ASSERT_TRUE(wrote.ok());
      off += *wrote;
    }
  }

  SimNetwork net_;
  SimTransport transport_{&net_, StackCostModel::Null()};
};

TEST_F(WireFillTest, FillGrowsWindowUnderBacklogAndProvesDrain) {
  auto listener = transport_.Listen(7100);
  auto client = transport_.Connect(7100);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  BufferPool pool(16, 1024);
  BufferChain rx(&pool);
  AdaptiveFillWindow window;
  ReadBatchCounters counters;

  // 8 KiB backlog against 1 KiB buffers: fills of 1+2+4 KiB are full (the
  // window is the limit), growing it 1 -> 2 -> 4 -> 8; the 1 KiB remainder is
  // a short fill that proves the drain and halves the window.
  Pump(**client, std::string(8192, 'x'));
  size_t bytes = 0;
  EXPECT_EQ(FillChainVectored(rx, *server, window, counters, &bytes),
            FillOutcome::kMore);
  EXPECT_EQ(bytes, 1024u);
  EXPECT_EQ(window.next(), 2u);
  rx.Consume(rx.readable());
  EXPECT_EQ(FillChainVectored(rx, *server, window, counters, &bytes),
            FillOutcome::kMore);
  EXPECT_EQ(bytes, 2048u);
  EXPECT_EQ(window.next(), 4u);
  rx.Consume(rx.readable());
  EXPECT_EQ(FillChainVectored(rx, *server, window, counters, &bytes),
            FillOutcome::kMore);
  EXPECT_EQ(bytes, 4096u);
  EXPECT_EQ(window.next(), 8u);
  rx.Consume(rx.readable());
  EXPECT_EQ(FillChainVectored(rx, *server, window, counters, &bytes),
            FillOutcome::kDrained);
  EXPECT_EQ(bytes, 1024u);  // the tail: short fill, no probe needed
  EXPECT_EQ(window.next(), 4u);
  rx.Consume(rx.readable());

  EXPECT_EQ(counters.readv_calls.load(), 4u);
  EXPECT_EQ(counters.bytes_per_readv.load(), 4096u);
  EXPECT_EQ(counters.fills_short.load(), 1u);
  // Legacy: one read per 1 KiB buffer (8) + the avoided trailing probe (1).
  EXPECT_EQ(counters.reads_legacy_equivalent.load(), 9u);
  EXPECT_LT(counters.readv_calls.load(), counters.reads_legacy_equivalent.load());

  // Empty wire: a would-block fill is not a counted readv but shrinks the
  // window and consumes NO pool buffer (the reserve is cached).
  const uint64_t acquires = pool.stats().acquire_count;
  EXPECT_EQ(FillChainVectored(rx, *server, window, counters, &bytes),
            FillOutcome::kDrained);
  EXPECT_EQ(bytes, 0u);
  EXPECT_EQ(window.next(), 2u);
  EXPECT_EQ(counters.readv_calls.load(), 4u);
  EXPECT_EQ(pool.stats().acquire_count, acquires);
}

TEST_F(WireFillTest, ShortReadInjectionKeepsWindowAdapting) {
  // max_bytes_per_op = one buffer: every fill at window 1 comes back exactly
  // full (grow), every fill at window 2 comes back short (halve) — the
  // window must oscillate between 1 and 2 and never run away, and every
  // injected short read must be counted.
  StackCostModel capped = StackCostModel::Null();
  capped.max_bytes_per_op = 1024;
  SimTransport capped_t(&net_, capped);
  auto listener = capped_t.Listen(7101);
  auto client = transport_.Connect(7101);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  BufferPool pool(16, 1024);
  BufferChain rx(&pool);
  AdaptiveFillWindow window;
  ReadBatchCounters counters;

  Pump(**client, std::string(8192, 'y'));
  size_t max_window = 0;
  size_t total = 0;
  while (total < 8192) {
    size_t bytes = 0;
    const FillOutcome outcome =
        FillChainVectored(rx, *server, window, counters, &bytes);
    ASSERT_NE(outcome, FillOutcome::kError);
    ASSERT_NE(outcome, FillOutcome::kNoBuffers);
    total += bytes;
    max_window = window.next() > max_window ? window.next() : max_window;
    rx.Consume(rx.readable());
  }
  EXPECT_EQ(total, 8192u);
  EXPECT_LE(max_window, 2u) << "injected short reads must hold the window down";
  EXPECT_GT(counters.fills_short.load(), 0u);
  EXPECT_EQ(counters.readv_calls.load(), 8u);  // 8192 / 1024 per injected cap
}

TEST_F(WireFillTest, InputTaskVectoredFillAmortisesReads) {
  auto listener = transport_.Listen(7102);
  auto client = transport_.Connect(7102);
  auto server = (*listener)->Accept();
  ASSERT_NE(server, nullptr);

  BufferPool buffers(32, 1024);
  MsgPool msgs(64);
  Channel out(256);
  InputTask task("in", std::move(server), std::make_unique<RawDeserializer>(),
                 &out, &msgs, &buffers);
  TaskContext ctx(SchedulingPolicy::kNonCooperative, 1'000'000'000, 0);

  Pump(**client, std::string(8192, 'z'));
  ctx.BeginSlice();
  EXPECT_EQ(task.Run(ctx), TaskRunResult::kIdle);

  // All bytes arrived downstream...
  size_t received = 0;
  while (MsgRef msg = out.TryPop()) {
    received += msg->bytes.size();
  }
  EXPECT_EQ(received, 8192u);
  // ...through amortised fills: 4 vectored reads (1+2+4+1 KiB as the window
  // grew) where the per-buffer loop needed 8 reads + a trailing probe.
  EXPECT_EQ(task.readv_calls(), 4u);
  EXPECT_EQ(task.reads_legacy_equivalent(), 9u);
  EXPECT_EQ(task.fills_short(), 1u);
  EXPECT_GE(task.bytes_per_readv(), 4096u);
  EXPECT_EQ(task.messages_in(), 4u);  // one raw chunk per fill

  // Idle wakeup on a silent wire: one would-block fill, zero pool churn.
  const uint64_t acquires = buffers.stats().acquire_count;
  ctx.BeginSlice();
  EXPECT_EQ(task.Run(ctx), TaskRunResult::kIdle);
  EXPECT_EQ(task.readv_calls(), 4u);
  EXPECT_EQ(buffers.stats().acquire_count, acquires);

  // EOF still propagates through the vectored path.
  (*client)->Close();
  ctx.BeginSlice();
  EXPECT_EQ(task.Run(ctx), TaskRunResult::kIdle);
  EXPECT_TRUE(task.closed());
  MsgRef eof = out.TryPop();
  ASSERT_TRUE(eof);
  EXPECT_EQ(eof->kind, Msg::Kind::kEof);
}

// ------------------------------------------------- Platform e2e (echo svc) ----

// Minimal service: per-connection graph In(raw) -> Out(raw) echoing bytes.
class EchoService : public ServiceProgram {
 public:
  const char* name() const override { return "echo"; }

  void OnConnection(std::unique_ptr<Connection> conn, PlatformEnv& env) override {
    auto graph = std::make_unique<TaskGraph>("echo");
    Channel* ch = graph->AddChannel(64);
    Connection* raw = conn.get();
    auto* in = graph->AddTask<InputTask>("in", std::move(conn),
                                         std::make_unique<RawDeserializer>(), ch,
                                         env.msgs, env.buffers);
    // Echo writes back on the same connection: wrap it in a non-owning proxy.
    class NonOwning : public Connection {
     public:
      explicit NonOwning(Connection* c) : c_(c) {}
      Result<size_t> Read(void* b, size_t n) override { return c_->Read(b, n); }
      Result<size_t> Write(const void* b, size_t n) override { return c_->Write(b, n); }
      void Close() override { c_->Close(); }
      bool IsOpen() const override { return c_->IsOpen(); }
      bool ReadReady() const override { return c_->ReadReady(); }
      uint64_t id() const override { return c_->id(); }

     private:
      Connection* c_;
    };
    auto* out = graph->AddTask<OutputTask>("out", std::make_unique<NonOwning>(raw),
                                           std::make_unique<RawSerializer>(), ch,
                                           env.buffers);
    ch->BindConsumer(out, env.scheduler);
    env.poller->WatchConnection(raw, in);
    env.scheduler->NotifyRunnable(in);

    std::lock_guard<std::mutex> lock(mutex_);
    graphs_.push_back(std::move(graph));
    shards_seen_.push_back(env.io_shard);
  }

  // How many connections each IO shard accepted (index = shard).
  std::vector<size_t> ShardCounts(size_t shards) {
    std::vector<size_t> counts(shards, 0);
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t s : shards_seen_) {
      if (s < shards) {
        ++counts[s];
      }
    }
    return counts;
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<TaskGraph>> graphs_;
  std::vector<size_t> shards_seen_;
};

TEST(PlatformTest, EchoServiceEndToEnd) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  Platform platform(config, &transport);
  EchoService echo;
  ASSERT_TRUE(platform.RegisterProgram(9100, &echo).ok());
  platform.Start();

  auto client = transport.Connect(9100);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Write("hello flick", 11).ok());

  std::string response;
  char buf[64];
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*client)->Read(buf, sizeof(buf));
    if (got.ok() && *got > 0) {
      response.append(buf, *got);
    }
    return response.size() >= 11;
  }));
  EXPECT_EQ(response, "hello flick");
  platform.Stop();
}

TEST(PlatformTest, TwoProgramsShareThePlatform) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  Platform platform(config, &transport);
  EchoService echo_a, echo_b;
  ASSERT_TRUE(platform.RegisterProgram(9200, &echo_a).ok());
  ASSERT_TRUE(platform.RegisterProgram(9201, &echo_b).ok());
  platform.Start();

  auto ca = transport.Connect(9200);
  auto cb = transport.Connect(9201);
  ASSERT_TRUE(ca.ok() && cb.ok());
  ASSERT_TRUE((*ca)->Write("aaa", 3).ok());
  ASSERT_TRUE((*cb)->Write("bbb", 3).ok());

  auto read_all = [&](Connection* c, size_t want) {
    std::string out;
    char buf[16];
    WaitFor([&] {
      auto got = c->Read(buf, sizeof(buf));
      if (got.ok() && *got > 0) {
        out.append(buf, *got);
      }
      return out.size() >= want;
    });
    return out;
  };
  EXPECT_EQ(read_all(ca->get(), 3), "aaa");
  EXPECT_EQ(read_all(cb->get(), 3), "bbb");
  platform.Stop();
}

// Sharded IO plane: every shard must accept its share of the connections
// (sim accept groups place round-robin) and serve them end to end — each
// connection's graph is watched and driven entirely by its accepting shard.
TEST(PlatformTest, ShardedAcceptDistributesAndServesEndToEnd) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  config.io_shards = 2;
  Platform platform(config, &transport);
  EXPECT_EQ(platform.io_shards(), 2u);
  EchoService echo;
  ASSERT_TRUE(platform.RegisterProgram(9400, &echo).ok());
  platform.Start();

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<Connection>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto c = transport.Connect(9400);
    ASSERT_TRUE(c.ok()) << i;
    clients.push_back(std::move(c).value());
  }
  for (int i = 0; i < kClients; ++i) {
    const std::string payload = "msg-" + std::to_string(i);
    ASSERT_TRUE(clients[i]->Write(payload.data(), payload.size()).ok());
    std::string response;
    char buf[64];
    ASSERT_TRUE(WaitFor([&] {
      auto got = clients[i]->Read(buf, sizeof(buf));
      if (got.ok() && *got > 0) {
        response.append(buf, *got);
      }
      return response.size() >= payload.size();
    })) << i;
    EXPECT_EQ(response, payload);
  }

  const std::vector<size_t> counts = echo.ShardCounts(2);
  EXPECT_EQ(counts[0], 3u) << "round-robin accept placement";
  EXPECT_EQ(counts[1], 3u);
  platform.Stop();
}

// Per-shard envs view the same shared components but their own poller.
TEST(PlatformTest, ShardEnvsShareStateButOwnPoller) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.io_shards = 3;
  Platform platform(config, &transport);
  ASSERT_EQ(platform.io_shards(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    PlatformEnv& env = platform.env(s);
    EXPECT_EQ(env.io_shard, s);
    EXPECT_EQ(env.io_shard_count(), 3u);
    EXPECT_EQ(env.poller, &platform.poller(s));
    EXPECT_EQ(env.shard_poller(s), env.poller);
    EXPECT_EQ(env.scheduler, &platform.scheduler());
    EXPECT_EQ(env.state, &platform.state());
  }
  // Distinct pollers per shard.
  EXPECT_NE(&platform.poller(0), &platform.poller(1));
  EXPECT_NE(&platform.poller(1), &platform.poller(2));
}

// Share-nothing memory plane: each shard env hands out its own pool slice; a
// slice exhausted locally spills into the global pool (counted), releases
// route back to the pool that served the acquire, and a slice's burst never
// touches a sibling slice's free list.
TEST(PlatformTest, ShardPoolSlicesSpillIntoGlobalAndRouteReleases) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.io_shards = 2;
  config.io_buffer_count = 4;  // -> 2 buffers per slice
  config.io_buffer_size = 256;
  config.msg_pool_size = 2;  // -> 1 msg per slice
  Platform platform(config, &transport);

  BufferPool* slice0 = platform.env(0).buffers;
  BufferPool* slice1 = platform.env(1).buffers;
  EXPECT_NE(slice0, slice1);
  EXPECT_NE(slice0, &platform.buffers());
  EXPECT_EQ(slice0->spill(), &platform.buffers());
  EXPECT_EQ(platform.env(0).shard_buffers(1), slice1);  // cross-shard fetch

  // Exhaust slice 0: the third acquire is served by the global spill pool.
  BufferRef a = slice0->Acquire();
  BufferRef b = slice0->Acquire();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(slice0->stats().slice_spills, 0u);
  BufferRef c = slice0->Acquire();
  ASSERT_TRUE(c);
  EXPECT_EQ(slice0->stats().slice_spills, 1u);
  EXPECT_EQ(platform.buffers().stats().in_use, 1u);
  EXPECT_EQ(platform.pool_slice_spills(), 1u);
  EXPECT_EQ(slice1->stats().in_use, 0u);  // sibling slice untouched

  // Releases route by owner: the spilled buffer returns to the GLOBAL pool,
  // never the slice's free list.
  c.Release();
  EXPECT_EQ(platform.buffers().stats().in_use, 0u);
  EXPECT_EQ(slice0->stats().in_use, 2u);
  a.Release();
  b.Release();
  EXPECT_EQ(slice0->stats().in_use, 0u);

  // Msg plane: slice of 1, global of 2. The second/third acquires spill to
  // the global pool; the fourth finds the global dry too and falls back to a
  // counted heap allocation (on the global pool — slices never heap).
  MsgPool* msgs0 = platform.env(0).msgs;
  EXPECT_EQ(msgs0->spill(), &platform.msgs());
  MsgRef m1 = msgs0->Acquire();
  MsgRef m2 = msgs0->Acquire();
  MsgRef m3 = msgs0->Acquire();
  MsgRef m4 = msgs0->Acquire();
  ASSERT_TRUE(m1 && m2 && m3 && m4);
  EXPECT_EQ(msgs0->slice_spills(), 3u);
  EXPECT_EQ(msgs0->pool_misses(), 0u);
  EXPECT_EQ(platform.msg_pool_misses(), 1u);
  EXPECT_EQ(platform.pool_slice_spills(), 4u);  // 1 buffer + 3 msg
}

// io_shards == 1 keeps the single-pool shape: the env's pools ARE the global
// pools, no slices are built, and the spill counter reads zero.
TEST(PlatformTest, UnshardedPlatformBuildsNoSlices) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.io_shards = 1;
  Platform platform(config, &transport);
  EXPECT_EQ(platform.env(0).buffers, &platform.buffers());
  EXPECT_EQ(platform.env(0).msgs, &platform.msgs());
  EXPECT_EQ(platform.env(0).shard_buffer_pools, nullptr);
  EXPECT_EQ(platform.env(0).shard_msg_pools, nullptr);
  EXPECT_EQ(platform.buffers().spill(), nullptr);
  EXPECT_EQ(platform.pool_slice_spills(), 0u);
}

TEST(PlatformTest, RegisterOnBusyPortFails) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  Platform platform(PlatformConfig{}, &transport);
  EchoService a, b;
  EXPECT_TRUE(platform.RegisterProgram(9300, &a).ok());
  EXPECT_FALSE(platform.RegisterProgram(9300, &b).ok());
}

// --------------------------------------------- Connection lifetime plane ----

// Platform + static-http with aggressive lifetime windows: the timer wheel
// must expire idle keep-alive clients, bound slowloris half-requests, and the
// admission cap must shed accepts past it — all counted.
TEST(ConnLifetimeTest, IdleKeepAliveConnectionIsClosedAndCounted) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  config.idle_timeout_ns = 30'000'000;  // 30ms ≈ 28 wheel ticks
  Platform platform(config, &transport);
  services::StaticHttpService http("ok");
  ASSERT_TRUE(platform.RegisterProgram(9500, &http).ok());
  platform.Start();

  auto client = transport.Connect(9500);
  ASSERT_TRUE(client.ok());
  const std::string req = "GET / HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE((*client)->Write(req.data(), req.size()).ok());
  std::string response;
  char buf[256];
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*client)->Read(buf, sizeof(buf));
    if (got.ok() && *got > 0) {
      response.append(buf, *got);
    }
    return response.find("\r\n\r\nok") != std::string::npos;
  }));
  EXPECT_EQ(http.registry().stats().idle_closed, 0u) << "served, not yet idle";

  // Keep-alive client goes quiet: the idle deadline closes it server-side,
  // which the client observes as peer-closed on its next read.
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*client)->Read(buf, sizeof(buf));
    return !got.ok();
  }));
  ASSERT_TRUE(WaitFor([&] { return http.registry().stats().idle_closed >= 1; }));
  EXPECT_EQ(http.registry().stats().deadline_closed, 0u);
  platform.Stop();
}

TEST(ConnLifetimeTest, SlowlorisHalfRequestLineHitsHeaderDeadline) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  config.header_deadline_ns = 30'000'000;
  Platform platform(config, &transport);
  services::StaticHttpService http("ok");
  ASSERT_TRUE(platform.RegisterProgram(9501, &http).ok());
  platform.Start();

  // Half a request line, then silence: never parses to a message, so only
  // the progress (header) deadline can reap it.
  auto client = transport.Connect(9501);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Write("GET /i", 6).ok());
  char buf[64];
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*client)->Read(buf, sizeof(buf));
    return !got.ok();
  }));
  ASSERT_TRUE(
      WaitFor([&] { return http.registry().stats().deadline_closed >= 1; }));
  EXPECT_EQ(http.registry().stats().idle_closed, 0u);
  platform.Stop();
}

TEST(ConnLifetimeTest, SlowTrickleStillHitsProgressDeadline) {
  // Classic slowloris: one byte per ~10ms keeps the wire non-idle forever.
  // The progress deadline must NOT slide on wakeups without fresh bytes, but
  // byte arrivals do re-arm it — so a 30ms window with 10ms drips stays open
  // until the drip stops.
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  config.header_deadline_ns = 60'000'000;
  Platform platform(config, &transport);
  services::StaticHttpService http("ok");
  ASSERT_TRUE(platform.RegisterProgram(9502, &http).ok());
  platform.Start();

  auto client = transport.Connect(9502);
  ASSERT_TRUE(client.ok());
  const std::string_view partial = "GET /slow HTTP/1.1\r\nHost:";
  for (char c : partial) {
    if (!(*client)->Write(&c, 1).ok()) {
      break;  // already reaped: the drip outlived the deadline budget
    }
    std::this_thread::sleep_for(5ms);
  }
  char buf[64];
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*client)->Read(buf, sizeof(buf));
    return !got.ok();
  }));
  ASSERT_TRUE(
      WaitFor([&] { return http.registry().stats().deadline_closed >= 1; }));
  platform.Stop();
}

TEST(ConnLifetimeTest, AdmissionCapShedsExcessConnections) {
  SimNetwork net;
  SimTransport transport(&net, StackCostModel::Null());
  PlatformConfig config;
  config.scheduler.num_workers = 2;
  config.io_shards = 1;
  config.max_conns_per_shard = 2;
  Platform platform(config, &transport);
  services::StaticHttpService http("ok");
  ASSERT_TRUE(platform.RegisterProgram(9503, &http).ok());
  platform.Start();

  auto c1 = transport.Connect(9503);
  auto c2 = transport.Connect(9503);
  ASSERT_TRUE(c1.ok() && c2.ok());
  // Prove both admitted conns are live before pushing past the cap.
  const std::string req = "GET / HTTP/1.1\r\nHost: t\r\n\r\n";
  for (Connection* c : {c1->get(), c2->get()}) {
    ASSERT_TRUE(c->Write(req.data(), req.size()).ok());
    std::string response;
    char buf[256];
    ASSERT_TRUE(WaitFor([&] {
      auto got = c->Read(buf, sizeof(buf));
      if (got.ok() && *got > 0) {
        response.append(buf, *got);
      }
      return response.find("\r\n\r\nok") != std::string::npos;
    }));
  }

  // Third connection: accepted then shed (closed before any service graph).
  auto c3 = transport.Connect(9503);
  ASSERT_TRUE(c3.ok());
  char buf[64];
  ASSERT_TRUE(WaitFor([&] {
    auto got = (*c3)->Read(buf, sizeof(buf));
    return !got.ok();
  }));
  EXPECT_EQ(platform.poller(0).admission().shed(), 1u);
  EXPECT_EQ(platform.poller(0).admission().live(), 2u);
  EXPECT_EQ(http.registry().stats().admissions_shed, 1u);
  EXPECT_EQ(http.live_graphs(), 2u) << "shed conn never reached the service";
  platform.Stop();
}

}  // namespace
}  // namespace flick::runtime
