# Codegen compile smoke (ctest): emits the generated C++ for each built-in
# FLICK program and compiles it to an object file against the project
# headers. A failure means codegen_cpp no longer produces compilable output.
#
# Inputs: EMIT_TOOL (codegen_emit binary), CXX (compiler), SRC_DIR (project
# src/), WORK_DIR (scratch directory).
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(prog memcached resp)
  set(gen ${WORK_DIR}/flickgen_${prog}.cc)
  execute_process(COMMAND ${EMIT_TOOL} ${prog} ${gen} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "codegen_emit ${prog} failed (rc=${rc})")
  endif()
  execute_process(
    COMMAND ${CXX} -std=c++20 -Wall -Wextra -I ${SRC_DIR}
            -c ${gen} -o ${WORK_DIR}/flickgen_${prog}.o
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "generated ${prog} C++ does not compile:\n${out}\n${err}")
  endif()
  message(STATUS "generated ${prog} C++ compiles clean")
endforeach()
