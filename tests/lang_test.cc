// FLICK language tests: lexer, parser, semantic checks (boundedness,
// channel direction, anonymity), unit synthesis from type declarations, and
// interpreted execution of the paper's programs (Listings 1 & 3).
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "lang/compile.h"
#include "lang/lexer.h"
#include "lang/lower.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "services/dsl_service.h"
#include "proto/memcached.h"
#include "runtime/channel.h"
#include "runtime/compute_task.h"
#include "runtime/state_store.h"

namespace flick::lang {
namespace {

// The paper's Listing 1 (§4.1 variant): Memcached proxy.
constexpr const char* kProxySource = R"(
type cmd: record
    opcode : string {size=1}
    keylen : integer {signed=false, size=2}
    key : string {size=keylen}

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
    backends => client
    client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req:cmd) -> ()
    let target = hash(req.key) mod len(backends)
    req => backends[target]
)";

// The paper's Listing 1 (full §3 version): caching Memcached router.
constexpr const char* kRouterSource = R"(
type cmd: record
    opcode : string {size=1}
    keylen : integer {signed=false, size=2}
    extraslen : integer {signed=false, size=1}
    _ : string {size=3}
    bodylen : integer {signed=false, size=8}
    _ : string {size=12+extraslen}
    key : string {size=keylen}
    _ : string {size=bodylen-extraslen-keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
    global cache := empty_dict
    backends => update_cache(cache) => client
    client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*string>, resp: cmd) -> (cmd)
    if resp.opcode = 0x0c:
        cache[resp.key] := resp
    resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*string>, req: cmd) -> ()
    if cache[req.key] = None or req.opcode <> 0x0c:
        let target = hash(req.key) mod len(backends)
        req => backends[target]
    else:
        cache[req.key] => client
)";

// Listing 3 (normalised foldt syntax; see DESIGN.md).
constexpr const char* kHadoopSource = R"(
type kv: record
    key : string
    value : string

proc hadoop: ([kv/-] mappers, -/kv reducer)
    foldt on mappers ordering by key combine combine_kv => reducer

fun combine_kv: (e1: kv, e2: kv) -> (kv)
    kv(e1.key, add(e1.value, e2.value))
)";

// ------------------------------------------------------------------- lexer ----

TEST(LexerTest, TokenisesBasics) {
  auto tokens = Lex("let x = 42\n");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLet);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].text, "x");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[3].int_value, 42u);
}

TEST(LexerTest, HexLiterals) {
  auto tokens = Lex("0x0c\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 0x0cu);
}

TEST(LexerTest, IndentDedent) {
  auto tokens = Lex("a:\n    b\n    c\nd\n");
  ASSERT_TRUE(tokens.ok());
  int indents = 0, dedents = 0;
  for (const Token& t : *tokens) {
    indents += t.kind == TokenKind::kIndent;
    dedents += t.kind == TokenKind::kDedent;
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("=> := -> <> <= >=\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSend);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kAssign);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kNeq);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kGe);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("# full line\nlet x = 1 # trailing\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLet);
}

TEST(LexerTest, NewlinesInsideParensInsignificant) {
  auto tokens = Lex("fun f: (a: cmd,\n        b: cmd) -> ()\n    a\n");
  ASSERT_TRUE(tokens.ok());
  // Must not emit INDENT inside the parameter list.
  int idx = 0;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kIndent) {
      break;
    }
    ++idx;
  }
  EXPECT_GT(idx, 8);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("let s = \"oops\n").ok());
}

TEST(LexerTest, InconsistentIndentFails) {
  EXPECT_FALSE(Lex("a:\n        b\n    c\n").ok());
}

// ------------------------------------------------------------------ parser ----

TEST(ParserTest, ParsesProxyProgram) {
  auto program = Parse(kProxySource);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->types.size(), 1u);
  EXPECT_EQ(program->procs.size(), 1u);
  EXPECT_EQ(program->funs.size(), 1u);
  const TypeDecl* cmd = program->FindType("cmd");
  ASSERT_NE(cmd, nullptr);
  EXPECT_EQ(cmd->fields.size(), 3u);
  EXPECT_EQ(cmd->fields[1].name, "keylen");
}

TEST(ParserTest, ParsesRouterProgramWithAnonymousFields) {
  auto program = Parse(kRouterSource);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const TypeDecl* cmd = program->FindType("cmd");
  ASSERT_NE(cmd, nullptr);
  EXPECT_EQ(cmd->fields.size(), 8u);
  EXPECT_TRUE(cmd->fields[3].name.empty());
  const ProcDecl* proc = program->FindProc("memcached");
  ASSERT_NE(proc, nullptr);
  ASSERT_EQ(proc->params.size(), 2u);
  EXPECT_FALSE(proc->params[0].channel->is_array);
  EXPECT_TRUE(proc->params[1].channel->is_array);
  // Body: global + two pipeline rules.
  ASSERT_EQ(proc->body.size(), 3u);
  EXPECT_EQ(proc->body[0]->kind, StmtKind::kGlobal);
  EXPECT_EQ(proc->body[1]->kind, StmtKind::kSend);
  EXPECT_EQ(proc->body[2]->kind, StmtKind::kSend);
}

TEST(ParserTest, ParsesFoldt) {
  auto program = Parse(kHadoopSource);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const ProcDecl* proc = program->FindProc("hadoop");
  ASSERT_NE(proc, nullptr);
  ASSERT_EQ(proc->body.size(), 1u);
  const Stmt& foldt = *proc->body[0];
  EXPECT_EQ(foldt.kind, StmtKind::kFoldt);
  EXPECT_EQ(foldt.foldt_channels, "mappers");
  EXPECT_EQ(foldt.foldt_order_field, "key");
  EXPECT_EQ(foldt.foldt_combine_fun, "combine_kv");
}

TEST(ParserTest, ReadOnlyChannelParam) {
  auto program = Parse(
      "fun f: (-/cmd out, req: cmd) -> ()\n"
      "    req => out\n"
      "type cmd: record\n"
      "    key : string {size=2}\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->funs.size(), 1u);
  EXPECT_EQ(program->funs[0].params[0].channel->in_type, "-");
  EXPECT_EQ(program->funs[0].params[0].channel->out_type, "cmd");
}

TEST(ParserTest, MissingColonFails) {
  EXPECT_FALSE(Parse("proc P (a/b c)\n    a => c\n").ok());
}

TEST(ParserTest, SendPipelineChain) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "proc P: (t/t a, t/t b)\n"
      "    a => f(b) => b\n"
      "fun f: (-/t b, x: t) -> (t)\n"
      "    x\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Stmt& send = *program->FindProc("P")->body[0];
  ASSERT_EQ(send.send_stages.size(), 2u);
  EXPECT_EQ(send.send_stages[0]->kind, ExprKind::kCall);
  EXPECT_EQ(send.send_stages[1]->kind, ExprKind::kVar);
}

// -------------------------------------------------------------------- sema ----

TEST(SemaTest, AcceptsPaperPrograms) {
  for (const char* src : {kProxySource, kRouterSource, kHadoopSource}) {
    auto program = Parse(src);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    const auto diags = Check(*program);
    EXPECT_TRUE(diags.empty()) << diags.front();
  }
}

TEST(SemaTest, RejectsRecursion) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "fun f: (x: t) -> (t)\n"
      "    g(x)\n"
      "fun g: (x: t) -> (t)\n"
      "    f(x)\n");
  ASSERT_TRUE(program.ok());
  const auto diags = Check(*program);
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags.front().find("recursive"), std::string::npos);
}

TEST(SemaTest, RejectsSelfRecursion) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "fun f: (x: t) -> (t)\n"
      "    f(x)\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

TEST(SemaTest, RejectsSendToReadOnlyChannel) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "fun f: (t/- in_only, x: t) -> ()\n"
      "    x => in_only\n");
  ASSERT_TRUE(program.ok());
  const auto diags = Check(*program);
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags.front().find("read-only"), std::string::npos);
}

TEST(SemaTest, RejectsAccessToAnonymousField) {
  auto program = Parse(
      "type t: record\n"
      "    _ : string {size=4}\n"
      "    k : string {size=1}\n"
      "fun f: (x: t) -> (string)\n"
      "    x.hidden\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

TEST(SemaTest, RejectsUnknownFunction) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "fun f: (x: t) -> ()\n"
      "    ghost(x)\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

TEST(SemaTest, RejectsWrongArity) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "fun g: (x: t) -> (t)\n"
      "    x\n"
      "fun f: (x: t) -> ()\n"
      "    g(x, x)\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

TEST(SemaTest, RejectsSizeReferencingLaterField) {
  auto program = Parse(
      "type t: record\n"
      "    key : string {size=keylen}\n"
      "    keylen : integer {size=2}\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

TEST(SemaTest, RejectsAssignToNonDict) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "fun f: (x: t, y: t) -> ()\n"
      "    x[0] := y\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

TEST(SemaTest, RejectsNonChannelProcParam) {
  auto program = Parse(
      "type t: record\n"
      "    k : string {size=1}\n"
      "proc P: (x: t)\n"
      "    x => x\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Check(*program).empty());
}

// ------------------------------------------------------------ unit synthesis ----

TEST(CompileTest, SynthesizesListing1Unit) {
  auto compiled = CompileSource(kRouterSource);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const grammar::Unit* unit = (*compiled)->UnitFor("cmd");
  ASSERT_NE(unit, nullptr);
  // opcode(1) + keylen(2) + extraslen(1) + anon(3) + bodylen(8) = fixed prefix 15.
  EXPECT_EQ(unit->fixed_prefix_size(), 15u);
  EXPECT_GE(unit->FieldIndex("key"), 0);
  EXPECT_EQ(unit->FieldIndex("_"), -1);
}

TEST(CompileTest, AutoFramesUnsizedStrings) {
  auto compiled = CompileSource(kHadoopSource);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const grammar::Unit* unit = (*compiled)->UnitFor("kv");
  ASSERT_NE(unit, nullptr);
  // key/value each get a synthesized 4-byte length field.
  EXPECT_EQ(unit->fields().size(), 4u);
  EXPECT_GE(unit->FieldIndex("__len_key"), 0);
  EXPECT_GE(unit->FieldIndex("__len_value"), 0);
}

TEST(CompileTest, RoundTripThroughSynthesizedUnit) {
  auto compiled = CompileSource(kProxySource);
  ASSERT_TRUE(compiled.ok());
  const grammar::Unit* unit = (*compiled)->UnitFor("cmd");
  ASSERT_NE(unit, nullptr);

  grammar::Message msg;
  msg.BindUnit(unit);
  msg.SetBytes("opcode", std::string(1, '\x0c'));
  msg.SetBytes("key", "roundtrip");

  BufferPool pool(16, 256);
  BufferChain wire(&pool);
  grammar::UnitSerializer serializer(unit);
  ASSERT_TRUE(serializer.Serialize(msg, wire).ok());

  grammar::UnitParser parser(unit);
  grammar::Message parsed;
  ASSERT_EQ(parser.Feed(wire, &parsed), grammar::ParseStatus::kDone);
  EXPECT_EQ(parsed.GetBytes("key"), "roundtrip");
  EXPECT_EQ(parsed.GetUInt("keylen"), 9u);
}

// --------------------------------------------------- interpreted execution ----

// Harness: run a compiled proc handler over in-memory channels.
class DslExecTest : public ::testing::Test {
 protected:
  // Builds the handler for `proc_name` with `n_backends` backend channels.
  // `lowered` swaps the interpreter for the lowering pass's handler (with
  // dispatch counters); `with_state` = false exercises the null-StateStore
  // demotion path. Callable repeatedly (interp-vs-lowered parity tests).
  void Setup(const char* source, const std::string& proc_name, size_t n_backends,
             bool lowered = false, bool with_state = true) {
    auto compiled = CompileSource(source);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    program_ = std::move(compiled).value();
    proc_ = program_->ast.FindProc(proc_name);
    ASSERT_NE(proc_, nullptr);

    // Wiring: input 0 = client, inputs 1..n = backends;
    //         output 0 = client, outputs 1..n = backends.
    ProcWiring wiring;
    wiring.endpoints["client"].inputs = {0};
    wiring.endpoints["client"].outputs = {0};
    for (size_t b = 0; b < n_backends; ++b) {
      wiring.endpoints["backends"].inputs.push_back(1 + b);
      wiring.endpoints["backends"].outputs.push_back(1 + b);
    }

    runtime::StateStore* state = with_state ? &state_ : nullptr;
    if (lowered) {
      handler_ = MakeLoweredProcHandler(program_, proc_, wiring, state, proc_name,
                                        {&lowered_msgs_, &interp_fallbacks_});
    } else {
      handler_ = MakeProcHandler(program_, proc_, wiring, state, proc_name);
    }

    outputs_.clear();
    backend_outs_.clear();
    client_out_ = std::make_unique<runtime::Channel>(64);
    outputs_.push_back(client_out_.get());
    for (size_t b = 0; b < n_backends; ++b) {
      backend_outs_.push_back(std::make_unique<runtime::Channel>(64));
      outputs_.push_back(backend_outs_.back().get());
    }
  }

  // Parses `wire` with the compiled cmd unit into a runtime Msg.
  runtime::MsgRef ParseCmd(const std::string& wire) {
    runtime::MsgRef msg = msgs_.Acquire();
    BufferPool pool(16, 4096);
    BufferChain chain(&pool);
    FLICK_CHECK(chain.Append(wire));
    grammar::UnitParser parser(program_->UnitFor("cmd"));
    FLICK_CHECK(parser.Feed(chain, &msg->gmsg) == grammar::ParseStatus::kDone);
    msg->kind = runtime::Msg::Kind::kGrammar;
    return msg;
  }

  // Runs the handler for a message arriving on `input_index`.
  runtime::HandleResult Deliver(runtime::MsgRef msg, size_t input_index) {
    runtime::EmitContext emit(&outputs_, &msgs_);
    return handler_(*msg, input_index, emit);
  }

  std::shared_ptr<CompiledProgram> program_;
  const ProcDecl* proc_ = nullptr;
  runtime::ComputeTask::Handler handler_;
  runtime::StateStore state_;
  runtime::MsgPool msgs_{256};
  std::unique_ptr<runtime::Channel> client_out_;
  std::vector<std::unique_ptr<runtime::Channel>> backend_outs_;
  std::vector<runtime::Channel*> outputs_;
  std::atomic<uint64_t> lowered_msgs_{0};
  std::atomic<uint64_t> interp_fallbacks_{0};
};

// Wire encoding for the proxy's 3-field cmd: opcode(1) keylen(2) key.
std::string ProxyCmdWire(uint8_t opcode, const std::string& key) {
  std::string wire;
  wire.push_back(static_cast<char>(opcode));
  wire.push_back(static_cast<char>(key.size() >> 8));
  wire.push_back(static_cast<char>(key.size() & 0xff));
  wire += key;
  return wire;
}

TEST_F(DslExecTest, ProxyRoutesByKeyHash) {
  Setup(kProxySource, "Memcached", 4);
  // Requests with different keys must be distributed across backends.
  std::set<size_t> used_backends;
  for (int i = 0; i < 32; ++i) {
    runtime::MsgRef req = ParseCmd(ProxyCmdWire(0x00, "key-" + std::to_string(i)));
    ASSERT_EQ(Deliver(std::move(req), /*input=*/0), runtime::HandleResult::kConsumed);
    for (size_t b = 0; b < backend_outs_.size(); ++b) {
      if (runtime::MsgRef out = backend_outs_[b]->TryPop()) {
        used_backends.insert(b);
        EXPECT_EQ(out->kind, runtime::Msg::Kind::kGrammar);
      }
    }
  }
  EXPECT_GE(used_backends.size(), 2u) << "hash routing must spread keys";
}

TEST_F(DslExecTest, ProxySameKeySameBackend) {
  Setup(kProxySource, "Memcached", 4);
  int first_backend = -1;
  for (int round = 0; round < 3; ++round) {
    runtime::MsgRef req = ParseCmd(ProxyCmdWire(0x00, "stable-key"));
    ASSERT_EQ(Deliver(std::move(req), 0), runtime::HandleResult::kConsumed);
    int got = -1;
    for (size_t b = 0; b < backend_outs_.size(); ++b) {
      if (runtime::MsgRef out = backend_outs_[b]->TryPop()) {
        got = static_cast<int>(b);
      }
    }
    ASSERT_GE(got, 0);
    if (first_backend < 0) {
      first_backend = got;
    }
    EXPECT_EQ(got, first_backend) << "same key must hash to the same backend";
  }
}

TEST_F(DslExecTest, ProxyForwardsBackendResponsesToClient) {
  Setup(kProxySource, "Memcached", 2);
  runtime::MsgRef resp = ParseCmd(ProxyCmdWire(0x00, "resp-key"));
  ASSERT_EQ(Deliver(std::move(resp), /*input=*/1), runtime::HandleResult::kConsumed);
  runtime::MsgRef out = client_out_->TryPop();
  ASSERT_TRUE(out);
  EXPECT_EQ(out->kind, runtime::Msg::Kind::kGrammar);
}

// Wire encoding for the router's full cmd (Listing 1).
std::string RouterCmdWire(uint8_t opcode, const std::string& key, const std::string& body) {
  std::string wire;
  wire.push_back(static_cast<char>(opcode));
  const size_t keylen = key.size();
  wire.push_back(static_cast<char>(keylen >> 8));
  wire.push_back(static_cast<char>(keylen & 0xff));
  wire.push_back(0);                  // extraslen
  wire.append(3, '\0');               // anon
  const uint64_t bodylen = keylen + body.size();
  for (int i = 7; i >= 0; --i) {
    wire.push_back(static_cast<char>((bodylen >> (8 * i)) & 0xff));
  }
  wire.append(12, '\0');              // anon (12 + extraslen(0))
  wire += key;
  wire += body;
  return wire;
}

TEST_F(DslExecTest, RouterCachesGetkResponses) {
  Setup(kRouterSource, "memcached", 2);
  // A GETK response (opcode 0x0c) from a backend must be cached and forwarded.
  runtime::MsgRef resp = ParseCmd(RouterCmdWire(0x0c, "hot-key", "value!"));
  ASSERT_EQ(Deliver(std::move(resp), /*input=*/1), runtime::HandleResult::kConsumed);
  EXPECT_TRUE(client_out_->TryPop());
  EXPECT_TRUE(state_.Get("memcached.cache", "hot-key").has_value());

  // A GETK request for the cached key must be served from the cache...
  runtime::MsgRef req = ParseCmd(RouterCmdWire(0x0c, "hot-key", ""));
  ASSERT_EQ(Deliver(std::move(req), /*input=*/0), runtime::HandleResult::kConsumed);
  runtime::MsgRef cached = client_out_->TryPop();
  ASSERT_TRUE(cached);
  EXPECT_EQ(cached->kind, runtime::Msg::Kind::kBytes);
  EXPECT_FALSE(backend_outs_[0]->TryPop());
  EXPECT_FALSE(backend_outs_[1]->TryPop());
}

TEST_F(DslExecTest, RouterForwardsCacheMissToBackend) {
  Setup(kRouterSource, "memcached", 2);
  runtime::MsgRef req = ParseCmd(RouterCmdWire(0x0c, "cold-key", ""));
  ASSERT_EQ(Deliver(std::move(req), 0), runtime::HandleResult::kConsumed);
  EXPECT_FALSE(client_out_->TryPop());
  const bool to_backend = backend_outs_[0]->TryPop() || backend_outs_[1]->TryPop();
  EXPECT_TRUE(to_backend);
}

TEST_F(DslExecTest, RouterNonGetkNeverCached) {
  Setup(kRouterSource, "memcached", 2);
  runtime::MsgRef resp = ParseCmd(RouterCmdWire(0x00, "plain-key", "v"));
  ASSERT_EQ(Deliver(std::move(resp), 1), runtime::HandleResult::kConsumed);
  EXPECT_TRUE(client_out_->TryPop());
  EXPECT_FALSE(state_.Get("memcached.cache", "plain-key").has_value());

  // Requests with non-GETK opcodes bypass the cache even if a key matches.
  state_.Put("memcached.cache", "plain-key", "stale");
  runtime::MsgRef req = ParseCmd(RouterCmdWire(0x00, "plain-key", ""));
  ASSERT_EQ(Deliver(std::move(req), 0), runtime::HandleResult::kConsumed);
  EXPECT_FALSE(client_out_->TryPop());
  EXPECT_TRUE(backend_outs_[0]->TryPop() || backend_outs_[1]->TryPop());
}

TEST_F(DslExecTest, EofFansOutToAllOutputs) {
  Setup(kProxySource, "Memcached", 2);
  runtime::MsgRef eof = msgs_.Acquire();
  eof->kind = runtime::Msg::Kind::kEof;
  ASSERT_EQ(Deliver(std::move(eof), 0), runtime::HandleResult::kConsumed);
  runtime::MsgRef c = client_out_->TryPop();
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, runtime::Msg::Kind::kEof);
  for (auto& b : backend_outs_) {
    runtime::MsgRef m = b->TryPop();
    ASSERT_TRUE(m);
    EXPECT_EQ(m->kind, runtime::Msg::Kind::kEof);
  }
}

// ------------------------------------------------------------ lowering pass ----

TEST(LoweringTest, RouterRulesLowerToCacheShapes) {
  auto compiled = CompileSource(kRouterSource);
  ASSERT_TRUE(compiled.ok());
  const ProcDecl* proc = (*compiled)->ast.FindProc("memcached");
  ASSERT_NE(proc, nullptr);
  ProcWiring wiring;
  wiring.endpoints["client"].inputs = {0};
  wiring.endpoints["client"].outputs = {0};
  wiring.endpoints["backends"].inputs = {1, 2};
  wiring.endpoints["backends"].outputs = {1, 2};

  const ProcPlan plan = AnalyzeProc(**compiled, *proc, wiring);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_TRUE(plan.fully_lowered());
  ASSERT_TRUE(plan.rules[0].has_value());
  EXPECT_EQ(plan.rules[0]->shape, RulePlan::Shape::kCacheTestRoute);
  EXPECT_EQ(plan.rules[0]->forward_out, 0);
  EXPECT_EQ(plan.rules[0]->route_outs, (std::vector<int>{1, 2}));
  EXPECT_EQ(plan.rules[0]->dict, "memcached.cache");
  ASSERT_TRUE(plan.rules[1].has_value());
  EXPECT_EQ(plan.rules[1]->shape, RulePlan::Shape::kCacheUpdateForward);
  EXPECT_EQ(plan.rules[1]->forward_out, 0);
  EXPECT_EQ(plan.rules[2]->shape, RulePlan::Shape::kCacheUpdateForward);
}

TEST(LoweringTest, FoldtProcDoesNotLower) {
  auto compiled = CompileSource(kHadoopSource);
  ASSERT_TRUE(compiled.ok());
  const ProcDecl* proc = (*compiled)->ast.FindProc("hadoop");
  ASSERT_NE(proc, nullptr);
  ProcWiring wiring;
  wiring.endpoints["mappers"].inputs = {0, 1};
  wiring.endpoints["reducer"].outputs = {0};

  const ProcPlan plan = AnalyzeProc(**compiled, *proc, wiring);
  EXPECT_FALSE(plan.fully_lowered());
  EXPECT_EQ(plan.lowered_inputs(), 0u);
}

// Interp and lowered handlers must route every key to the same backend (same
// hash mask, same int64 mod) — the ablation is only meaningful if the two
// arms are observationally identical.
TEST_F(DslExecTest, LoweredRoutingMatchesInterp) {
  constexpr int kKeys = 32;
  std::vector<int> interp_choice(kKeys, -1);
  Setup(kRouterSource, "memcached", 4);
  for (int i = 0; i < kKeys; ++i) {
    runtime::MsgRef req = ParseCmd(RouterCmdWire(0x00, "key-" + std::to_string(i), ""));
    ASSERT_EQ(Deliver(std::move(req), 0), runtime::HandleResult::kConsumed);
    for (size_t b = 0; b < backend_outs_.size(); ++b) {
      if (backend_outs_[b]->TryPop()) {
        interp_choice[i] = static_cast<int>(b);
      }
    }
    ASSERT_GE(interp_choice[i], 0);
  }

  Setup(kRouterSource, "memcached", 4, /*lowered=*/true);
  for (int i = 0; i < kKeys; ++i) {
    runtime::MsgRef req = ParseCmd(RouterCmdWire(0x00, "key-" + std::to_string(i), ""));
    ASSERT_EQ(Deliver(std::move(req), 0), runtime::HandleResult::kConsumed);
    int got = -1;
    for (size_t b = 0; b < backend_outs_.size(); ++b) {
      if (backend_outs_[b]->TryPop()) {
        got = static_cast<int>(b);
      }
    }
    EXPECT_EQ(got, interp_choice[i]) << "key-" << i;
  }
  EXPECT_EQ(lowered_msgs_.load(), static_cast<uint64_t>(kKeys));
  EXPECT_EQ(interp_fallbacks_.load(), 0u);
}

TEST_F(DslExecTest, LoweredRouterCachesAndServesHits) {
  Setup(kRouterSource, "memcached", 2, /*lowered=*/true);
  runtime::MsgRef resp = ParseCmd(RouterCmdWire(0x0c, "hot-key", "value!"));
  ASSERT_EQ(Deliver(std::move(resp), /*input=*/1), runtime::HandleResult::kConsumed);
  EXPECT_TRUE(client_out_->TryPop());
  EXPECT_TRUE(state_.Get("memcached.cache", "hot-key").has_value());

  runtime::MsgRef req = ParseCmd(RouterCmdWire(0x0c, "hot-key", ""));
  ASSERT_EQ(Deliver(std::move(req), /*input=*/0), runtime::HandleResult::kConsumed);
  runtime::MsgRef cached = client_out_->TryPop();
  ASSERT_TRUE(cached);
  EXPECT_EQ(cached->kind, runtime::Msg::Kind::kBytes);  // interp-parity hit form
  EXPECT_FALSE(backend_outs_[0]->TryPop());
  EXPECT_FALSE(backend_outs_[1]->TryPop());
  EXPECT_EQ(lowered_msgs_.load(), 2u);
  EXPECT_EQ(interp_fallbacks_.load(), 0u);
}

TEST_F(DslExecTest, NullStateDemotesCachePlansToInterp) {
  Setup(kRouterSource, "memcached", 2, /*lowered=*/true, /*with_state=*/false);
  runtime::MsgRef resp = ParseCmd(RouterCmdWire(0x0c, "some-key", "v"));
  ASSERT_EQ(Deliver(std::move(resp), 1), runtime::HandleResult::kConsumed);
  EXPECT_EQ(lowered_msgs_.load(), 0u);
  EXPECT_EQ(interp_fallbacks_.load(), 1u);
}

TEST_F(DslExecTest, LoweredEofFansOutToAllOutputs) {
  Setup(kRouterSource, "memcached", 2, /*lowered=*/true);
  runtime::MsgRef eof = msgs_.Acquire();
  eof->kind = runtime::Msg::Kind::kEof;
  ASSERT_EQ(Deliver(std::move(eof), 0), runtime::HandleResult::kConsumed);
  runtime::MsgRef c = client_out_->TryPop();
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, runtime::Msg::Kind::kEof);
  for (auto& b : backend_outs_) {
    runtime::MsgRef m = b->TryPop();
    ASSERT_TRUE(m);
    EXPECT_EQ(m->kind, runtime::Msg::Kind::kEof);
  }
}

// ------------------------------------------------------------- diagnostics ----
// Compiler errors must surface as clean InvalidArgument statuses with
// "line N:" position info — never a crash, never a silent mis-compile.

TEST(DiagnosticsTest, UnknownFieldInSizeExprHasPosition) {
  auto compiled = CompileSource(
      "type t: record\n"
      "    key : string {size=ghostlen}\n");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("line 2:"), std::string::npos)
      << compiled.status().ToString();
  EXPECT_NE(compiled.status().message().find("ghostlen"), std::string::npos);
}

TEST(DiagnosticsTest, UndeclaredChannelTypeHasPosition) {
  auto compiled = CompileSource(
      "type t: record\n"
      "    k : string {size=1}\n"
      "proc p: (ghost/ghost client)\n"
      "    client => client\n");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compiled.status().message().find("line 3:"), std::string::npos)
      << compiled.status().ToString();
  EXPECT_NE(compiled.status().message().find("ghost"), std::string::npos);
}

TEST(DiagnosticsTest, BackendArrayWithoutPortsIsCreateError) {
  auto service = services::DslService::Create(services::kMemcachedRouterSource,
                                              "memcached", {});
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(service.status().message().find("backend"), std::string::npos)
      << service.status().ToString();
}

// -------------------------------------------------------------- foldt parts ----

TEST(FoldtTest, OrderAndCombineWork) {
  auto compiled = CompileSource(kHadoopSource);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto program = std::move(compiled).value();

  auto order = MakeFoldtOrder(program, "kv", "key");
  auto combine = MakeFoldtCombine(program, "combine_kv");

  const grammar::Unit* unit = program->UnitFor("kv");
  runtime::Msg a, b;
  a.gmsg.BindUnit(unit);
  a.gmsg.SetBytes("key", "apple");
  a.gmsg.SetBytes("value", "3");
  b.gmsg.BindUnit(unit);
  b.gmsg.SetBytes("key", "banana");
  b.gmsg.SetBytes("value", "4");

  EXPECT_LT(order(a, b), 0);
  EXPECT_GT(order(b, a), 0);

  runtime::Msg a2;
  a2.gmsg.BindUnit(unit);
  a2.gmsg.SetBytes("key", "apple");
  a2.gmsg.SetBytes("value", "39");
  EXPECT_EQ(order(a, a2), 0);

  combine(a, a2);  // 3 + 39 = 42
  EXPECT_EQ(a.gmsg.GetBytes("key"), "apple");
  EXPECT_EQ(a.gmsg.GetBytes("value"), "42");
}

}  // namespace
}  // namespace flick::lang
