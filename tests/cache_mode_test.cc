// Look-aside cache mode, end to end over the simulated fabric plus the
// StateStore invalidate-wins epoch protocol it rides on:
//   * a GET hit is served without touching the backend plane (pool lease and
//     forward counters stay flat),
//   * a miss populates the store so the next GET hits,
//   * SET writes through and invalidates (the next GET re-fetches),
//   * a populate racing an invalidation is dropped (invalidate wins),
//   * FIFO eviction under a tiny max_entries keeps the proxy serving
//     misses correctly,
//   * an overwrite never extends an entry's FIFO lifetime.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "load/backends.h"
#include "net/sim_transport.h"
#include "proto/memcached.h"
#include "runtime/platform.h"
#include "runtime/state_store.h"
#include "services/memcached_proxy.h"
#include "platform_stop_guard.h"

namespace flick {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

// One persistent client connection to the proxy: sequential blocking round
// trips over the SAME wire, so a test can issue many requests through one
// client graph (a fresh connection per request would conflate graph churn
// with the cache behaviour under test).
class ProxyClient {
 public:
  ProxyClient(Transport* transport, uint16_t port)
      : pool_(16, 4096), rx_(&pool_), parser_(&proto::MemcachedUnit()) {
    auto conn = transport->Connect(port);
    FLICK_CHECK(conn.ok());
    conn_ = std::move(conn).value();
  }
  ~ProxyClient() { conn_->Close(); }

  // Issues one request and returns the parsed response. On timeout the
  // returned message is bound but zeroed (status reads as 0).
  grammar::Message RoundTrip(uint8_t opcode, const std::string& key,
                             const std::string& value = {}) {
    grammar::Message req;
    proto::BuildRequest(&req, opcode, key, value);
    const std::string wire = proto::ToWire(req);
    size_t off = 0;
    while (off < wire.size()) {
      auto wrote = conn_->Write(wire.data() + off, wire.size() - off);
      FLICK_CHECK(wrote.ok());
      off += *wrote;
    }
    grammar::Message resp;
    resp.BindUnit(&proto::MemcachedUnit());
    char buf[4096];
    const auto deadline = std::chrono::steady_clock::now() + 3s;
    while (std::chrono::steady_clock::now() < deadline) {
      auto got = conn_->Read(buf, sizeof(buf));
      if (!got.ok()) {
        break;
      }
      if (*got == 0) {
        std::this_thread::sleep_for(100us);
        continue;
      }
      rx_.Append(buf, *got);
      if (parser_.Feed(rx_, &resp) == grammar::ParseStatus::kDone) {
        return resp;
      }
    }
    return resp;
  }

 private:
  BufferPool pool_;
  BufferChain rx_;
  grammar::UnitParser parser_;
  std::unique_ptr<Connection> conn_;
};

class CacheModeTest : public ::testing::Test {
 protected:
  CacheModeTest() : transport_(&net_, StackCostModel::Null()) {
    config_.scheduler.num_workers = 2;
  }

  void StartBackends(int n) {
    for (int b = 0; b < n; ++b) {
      backends_.push_back(std::make_unique<load::MemcachedBackend>(
          &transport_, static_cast<uint16_t>(11000 + b)));
      ASSERT_TRUE(backends_.back()->Start().ok());
      ports_.push_back(static_cast<uint16_t>(11000 + b));
    }
  }

  void PreloadAll(const std::string& key, const std::string& value) {
    for (auto& b : backends_) {
      b->Preload(key, value);
    }
  }

  // Platform + cache-mode proxy; call after StartBackends.
  services::MemcachedProxyService& StartProxy() {
    platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
    services::MemcachedProxyService::Options options;
    options.cache.enabled = true;
    proxy_ = std::make_unique<services::MemcachedProxyService>(ports_, options);
    FLICK_CHECK(platform_->RegisterProgram(11211, proxy_.get()).ok());
    platform_->Start();
    return *proxy_;
  }

  services::RegistryStats Stats() { return proxy_->registry().stats(); }

  SimNetwork net_;
  SimTransport transport_;
  runtime::PlatformConfig config_;
  std::unique_ptr<runtime::Platform> platform_;
  std::unique_ptr<services::MemcachedProxyService> proxy_;
  std::vector<std::unique_ptr<load::MemcachedBackend>> backends_;
  std::vector<uint16_t> ports_;
};

// A cache hit must be served entirely from the StateStore: after the first
// GET populates, repeated GETs on the same connection move NO pool counters
// (no lease acquired, no request forwarded, no backend request served).
TEST_F(CacheModeTest, HitServedWithoutPoolTraffic) {
  StartBackends(4);
  PreloadAll("hot", "hot-value");
  auto& proxy = StartProxy();
  ScopedPlatformStop stop_guard(*platform_);

  ProxyClient client(&transport_, 11211);
  // Miss + populate.
  grammar::Message first = client.RoundTrip(proto::kMemcachedGet, "hot");
  ASSERT_EQ(proto::MemcachedCommand(&first).status(), proto::kMemcachedStatusOk);
  ASSERT_EQ(proto::MemcachedCommand(&first).value(), "hot-value");
  // The populate happens on the response path, after the client sees the
  // response bytes; wait for the counter rather than racing it.
  ASSERT_TRUE(WaitFor([&] { return Stats().cache_misses == 1; }));

  const services::BackendPoolStats before = proxy.pool()->stats();
  const uint64_t backend_before = backends_[0]->requests_served() +
                                  backends_[1]->requests_served() +
                                  backends_[2]->requests_served() +
                                  backends_[3]->requests_served();
  constexpr int kHits = 50;
  for (int i = 0; i < kHits; ++i) {
    grammar::Message resp = client.RoundTrip(proto::kMemcachedGet, "hot");
    proto::MemcachedCommand cmd(&resp);
    EXPECT_EQ(cmd.status(), proto::kMemcachedStatusOk);
    EXPECT_EQ(cmd.value(), "hot-value");
    EXPECT_EQ(cmd.key(), "");  // GET responses do not echo the key
  }
  const services::BackendPoolStats after = proxy.pool()->stats();
  EXPECT_EQ(after.leases_acquired, before.leases_acquired)
      << "cache hits must not acquire pool leases";
  EXPECT_EQ(after.requests_forwarded, before.requests_forwarded)
      << "cache hits must not forward to a backend";
  const uint64_t backend_after = backends_[0]->requests_served() +
                                 backends_[1]->requests_served() +
                                 backends_[2]->requests_served() +
                                 backends_[3]->requests_served();
  EXPECT_EQ(backend_after, backend_before);
  const services::RegistryStats stats = Stats();
  EXPECT_GE(stats.cache_hits, static_cast<uint64_t>(kHits));
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_stale_populates_dropped, 0u);
}

// GETK hits must mirror the backend's reply shape: key echoed back.
TEST_F(CacheModeTest, GetkHitEchoesKey) {
  StartBackends(2);
  PreloadAll("echo", "echo-value");
  StartProxy();
  ScopedPlatformStop stop_guard(*platform_);

  ProxyClient client(&transport_, 11211);
  grammar::Message miss = client.RoundTrip(proto::kMemcachedGetK, "echo");
  ASSERT_EQ(proto::MemcachedCommand(&miss).key(), "echo");
  ASSERT_TRUE(WaitFor([&] { return Stats().cache_misses == 1; }));

  grammar::Message hit = client.RoundTrip(proto::kMemcachedGetK, "echo");
  proto::MemcachedCommand cmd(&hit);
  EXPECT_EQ(cmd.status(), proto::kMemcachedStatusOk);
  EXPECT_EQ(cmd.key(), "echo");
  EXPECT_EQ(cmd.value(), "echo-value");
  EXPECT_GE(Stats().cache_hits, 1u);
}

// First GET misses and populates; a second GET from a DIFFERENT client
// connection (a different graph) hits the shared store.
TEST_F(CacheModeTest, MissPopulatesThenSecondClientHits) {
  StartBackends(4);
  PreloadAll("shared", "shared-value");
  StartProxy();
  ScopedPlatformStop stop_guard(*platform_);

  {
    ProxyClient first(&transport_, 11211);
    grammar::Message resp = first.RoundTrip(proto::kMemcachedGet, "shared");
    ASSERT_EQ(proto::MemcachedCommand(&resp).value(), "shared-value");
  }
  ASSERT_TRUE(WaitFor([&] { return Stats().cache_misses == 1; }));

  ProxyClient second(&transport_, 11211);
  grammar::Message resp = second.RoundTrip(proto::kMemcachedGet, "shared");
  EXPECT_EQ(proto::MemcachedCommand(&resp).value(), "shared-value");
  const services::RegistryStats stats = Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
}

// SET writes through to the backend AND invalidates the cached entry: the
// next GET must see the new value (a stale cache would keep returning v1).
TEST_F(CacheModeTest, SetWritesThroughAndInvalidates) {
  StartBackends(4);
  PreloadAll("mut", "v1");
  StartProxy();
  ScopedPlatformStop stop_guard(*platform_);

  ProxyClient client(&transport_, 11211);
  grammar::Message get1 = client.RoundTrip(proto::kMemcachedGet, "mut");
  ASSERT_EQ(proto::MemcachedCommand(&get1).value(), "v1");
  ASSERT_TRUE(WaitFor([&] { return Stats().cache_misses == 1; }));
  // Cached now; prove it.
  grammar::Message get2 = client.RoundTrip(proto::kMemcachedGet, "mut");
  ASSERT_EQ(proto::MemcachedCommand(&get2).value(), "v1");
  ASSERT_TRUE(WaitFor([&] { return Stats().cache_hits >= 1; }));

  grammar::Message set = client.RoundTrip(proto::kMemcachedSet, "mut", "v2");
  ASSERT_EQ(proto::MemcachedCommand(&set).status(), proto::kMemcachedStatusOk);

  grammar::Message get3 = client.RoundTrip(proto::kMemcachedGet, "mut");
  EXPECT_EQ(proto::MemcachedCommand(&get3).value(), "v2")
      << "SET must invalidate the cached v1";
  const services::RegistryStats stats = Stats();
  EXPECT_GE(stats.cache_invalidations, 1u);
  // Read-after-write re-populates: the final GET was a miss.
  EXPECT_EQ(stats.cache_misses, 2u);
}

// Cache mode is orthogonal to the wire mode: the per-client (dedicated
// connection) shape serves hits from the store too.
TEST_F(CacheModeTest, PerClientModeServesHits) {
  StartBackends(2);
  PreloadAll("pc", "pc-value");
  platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
  services::MemcachedProxyService::Options options;
  options.wire.mode = services::BackendMode::kPerClient;
  options.cache.enabled = true;
  proxy_ = std::make_unique<services::MemcachedProxyService>(ports_, options);
  ASSERT_TRUE(platform_->RegisterProgram(11211, proxy_.get()).ok());
  platform_->Start();
  ScopedPlatformStop stop_guard(*platform_);

  ProxyClient client(&transport_, 11211);
  grammar::Message miss = client.RoundTrip(proto::kMemcachedGet, "pc");
  ASSERT_EQ(proto::MemcachedCommand(&miss).value(), "pc-value");
  ASSERT_TRUE(WaitFor([&] { return Stats().cache_misses == 1; }));

  const uint64_t served_before =
      backends_[0]->requests_served() + backends_[1]->requests_served();
  grammar::Message hit = client.RoundTrip(proto::kMemcachedGet, "pc");
  EXPECT_EQ(proto::MemcachedCommand(&hit).value(), "pc-value");
  EXPECT_GE(Stats().cache_hits, 1u);
  EXPECT_EQ(backends_[0]->requests_served() + backends_[1]->requests_served(),
            served_before);
}

// Eviction under a tiny per-dict bound: sweeping a key space far larger than
// max_entries keeps every response correct (eviction must never corrupt a
// served value, only force re-misses).
TEST_F(CacheModeTest, EvictionUnderTinyBoundKeepsServingMisses) {
  StartBackends(4);
  for (int k = 0; k < 200; ++k) {
    PreloadAll("key-" + std::to_string(k), "value-" + std::to_string(k));
  }
  config_.state_entries_per_dict = 16;  // per-shard bound: 16/16 + 1 = 2
  StartProxy();
  ScopedPlatformStop stop_guard(*platform_);

  ProxyClient client(&transport_, 11211);
  for (int pass = 0; pass < 2; ++pass) {
    for (int k = 0; k < 200; ++k) {
      grammar::Message resp =
          client.RoundTrip(proto::kMemcachedGet, "key-" + std::to_string(k));
      proto::MemcachedCommand cmd(&resp);
      ASSERT_EQ(cmd.status(), proto::kMemcachedStatusOk) << "key-" << k;
      ASSERT_EQ(cmd.value(), "value-" + std::to_string(k)) << "key-" << k;
    }
  }
  const services::RegistryStats stats = Stats();
  // The sweep thrashes the tiny cache: most lookups miss and re-populate.
  EXPECT_GE(stats.cache_misses, 200u);
  EXPECT_EQ(stats.cache_stale_populates_dropped, 0u);
}

// ------------------------------------------------ StateStore epoch protocol ----

// The deterministic core of the populate-vs-invalidate race: a populate that
// snapshotted its epoch before an Erase must be dropped; a fresh snapshot
// succeeds.
TEST(StateStoreEpochTest, InvalidateWinsPopulateRace) {
  runtime::StateStore store(64);
  store.Put("cache", "k", "stale");

  // Miss path: snapshot, then the authority fetch happens... meanwhile an
  // invalidation lands.
  const uint64_t epoch = store.InvalidationEpoch("cache", "k");
  ASSERT_TRUE(store.Erase("cache", "k"));

  // The late populate must lose.
  EXPECT_FALSE(store.PutIfFresh("cache", "k", "stale", epoch));
  EXPECT_FALSE(store.Get("cache", "k").has_value());

  // A populate that snapshotted AFTER the invalidation wins.
  const uint64_t fresh = store.InvalidationEpoch("cache", "k");
  EXPECT_TRUE(store.PutIfFresh("cache", "k", "fresh", fresh));
  EXPECT_EQ(store.Get("cache", "k"), "fresh");
}

// An authoritative Put is an invalidation too: a populate snapshotted before
// it must not clobber the newer authoritative value.
TEST(StateStoreEpochTest, AuthoritativePutBeatsStalePopulate) {
  runtime::StateStore store(64);
  const uint64_t epoch = store.InvalidationEpoch("cache", "k");
  store.Put("cache", "k", "authoritative");
  EXPECT_FALSE(store.PutIfFresh("cache", "k", "stale", epoch));
  EXPECT_EQ(store.Get("cache", "k"), "authoritative");
}

// Erase of an ABSENT key still invalidates: the write-through may race a
// miss-populate for a key that was never cached, and the populate carries
// the pre-write value.
TEST(StateStoreEpochTest, EraseOfAbsentKeyStillInvalidates) {
  runtime::StateStore store(64);
  const uint64_t epoch = store.InvalidationEpoch("cache", "k");
  EXPECT_FALSE(store.Erase("cache", "k"));  // nothing cached — but epoch moves
  EXPECT_FALSE(store.PutIfFresh("cache", "k", "pre-write", epoch));
  EXPECT_FALSE(store.Get("cache", "k").has_value());
}

// Two racing populates both succeed (last-writer-wins): both values are
// authority-fresh, so a successful PutIfFresh must NOT bump the epoch.
TEST(StateStoreEpochTest, RacingPopulatesBothSucceed) {
  runtime::StateStore store(64);
  const uint64_t epoch_a = store.InvalidationEpoch("cache", "k");
  const uint64_t epoch_b = store.InvalidationEpoch("cache", "k");
  EXPECT_TRUE(store.PutIfFresh("cache", "k", "a", epoch_a));
  EXPECT_TRUE(store.PutIfFresh("cache", "k", "b", epoch_b));
  EXPECT_EQ(store.Get("cache", "k"), "b");
}

// Epochs are per dict: invalidating one dict must not drop populates bound
// for another.
TEST(StateStoreEpochTest, EpochIsolatedPerDict) {
  runtime::StateStore store(64);
  const uint64_t epoch = store.InvalidationEpoch("cache-a", "k");
  store.Erase("cache-b", "k");
  EXPECT_TRUE(store.PutIfFresh("cache-a", "k", "v", epoch));
  EXPECT_EQ(store.Get("cache-a", "k"), "v");
}

// A re-populate (overwrite) of a live entry must keep the entry's ORIGINAL
// FIFO position — silently extending its lifetime would let a hot re-fetched
// key starve colder keys of their slots forever. With a per-shard bound of 2,
// insert a then b into one shard, overwrite a, insert c: a (the oldest
// insertion) must be the one evicted, not b.
TEST(StateStoreEpochTest, OverwriteDoesNotExtendFifoLifetime) {
  // Find three keys landing in ONE of the 16 internal shards, using the
  // store's shard hash (white-box, like the per-shard bound arithmetic in
  // state_store_test.cc).
  auto shard_of = [](const std::string& dict, const std::string& key) {
    return (std::hash<std::string>{}(key) ^ (std::hash<std::string>{}(dict) << 1)) % 16;
  };
  std::vector<std::string> same_shard;
  const size_t target = shard_of("d", "probe-0");
  for (int i = 0; same_shard.size() < 3 && i < 4096; ++i) {
    const std::string key = "probe-" + std::to_string(i);
    if (shard_of("d", key) == target) {
      same_shard.push_back(key);
    }
  }
  ASSERT_EQ(same_shard.size(), 3u) << "could not find three same-shard keys";

  runtime::StateStore store(16);  // per-shard bound: 16/16 + 1 = 2
  store.PutIfFresh("d", same_shard[0], "a1",
                   store.InvalidationEpoch("d", same_shard[0]));
  store.PutIfFresh("d", same_shard[1], "b1",
                   store.InvalidationEpoch("d", same_shard[1]));
  // Re-populate the OLDER entry; its FIFO position must not move.
  ASSERT_TRUE(store.PutIfFresh("d", same_shard[0], "a2",
                               store.InvalidationEpoch("d", same_shard[0])));
  // Third same-shard insert exceeds the bound: the oldest INSERTION
  // (same_shard[0]) is evicted even though it was just overwritten.
  store.PutIfFresh("d", same_shard[2], "c1",
                   store.InvalidationEpoch("d", same_shard[2]));
  EXPECT_FALSE(store.Get("d", same_shard[0]).has_value())
      << "overwrite must not extend FIFO lifetime";
  EXPECT_EQ(store.Get("d", same_shard[1]), "b1");
  EXPECT_EQ(store.Get("d", same_shard[2]), "c1");
}

}  // namespace
}  // namespace flick
