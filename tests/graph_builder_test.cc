// GraphBuilder unit/integration tests: declarative graphs over the sim
// fabric, launch stats, failure-path leg cleanup, tee duplication, and the
// staged GraphRegistry retirement sequence (unwatch sweep -> drain sweep ->
// destruction) for both hand-wired and builder-constructed graphs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "net/sim_transport.h"
#include "runtime/io_tasks.h"
#include "runtime/platform.h"
#include "services/graph_builder.h"
#include "services/memcached_proxy.h"
#include "services/service_util.h"
#include "platform_stop_guard.h"

namespace flick {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(200us);
  }
  return cond();
}

// Drains whatever is readable into `out`; true once `expected` bytes arrived.
bool ReadInto(Connection& conn, std::string* out, size_t expected) {
  char buf[4096];
  auto got = conn.Read(buf, sizeof(buf));
  if (got.ok() && *got > 0) {
    out->append(buf, *got);
  }
  return out->size() >= expected;
}

// Raw echo: client-in -> echo stage -> client-out, all on one connection.
class BuilderEchoService : public runtime::ServiceProgram {
 public:
  const char* name() const override { return "builder-echo"; }

  void OnConnection(std::unique_ptr<Connection> conn,
                    runtime::PlatformEnv& env) override {
    services::GraphBuilder b("echo", env);
    auto client = b.Adopt(std::move(conn));
    auto in = b.Source("in", client, std::make_unique<runtime::RawDeserializer>());
    auto echo = b.Stage("echo",
                        [](runtime::Msg& msg, size_t, runtime::EmitContext& emit) {
                          runtime::MsgRef out = emit.NewMsg();
                          out->kind = msg.kind;
                          out->bytes = msg.bytes;
                          return emit.Emit(0, std::move(out))
                                     ? runtime::HandleResult::kConsumed
                                     : runtime::HandleResult::kBlocked;
                        })
                    .From(in);
    b.Sink("out", client, std::make_unique<runtime::RawSerializer>()).From(echo);
    last_status = b.Launch(registry);
    last_stats = b.stats();
    // Launch activates IO before returning, so data can reach the test
    // thread before the assignments above: publish them explicitly.
    launched.store(true, std::memory_order_release);
  }

  services::GraphRegistry registry;
  Status last_status;
  services::GraphLaunchStats last_stats;
  std::atomic<bool> launched{false};
};

// Mirrors the client stream to two dialled backends through a Tee.
class TeeMirrorService : public runtime::ServiceProgram {
 public:
  TeeMirrorService(uint16_t mirror_a, uint16_t mirror_b)
      : mirror_a_(mirror_a), mirror_b_(mirror_b) {}

  const char* name() const override { return "tee-mirror"; }

  void OnConnection(std::unique_ptr<Connection> conn,
                    runtime::PlatformEnv& env) override {
    services::GraphBuilder b("tee-mirror", env);
    auto client = b.Adopt(std::move(conn));
    auto a = b.Connect(mirror_a_);
    auto bb = b.Connect(mirror_b_);
    auto in = b.Source("in", client, std::make_unique<runtime::RawDeserializer>());
    auto tee = b.Tee("tee").From(in);
    b.Sink("mirror-a", a, std::make_unique<runtime::RawSerializer>()).From(tee);
    b.Sink("mirror-b", bb, std::make_unique<runtime::RawSerializer>()).From(tee);
    last_status = b.Launch(registry);
    last_stats = b.stats();
    launched.store(true, std::memory_order_release);
  }

  services::GraphRegistry registry;
  Status last_status;
  services::GraphLaunchStats last_stats;
  std::atomic<bool> launched{false};

 private:
  uint16_t mirror_a_;
  uint16_t mirror_b_;
};

// Old-style hand wiring, kept here (and only here) to pin down the staged
// retirement contract independently of the builder.
class ManualEchoService : public runtime::ServiceProgram {
 public:
  const char* name() const override { return "manual-echo"; }

  void OnConnection(std::unique_ptr<Connection> conn,
                    runtime::PlatformEnv& env) override {
    auto graph = std::make_unique<runtime::TaskGraph>("manual-echo");
    runtime::Channel* ch = graph->AddChannel(64);
    Connection* raw = conn.get();
    auto* in = graph->AddTask<runtime::InputTask>(
        "in", std::move(conn), std::make_unique<runtime::RawDeserializer>(), ch,
        env.msgs, env.buffers);
    auto* out = graph->AddTask<runtime::OutputTask>(
        "out", std::make_unique<services::SharedConn>(raw),
        std::make_unique<runtime::RawSerializer>(), ch, env.buffers);
    ch->BindConsumer(out, env.scheduler);
    env.ActivateIo({{raw, in}});
    registry.Adopt(std::move(graph), {raw}, env);
  }

  services::GraphRegistry registry;
};

class GraphBuilderTest : public ::testing::Test {
 protected:
  GraphBuilderTest() : transport_(&net_, StackCostModel::Null()) {
    config_.scheduler.num_workers = 2;
  }

  runtime::Platform& MakePlatform() {
    platform_ = std::make_unique<runtime::Platform>(config_, &transport_);
    return *platform_;
  }

  SimNetwork net_;
  SimTransport transport_;
  runtime::PlatformConfig config_;
  std::unique_ptr<runtime::Platform> platform_;
};

TEST_F(GraphBuilderTest, EchoGraphServesAndReportsStats) {
  auto& platform = MakePlatform();
  BuilderEchoService service;
  ASSERT_TRUE(platform.RegisterProgram(7000, &service).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(7000);
  ASSERT_TRUE(conn.ok());
  const std::string payload = "ping";
  ASSERT_TRUE((*conn)->Write(payload.data(), payload.size()).ok());
  std::string echoed;
  ASSERT_TRUE(WaitFor([&] { return ReadInto(**conn, &echoed, payload.size()); }));
  EXPECT_EQ(echoed, payload);

  ASSERT_TRUE(WaitFor(
      [&] { return service.launched.load(std::memory_order_acquire); }));
  EXPECT_TRUE(service.last_status.ok());
  EXPECT_EQ(service.last_stats.sources, 1u);
  EXPECT_EQ(service.last_stats.stages, 1u);
  EXPECT_EQ(service.last_stats.sinks, 1u);
  EXPECT_EQ(service.last_stats.tasks, 3u);
  EXPECT_EQ(service.last_stats.channels, 2u);
  EXPECT_EQ(service.last_stats.connections, 1u);
  EXPECT_EQ(service.last_stats.watched, 1u);

  (*conn)->Close();
  platform.Stop();
}

TEST_F(GraphBuilderTest, BuilderGraphRetiresThroughStagedSweeps) {
  auto& platform = MakePlatform();
  BuilderEchoService service;
  ASSERT_TRUE(platform.RegisterProgram(7000, &service).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(7000);
  ASSERT_TRUE(conn.ok());
  const std::string payload = "retire-me";
  ASSERT_TRUE((*conn)->Write(payload.data(), payload.size()).ok());
  std::string echoed;
  ASSERT_TRUE(WaitFor([&] { return ReadInto(**conn, &echoed, payload.size()); }));
  ASSERT_EQ(service.registry.stats().graphs_adopted, 1u);

  (*conn)->Close();
  // Stage 1: connections unwatched once all IO tasks closed; stage 2: graph
  // destroyed once every task drained to idle. Both must complete.
  ASSERT_TRUE(WaitFor([&] { return service.registry.stats().graphs_retired == 1; }));
  const services::RegistryStats stats = service.registry.stats();
  EXPECT_EQ(stats.graphs_adopted, 1u);
  EXPECT_EQ(stats.graphs_unwatched, 1u);
  EXPECT_EQ(stats.graphs_retired, 1u);
  EXPECT_EQ(stats.tasks_adopted, 3u);
  EXPECT_EQ(stats.channels_adopted, 2u);
  EXPECT_EQ(service.registry.live_graphs(), 0u);
  platform.Stop();
}

TEST_F(GraphBuilderTest, ManualGraphRetiresThroughSameStages) {
  auto& platform = MakePlatform();
  ManualEchoService service;
  ASSERT_TRUE(platform.RegisterProgram(7000, &service).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(7000);
  ASSERT_TRUE(conn.ok());
  const std::string payload = "manual";
  ASSERT_TRUE((*conn)->Write(payload.data(), payload.size()).ok());
  std::string echoed;
  ASSERT_TRUE(WaitFor([&] { return ReadInto(**conn, &echoed, payload.size()); }));
  EXPECT_EQ(echoed, payload);

  (*conn)->Close();
  ASSERT_TRUE(WaitFor([&] { return service.registry.stats().graphs_retired == 1; }));
  const services::RegistryStats stats = service.registry.stats();
  EXPECT_EQ(stats.graphs_adopted, 1u);
  EXPECT_EQ(stats.graphs_unwatched, 1u);
  EXPECT_EQ(stats.graphs_retired, 1u);
  EXPECT_EQ(service.registry.live_graphs(), 0u);
  platform.Stop();
}

TEST_F(GraphBuilderTest, TeeDuplicatesStreamToAllSinks) {
  auto mirror_a = transport_.Listen(7101);
  auto mirror_b = transport_.Listen(7102);
  ASSERT_TRUE(mirror_a.ok() && mirror_b.ok());

  auto& platform = MakePlatform();
  TeeMirrorService service(7101, 7102);
  ASSERT_TRUE(platform.RegisterProgram(7100, &service).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(7100);
  ASSERT_TRUE(conn.ok());
  std::unique_ptr<Connection> peer_a, peer_b;
  ASSERT_TRUE(WaitFor([&] {
    if (peer_a == nullptr) peer_a = (*mirror_a)->Accept();
    if (peer_b == nullptr) peer_b = (*mirror_b)->Accept();
    return peer_a != nullptr && peer_b != nullptr;
  }));

  const std::string payload = "duplicate-this";
  ASSERT_TRUE((*conn)->Write(payload.data(), payload.size()).ok());
  std::string got_a, got_b;
  ASSERT_TRUE(WaitFor([&] { return ReadInto(*peer_a, &got_a, payload.size()); }));
  ASSERT_TRUE(WaitFor([&] { return ReadInto(*peer_b, &got_b, payload.size()); }));
  EXPECT_EQ(got_a, payload);
  EXPECT_EQ(got_b, payload);

  ASSERT_TRUE(WaitFor(
      [&] { return service.launched.load(std::memory_order_acquire); }));
  EXPECT_TRUE(service.last_status.ok());
  EXPECT_EQ(service.last_stats.tees, 1u);
  EXPECT_EQ(service.last_stats.sinks, 2u);
  EXPECT_EQ(service.last_stats.connections, 3u);
  EXPECT_EQ(service.last_stats.watched, 1u);  // only the client leg is read

  // Client close propagates EOF through the tee to both mirror legs and the
  // graph retires through the staged sweeps.
  (*conn)->Close();
  ASSERT_TRUE(WaitFor([&] { return service.registry.stats().graphs_retired == 1; }));
  EXPECT_EQ(service.registry.live_graphs(), 0u);
  platform.Stop();
}

TEST_F(GraphBuilderTest, FailedConnectClosesEstablishedLegs) {
  auto backend = transport_.Listen(7201);
  ASSERT_TRUE(backend.ok());
  auto& platform = MakePlatform();
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  runtime::PlatformEnv& env = platform.env();

  // A client leg (accepted side of a dialled pair).
  auto listener = transport_.Listen(7200);
  ASSERT_TRUE(listener.ok());
  auto client_side = transport_.Connect(7200);
  ASSERT_TRUE(client_side.ok());
  std::unique_ptr<Connection> accepted;
  ASSERT_TRUE(WaitFor([&] {
    accepted = (*listener)->Accept();
    return accepted != nullptr;
  }));

  services::GraphRegistry registry;
  services::GraphBuilder b("doomed", env);
  b.Adopt(std::move(accepted));  // the client leg
  auto good = b.Connect(7201);   // establishes a leg
  auto bad = b.Connect(7299);    // nobody listens here -> poisons the builder
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(good.valid());
  EXPECT_FALSE(bad.valid());

  std::unique_ptr<Connection> backend_peer;
  ASSERT_TRUE(WaitFor([&] {
    backend_peer = (*backend)->Accept();
    return backend_peer != nullptr;
  }));

  const Status status = b.Launch(registry);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(registry.stats().graphs_adopted, 0u);

  // Both already-open legs must be closed: peers observe EOF.
  char buf[16];
  EXPECT_TRUE(WaitFor([&] { return !backend_peer->Read(buf, sizeof(buf)).ok(); }));
  EXPECT_TRUE(WaitFor([&] { return !(*client_side)->Read(buf, sizeof(buf)).ok(); }));
  platform.Stop();
}

TEST_F(GraphBuilderTest, AbandonedBuilderClosesLegsOnDestruction) {
  auto& platform = MakePlatform();
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  runtime::PlatformEnv& env = platform.env();

  auto listener = transport_.Listen(7300);
  ASSERT_TRUE(listener.ok());
  auto client_side = transport_.Connect(7300);
  ASSERT_TRUE(client_side.ok());
  std::unique_ptr<Connection> accepted;
  ASSERT_TRUE(WaitFor([&] {
    accepted = (*listener)->Accept();
    return accepted != nullptr;
  }));

  {
    services::GraphBuilder b("abandoned", env);
    b.Adopt(std::move(accepted));
    // No Launch: the builder goes out of scope with an un-launched leg.
  }
  char buf[16];
  EXPECT_TRUE(WaitFor([&] { return !(*client_side)->Read(buf, sizeof(buf)).ok(); }));
  platform.Stop();
}

TEST_F(GraphBuilderTest, ValidationRejectsMalformedTopology) {
  auto& platform = MakePlatform();
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  runtime::PlatformEnv& env = platform.env();

  auto listener = transport_.Listen(7400);
  ASSERT_TRUE(listener.ok());
  auto client_side = transport_.Connect(7400);
  ASSERT_TRUE(client_side.ok());
  std::unique_ptr<Connection> accepted;
  ASSERT_TRUE(WaitFor([&] {
    accepted = (*listener)->Accept();
    return accepted != nullptr;
  }));

  services::GraphRegistry registry;
  services::GraphBuilder b("dangling", env);
  auto client = b.Adopt(std::move(accepted));
  // Source with no consumer: must be rejected, not launched half-wired.
  b.Source("in", client, std::make_unique<runtime::RawDeserializer>());
  const Status status = b.Launch(registry);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.live_graphs(), 0u);
  char buf[16];
  EXPECT_TRUE(WaitFor([&] { return !(*client_side)->Read(buf, sizeof(buf)).ok(); }));

  // Stage with no outputs: its handler's first Emit(0, ...) would index an
  // empty vector at run time, so Launch must reject it up front.
  auto client2_side = transport_.Connect(7400);
  ASSERT_TRUE(client2_side.ok());
  std::unique_ptr<Connection> accepted2;
  ASSERT_TRUE(WaitFor([&] {
    accepted2 = (*listener)->Accept();
    return accepted2 != nullptr;
  }));
  services::GraphBuilder b2("sinkless", env);
  auto client2 = b2.Adopt(std::move(accepted2));
  auto in2 = b2.Source("in", client2, std::make_unique<runtime::RawDeserializer>());
  b2.Stage("drop",
           [](runtime::Msg&, size_t, runtime::EmitContext&) {
             return runtime::HandleResult::kConsumed;
           })
      .From(in2);
  const Status status2 = b2.Launch(registry);
  EXPECT_EQ(status2.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.live_graphs(), 0u);
  EXPECT_TRUE(WaitFor([&] { return !(*client2_side)->Read(buf, sizeof(buf)).ok(); }));
  platform.Stop();
}

TEST_F(GraphBuilderTest, RejectsSecondWriterOnOneConnection) {
  auto& platform = MakePlatform();
  platform.Start();
  ScopedPlatformStop stop_guard(platform);
  runtime::PlatformEnv& env = platform.env();

  auto listener = transport_.Listen(7450);
  ASSERT_TRUE(listener.ok());
  auto client_side = transport_.Connect(7450);
  ASSERT_TRUE(client_side.ok());
  std::unique_ptr<Connection> accepted;
  ASSERT_TRUE(WaitFor([&] {
    accepted = (*listener)->Accept();
    return accepted != nullptr;
  }));

  services::GraphRegistry registry;
  services::GraphBuilder b("double-writer", env);
  auto client = b.Adopt(std::move(accepted));
  auto in = b.Source("in", client, std::make_unique<runtime::RawDeserializer>());
  auto tee = b.Tee("tee").From(in);
  b.Sink("out-1", client, std::make_unique<runtime::RawSerializer>()).From(tee);
  // A second OutputTask on the same wire would interleave partial writes;
  // the builder must reject it at declaration time.
  b.Sink("out-2", client, std::make_unique<runtime::RawSerializer>()).From(tee);
  EXPECT_FALSE(b.ok());
  const Status status = b.Launch(registry);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.live_graphs(), 0u);
  platform.Stop();
}

TEST_F(GraphBuilderTest, MemcachedProxyBackendConnectFailureClosesAllLegs) {
  // One real backend; the second port is dead. The k-th connect failure must
  // close the established leg AND the client (the pre-builder code leaked
  // the established backend connections).
  auto backend = transport_.Listen(7501);
  ASSERT_TRUE(backend.ok());

  auto& platform = MakePlatform();
  services::MemcachedProxyService::Options options;
  options.wire.mode = services::BackendMode::kPerClient;  // dedicated dialled legs
  services::MemcachedProxyService proxy({7501, 7599}, options);
  ASSERT_TRUE(platform.RegisterProgram(7500, &proxy).ok());
  platform.Start();
  ScopedPlatformStop stop_guard(platform);

  auto conn = transport_.Connect(7500);
  ASSERT_TRUE(conn.ok());

  std::unique_ptr<Connection> backend_peer;
  ASSERT_TRUE(WaitFor([&] {
    backend_peer = (*backend)->Accept();
    return backend_peer != nullptr;
  }));

  char buf[16];
  EXPECT_TRUE(WaitFor([&] { return !backend_peer->Read(buf, sizeof(buf)).ok(); }))
      << "established backend leg must be closed when a later connect fails";
  EXPECT_TRUE(WaitFor([&] { return !(*conn)->Read(buf, sizeof(buf)).ok(); }));
  EXPECT_EQ(proxy.live_graphs(), 0u);
  platform.Stop();
}

}  // namespace
}  // namespace flick
