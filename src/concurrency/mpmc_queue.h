// Mutex-based bounded MPMC queue. Control-path use only (cross-thread
// hand-off of connections and completion notices); data-path queues are the
// lock-free SPSC rings.
#ifndef FLICK_CONCURRENCY_MPMC_QUEUE_H_
#define FLICK_CONCURRENCY_MPMC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace flick {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t max_size = SIZE_MAX) : max_size_(max_size) {}

  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.size() >= max_size_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  // Blocks until an item arrives or `Close()` is called (then nullopt).
  std::optional<T> PopBlocking() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t max_size_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace flick

#endif  // FLICK_CONCURRENCY_MPMC_QUEUE_H_
