// Bounded lock-free single-producer/single-consumer ring.
//
// Task channels (§5) are SPSC by construction: exactly one upstream task
// produces and one downstream task consumes. Capacity is fixed at creation,
// which is what bounds a task graph's in-flight memory.
#ifndef FLICK_CONCURRENCY_SPSC_RING_H_
#define FLICK_CONCURRENCY_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "base/check.h"

namespace flick {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; usable slots = capacity.
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity + 1) {  // one slot is sacrificed to distinguish full/empty
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when full; the value is only moved from on
  // success, so a failed push leaves the caller's object intact (required for
  // lossless backpressure on move-only payloads).
  bool TryPush(T&& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  bool TryPush(const T& value) { return TryPush(T(value)); }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  // Consumer-side peek without consuming.
  T* Front() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return &slots_[tail];
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  size_t capacity() const { return mask_; }

 private:
  std::unique_ptr<T[]> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};  // next write index (producer-owned)
  alignas(64) std::atomic<size_t> tail_{0};  // next read index (consumer-owned)
};

}  // namespace flick

#endif  // FLICK_CONCURRENCY_SPSC_RING_H_
