// Lock-free SPSC byte ring: the per-direction pipe of a simulated TCP
// connection. Fixed power-of-two capacity; reads/writes move bytes with at
// most two memcpys (wrap-around).
#ifndef FLICK_CONCURRENCY_SPSC_BYTE_RING_H_
#define FLICK_CONCURRENCY_SPSC_BYTE_RING_H_

#include <atomic>
#include <cstring>
#include <memory>

namespace flick {

class SpscByteRing {
 public:
  explicit SpscByteRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    data_ = std::make_unique<uint8_t[]>(cap);
  }

  SpscByteRing(const SpscByteRing&) = delete;
  SpscByteRing& operator=(const SpscByteRing&) = delete;

  // Producer: writes up to `len` bytes, returns bytes written (may be 0).
  size_t Write(const void* src, size_t len) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t free_space = mask_ + 1 - (head - tail);
    size_t n = len < free_space ? len : free_space;
    if (n == 0) {
      return 0;
    }
    const size_t pos = head & mask_;
    const size_t first = n < (mask_ + 1 - pos) ? n : (mask_ + 1 - pos);
    std::memcpy(data_.get() + pos, src, first);
    if (n > first) {
      std::memcpy(data_.get(), static_cast<const uint8_t*>(src) + first, n - first);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Consumer: reads up to `len` bytes, returns bytes read (may be 0).
  size_t Read(void* dst, size_t len) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t avail = head - tail;
    size_t n = len < avail ? len : avail;
    if (n == 0) {
      return 0;
    }
    const size_t pos = tail & mask_;
    const size_t first = n < (mask_ + 1 - pos) ? n : (mask_ + 1 - pos);
    std::memcpy(dst, data_.get() + pos, first);
    if (n > first) {
      std::memcpy(static_cast<uint8_t*>(dst) + first, data_.get(), n - first);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  size_t ReadableBytes() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  size_t WritableBytes() const { return mask_ + 1 - ReadableBytes(); }
  size_t capacity() const { return mask_ + 1; }

 private:
  std::unique_ptr<uint8_t[]> data_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace flick

#endif  // FLICK_CONCURRENCY_SPSC_BYTE_RING_H_
