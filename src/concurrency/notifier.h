// Wake-up primitive for idle worker threads (§5: a worker "sleeps until new
// work arrives"). Notify() is cheap when nobody waits; epoch counting avoids
// lost wakeups between the work check and the wait.
#ifndef FLICK_CONCURRENCY_NOTIFIER_H_
#define FLICK_CONCURRENCY_NOTIFIER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace flick {

class Notifier {
 public:
  // Returns a token to pass to Wait(); any Notify() after PrepareWait()
  // cancels the subsequent Wait().
  uint64_t PrepareWait() {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  void Wait(uint64_t token, std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return epoch_ != token; });
  }

  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++epoch_;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
};

}  // namespace flick

#endif  // FLICK_CONCURRENCY_NOTIFIER_H_
