// Deterministic pseudo-random source for workload generators and property
// tests. xoshiro256** — fast, seedable, reproducible across platforms.
#ifndef FLICK_BASE_RNG_H_
#define FLICK_BASE_RNG_H_

#include <cstdint>

#include "base/hash.h"

namespace flick {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    // SplitMix64 expansion of the seed into four non-zero lanes.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x = MixU64(x);
      lane = x | 1;  // keep lanes non-zero
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace flick

#endif  // FLICK_BASE_RNG_H_
