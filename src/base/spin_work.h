// Calibrated CPU burn used by the SimTransport cost models (DESIGN.md §2).
//
// The paper's kernel-vs-mTCP comparison is driven by per-connection and
// per-syscall CPU overheads. We model those as real work on the caller's
// core (so the scheduler feels them) rather than sleeps (which would free the
// core and distort the experiment).
#ifndef FLICK_BASE_SPIN_WORK_H_
#define FLICK_BASE_SPIN_WORK_H_

#include <atomic>
#include <cstdint>

namespace flick {

// Executes roughly `units` iterations of a dependency-chained integer loop.
// One unit is a few cycles; cost knobs in net/ are expressed in units.
inline void SpinWork(uint64_t units) {
  volatile uint64_t acc = 0x9e3779b97f4a7c15ull;
  for (uint64_t i = 0; i < units; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

}  // namespace flick

#endif  // FLICK_BASE_SPIN_WORK_H_
