// Endian-aware loads/stores used by the grammar engine and protocol parsers.
// FLICK grammars declare a %byteorder per unit (Listing 2); these helpers do
// the wire <-> host transformation byte-by-byte so they are safe on any
// alignment and any host endianness.
#ifndef FLICK_BASE_BYTE_ORDER_H_
#define FLICK_BASE_BYTE_ORDER_H_

#include <cstdint>
#include <cstddef>

namespace flick {

enum class ByteOrder { kBig, kLittle };

// Loads `size` bytes (1..8) starting at `p` as an unsigned integer.
inline uint64_t LoadUInt(const uint8_t* p, size_t size, ByteOrder order) {
  uint64_t v = 0;
  if (order == ByteOrder::kBig) {
    for (size_t i = 0; i < size; ++i) {
      v = (v << 8) | p[i];
    }
  } else {
    for (size_t i = size; i > 0; --i) {
      v = (v << 8) | p[i - 1];
    }
  }
  return v;
}

// Stores the low `size` bytes of `v` at `p`.
inline void StoreUInt(uint8_t* p, size_t size, ByteOrder order, uint64_t v) {
  if (order == ByteOrder::kBig) {
    for (size_t i = size; i > 0; --i) {
      p[i - 1] = static_cast<uint8_t>(v & 0xff);
      v >>= 8;
    }
  } else {
    for (size_t i = 0; i < size; ++i) {
      p[i] = static_cast<uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

}  // namespace flick

#endif  // FLICK_BASE_BYTE_ORDER_H_
