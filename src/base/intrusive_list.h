// Intrusive doubly-linked list (fbl-style). The scheduler's run queues and the
// graph pool free list use it so that queue operations never allocate.
//
// A type T participates by embedding an `IntrusiveListNode` and passing a
// member pointer to the list template. An element may be on at most one list
// per node at a time; insertion while linked is a CHECK failure.
#ifndef FLICK_BASE_INTRUSIVE_LIST_H_
#define FLICK_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "base/check.h"

namespace flick {

struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;
  void* owner = nullptr;  // back-pointer to the containing object, set on insert

  bool linked() const { return prev != nullptr; }
};

template <typename T, IntrusiveListNode T::* Node>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  size_t size() const { return size_; }

  void PushBack(T* item) { InsertBefore(&head_, item); }
  void PushFront(T* item) { InsertBefore(head_.next, item); }

  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    IntrusiveListNode* n = head_.next;
    T* item = static_cast<T*>(n->owner);
    Unlink(n);
    return item;
  }

  T* Front() { return empty() ? nullptr : static_cast<T*>(head_.next->owner); }

  // Successor of a linked `item`, or nullptr at the tail. With Front() this
  // gives bounded in-place scans (the scheduler's selective cross-group
  // steal) without materialising an iterator type.
  T* Next(const T* item) const {
    const IntrusiveListNode* n = (item->*Node).next;
    return n == &head_ ? nullptr : static_cast<T*>(n->owner);
  }

  // Removes `item` from this list. `item` must be linked.
  void Remove(T* item) {
    IntrusiveListNode* n = &(item->*Node);
    FLICK_CHECK(n->linked());
    Unlink(n);
  }

  static bool IsLinked(const T* item) { return (item->*Node).linked(); }

 private:
  void InsertBefore(IntrusiveListNode* pos, T* item) {
    IntrusiveListNode* n = &(item->*Node);
    FLICK_CHECK(!n->linked());
    n->owner = item;
    n->prev = pos->prev;
    n->next = pos;
    pos->prev->next = n;
    pos->prev = n;
    ++size_;
  }

  void Unlink(IntrusiveListNode* n) {
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    --size_;
  }

  IntrusiveListNode head_;
  size_t size_ = 0;
};

}  // namespace flick

#endif  // FLICK_BASE_INTRUSIVE_LIST_H_
