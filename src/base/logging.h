// Minimal leveled logging. Thread safe, writes to stderr; meant for control
// path only (never on the per-message data path).
#ifndef FLICK_BASE_LOGGING_H_
#define FLICK_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace flick {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace flick

#define FLICK_LOG(level)                                                                  \
  if (::flick::LogLevel::k##level < ::flick::GetLogLevel()) {                             \
  } else                                                                                  \
    ::flick::internal::LogMessage(::flick::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // FLICK_BASE_LOGGING_H_
