#include "base/histogram.h"

#include <bit>
#include <cstdio>

namespace flick {

int Histogram::BucketIndex(uint64_t value) {
  if (value < kMinor) {
    return static_cast<int>(value);
  }
  const int log2 = 63 - std::countl_zero(value);
  const int major = log2 - 3;  // values < 16 handled above; 16..31 -> major 1 block
  const uint64_t minor = (value >> (log2 - 4)) & (kMinor - 1);
  int index = major * kMinor + static_cast<int>(minor);
  if (index >= kMajor * kMinor) {
    index = kMajor * kMinor - 1;
  }
  return index;
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kMinor) {
    return static_cast<uint64_t>(index);
  }
  const int major = index / kMinor;
  const int minor = index % kMinor;
  // Bucket (major, minor) covers [2^log2 + minor*step, 2^log2 + (minor+1)*step)
  // with step = 2^(log2-4), i.e. 16 linear sub-buckets per power of two.
  const int log2 = major + 3;
  const uint64_t base = 1ull << log2;
  const uint64_t step = 1ull << (log2 - 4);
  return base + static_cast<uint64_t>(minor + 1) * step;
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))]++;
  count_++;
  sum_ += value;
  if (count_ == 1 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      const uint64_t bound = BucketUpperBound(static_cast<int>(i));
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.1f p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Quantile(0.5)),
                static_cast<unsigned long long>(Quantile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace flick
