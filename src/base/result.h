// Error handling vocabulary for the FLICK codebase.
//
// The platform avoids exceptions on the data path (Core Guidelines E.*: use
// error codes where failures are expected and frequent). `Status` carries a
// code plus a short message; `Result<T>` is a Status-or-value.
#ifndef FLICK_BASE_RESULT_H_
#define FLICK_BASE_RESULT_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "base/check.h"

namespace flick {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // pool empty, queue full, ...
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,        // transient transport failure (e.g. peer closed)
  kParseError,         // wire data did not match the grammar
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kParseError: return "parse_error";
  }
  return "unknown";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "ok";
    }
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string_view m) {
  return Status(StatusCode::kInvalidArgument, std::string(m));
}
inline Status NotFound(std::string_view m) { return Status(StatusCode::kNotFound, std::string(m)); }
inline Status ResourceExhausted(std::string_view m) {
  return Status(StatusCode::kResourceExhausted, std::string(m));
}
inline Status FailedPrecondition(std::string_view m) {
  return Status(StatusCode::kFailedPrecondition, std::string(m));
}
inline Status OutOfRange(std::string_view m) {
  return Status(StatusCode::kOutOfRange, std::string(m));
}
inline Status Internal(std::string_view m) { return Status(StatusCode::kInternal, std::string(m)); }
inline Status Unavailable(std::string_view m) {
  return Status(StatusCode::kUnavailable, std::string(m));
}
inline Status ParseError(std::string_view m) {
  return Status(StatusCode::kParseError, std::string(m));
}

// Status-or-value. `value()` CHECKs on error; callers on fallible paths should
// test `ok()` first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    FLICK_CHECK(!std::get<Status>(rep_).ok());           // Ok statuses must carry a value.
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    FLICK_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    FLICK_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    FLICK_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace flick

#define FLICK_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::flick::Status status_ = (expr);        \
    if (!status_.ok()) {                     \
      return status_;                        \
    }                                        \
  } while (false)

#endif  // FLICK_BASE_RESULT_H_
