// Lightweight invariant-checking macros.
//
// FLICK_CHECK is always on (fail-fast on broken invariants, per the platform's
// "no undefined behaviour on the data path" rule); FLICK_DCHECK compiles out
// in NDEBUG builds and is meant for hot paths.
#ifndef FLICK_BASE_CHECK_H_
#define FLICK_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace flick {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FLICK_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace flick

#define FLICK_CHECK(expr)                            \
  do {                                               \
    if (!(expr)) {                                   \
      ::flick::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                \
  } while (false)

#ifdef NDEBUG
#define FLICK_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define FLICK_DCHECK(expr) FLICK_CHECK(expr)
#endif

#endif  // FLICK_BASE_CHECK_H_
