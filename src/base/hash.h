// Hashing used for (a) request dispatch in services (backend selection by
// key / 4-tuple, §6.1) and (b) task->worker-queue affinity (§5).
#ifndef FLICK_BASE_HASH_H_
#define FLICK_BASE_HASH_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace flick {

// FNV-1a, 64-bit. Deterministic across runs so dispatch decisions are
// reproducible in tests and benches.
inline uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashBytes(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

// 64->64 bit finalizer (splitmix64); good avalanche for small integer keys
// such as task ids.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace flick

#endif  // FLICK_BASE_HASH_H_
