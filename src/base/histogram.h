// Log-bucketed latency histogram (HdrHistogram-style, fixed memory).
// Used by load generators to report mean/percentile latency for the paper's
// figures without allocating per-sample.
#ifndef FLICK_BASE_HISTOGRAM_H_
#define FLICK_BASE_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace flick {

// Records values in [1, ~1e9] (nanoseconds in practice) with <= ~4% relative
// error: 64 power-of-two major buckets x 16 linear minor buckets.
class Histogram {
 public:
  Histogram() { Reset(); }

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // q in [0, 1]; returns an upper bound of the bucket containing the quantile.
  uint64_t Quantile(double q) const;

  std::string Summary() const;  // "n=... mean=... p50=... p99=... max=..."

 private:
  static constexpr int kMajor = 64;
  static constexpr int kMinor = 16;

  static int BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(int index);

  std::array<uint64_t, kMajor * kMinor> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace flick

#endif  // FLICK_BASE_HISTOGRAM_H_
