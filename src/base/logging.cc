#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flick {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& message) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), basename, line, message.c_str());
}

}  // namespace internal
}  // namespace flick
