// Monotonic-clock helpers. All runtime deadlines (timeslice threshold, bench
// measurement windows) are expressed in nanoseconds off the steady clock.
#ifndef FLICK_BASE_TIME_UTIL_H_
#define FLICK_BASE_TIME_UTIL_H_

#include <chrono>
#include <cstdint>

namespace flick {

inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}
  void Restart() { start_ = MonotonicNanos(); }
  uint64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }

 private:
  uint64_t start_;
};

}  // namespace flick

#endif  // FLICK_BASE_TIME_UTIL_H_
