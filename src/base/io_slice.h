// A non-owning view of one contiguous byte segment, used to hand scatter-
// gather lists across layers: BufferChain exposes its readable buffers as
// IoSlices without flattening, and Connection::Writev turns them into one
// vectored transport write (kernel `writev`/`sendmsg`, or a segment-
// preserving copy on the sim fabric). Layout mirrors `struct iovec`.
#ifndef FLICK_BASE_IO_SLICE_H_
#define FLICK_BASE_IO_SLICE_H_

#include <cstddef>

namespace flick {

struct IoSlice {
  const void* data = nullptr;
  size_t len = 0;
};

// Writable counterpart for the scatter (read) direction: BufferChain hands
// out its reserved buffers' writable space as MutIoSlices and
// Connection::Readv fills them in order (kernel `readv`/`recvmsg`, or a
// segment-preserving copy on the sim fabric).
struct MutIoSlice {
  void* data = nullptr;
  size_t len = 0;
};

// Slices gathered per vectored write. Small enough for a stack array and
// below every platform's IOV_MAX; callers loop when a chain has more
// segments than this.
inline constexpr size_t kMaxIoSlices = 64;

}  // namespace flick

#endif  // FLICK_BASE_IO_SLICE_H_
