#include "runtime/msg.h"

namespace flick::runtime {

MsgRef& MsgRef::operator=(MsgRef&& other) noexcept {
  if (this != &other) {
    Release();
    msg_ = other.msg_;
    pool_ = other.pool_;
    other.msg_ = nullptr;
    other.pool_ = nullptr;
  }
  return *this;
}

void MsgRef::Release() {
  if (msg_ != nullptr) {
    if (pool_ != nullptr) {
      pool_->Release(msg_);
    } else {
      delete msg_;
    }
    msg_ = nullptr;
    pool_ = nullptr;
  }
}

MsgPool::MsgPool(size_t count, MsgPool* spill) : spill_(spill) {
  storage_.reserve(count);
  free_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    storage_.push_back(std::make_unique<Msg>());
    free_.push_back(storage_.back().get());
  }
}

MsgPool::~MsgPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  FLICK_CHECK(free_.size() == storage_.size());  // all messages returned
}

MsgRef MsgPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      Msg* msg = free_.back();
      free_.pop_back();
      msg->Clear();
      return MsgRef(msg, this);
    }
    if (spill_ != nullptr) {
      ++slice_spills_;
    } else {
      ++overflow_;
    }
  }
  if (spill_ != nullptr) {
    // Slice dry: the spill pool serves the acquire (and owns the release —
    // MsgRef carries the acquiring pool). The spill pool counts its own miss
    // if it is dry too.
    return spill_->Acquire();
  }
  // Pool dry: heap-allocate an unpooled message (freed on release).
  return MsgRef(new Msg(), nullptr);
}

void MsgPool::Release(Msg* msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(msg);
}

size_t MsgPool::pool_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflow_;
}

size_t MsgPool::slice_spills() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slice_spills_;
}

}  // namespace flick::runtime
