#include "runtime/msg.h"

namespace flick::runtime {

MsgRef& MsgRef::operator=(MsgRef&& other) noexcept {
  if (this != &other) {
    Release();
    msg_ = other.msg_;
    pool_ = other.pool_;
    other.msg_ = nullptr;
    other.pool_ = nullptr;
  }
  return *this;
}

void MsgRef::Release() {
  if (msg_ != nullptr) {
    if (pool_ != nullptr) {
      pool_->Release(msg_);
    } else {
      delete msg_;
    }
    msg_ = nullptr;
    pool_ = nullptr;
  }
}

MsgPool::MsgPool(size_t count) {
  storage_.reserve(count);
  free_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    storage_.push_back(std::make_unique<Msg>());
    free_.push_back(storage_.back().get());
  }
}

MsgPool::~MsgPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  FLICK_CHECK(free_.size() == storage_.size());  // all messages returned
}

MsgRef MsgPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      Msg* msg = free_.back();
      free_.pop_back();
      msg->Clear();
      return MsgRef(msg, this);
    }
    ++overflow_;
  }
  // Pool dry: heap-allocate an unpooled message (freed on release).
  return MsgRef(new Msg(), nullptr);
}

void MsgPool::Release(Msg* msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(msg);
}

size_t MsgPool::overflow_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflow_;
}

}  // namespace flick::runtime
