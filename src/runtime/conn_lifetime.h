// Per-connection lifetime plane: deadlines + admission, layered on the
// timer wheel.
//
// "Millions of users" mostly means millions of mostly-idle keep-alive
// connections punctuated by bursts — and nothing in the runtime could expire
// an idle wire, bound a stalled request, or cap how many connections a shard
// accepts. This module supplies the three missing pieces, as per-shard state
// the IO plane owns (The Socket Store's argument: connection lifetime
// bookkeeping belongs in one runtime layer, not scattered per service):
//
//   * ConnDeadline — one connection's deadline state machine: an idle
//     keep-alive window while the wire is quiescent, and a slowloris-style
//     progress deadline while a message is partially parsed (armed on first
//     byte, re-armed on progress). Fires NEVER touch the connection: the
//     timer callback records which window expired and notifies the owning
//     task, which closes its own wire on its next run slice and counts the
//     reason — so a deadline close is exactly as race-free as an EOF.
//   * ShardAdmission — a shard-local connection cap with shed-on-overflow:
//     accept-then-close, counted, so a full shard degrades by refusing new
//     wires instead of collapsing under them.
//   * AdmittedConn — RAII: the admission slot is released when the accepted
//     connection is destroyed, whichever path (graph retirement, poisoned
//     launch, service drop) destroys it.
#ifndef FLICK_RUNTIME_CONN_LIFETIME_H_
#define FLICK_RUNTIME_CONN_LIFETIME_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/transport.h"
#include "runtime/scheduler.h"
#include "runtime/task.h"
#include "runtime/timer_wheel.h"

namespace flick::runtime {

// Platform-level lifetime policy, handed to services through PlatformEnv and
// overridable per GraphBuilder/service Options. 0 always means "disabled".
struct ConnLifetimeConfig {
  // Close a client connection with no in-flight message after this long
  // without bytes (keep-alive reclamation).
  uint64_t idle_timeout_ns = 0;
  // Close a client connection holding a PARTIAL message that makes no
  // progress for this long (slowloris: a half-sent request line must never
  // pin a graph). Progress re-arms the window.
  uint64_t header_deadline_ns = 0;
  // Admission cap per IO shard; connections accepted past it are shed
  // (accept-then-close, counted).
  size_t max_conns_per_shard = 0;

  bool deadlines_enabled() const {
    return idle_timeout_ns != 0 || header_deadline_ns != 0;
  }
};

// Lifetime counters (relaxed atomics: bumped by worker tasks and the accept
// path, read off-thread by registries/benches).
struct ConnLifetimeCounters {
  std::atomic<uint64_t> idle_closed{0};      // idle keep-alive window expired
  std::atomic<uint64_t> deadline_closed{0};  // header/body progress deadline
  std::atomic<uint64_t> admissions_shed{0};  // accepted past the cap, closed
};

// One connection's deadline state machine. Embedded in the owning IO task;
// all hooks except the timer fire run inside the task's Run (serialized).
// Disabled (zero-cost beyond a few words) until Enable is called.
class ConnDeadline {
 public:
  enum class Expiry : uint8_t { kNone = 0, kIdle, kProgress };

  ~ConnDeadline() { Cancel(); }

  // Arms nothing yet; `wheel` is the owning shard's, `task` is notified on
  // fire, `counters` receives the close reasons. Call before IO activation.
  void Enable(TimerWheel* wheel, Scheduler* scheduler, Task* task,
              const ConnLifetimeConfig& config, ConnLifetimeCounters* counters);
  bool enabled() const { return wheel_ != nullptr; }

  // Run-side transitions. `now_ns` is the caller's clock read.
  // Quiescent: no partial message buffered — guard the idle window.
  void OnQuiescent(uint64_t now_ns);
  // A message is partially parsed; `progressed` = this slice moved bytes.
  // First byte arms the progress window, progress re-arms it, a stalled
  // slice leaves it running down.
  void OnPartialMessage(uint64_t now_ns, bool progressed);
  // Wire closed / owner teardown: no further fires for this entry.
  void Cancel();

  // Consumes a pending expiry. The owner passes whether each reason is still
  // PLAUSIBLE given what it can see now (a fire that raced fresh bytes is
  // stale — dropped here, and the slice-end hook re-arms).
  Expiry ConsumeExpiry(bool idle_plausible, bool progress_plausible);

  // Records the close. The owner closes its own wire; this only counts.
  void CountClose(Expiry expiry);

 private:
  TimerWheel* wheel_ = nullptr;
  Scheduler* scheduler_ = nullptr;
  Task* task_ = nullptr;
  uint64_t idle_timeout_ns_ = 0;
  uint64_t progress_deadline_ns_ = 0;
  ConnLifetimeCounters* counters_ = nullptr;
  TimerEntry entry_;
  // Which window the pending entry guards (written Run-side, read by the
  // fire callback on the poller thread).
  std::atomic<Expiry> armed_kind_{Expiry::kNone};
  std::atomic<Expiry> expired_{Expiry::kNone};
};

// Shard-local admission: one per IoPoller. TryAdmit runs on the poller
// thread's accept path; Release runs from whatever thread destroys the
// admitted connection.
class ShardAdmission {
 public:
  void set_cap(size_t max_conns) { cap_ = max_conns; }
  size_t cap() const { return cap_; }

  // Claims a slot. False = over cap; the caller closes the connection (the
  // shed is counted here).
  bool TryAdmit();
  void Release() { live_.fetch_sub(1, std::memory_order_relaxed); }

  size_t live() const { return live_.load(std::memory_order_relaxed); }
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return counters_.admissions_shed.load(std::memory_order_relaxed); }
  ConnLifetimeCounters& counters() { return counters_; }

 private:
  size_t cap_ = 0;  // 0 = unlimited
  std::atomic<size_t> live_{0};
  std::atomic<uint64_t> admitted_{0};
  ConnLifetimeCounters counters_;  // only admissions_shed is used here
};

// Forwarding Connection that returns its admission slot on destruction. The
// platform wraps every admitted accept in one before the service sees it, so
// no service/builder path can leak a slot.
class AdmittedConn : public Connection {
 public:
  AdmittedConn(std::unique_ptr<Connection> inner, ShardAdmission* admission)
      : inner_(std::move(inner)), admission_(admission) {}
  ~AdmittedConn() override { admission_->Release(); }

  Result<size_t> Read(void* buf, size_t len) override { return inner_->Read(buf, len); }
  Result<size_t> Readv(const MutIoSlice* slices, size_t count) override {
    return inner_->Readv(slices, count);
  }
  Result<size_t> Write(const void* buf, size_t len) override {
    return inner_->Write(buf, len);
  }
  Result<size_t> Writev(const IoSlice* slices, size_t count) override {
    return inner_->Writev(slices, count);
  }
  void Close() override { inner_->Close(); }
  bool IsOpen() const override { return inner_->IsOpen(); }
  bool ReadReady() const override { return inner_->ReadReady(); }
  bool SetReadReadyHook(std::function<void()> hook) override {
    return inner_->SetReadReadyHook(std::move(hook));
  }
  uint64_t id() const override { return inner_->id(); }

 private:
  std::unique_ptr<Connection> inner_;
  ShardAdmission* admission_;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_CONN_LIFETIME_H_
