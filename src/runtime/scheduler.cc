#include "runtime/scheduler.h"

#include <pthread.h>
#include <sched.h>

#include <chrono>

#include "base/hash.h"
#include "base/logging.h"

namespace flick::runtime {

Scheduler::Scheduler(SchedulerConfig config) : config_(config) {
  FLICK_CHECK(config_.num_workers > 0);
  const size_t n = static_cast<size_t>(config_.num_workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }

  // Group layout: clamp to [1, num_workers] so every group owns at least one
  // worker (a zero-width group would strand its pinned tasks forever), split
  // as evenly as possible with the leading groups taking the remainder.
  size_t groups = config_.shard_groups == 0 ? 1 : config_.shard_groups;
  if (groups > n) {
    groups = n;
  }
  group_begin_.reserve(groups);
  const size_t base = n / groups;
  const size_t rem = n % groups;
  size_t begin = 0;
  for (size_t g = 0; g < groups; ++g) {
    group_begin_.push_back(static_cast<int>(begin));
    begin += base + (g < rem ? 1 : 0);
  }
  for (size_t g = 0; g < groups; ++g) {
    const int end =
        g + 1 < groups ? group_begin_[g + 1] : config_.num_workers;
    for (int w = group_begin_[g]; w < end; ++w) {
      workers_[static_cast<size_t>(w)]->group = static_cast<int>(g);
    }
  }
}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread = std::thread([this, i] { WorkerLoop(i); });
    if (config_.pin_threads) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<size_t>(i) % std::thread::hardware_concurrency(), &set);
      // Best effort; pinning failures (e.g. restricted cpusets) are benign.
      pthread_setaffinity_np(workers_[static_cast<size_t>(i)]->thread.native_handle(),
                             sizeof(set), &set);
    }
  }
}

void Scheduler::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    return;
  }
  for (auto& w : workers_) {
    w->notifier.Notify();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  // Workers are gone: drain leftovers so retirement paths (Quiesce) cannot
  // hang on a task parked in kQueued forever, and count them instead of
  // letting the drop pass silently.
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    while (Task* task = w->queue.PopFront()) {
      task->sched_state.store(Task::SchedState::kIdle, std::memory_order_release);
      tasks_dropped_at_stop_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

int Scheduler::group_begin(size_t shard) const {
  return group_begin_[shard % group_begin_.size()];
}

int Scheduler::group_end(size_t shard) const {
  const size_t g = shard % group_begin_.size();
  return g + 1 < group_begin_.size() ? group_begin_[g + 1] : config_.num_workers;
}

int Scheduler::HomeQueue(const Task* task) const {
  const uint64_t key = task->affinity_key != 0 ? task->affinity_key : task->id();
  if (task->shard_affinity >= 0 && group_begin_.size() > 1) {
    // Pinned: hash within the home group's worker range only.
    const auto shard = static_cast<size_t>(task->shard_affinity);
    const int begin = group_begin(shard);
    const int size = group_end(shard) - begin;
    return begin + static_cast<int>(MixU64(key) % static_cast<uint64_t>(size));
  }
  return static_cast<int>(MixU64(key) % static_cast<uint64_t>(config_.num_workers));
}

void Scheduler::Enqueue(Task* task) {
  Worker& w = *workers_[static_cast<size_t>(HomeQueue(task))];
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.queue.PushBack(task);
  }
  w.notifier.Notify();
}

void Scheduler::NotifyRunnable(Task* task) {
  notifications_.fetch_add(1, std::memory_order_relaxed);
  auto state = task->sched_state.load(std::memory_order_acquire);
  while (true) {
    switch (state) {
      case Task::SchedState::kIdle:
        if (task->sched_state.compare_exchange_weak(state, Task::SchedState::kQueued,
                                                    std::memory_order_acq_rel)) {
          Enqueue(task);
          return;
        }
        break;  // state reloaded; retry
      case Task::SchedState::kRunning:
        if (task->sched_state.compare_exchange_weak(state, Task::SchedState::kRunningNotified,
                                                    std::memory_order_acq_rel)) {
          return;  // the running worker will requeue on return
        }
        break;
      case Task::SchedState::kQueued:
      case Task::SchedState::kRunningNotified:
        return;  // already pending
      default:
        // Out-of-range state: the task memory is not a live Task (freed or
        // corrupted). Crash loudly — spinning here turns a lifecycle bug
        // into a silent 100%-CPU hang.
        FLICK_CHECK(false && "NotifyRunnable: corrupt sched_state");
    }
  }
}

void Scheduler::Quiesce(Task* task) {
  while (task->sched_state.load(std::memory_order_acquire) != Task::SchedState::kIdle) {
    std::this_thread::yield();
  }
}

Task* Scheduler::PopLocal(Worker& w) {
  std::lock_guard<std::mutex> lock(w.mutex);
  return w.queue.PopFront();
}

Task* Scheduler::Steal(int thief_index) {
  // Shard-local first: scan the thief's own group round-robin starting after
  // the thief (§5: "the worker attempts to scavenge work from other queues").
  // Any task may move inside its group — pinning constrains the group, not
  // the worker.
  Worker& self = *workers_[static_cast<size_t>(thief_index)];
  const int gbegin = group_begin(static_cast<size_t>(self.group));
  const int gsize = group_end(static_cast<size_t>(self.group)) - gbegin;
  for (int d = 1; d < gsize; ++d) {
    const int v = gbegin + (thief_index - gbegin + d) % gsize;
    Worker& victim = *workers_[static_cast<size_t>(v)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    Task* task = victim.queue.PopFront();
    if (task != nullptr) {
      return task;
    }
  }
  if (group_begin_.size() == 1) {
    return nullptr;  // single group: the scan above covered every sibling
  }
  // Cross-group: take only UNPINNED tasks. Pinned work never leaves its home
  // group, which is what keeps cross_shard_steals == 0 assertable when every
  // task is pinned (the sharded benches).
  const int n = config_.num_workers;
  for (int d = 1; d < n; ++d) {
    const int v = (thief_index + d) % n;
    Worker& victim = *workers_[static_cast<size_t>(v)];
    if (victim.group == self.group) {
      continue;
    }
    std::lock_guard<std::mutex> lock(victim.mutex);
    for (Task* task = victim.queue.Front(); task != nullptr;
         task = victim.queue.Next(task)) {
      if (task->shard_affinity < 0) {
        victim.queue.Remove(task);
        self.cross_shard_steals.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return nullptr;
}

void Scheduler::WorkerLoop(int index) {
  pthread_setname_np(pthread_self(),
                     ("flick-wrk-" + std::to_string(index)).c_str());
  Worker& self = *workers_[static_cast<size_t>(index)];
  TaskContext ctx(config_.policy, config_.timeslice_ns, index);

  while (running_.load(std::memory_order_acquire)) {
    Task* task = PopLocal(self);
    if (task == nullptr) {
      task = Steal(index);
      if (task != nullptr) {
        self.steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (task == nullptr) {
      const uint64_t token = self.notifier.PrepareWait();
      // Re-check after arming the waiter to avoid a lost wakeup.
      {
        std::lock_guard<std::mutex> lock(self.mutex);
        if (!self.queue.empty()) {
          continue;
        }
      }
      if (!running_.load(std::memory_order_acquire)) {
        break;
      }
      self.notifier.Wait(token, std::chrono::nanoseconds(config_.idle_sleep_ns));
      continue;
    }

    task->sched_state.store(Task::SchedState::kRunning, std::memory_order_release);
    ctx.BeginSlice();
    const uint64_t t0 = MonotonicNanos();
    const TaskRunResult result = task->Run(ctx);
    task->run_ns.fetch_add(MonotonicNanos() - t0, std::memory_order_relaxed);
    task->run_count.fetch_add(1, std::memory_order_relaxed);
    self.tasks_run.fetch_add(1, std::memory_order_relaxed);

    auto state = Task::SchedState::kRunning;
    if (result == TaskRunResult::kMoreWork) {
      task->sched_state.store(Task::SchedState::kQueued, std::memory_order_release);
      Enqueue(task);
    } else if (!task->sched_state.compare_exchange_strong(state, Task::SchedState::kIdle,
                                                          std::memory_order_acq_rel)) {
      // A notification arrived while running: requeue.
      task->sched_state.store(Task::SchedState::kQueued, std::memory_order_release);
      Enqueue(task);
    }
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  for (const auto& w : workers_) {
    s.tasks_run += w->tasks_run.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.cross_shard_steals += w->cross_shard_steals.load(std::memory_order_relaxed);
  }
  s.notifications = notifications_.load(std::memory_order_relaxed);
  s.tasks_dropped_at_stop = tasks_dropped_at_stop_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flick::runtime
