#include "runtime/scheduler.h"

#include <pthread.h>
#include <sched.h>

#include <chrono>

#include "base/hash.h"
#include "base/logging.h"

namespace flick::runtime {

Scheduler::Scheduler(SchedulerConfig config) : config_(config) {
  FLICK_CHECK(config_.num_workers > 0);
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread = std::thread([this, i] { WorkerLoop(i); });
    if (config_.pin_threads) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<size_t>(i) % std::thread::hardware_concurrency(), &set);
      // Best effort; pinning failures (e.g. restricted cpusets) are benign.
      pthread_setaffinity_np(workers_[static_cast<size_t>(i)]->thread.native_handle(),
                             sizeof(set), &set);
    }
  }
}

void Scheduler::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    return;
  }
  for (auto& w : workers_) {
    w->notifier.Notify();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

int Scheduler::HomeQueue(const Task* task) const {
  const uint64_t key = task->affinity_key != 0 ? task->affinity_key : task->id();
  return static_cast<int>(MixU64(key) % static_cast<uint64_t>(config_.num_workers));
}

void Scheduler::Enqueue(Task* task) {
  Worker& w = *workers_[static_cast<size_t>(HomeQueue(task))];
  {
    std::lock_guard<std::mutex> lock(w.mutex);
    w.queue.PushBack(task);
  }
  w.notifier.Notify();
}

void Scheduler::NotifyRunnable(Task* task) {
  notifications_.fetch_add(1, std::memory_order_relaxed);
  auto state = task->sched_state.load(std::memory_order_acquire);
  while (true) {
    switch (state) {
      case Task::SchedState::kIdle:
        if (task->sched_state.compare_exchange_weak(state, Task::SchedState::kQueued,
                                                    std::memory_order_acq_rel)) {
          Enqueue(task);
          return;
        }
        break;  // state reloaded; retry
      case Task::SchedState::kRunning:
        if (task->sched_state.compare_exchange_weak(state, Task::SchedState::kRunningNotified,
                                                    std::memory_order_acq_rel)) {
          return;  // the running worker will requeue on return
        }
        break;
      case Task::SchedState::kQueued:
      case Task::SchedState::kRunningNotified:
        return;  // already pending
      default:
        // Out-of-range state: the task memory is not a live Task (freed or
        // corrupted). Crash loudly — spinning here turns a lifecycle bug
        // into a silent 100%-CPU hang.
        FLICK_CHECK(false && "NotifyRunnable: corrupt sched_state");
    }
  }
}

void Scheduler::Quiesce(Task* task) {
  while (task->sched_state.load(std::memory_order_acquire) != Task::SchedState::kIdle) {
    std::this_thread::yield();
  }
}

Task* Scheduler::PopLocal(Worker& w) {
  std::lock_guard<std::mutex> lock(w.mutex);
  return w.queue.PopFront();
}

Task* Scheduler::Steal(int thief_index) {
  // Scan siblings round-robin starting after the thief (§5: "the worker
  // attempts to scavenge work from other queues").
  const int n = config_.num_workers;
  for (int d = 1; d < n; ++d) {
    Worker& victim = *workers_[static_cast<size_t>((thief_index + d) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    Task* task = victim.queue.PopFront();
    if (task != nullptr) {
      return task;
    }
  }
  return nullptr;
}

void Scheduler::WorkerLoop(int index) {
  pthread_setname_np(pthread_self(),
                     ("flick-wrk-" + std::to_string(index)).c_str());
  Worker& self = *workers_[static_cast<size_t>(index)];
  TaskContext ctx(config_.policy, config_.timeslice_ns, index);

  while (running_.load(std::memory_order_acquire)) {
    Task* task = PopLocal(self);
    if (task == nullptr) {
      task = Steal(index);
      if (task != nullptr) {
        self.steals++;
      }
    }
    if (task == nullptr) {
      const uint64_t token = self.notifier.PrepareWait();
      // Re-check after arming the waiter to avoid a lost wakeup.
      {
        std::lock_guard<std::mutex> lock(self.mutex);
        if (!self.queue.empty()) {
          continue;
        }
      }
      if (!running_.load(std::memory_order_acquire)) {
        break;
      }
      self.notifier.Wait(token, std::chrono::nanoseconds(config_.idle_sleep_ns));
      continue;
    }

    task->sched_state.store(Task::SchedState::kRunning, std::memory_order_release);
    ctx.BeginSlice();
    const uint64_t t0 = MonotonicNanos();
    const TaskRunResult result = task->Run(ctx);
    task->run_ns.fetch_add(MonotonicNanos() - t0, std::memory_order_relaxed);
    task->run_count.fetch_add(1, std::memory_order_relaxed);
    self.tasks_run++;

    auto state = Task::SchedState::kRunning;
    if (result == TaskRunResult::kMoreWork) {
      task->sched_state.store(Task::SchedState::kQueued, std::memory_order_release);
      Enqueue(task);
    } else if (!task->sched_state.compare_exchange_strong(state, Task::SchedState::kIdle,
                                                          std::memory_order_acq_rel)) {
      // A notification arrived while running: requeue.
      task->sched_state.store(Task::SchedState::kQueued, std::memory_order_release);
      Enqueue(task);
    }
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  for (const auto& w : workers_) {
    s.tasks_run += w->tasks_run;
    s.steals += w->steals;
  }
  s.notifications = notifications_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flick::runtime
