// Hierarchical timer wheel: the runtime's ONE source of time.
//
// The IO plane had no notion of time beyond the poller's fixed sweep —
// reapers polled every sweep, redial pacing hid inside per-connection
// timestamps, and nothing could expire an idle wire or bound a stalled
// request. The wheel makes deadlines first-class: every IoPoller shard owns
// one TimerWheel, drives it from its sweep loop, and derives its idle sleep
// from the wheel's next deadline.
//
// Layout: kLevels levels of kSlotsPerLevel slots each. Level 0 slots are one
// tick (~1ms) wide; each higher level's slots are kSlotsPerLevel times wider,
// so four levels cover ~19 years of deadline at millisecond granularity.
// Arm/Cancel/Rearm are O(1): a TimerEntry is an intrusive doubly-linked node
// hashed to slot (deadline / slot_width) % kSlotsPerLevel of the first level
// whose horizon contains it. Advance walks the slots the clock crossed,
// firing level-0 entries and CASCADING higher-level entries down one level
// (counted in TimerStats::cascade_moves) — the classic hashed hierarchical
// design (Varghese & Lauck).
//
// Threading: Arm/Cancel/Rearm may be called from any thread (worker tasks
// arm their own deadlines); Advance runs on the owning poller thread.
// Callbacks fire OUTSIDE the wheel lock, on the poller thread, after the
// entry is unlinked — a callback may re-arm its own entry. Cancel only
// guarantees the callback will not fire for entries still pending; an entry
// being fired concurrently is the owner's race to close (the runtime's
// pattern: callbacks only set a flag and notify a task, never touch state
// the owner might be freeing).
#ifndef FLICK_RUNTIME_TIMER_WHEEL_H_
#define FLICK_RUNTIME_TIMER_WHEEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/intrusive_list.h"

namespace flick::runtime {

// One pending deadline. Embed in the owning object (task, stripe, graph
// record); the owner must Cancel (or know the entry fired) before the entry
// is destroyed. POD-cheap when idle: an unlinked entry costs three pointers.
struct TimerEntry {
  IntrusiveListNode wheel_node;           // slot linkage
  uint64_t deadline_ns = 0;               // absolute, monotonic clock
  std::function<void()> on_fire;          // poller thread, outside the lock

  bool pending() const { return wheel_node.linked(); }
};

// Monotonic wheel health counters (relaxed; read off-thread by stats/benches).
struct TimerStats {
  uint64_t armed = 0;
  uint64_t fired = 0;
  uint64_t cancelled = 0;
  uint64_t cascade_moves = 0;  // entries re-hashed down a level by Advance
};

class TimerWheel {
 public:
  static constexpr size_t kLevels = 4;
  static constexpr size_t kSlotsPerLevel = 256;
  // ~1.05ms; power of two so slot math is shifts, not divides.
  static constexpr uint64_t kDefaultTickNs = uint64_t{1} << 20;
  static constexpr uint64_t kNoDeadline = UINT64_MAX;

  // `now_ns` anchors the wheel clock (deadlines at or before it fire on the
  // first Advance).
  explicit TimerWheel(uint64_t now_ns, uint64_t tick_ns = kDefaultTickNs);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  uint64_t tick_ns() const { return tick_ns_; }

  // Schedules `entry` to fire at `deadline_ns` (absolute). `entry->on_fire`
  // must already be set. Arming a pending entry is a CHECK failure — use
  // Rearm. A deadline in the past fires on the next Advance.
  void Arm(TimerEntry* entry, uint64_t deadline_ns);

  // Unschedules a pending entry. Returns false when the entry was not
  // pending (never armed, already fired, or firing right now on the poller
  // thread).
  bool Cancel(TimerEntry* entry);

  // Cancel + Arm under one lock (deadline moved forward on IO progress).
  void Rearm(TimerEntry* entry, uint64_t deadline_ns);

  // Fires every entry whose deadline lies at or before `now_ns`, cascading
  // higher levels as their slots are crossed. Runs on the owning poller
  // thread; callbacks run outside the lock. Returns the number fired.
  size_t Advance(uint64_t now_ns);

  // Earliest pending deadline, or kNoDeadline when the wheel is empty. The
  // answer is slot-granular above level 0 (an upper bound never LATER than
  // the true deadline is returned, so sleeping until it can never miss a
  // fire). Used by the poller's adaptive idle sleep.
  uint64_t NextDeadlineNs() const;

  size_t armed_count() const { return armed_count_.load(std::memory_order_relaxed); }
  TimerStats stats() const;

  // --- periodic timers -------------------------------------------------------
  // Self-owning repeating timer: `fn` runs on the poller thread every
  // `interval_ns` until it returns true (finished), after which the timer
  // destroys itself. This is the replacement for the old IoPoller reaper
  // list, with the cancellation handle reapers never had: CancelPeriodic
  // guarantees `fn` never runs again once it returns.
  uint64_t AddPeriodic(uint64_t interval_ns, std::function<bool()> fn);
  bool CancelPeriodic(uint64_t token);

  // AddPeriodic with exponential backoff: the interval doubles after every
  // false return, from `min_interval_ns` up to `max_interval_ns`. For cheap
  // convergence checks (graph retirement) that must not cost a tick-rate
  // poll per instance when 100k of them sit idle. Cancel via CancelPeriodic.
  uint64_t AddBackoffPoll(uint64_t min_interval_ns, uint64_t max_interval_ns,
                          std::function<bool()> fn);

 private:
  struct Periodic {
    TimerEntry entry;
    uint64_t token = 0;
    uint64_t interval_ns = 0;
    uint64_t max_interval_ns = 0;  // 0 = fixed interval
    std::function<bool()> fn;
  };

  uint64_t AddPeriodicImpl(uint64_t interval_ns, uint64_t max_interval_ns,
                           std::function<bool()> fn);

  struct Slot {
    IntrusiveList<TimerEntry, &TimerEntry::wheel_node> entries;
  };

  // Hashes `deadline_ns` to its (level, slot) under lock and links the entry.
  void ArmLocked(TimerEntry* entry, uint64_t deadline_ns);
  // Earliest future tick at which any occupied slot drains (UINT64_MAX when
  // the wheel is empty) — lets Advance skip empty stretches wholesale.
  uint64_t NextEventTickLocked() const;
  // Pops every entry of `slot`, re-arming (cascade) or collecting (fire).
  void DrainSlotLocked(size_t level, size_t slot_index,
                       std::vector<TimerEntry*>& fire_list);

  const uint64_t tick_ns_;

  mutable std::mutex mutex_;
  uint64_t current_tick_;  // ticks since epoch, floor(now / tick_ns)
  std::vector<std::vector<Slot>> levels_;

  // Periodic bookkeeping. A periodic being FIRED is temporarily detached
  // from the map (owned by Advance's stack); cancelling it then lands in
  // cancelled_detached_ so the fire path drops it instead of re-arming.
  std::unordered_map<uint64_t, std::unique_ptr<Periodic>> periodics_;
  std::vector<uint64_t> cancelled_detached_;
  uint64_t next_periodic_token_ = 1;

  std::atomic<size_t> armed_count_{0};
  std::atomic<uint64_t> armed_total_{0};
  std::atomic<uint64_t> fired_total_{0};
  std::atomic<uint64_t> cancelled_total_{0};
  std::atomic<uint64_t> cascade_moves_{0};
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_TIMER_WHEEL_H_
