// Cooperative task scheduler (§5).
//
//   * fixed worker pool, one FIFO run queue per worker, threads pinned to
//     cores (best effort);
//   * task -> queue affinity by hash of the task id ("when a task is to be
//     scheduled, it is always added to the same queue to reduce cache
//     misses");
//   * idle workers scavenge work from sibling queues, then sleep until
//     notified;
//   * the policy (cooperative / non-cooperative / round-robin, §6.4) decides
//     when TaskContext::ShouldYield() fires inside Task::Run.
#ifndef FLICK_RUNTIME_SCHEDULER_H_
#define FLICK_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/intrusive_list.h"
#include "concurrency/notifier.h"
#include "runtime/task.h"

namespace flick::runtime {

struct SchedulerConfig {
  int num_workers = 2;
  SchedulingPolicy policy = SchedulingPolicy::kCooperative;
  uint64_t timeslice_ns = 50'000;  // 50us, middle of the paper's 10-100us band
  bool pin_threads = true;
  uint64_t idle_sleep_ns = 100'000;  // sleep bound while queues are empty
};

struct SchedulerStats {
  uint64_t tasks_run = 0;
  uint64_t steals = 0;
  uint64_t notifications = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void Start();
  void Stop();  // drains nothing: pending queue entries are dropped

  // Marks `task` runnable. Safe from any thread, including from inside
  // Task::Run. The task must outlive the scheduler or be quiesced first
  // (see Quiesce).
  void NotifyRunnable(Task* task);

  // Blocks until `task` is neither queued nor running. Callers must ensure no
  // further notifications for the task arrive; used when retiring graphs.
  void Quiesce(Task* task);

  const SchedulerConfig& config() const { return config_; }
  SchedulerStats stats() const;
  int num_workers() const { return config_.num_workers; }

 private:
  struct Worker {
    std::mutex mutex;
    IntrusiveList<Task, &Task::queue_node> queue;
    Notifier notifier;
    std::thread thread;
    uint64_t tasks_run = 0;
    uint64_t steals = 0;
  };

  void WorkerLoop(int index);
  Task* PopLocal(Worker& w);
  Task* Steal(int thief_index);
  int HomeQueue(const Task* task) const;
  void Enqueue(Task* task);

  SchedulerConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> notifications_{0};
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_SCHEDULER_H_
