// Cooperative task scheduler (§5).
//
//   * fixed worker pool, one FIFO run queue per worker, threads pinned to
//     cores (best effort);
//   * task -> queue affinity by hash of the task id ("when a task is to be
//     scheduled, it is always added to the same queue to reduce cache
//     misses");
//   * idle workers scavenge work from sibling queues, then sleep until
//     notified;
//   * the policy (cooperative / non-cooperative / round-robin, §6.4) decides
//     when TaskContext::ShouldYield() fires inside Task::Run.
//
// Share-nothing shard groups: with shard_groups > 1 the workers are
// partitioned into per-IO-shard groups. A shard-pinned task
// (Task::shard_affinity >= 0) lives entirely inside its home group — queued
// there, run there, stolen only by that group's workers — so a graph
// accepted on shard k keeps its compute on the cores whose caches hold
// shard k's buffers (the Seastar/mTCP endgame of the sharded IO plane).
// Stealing is ordered shard-local-first: an idle worker scavenges its own
// group's queues before looking outside, and a cross-group steal takes only
// UNPINNED tasks (counted in SchedulerStats::cross_shard_steals) — pinned
// work never migrates, which is what makes cross_shard_steals == 0
// assertable in steady state.
#ifndef FLICK_RUNTIME_SCHEDULER_H_
#define FLICK_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/intrusive_list.h"
#include "concurrency/notifier.h"
#include "runtime/task.h"

namespace flick::runtime {

struct SchedulerConfig {
  int num_workers = 2;
  SchedulingPolicy policy = SchedulingPolicy::kCooperative;
  uint64_t timeslice_ns = 50'000;  // 50us, middle of the paper's 10-100us band
  bool pin_threads = true;
  uint64_t idle_sleep_ns = 100'000;  // sleep bound while queues are empty

  // Worker groups for shard-pinned tasks. 0 or 1 = one group spanning every
  // worker (the pre-sharding shape; shard_affinity is then ignored). The
  // Platform derives this from PlatformConfig::io_shards when left 0, so a
  // sharded IO plane gets a matching compute plane by default. Clamped to
  // num_workers; workers are split as evenly as possible (leading groups get
  // the remainder), and shard s maps to group s % groups.
  size_t shard_groups = 0;
};

struct SchedulerStats {
  uint64_t tasks_run = 0;
  uint64_t steals = 0;
  uint64_t notifications = 0;
  // Steals that crossed a shard-group boundary (always unpinned tasks —
  // pinned work never migrates). Nonzero in steady state means unpinned work
  // is landing on saturated groups: a placement or sizing bug.
  uint64_t cross_shard_steals = 0;
  // Tasks still queued when Stop() tore the workers down. Each was drained
  // (popped, reset to kIdle) instead of silently vanishing; nonzero at the
  // end of an orderly drain points at a teardown-ordering bug upstream.
  uint64_t tasks_dropped_at_stop = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void Start();
  // Joins the workers, then DRAINS every queue: leftover entries are popped,
  // reset to kIdle (so Quiesce cannot hang on them) and counted in
  // stats().tasks_dropped_at_stop instead of silently vanishing.
  void Stop();

  // Marks `task` runnable. Safe from any thread, including from inside
  // Task::Run. The task must outlive the scheduler or be quiesced first
  // (see Quiesce).
  void NotifyRunnable(Task* task);

  // Blocks until `task` is neither queued nor running. Callers must ensure no
  // further notifications for the task arrive; used when retiring graphs.
  void Quiesce(Task* task);

  const SchedulerConfig& config() const { return config_; }
  SchedulerStats stats() const;
  int num_workers() const { return config_.num_workers; }

  // Resolved group count (config clamped to num_workers; >= 1).
  size_t shard_groups() const { return group_begin_.size(); }
  // Worker-index range [begin, end) of the group serving `shard`.
  int group_begin(size_t shard) const;
  int group_end(size_t shard) const;

 private:
  struct Worker {
    std::mutex mutex;
    IntrusiveList<Task, &Task::queue_node> queue;
    Notifier notifier;
    std::thread thread;
    int group = 0;  // immutable after construction
    // Relaxed atomics: bumped by the owning worker thread, summed by
    // stats() from any thread while workers are still running.
    std::atomic<uint64_t> tasks_run{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> cross_shard_steals{0};
  };

  void WorkerLoop(int index);
  Task* PopLocal(Worker& w);
  Task* Steal(int thief_index);
  int HomeQueue(const Task* task) const;
  void Enqueue(Task* task);

  SchedulerConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // First worker index of each group; group g ends where group g+1 begins
  // (the last group ends at num_workers). size() == resolved group count.
  std::vector<int> group_begin_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> notifications_{0};
  std::atomic<uint64_t> tasks_dropped_at_stop_{0};
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_SCHEDULER_H_
