#include "runtime/platform.h"

#include "base/logging.h"

namespace flick::runtime {

void PlatformEnv::ActivateIo(const std::vector<IoBinding>& bindings) {
  for (const IoBinding& b : bindings) {
    if (b.conn != nullptr && b.task != nullptr) {
      poller->WatchConnection(b.conn, b.task);
    }
  }
  for (const IoBinding& b : bindings) {
    if (b.task != nullptr) {
      scheduler->NotifyRunnable(b.task);
    }
  }
}

Platform::Platform(PlatformConfig config, Transport* transport)
    : config_(config), transport_(transport) {
  scheduler_ = std::make_unique<Scheduler>(config_.scheduler);
  poller_ = std::make_unique<IoPoller>(scheduler_.get(), config_.poll_interval_ns);
  buffers_ = std::make_unique<BufferPool>(config_.io_buffer_count, config_.io_buffer_size);
  msgs_ = std::make_unique<MsgPool>(config_.msg_pool_size);
  state_ = std::make_unique<StateStore>(config_.state_entries_per_dict);
  env_ = PlatformEnv{scheduler_.get(), poller_.get(), buffers_.get(),
                     msgs_.get(),      state_.get(),  transport_};
}

Platform::~Platform() { Stop(); }

Status Platform::RegisterProgram(uint16_t port, ServiceProgram* program) {
  auto listener = transport_->Listen(port);
  if (!listener.ok()) {
    return listener.status();
  }
  Listener* raw = listener->get();
  listeners_.push_back(std::move(listener).value());
  poller_->AddListener(raw, [this, program](std::unique_ptr<Connection> conn) {
    program->OnConnection(std::move(conn), env_);
  });
  FLICK_LOG(Info) << "program '" << program->name() << "' listening on port "
                  << raw->port();
  return OkStatus();
}

void Platform::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  scheduler_->Start();
  poller_->Start();
}

void Platform::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  // Stop accepting/notifying first, then stop workers: no task can be
  // notified once both are down.
  poller_->Stop();
  scheduler_->Stop();
  for (auto& l : listeners_) {
    l->Close();
  }
}

}  // namespace flick::runtime
