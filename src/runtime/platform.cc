#include "runtime/platform.h"

#include "base/logging.h"

namespace flick::runtime {

void PlatformEnv::ActivateIo(const std::vector<IoBinding>& bindings) {
  for (const IoBinding& b : bindings) {
    if (b.conn != nullptr && b.task != nullptr) {
      poller->WatchConnection(b.conn, b.task);
    }
  }
  for (const IoBinding& b : bindings) {
    if (b.task != nullptr) {
      scheduler->NotifyRunnable(b.task);
    }
  }
}

Platform::Platform(PlatformConfig config, Transport* transport)
    : config_(config), transport_(transport) {
  if (config_.io_shards == 0) {
    config_.io_shards = 1;
  }
  // Sharded IO plane => matching compute plane by default: one worker group
  // per shard (unless the caller chose a layout explicitly).
  if (config_.scheduler.shard_groups == 0) {
    config_.scheduler.shard_groups = config_.io_shards;
  }
  scheduler_ = std::make_unique<Scheduler>(config_.scheduler);
  buffers_ = std::make_unique<BufferPool>(config_.io_buffer_count, config_.io_buffer_size);
  msgs_ = std::make_unique<MsgPool>(config_.msg_pool_size);
  if (config_.io_shards > 1) {
    // Share-nothing memory plane: each shard gets a slice sized total/N whose
    // free list only that shard's ingest path touches; the full-size global
    // pool behind it absorbs (counted) bursts. io_shards == 1 keeps the
    // single-pool shape — no slices, no extra footprint.
    const size_t buf_count =
        config_.io_buffer_count / config_.io_shards > 0
            ? config_.io_buffer_count / config_.io_shards : 1;
    const size_t msg_count =
        config_.msg_pool_size / config_.io_shards > 0
            ? config_.msg_pool_size / config_.io_shards : 1;
    buffer_slices_.reserve(config_.io_shards);
    msg_slices_.reserve(config_.io_shards);
    for (size_t s = 0; s < config_.io_shards; ++s) {
      buffer_slices_.push_back(std::make_unique<BufferPool>(
          buf_count, config_.io_buffer_size, buffers_.get()));
      buffer_slice_ptrs_.push_back(buffer_slices_.back().get());
      msg_slices_.push_back(std::make_unique<MsgPool>(msg_count, msgs_.get()));
      msg_slice_ptrs_.push_back(msg_slices_.back().get());
    }
  }
  state_ = std::make_unique<StateStore>(config_.state_entries_per_dict);
  lifetime_config_.idle_timeout_ns = config_.idle_timeout_ns;
  lifetime_config_.header_deadline_ns = config_.header_deadline_ns;
  lifetime_config_.max_conns_per_shard = config_.max_conns_per_shard;
  pollers_.reserve(config_.io_shards);
  for (size_t s = 0; s < config_.io_shards; ++s) {
    pollers_.push_back(std::make_unique<IoPoller>(
        scheduler_.get(), config_.poll_interval_ns, config_.poll_idle_cap_ns));
    pollers_.back()->admission().set_cap(config_.max_conns_per_shard);
    poller_ptrs_.push_back(pollers_.back().get());
  }
  envs_.reserve(config_.io_shards);  // stable: env(k) references survive
  for (size_t s = 0; s < config_.io_shards; ++s) {
    // Sharded: the env's pools are shard s's slices, so everything built
    // through this env (graph sources/sinks, pool stripes) allocates from
    // shard-local free lists.
    BufferPool* buffers = buffer_slices_.empty() ? buffers_.get()
                                                 : buffer_slices_[s].get();
    MsgPool* msgs = msg_slices_.empty() ? msgs_.get() : msg_slices_[s].get();
    PlatformEnv env{scheduler_.get(), pollers_[s].get(), buffers,
                    msgs,            state_.get(),       transport_};
    env.io_shard = s;
    env.io_pollers = &poller_ptrs_;
    if (!buffer_slice_ptrs_.empty()) {
      env.shard_buffer_pools = &buffer_slice_ptrs_;
      env.shard_msg_pools = &msg_slice_ptrs_;
    }
    env.lifetime = &lifetime_config_;
    envs_.push_back(env);
  }
}

uint64_t Platform::pool_slice_spills() const {
  uint64_t n = 0;
  for (const auto& b : buffer_slices_) {
    n += b->stats().slice_spills;
  }
  for (const auto& m : msg_slices_) {
    n += m->slice_spills();
  }
  return n;
}

Platform::~Platform() { Stop(); }

void Platform::AddAccept(size_t shard, Listener* listener, ServiceProgram* program) {
  pollers_[shard]->AddListener(
      listener, [this, program, shard](std::unique_ptr<Connection> conn) {
        // Admission gate: past the shard cap the connection is shed —
        // accepted (so the peer gets a deterministic close, not a SYN
        // backlog stall) then closed, with the shed counted on the shard.
        ShardAdmission& admission = pollers_[shard]->admission();
        if (!admission.TryAdmit()) {
          conn->Close();
          return;
        }
        // The slot travels with the connection: released on destruction,
        // whichever path (retirement, poisoned launch, service drop) gets
        // there.
        auto admitted =
            std::make_unique<AdmittedConn>(std::move(conn), &admission);
        // The accepting shard's env: the whole graph lives on this shard.
        program->OnConnection(std::move(admitted), envs_[shard]);
      });
}

Status Platform::RegisterProgram(uint16_t port, ServiceProgram* program) {
  // Reject duplicate registration HERE: with SO_REUSEPORT on every kernel
  // listening socket (the sharded accept group needs it on the first socket
  // too), the kernel no longer fails the second bind — it would silently
  // split the port's clients between two programs.
  for (uint16_t registered : registered_ports_) {
    if (registered == port) {
      return Status(StatusCode::kAlreadyExists,
                    "port " + std::to_string(port) + " already registered");
    }
  }
  auto listener = transport_->Listen(port);
  if (!listener.ok()) {
    return listener.status();
  }
  Listener* first = listener->get();
  const uint16_t bound_port = first->port();  // resolved if `port` was ephemeral
  registered_ports_.push_back(bound_port);
  listeners_.push_back(std::move(listener).value());
  AddAccept(0, first, program);
  size_t sharded_listeners = 1;
  for (size_t s = 1; s < pollers_.size(); ++s) {
    auto shared = transport_->ListenShared(bound_port);
    if (shared.ok()) {
      Listener* raw = shared->get();
      listeners_.push_back(std::move(shared).value());
      AddAccept(s, raw, program);
      ++sharded_listeners;
    } else {
      // Transport cannot shard the port: every shard drains the one accept
      // queue instead; sweep order distributes the connections.
      AddAccept(s, first, program);
    }
  }
  FLICK_LOG(Info) << "program '" << program->name() << "' listening on port "
                  << bound_port << " across " << pollers_.size() << " io shard(s) ("
                  << sharded_listeners << " listener(s))";
  return OkStatus();
}

void Platform::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  scheduler_->Start();
  for (auto& poller : pollers_) {
    poller->Start();
  }
}

void Platform::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  // Stop accepting/notifying first, then stop workers: no task can be
  // notified once both are down.
  for (auto& poller : pollers_) {
    poller->Stop();
  }
  scheduler_->Stop();
  for (auto& l : listeners_) {
    l->Close();
  }
}

}  // namespace flick::runtime
