#include "runtime/task_graph.h"

namespace flick::runtime {

GraphPool::GraphPool(Factory factory, size_t preallocate) : factory_(std::move(factory)) {
  for (size_t i = 0; i < preallocate; ++i) {
    all_.push_back(factory_());
    free_.PushBack(all_.back().get());
  }
}

TaskGraph* GraphPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TaskGraph* graph = free_.PopFront();
    if (graph != nullptr) {
      return graph;
    }
  }
  // Pool dry: build outside the lock, register under it.
  auto fresh = factory_();
  TaskGraph* raw = fresh.get();
  std::lock_guard<std::mutex> lock(mutex_);
  all_.push_back(std::move(fresh));
  return raw;
}

void GraphPool::Release(TaskGraph* graph) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.PushBack(graph);
}

size_t GraphPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

size_t GraphPool::total_built() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return all_.size();
}

}  // namespace flick::runtime
