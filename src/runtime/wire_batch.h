// Shared machinery of the batched output path: the vectored chain flush used
// by every writer (OutputTask sinks, BackendPool connection tasks) and the
// counters it maintains. One implementation, so the counters mean the same
// thing on every wire and a fix lands everywhere at once.
#ifndef FLICK_RUNTIME_WIRE_BATCH_H_
#define FLICK_RUNTIME_WIRE_BATCH_H_

#include <atomic>
#include <cstdint>

#include "base/io_slice.h"
#include "buffer/buffer_chain.h"
#include "net/transport.h"

namespace flick::runtime {

// Lock-free monotonic max (relaxed: these are statistics, not ordering).
inline void AtomicStoreMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Batching statistics, atomic because registries/tests/stats read them while
// worker threads write.
struct WriteBatchCounters {
  std::atomic<uint64_t> writev_calls{0};    // vectored writes that moved bytes
  std::atomic<uint64_t> flushes_forced{0};  // flushes triggered by high-water
  std::atomic<uint64_t> msgs_per_writev{0}; // high-water msgs coalesced per flush
};

// Flushes `chain` to `conn` as vectored writes (up to kMaxIoSlices segments
// per transport call). Returns false on a fatal wire error; returns true on
// full drain OR transport backpressure (unwritten bytes stay in the chain
// for the next run). `msgs_since_flush` is the caller's count of messages
// serialized since the last successful write: it is attributed to the first
// writev that moves bytes — would-block probes neither count as writes nor
// consume the attribution, so the counters stay meaningful under sustained
// backpressure.
inline bool FlushChainVectored(BufferChain& chain, Connection& conn,
                               WriteBatchCounters& counters,
                               uint64_t& msgs_since_flush) {
  while (!chain.empty()) {
    IoSlice slices[kMaxIoSlices];
    const size_t n = chain.PeekSlices(slices, kMaxIoSlices);
    auto wrote = conn.Writev(slices, n);
    if (!wrote.ok()) {
      return false;
    }
    if (*wrote == 0) {
      return true;  // transport backpressure; retry next run
    }
    counters.writev_calls.fetch_add(1, std::memory_order_relaxed);
    if (msgs_since_flush > 0) {
      AtomicStoreMax(counters.msgs_per_writev, msgs_since_flush);
      msgs_since_flush = 0;
    }
    chain.Consume(*wrote);
  }
  return true;
}

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_WIRE_BATCH_H_
