// The value that flows through task channels.
//
// A Msg carries exactly one of: a parsed grammar message, a parsed HTTP
// message, or a raw byte chunk (pass-through paths, e.g. the HTTP load
// balancer's return leg, §6.1: "no computation or parsing is needed").
// Control metadata rides along: origin connection, selected output index and
// an EOF marker that propagates connection shutdown through the graph.
//
// Msg objects are pooled (MsgPool) so the steady-state data path does not
// allocate; their internal buffers (grammar arena, HTTP strings) retain
// capacity across reuse.
#ifndef FLICK_RUNTIME_MSG_H_
#define FLICK_RUNTIME_MSG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "grammar/message.h"
#include "proto/http.h"

namespace flick::runtime {

struct Msg {
  // kError flows DOWN the reply path of a pooled backend leg in place of the
  // response that will never arrive (wire lost, deadline expired, retries
  // exhausted, circuit open). `bytes` carries a short reason; dispatch stages
  // translate it into a protocol-level error (502, memcached error status) so
  // clients fail fast instead of hanging to the detach timeout.
  enum class Kind { kGrammar, kHttp, kBytes, kEof, kError };

  Kind kind = Kind::kBytes;
  grammar::Message gmsg;
  proto::HttpMessage http;
  std::string bytes;

  uint64_t conn_id = 0;   // connection the message arrived on
  int route = -1;         // compute-task routing decision (output index)

  void Clear() {
    kind = Kind::kBytes;
    bytes.clear();
    http.Reset();
    conn_id = 0;
    route = -1;
  }
};

class MsgPool;

// unique_ptr-style handle returning the Msg to its pool.
class MsgRef {
 public:
  MsgRef() = default;
  MsgRef(Msg* msg, MsgPool* pool) : msg_(msg), pool_(pool) {}
  MsgRef(MsgRef&& other) noexcept : msg_(other.msg_), pool_(other.pool_) {
    other.msg_ = nullptr;
    other.pool_ = nullptr;
  }
  MsgRef& operator=(MsgRef&& other) noexcept;
  MsgRef(const MsgRef&) = delete;
  MsgRef& operator=(const MsgRef&) = delete;
  ~MsgRef() { Release(); }

  Msg* get() const { return msg_; }
  Msg* operator->() const { return msg_; }
  Msg& operator*() const { return *msg_; }
  explicit operator bool() const { return msg_ != nullptr; }

  void Release();

 private:
  Msg* msg_ = nullptr;
  MsgPool* pool_ = nullptr;
};

// Pre-allocated message pool. Unlike BufferPool, exhaustion falls back to
// heap allocation with a stat bump (messages are control-plane-sized; hard
// failure would complicate every compute task for little gain).
//
// With `spill` set the pool is a SLICE of `spill` (share-nothing shard
// slices): a dry free list delegates to the spill pool first (counted in
// slice_spills) and only heap-allocates when the spill pool is dry too.
// Released messages return to the pool they were acquired from (MsgRef
// carries the owner), so spilled acquisitions never pollute the slice.
class MsgPool {
 public:
  explicit MsgPool(size_t count, MsgPool* spill = nullptr);
  ~MsgPool();

  MsgRef Acquire();

  // Acquires that found the free list dry and fell back to the HEAP — the
  // uncounted-exhaustion fix: slice sizing is observable instead of silently
  // degrading to malloc on the data path.
  size_t pool_misses() const;
  size_t overflow_count() const { return pool_misses(); }

  // Acquires this slice delegated to its spill parent (0 for non-slices).
  size_t slice_spills() const;

  // Spill parent (null for the global pool). Stats aggregators walk this to
  // reach the global pool's heap-miss counter through a slice.
  MsgPool* spill() const { return spill_; }

 private:
  friend class MsgRef;
  void Release(Msg* msg);

  mutable std::mutex mutex_;
  MsgPool* const spill_;
  std::vector<std::unique_ptr<Msg>> storage_;
  std::vector<Msg*> free_;
  size_t overflow_ = 0;
  size_t slice_spills_ = 0;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_MSG_H_
