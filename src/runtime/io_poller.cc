#include "runtime/io_poller.h"

#include <chrono>

namespace flick::runtime {

IoPoller::~IoPoller() { Stop(); }

void IoPoller::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void IoPoller::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void IoPoller::AddListener(Listener* listener, AcceptFn on_accept) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.push_back(ListenerEntry{listener, std::move(on_accept)});
}

void IoPoller::RemoveListener(Listener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(listeners_, [&](const ListenerEntry& e) { return e.listener == listener; });
}

void IoPoller::WatchConnection(Connection* conn, Task* task) {
  std::lock_guard<std::mutex> lock(mutex_);
  watches_.push_back(Watch{conn, task});
}

void IoPoller::UnwatchConnection(Connection* conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(watches_, [&](const Watch& w) { return w.conn == conn; });
}

void IoPoller::AddReaper(ReaperFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  reapers_.push_back(std::move(fn));
}

void IoPoller::Loop() {
  while (running_.load(std::memory_order_acquire)) {
    bool did_work = false;

    // Accept pending connections. The callback may mutate the registries
    // (WatchConnection etc.), so collect outside the lock.
    std::vector<std::pair<AcceptFn*, std::unique_ptr<Connection>>> accepted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (ListenerEntry& entry : listeners_) {
        // Drain up to a batch per sweep per listener to bound hold time.
        for (int i = 0; i < 64; ++i) {
          auto conn = entry.listener->Accept();
          if (conn == nullptr) {
            break;
          }
          accepted.emplace_back(&entry.on_accept, std::move(conn));
        }
      }
    }
    for (auto& [fn, conn] : accepted) {
      (*fn)(std::move(conn));
      did_work = true;
    }

    // Readiness notifications. Tasks are only poked when idle; a queued or
    // running task will see the data itself.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const Watch& w : watches_) {
        if (w.conn->ReadReady() &&
            w.task->sched_state.load(std::memory_order_acquire) ==
                Task::SchedState::kIdle) {
          scheduler_->NotifyRunnable(w.task);
          did_work = true;
        }
      }
    }

    // Retirement checks.
    std::vector<ReaperFn> reapers;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      reapers.swap(reapers_);
    }
    if (!reapers.empty()) {
      std::vector<ReaperFn> keep;
      for (ReaperFn& fn : reapers) {
        if (!fn()) {
          keep.push_back(std::move(fn));
        } else {
          did_work = true;
        }
      }
      std::lock_guard<std::mutex> lock(mutex_);
      for (ReaperFn& fn : keep) {
        reapers_.push_back(std::move(fn));
      }
    }

    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (!did_work) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(sweep_interval_ns_));
    }
  }
}

}  // namespace flick::runtime
