#include "runtime/io_poller.h"

#include <pthread.h>

#include <algorithm>
#include <chrono>

#include "base/time_util.h"

namespace flick::runtime {

IoPoller::IoPoller(Scheduler* scheduler, uint64_t sweep_interval_ns,
                   uint64_t idle_sleep_cap_ns)
    : scheduler_(scheduler),
      sweep_interval_ns_(sweep_interval_ns == 0 ? 1 : sweep_interval_ns),
      idle_sleep_cap_ns_(std::max(idle_sleep_cap_ns, sweep_interval_ns_)),
      wheel_(MonotonicNanos()) {}

IoPoller::~IoPoller() { Stop(); }

void IoPoller::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void IoPoller::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void IoPoller::AddListener(Listener* listener, AcceptFn on_accept) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.push_back(ListenerEntry{listener, std::move(on_accept)});
}

void IoPoller::RemoveListener(Listener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(listeners_, [&](const ListenerEntry& e) { return e.listener == listener; });
}

void IoPoller::WatchConnection(Connection* conn, Task* task) {
  // Prefer the transport's edge hook (sim fabric): the writer notifies the
  // task directly and this connection costs the sweep NOTHING while idle —
  // the property the idle-conn bench gates. The install itself delivers a
  // catch-up notification if bytes already wait. Pure-polling transports
  // decline and join the per-sweep ReadReady() scan.
  const bool hooked = conn->SetReadReadyHook(
      [scheduler = scheduler_, task] { scheduler->NotifyRunnable(task); });
  std::lock_guard<std::mutex> lock(mutex_);
  watches_.push_back(Watch{conn, task, hooked});
}

void IoPoller::UnwatchConnection(Connection* conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(watches_, [&](const Watch& w) {
    if (w.conn != conn) {
      return false;
    }
    if (w.hooked) {
      // Blocks until no hook invocation is in flight: after this, nothing
      // can touch the task, so the graph may be destroyed.
      conn->SetReadReadyHook(nullptr);
    }
    return true;
  });
}

void IoPoller::Loop() {
  pthread_setname_np(pthread_self(), "flick-poller");
  // Consecutive idle sweeps; resets to zero the moment a sweep does work.
  uint64_t idle_streak = 0;
  while (running_.load(std::memory_order_acquire)) {
    const uint64_t sweep_start = MonotonicNanos();
    bool did_work = false;

    // Fire every deadline the clock has crossed since the last sweep.
    if (wheel_.Advance(sweep_start) > 0) {
      did_work = true;
    }

    // Accept pending connections. The callback may mutate the registries
    // (WatchConnection etc.), so collect outside the lock.
    std::vector<std::pair<AcceptFn*, std::unique_ptr<Connection>>> accepted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (ListenerEntry& entry : listeners_) {
        // Drain up to a batch per sweep per listener to bound hold time.
        for (int i = 0; i < 64; ++i) {
          auto conn = entry.listener->Accept();
          if (conn == nullptr) {
            break;
          }
          accepted.emplace_back(&entry.on_accept, std::move(conn));
        }
      }
    }
    for (auto& [fn, conn] : accepted) {
      (*fn)(std::move(conn));
      did_work = true;
    }

    // Readiness notifications for hook-less (pure-polling) transports only;
    // hooked connections are notified by the writer at the write itself.
    // Tasks are only poked when idle; a queued or running task will see the
    // data itself.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const Watch& w : watches_) {
        if (w.hooked) {
          continue;
        }
        if (w.conn->ReadReady() &&
            w.task->sched_state.load(std::memory_order_acquire) ==
                Task::SchedState::kIdle) {
          scheduler_->NotifyRunnable(w.task);
          did_work = true;
        }
      }
    }

    sweeps_.fetch_add(1, std::memory_order_relaxed);
    busy_ns_.fetch_add(MonotonicNanos() - sweep_start, std::memory_order_relaxed);
    if (did_work) {
      idle_streak = 0;
      continue;
    }
    sweeps_idle_.fetch_add(1, std::memory_order_relaxed);

    // Adaptive idle sleep: double from the base interval per consecutive idle
    // sweep up to the cap, but never past the wheel's next deadline — an
    // all-idle shard with 100k armed keep-alive timers wakes at the cap's
    // cadence, not every 5µs, and still fires each timer within a tick.
    uint64_t sleep_ns = sweep_interval_ns_ << std::min<uint64_t>(idle_streak, 20);
    sleep_ns = std::min(sleep_ns, idle_sleep_cap_ns_);
    const uint64_t next_deadline = wheel_.NextDeadlineNs();
    if (next_deadline != TimerWheel::kNoDeadline) {
      const uint64_t now = MonotonicNanos();
      sleep_ns = std::min(
          sleep_ns, next_deadline > now ? next_deadline - now : uint64_t{1});
    }
    ++idle_streak;
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
  }
}

}  // namespace flick::runtime
