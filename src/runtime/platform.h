// The FLICK platform facade (Figure 2).
//
// Owns the scheduler, IO poller, buffer/message pools and global state store;
// hosts program instances. The application dispatcher maps a listening port
// to a program (§5 (i)); each program's OnConnection implements the graph
// dispatcher role (§5 (ii)) — typically via a GraphPool.
//
// Multiple programs share one platform: that is the multi-tenancy the
// cooperative scheduler exists for (§6.4).
#ifndef FLICK_RUNTIME_PLATFORM_H_
#define FLICK_RUNTIME_PLATFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "net/transport.h"
#include "runtime/io_poller.h"
#include "runtime/msg.h"
#include "runtime/scheduler.h"
#include "runtime/state_store.h"
#include "runtime/task_graph.h"

namespace flick::runtime {

struct PlatformConfig {
  SchedulerConfig scheduler;
  size_t io_buffer_count = 4096;
  size_t io_buffer_size = 16 * 1024;
  size_t msg_pool_size = 4096;
  uint64_t poll_interval_ns = 5'000;
  size_t state_entries_per_dict = 65536;
};

// One watched connection of a freshly built graph: readiness events on
// `conn` wake `task` (the graph's input task reading that connection).
struct IoBinding {
  Connection* conn = nullptr;
  Task* task = nullptr;
};

// Everything a program needs to build and run task graphs.
struct PlatformEnv {
  Scheduler* scheduler = nullptr;
  IoPoller* poller = nullptr;
  BufferPool* buffers = nullptr;
  MsgPool* msgs = nullptr;
  StateStore* state = nullptr;
  Transport* transport = nullptr;

  // Activates a graph's IO in one correctly ordered step: every watch is
  // registered before any task is notified, so a readiness event delivered
  // mid-activation cannot schedule one input task ahead of a sibling's
  // registration. Graph assembly code (services::GraphBuilder) must use this
  // instead of interleaving WatchConnection/NotifyRunnable by hand.
  void ActivateIo(const std::vector<IoBinding>& bindings);
};

// A network service: receives each accepted client connection (on the poller
// thread) and wires it into a task graph.
class ServiceProgram {
 public:
  virtual ~ServiceProgram() = default;

  virtual const char* name() const = 0;
  virtual void OnConnection(std::unique_ptr<Connection> conn, PlatformEnv& env) = 0;
};

class Platform {
 public:
  Platform(PlatformConfig config, Transport* transport);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // Application dispatcher: binds `program` to `port`. The platform keeps a
  // non-owning pointer; programs must outlive Stop().
  Status RegisterProgram(uint16_t port, ServiceProgram* program);

  void Start();
  void Stop();

  PlatformEnv& env() { return env_; }
  Scheduler& scheduler() { return *scheduler_; }
  IoPoller& poller() { return *poller_; }
  BufferPool& buffers() { return *buffers_; }
  MsgPool& msgs() { return *msgs_; }
  StateStore& state() { return *state_; }

 private:
  PlatformConfig config_;
  Transport* transport_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<IoPoller> poller_;
  std::unique_ptr<BufferPool> buffers_;
  std::unique_ptr<MsgPool> msgs_;
  std::unique_ptr<StateStore> state_;
  PlatformEnv env_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  bool started_ = false;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_PLATFORM_H_
