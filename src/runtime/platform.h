// The FLICK platform facade (Figure 2).
//
// Owns the scheduler, the IO plane, buffer/message pools and global state
// store; hosts program instances. The application dispatcher maps a listening
// port to a program (§5 (i)); each program's OnConnection implements the graph
// dispatcher role (§5 (ii)) — typically via a GraphPool.
//
// The IO plane is SHARDED (§5's many-small-task-graphs-across-cores scaling):
// `io_shards` IoPoller threads, each owning a slice of the listeners and all
// the connection watches of the graphs launched from it. A connection accepted
// on shard k is wired, watched and retired entirely on shard k's poller —
// the share-nothing per-core event-loop shape (Seastar, mTCP) — so accept
// rate and readiness sweeping scale with shards instead of funnelling through
// one dispatcher thread. Worker threads (the scheduler) stay shared.
//
// Multiple programs share one platform: that is the multi-tenancy the
// cooperative scheduler exists for (§6.4).
#ifndef FLICK_RUNTIME_PLATFORM_H_
#define FLICK_RUNTIME_PLATFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "net/transport.h"
#include "runtime/io_poller.h"
#include "runtime/msg.h"
#include "runtime/scheduler.h"
#include "runtime/state_store.h"
#include "runtime/task_graph.h"

namespace flick::runtime {

struct PlatformConfig {
  SchedulerConfig scheduler;
  size_t io_buffer_count = 4096;
  size_t io_buffer_size = 16 * 1024;
  size_t msg_pool_size = 4096;
  uint64_t poll_interval_ns = 5'000;
  // Cap on a poller shard's adaptive idle sleep (see IoPoller): consecutive
  // idle sweeps back off from poll_interval_ns toward this, bounded by the
  // shard's next timer deadline.
  uint64_t poll_idle_cap_ns = 200'000;
  size_t state_entries_per_dict = 65536;

  // Connection lifetime plane (see runtime/conn_lifetime.h). All zero by
  // default: no deadlines, unlimited admission — existing behaviour.
  // Close accepted connections idle longer than this (0 = never).
  uint64_t idle_timeout_ns = 0;
  // Close accepted connections whose partial request makes no progress for
  // this long (0 = never).
  uint64_t header_deadline_ns = 0;
  // Shed (accept-then-close, counted) connections past this per-shard cap
  // (0 = unlimited).
  size_t max_conns_per_shard = 0;

  // IO poller shards. Each shard accepts on its own listener (SO_REUSEPORT
  // on the kernel transport, round-robin accept groups in the sim) and owns
  // the watches of the graphs launched from it; a BackendPool started
  // through a sharded env stripes its wires one-per-shard. 1 = the single-
  // dispatcher shape.
  size_t io_shards = 1;
};

// One watched connection of a freshly built graph: readiness events on
// `conn` wake `task` (the graph's input task reading that connection).
struct IoBinding {
  Connection* conn = nullptr;
  Task* task = nullptr;
};

// Everything a program needs to build and run task graphs. Under a sharded
// IO plane the platform hands each accepted connection the env of the shard
// that accepted it: `poller` is that shard's poller, so every watch, timer
// and pool stripe derived from this env stays on the accepting shard.
struct PlatformEnv {
  Scheduler* scheduler = nullptr;
  IoPoller* poller = nullptr;
  BufferPool* buffers = nullptr;
  MsgPool* msgs = nullptr;
  StateStore* state = nullptr;
  Transport* transport = nullptr;

  // Which shard this env views the platform from, and the whole IO plane
  // (null for hand-built single-poller envs, e.g. in tests).
  size_t io_shard = 0;
  const std::vector<IoPoller*>* io_pollers = nullptr;

  // Per-shard memory-plane slices (null/empty when the IO plane is unsharded:
  // `buffers`/`msgs` then ARE the whole pools). On a sharded platform
  // `buffers`/`msgs` already point at THIS shard's slice; the vectors exist so
  // cross-shard machinery (BackendPool stripes) can fetch a sibling shard's
  // slice through any env.
  const std::vector<BufferPool*>* shard_buffer_pools = nullptr;
  const std::vector<MsgPool*>* shard_msg_pools = nullptr;

  // Platform-wide connection lifetime policy; null for hand-built envs means
  // "all disabled". Services/builders may override per graph.
  const ConnLifetimeConfig* lifetime = nullptr;

  size_t io_shard_count() const {
    return io_pollers != nullptr && !io_pollers->empty() ? io_pollers->size() : 1;
  }
  IoPoller* shard_poller(size_t shard) const {
    return io_pollers != nullptr && !io_pollers->empty()
               ? (*io_pollers)[shard % io_pollers->size()]
               : poller;
  }
  BufferPool* shard_buffers(size_t shard) const {
    return shard_buffer_pools != nullptr && !shard_buffer_pools->empty()
               ? (*shard_buffer_pools)[shard % shard_buffer_pools->size()]
               : buffers;
  }
  MsgPool* shard_msgs(size_t shard) const {
    return shard_msg_pools != nullptr && !shard_msg_pools->empty()
               ? (*shard_msg_pools)[shard % shard_msg_pools->size()]
               : msgs;
  }

  // Activates a graph's IO in one correctly ordered step: every watch is
  // registered before any task is notified, so a readiness event delivered
  // mid-activation cannot schedule one input task ahead of a sibling's
  // registration. Graph assembly code (services::GraphBuilder) must use this
  // instead of interleaving WatchConnection/NotifyRunnable by hand.
  void ActivateIo(const std::vector<IoBinding>& bindings);
};

// A network service: receives each accepted client connection (on the
// accepting shard's poller thread) and wires it into a task graph.
class ServiceProgram {
 public:
  virtual ~ServiceProgram() = default;

  virtual const char* name() const = 0;
  virtual void OnConnection(std::unique_ptr<Connection> conn, PlatformEnv& env) = 0;
};

class Platform {
 public:
  Platform(PlatformConfig config, Transport* transport);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // Application dispatcher: binds `program` to `port` on EVERY shard. The
  // platform keeps a non-owning pointer; programs must outlive Stop().
  // A port already registered on this platform is rejected here — the
  // sharded accept path sets SO_REUSEPORT on every kernel listening socket,
  // so the kernel would otherwise happily hash clients across two programs.
  Status RegisterProgram(uint16_t port, ServiceProgram* program);

  void Start();
  void Stop();

  // Shard 0's view — the single-shard shape every existing caller expects.
  PlatformEnv& env() { return envs_[0]; }
  PlatformEnv& env(size_t shard) { return envs_[shard]; }
  Scheduler& scheduler() { return *scheduler_; }
  IoPoller& poller(size_t shard = 0) { return *pollers_[shard]; }
  size_t io_shards() const { return pollers_.size(); }
  // The GLOBAL pools. On a sharded platform these are the spill parents of
  // the per-shard slices; env(s).buffers / env(s).msgs are shard s's slices.
  BufferPool& buffers() { return *buffers_; }
  MsgPool& msgs() { return *msgs_; }
  StateStore& state() { return *state_; }

  // Acquires any shard slice (buffer or msg) could not serve locally and
  // delegated to the global spill pool. 0 when unsharded, and 0 in a
  // well-sized sharded steady state — the bench gate asserts exactly that.
  uint64_t pool_slice_spills() const;
  // Heap fallbacks of the message plane (counted on the global pool: slices
  // spill there first and never heap-allocate themselves).
  uint64_t msg_pool_misses() const { return msgs_->pool_misses(); }

 private:
  void AddAccept(size_t shard, Listener* listener, ServiceProgram* program);

  PlatformConfig config_;
  Transport* transport_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<IoPoller>> pollers_;
  std::vector<IoPoller*> poller_ptrs_;  // the plane view shared by every env
  std::unique_ptr<BufferPool> buffers_;
  std::unique_ptr<MsgPool> msgs_;
  // Per-shard slices (empty when io_shards == 1). Declared AFTER the global
  // pools: slices spill into them, so they must be destroyed first.
  std::vector<std::unique_ptr<BufferPool>> buffer_slices_;
  std::vector<std::unique_ptr<MsgPool>> msg_slices_;
  std::vector<BufferPool*> buffer_slice_ptrs_;  // shared by every env
  std::vector<MsgPool*> msg_slice_ptrs_;
  std::unique_ptr<StateStore> state_;
  ConnLifetimeConfig lifetime_config_;  // referenced by every env
  std::vector<PlatformEnv> envs_;  // one per shard; stable after construction
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<uint16_t> registered_ports_;
  bool started_ = false;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_PLATFORM_H_
