// Schedulable unit of computation (§3.2: "A task is a schedulable unit of
// computation. Each task processes a stream of input values and generates a
// stream of output values.").
//
// Contract: Run() processes available input and returns
//   kIdle     — nothing left to do; the task re-enters the scheduler when a
//               channel push or IO readiness notifies it, or
//   kMoreWork — work remains (timeslice expired, downstream full, ...);
//               the scheduler requeues the task at the back of its queue
//               (§5: "placing itself at the back of the queue if it has
//               remaining work to do").
// Long-running loops must poll TaskContext::ShouldYield() at item
// granularity; the FLICK compiler guarantees this for generated code, and
// hand-written tasks in this repo follow the same rule.
#ifndef FLICK_RUNTIME_TASK_H_
#define FLICK_RUNTIME_TASK_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "base/intrusive_list.h"
#include "base/time_util.h"

namespace flick::runtime {

// §6.4 / Figure 7 scheduling policies.
enum class SchedulingPolicy {
  kCooperative,     // yield after a fixed timeslice (FLICK's policy)
  kNonCooperative,  // run until the task has no more work
  kRoundRobin,      // yield after every data item
};

class TaskContext {
 public:
  TaskContext(SchedulingPolicy policy, uint64_t timeslice_ns, int worker_index)
      : policy_(policy), timeslice_ns_(timeslice_ns), worker_index_(worker_index) {}

  // Called by the scheduler immediately before Task::Run.
  void BeginSlice() {
    slice_start_ns_ = MonotonicNanos();
    items_ = 0;
    clock_checks_ = 0;
  }

  // Tasks call this after finishing each data item.
  void ItemDone() { ++items_; }

  // True when the task must return control to the scheduler. Under the
  // cooperative policy the clock is only consulted every few calls: a clock
  // read per data item would dominate small-item workloads.
  bool ShouldYield() {
    switch (policy_) {
      case SchedulingPolicy::kCooperative:
        if (++clock_checks_ < kClockCheckStride) {
          return false;
        }
        clock_checks_ = 0;
        return MonotonicNanos() - slice_start_ns_ >= timeslice_ns_;
      case SchedulingPolicy::kNonCooperative:
        return false;
      case SchedulingPolicy::kRoundRobin:
        return items_ >= 1;
    }
    return false;
  }

  SchedulingPolicy policy() const { return policy_; }
  int worker_index() const { return worker_index_; }
  uint64_t timeslice_ns() const { return timeslice_ns_; }

 private:
  static constexpr uint64_t kClockCheckStride = 8;

  SchedulingPolicy policy_;
  uint64_t timeslice_ns_;
  int worker_index_;
  uint64_t slice_start_ns_ = 0;
  uint64_t items_ = 0;
  uint64_t clock_checks_ = 0;
};

enum class TaskRunResult { kIdle, kMoreWork };

class Task {
 public:
  explicit Task(std::string name)
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)), name_(std::move(name)) {}
  virtual ~Task() = default;

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  virtual TaskRunResult Run(TaskContext& ctx) = 0;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // --- scheduler-owned state -------------------------------------------------
  // Lifecycle: kIdle -> (NotifyRunnable) -> kQueued -> (worker pops) ->
  // kRunning -> back to kIdle or kQueued. A notification that lands while
  // running sets kRunningNotified so the worker requeues after Run returns —
  // this is what makes channel-push wakeups race-free.
  enum class SchedState : uint8_t { kIdle, kQueued, kRunning, kRunningNotified };

  std::atomic<SchedState> sched_state{SchedState::kIdle};
  IntrusiveListNode queue_node;  // guarded by the owning worker queue's lock

  // Queue-affinity key. Tasks of one graph share a key so they land on the
  // same worker queue (§5: rescheduling to the same queue reduces cache
  // misses; it also makes producer->consumer hand-off a queue-local pop
  // instead of a cross-core wakeup). 0 = use the task's own id.
  uint64_t affinity_key = 0;

  // IO-shard pinning (share-nothing compute plane). >= 0 routes the task to
  // the worker GROUP serving shard `shard_affinity % groups` (see
  // SchedulerConfig::shard_groups): the task runs only on that group's
  // workers, so compute stays on the cores whose caches hold the shard's
  // buffers. -1 = unpinned; the task hashes across the whole worker pool and
  // any group may steal it. GraphBuilder stamps launched graphs with the
  // accepting shard; BackendPool stamps each wire task with its stripe.
  int shard_affinity = -1;

  // Aggregate runtime stats (relaxed; read for tests/benches).
  std::atomic<uint64_t> run_count{0};
  std::atomic<uint64_t> run_ns{0};

 private:
  static inline std::atomic<uint64_t> next_id_{1};

  const uint64_t id_;
  const std::string name_;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_TASK_H_
