// Task graph container and pre-allocated graph pool (§5 (ii): "The platform
// maintains a pre-allocated pool of task graphs to avoid the overhead of
// construction").
//
// A TaskGraph owns its tasks and channels. Graphs are built once by a
// factory, bound to live connections by the program's dispatch logic, and
// returned to the pool when all their IO tasks have closed.
#ifndef FLICK_RUNTIME_TASK_GRAPH_H_
#define FLICK_RUNTIME_TASK_GRAPH_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/channel.h"
#include "runtime/io_tasks.h"
#include "runtime/task.h"

namespace flick::runtime {

class TaskGraph {
 public:
  explicit TaskGraph(std::string name)
      : name_(std::move(name)),
        affinity_key_(next_graph_id_.fetch_add(1, std::memory_order_relaxed)) {}

  const std::string& name() const { return name_; }
  uint64_t affinity_key() const { return affinity_key_; }

  // --- construction ----------------------------------------------------------
  Channel* AddChannel(size_t capacity) {
    channels_.push_back(std::make_unique<Channel>(capacity));
    return channels_.back().get();
  }

  template <typename T, typename... Args>
  T* AddTask(Args&&... args) {
    auto task = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = task.get();
    raw->affinity_key = affinity_key_;  // co-schedule the whole graph
    tasks_.push_back(std::move(task));
    if constexpr (std::is_base_of_v<InputTask, T>) {
      input_tasks_.push_back(raw);
    } else if constexpr (std::is_base_of_v<OutputTask, T>) {
      output_tasks_.push_back(raw);
    }
    return raw;
  }

  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }
  const std::vector<InputTask*>& input_tasks() const { return input_tasks_; }
  const std::vector<OutputTask*>& output_tasks() const { return output_tasks_; }
  size_t channel_count() const { return channels_.size(); }

  // True when every IO task has closed its connection — the §5 condition
  // "when a task graph has no more active input channels, it is shut down".
  bool AllIoClosed() const {
    for (const InputTask* t : input_tasks_) {
      if (!t->closed()) {
        return false;
      }
    }
    for (const OutputTask* t : output_tasks_) {
      if (!t->closed()) {
        return false;
      }
    }
    return !input_tasks_.empty() || !output_tasks_.empty();
  }

  IntrusiveListNode pool_node;  // free-list linkage inside GraphPool

 private:
  static inline std::atomic<uint64_t> next_graph_id_{1};

  std::string name_;
  uint64_t affinity_key_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<InputTask*> input_tasks_;
  std::vector<OutputTask*> output_tasks_;
};

// Pool of ready-built graphs for one program. Thread safe.
class GraphPool {
 public:
  using Factory = std::function<std::unique_ptr<TaskGraph>()>;

  GraphPool(Factory factory, size_t preallocate);

  // Pops a pooled graph or builds a fresh one.
  TaskGraph* Acquire();

  // Returns a retired graph to the pool.
  void Release(TaskGraph* graph);

  size_t available() const;
  size_t total_built() const;

 private:
  Factory factory_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TaskGraph>> all_;
  IntrusiveList<TaskGraph, &TaskGraph::pool_node> free_;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_TASK_GRAPH_H_
