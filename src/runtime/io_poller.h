// IO readiness poller.
//
// Plays the role of the event layer under the platform: the application
// dispatcher's accept path for listening sockets (§5 (i)) and the epoll-like
// readiness notification for connection-bound tasks ("input tasks use
// non-blocking sockets and epoll event handlers"). The platform runs
// `io_shards` instances — each is ONE SHARD of the IO plane owning its own
// listeners, watches, timer wheel and admission ledger (see
// runtime/platform.h). One thread sweeps:
//   * listeners — accepted connections are handed to the registered callback
//     (the program's connection-binding logic);
//   * connections — a ReadReady()/WriteReady-equivalent transition notifies
//     the registered task via the scheduler;
//   * the shard's TimerWheel — Advance fires every deadline the clock
//     crossed (connection lifetimes, pool redial pacing, graph retirement).
//
// Sweep pacing is adaptive: a sweep that did work is followed immediately by
// the next one; consecutive idle sweeps back off exponentially from
// `sweep_interval_ns` toward `idle_sleep_cap_ns`, always bounded by the
// wheel's next deadline so a sleeping shard can never fire a timer late by
// more than the cap. `sweeps` vs `sweeps_idle` makes the duty cycle visible.
#ifndef FLICK_RUNTIME_IO_POLLER_H_
#define FLICK_RUNTIME_IO_POLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "runtime/conn_lifetime.h"
#include "runtime/scheduler.h"
#include "runtime/timer_wheel.h"

namespace flick::runtime {

class IoPoller {
 public:
  using AcceptFn = std::function<void(std::unique_ptr<Connection>)>;

  explicit IoPoller(Scheduler* scheduler, uint64_t sweep_interval_ns = 5'000,
                    uint64_t idle_sleep_cap_ns = 200'000);
  ~IoPoller();

  IoPoller(const IoPoller&) = delete;
  IoPoller& operator=(const IoPoller&) = delete;

  void Start();
  void Stop();

  // Listener registration; `on_accept` runs on the poller thread.
  void AddListener(Listener* listener, AcceptFn on_accept);
  void RemoveListener(Listener* listener);

  // Notify `task` whenever `conn` becomes readable while the task is idle.
  void WatchConnection(Connection* conn, Task* task);
  void UnwatchConnection(Connection* conn);

  // This shard's time source. Arm/Cancel from any thread; Advance is driven
  // by the sweep loop. Valid for the poller's whole lifetime (before Start
  // and after Stop included) — owners may Cancel in their destructors.
  TimerWheel& wheel() { return wheel_; }

  // This shard's admission ledger (cap set by the platform; TryAdmit on the
  // accept path, Release when an admitted connection is destroyed).
  ShardAdmission& admission() { return admission_; }

  uint64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }
  // Sweeps that found nothing to do (no accept, no readiness edge, no timer).
  uint64_t sweeps_idle() const { return sweeps_idle_.load(std::memory_order_relaxed); }
  // Nanoseconds spent inside sweep work (sleeps excluded): the numerator of
  // the idle-conn bench's "what does an idle wire cost the poller" metric.
  uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  size_t watch_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return watches_.size();
  }

 private:
  struct Watch {
    Connection* conn;
    Task* task;
    // Readiness arrives via the transport's edge hook; the sweep scan skips
    // this entry. False = pure-polling transport, scanned every sweep.
    bool hooked;
  };
  struct ListenerEntry {
    Listener* listener;
    AcceptFn on_accept;
  };

  void Loop();

  Scheduler* scheduler_;
  const uint64_t sweep_interval_ns_;
  const uint64_t idle_sleep_cap_ns_;
  TimerWheel wheel_;
  ShardAdmission admission_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> sweeps_idle_{0};
  std::atomic<uint64_t> busy_ns_{0};

  mutable std::mutex mutex_;
  std::vector<ListenerEntry> listeners_;
  std::vector<Watch> watches_;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_IO_POLLER_H_
