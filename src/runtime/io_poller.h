// IO readiness poller.
//
// Plays the role of the event layer under the platform: the application
// dispatcher's accept path for listening sockets (§5 (i)) and the epoll-like
// readiness notification for connection-bound tasks ("input tasks use
// non-blocking sockets and epoll event handlers"). The platform runs
// `io_shards` instances — each is ONE SHARD of the IO plane owning its own
// listeners, watches and reapers (see runtime/platform.h). One thread sweeps:
//   * listeners — accepted connections are handed to the registered callback
//     (the program's connection-binding logic);
//   * connections — a ReadReady()/WriteReady-equivalent transition notifies
//     the registered task via the scheduler;
//   * reapers — periodic callbacks for graph retirement checks; a reaper
//     returning true is removed.
#ifndef FLICK_RUNTIME_IO_POLLER_H_
#define FLICK_RUNTIME_IO_POLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "runtime/scheduler.h"

namespace flick::runtime {

class IoPoller {
 public:
  using AcceptFn = std::function<void(std::unique_ptr<Connection>)>;
  using ReaperFn = std::function<bool()>;

  IoPoller(Scheduler* scheduler, uint64_t sweep_interval_ns = 5'000)
      : scheduler_(scheduler), sweep_interval_ns_(sweep_interval_ns) {}
  ~IoPoller();

  IoPoller(const IoPoller&) = delete;
  IoPoller& operator=(const IoPoller&) = delete;

  void Start();
  void Stop();

  // Listener registration; `on_accept` runs on the poller thread.
  void AddListener(Listener* listener, AcceptFn on_accept);
  void RemoveListener(Listener* listener);

  // Notify `task` whenever `conn` becomes readable while the task is idle.
  void WatchConnection(Connection* conn, Task* task);
  void UnwatchConnection(Connection* conn);

  // Periodic retirement checks (e.g. "all IO tasks of graph X closed?").
  void AddReaper(ReaperFn fn);

  uint64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }

 private:
  struct Watch {
    Connection* conn;
    Task* task;
  };
  struct ListenerEntry {
    Listener* listener;
    AcceptFn on_accept;
  };

  void Loop();

  Scheduler* scheduler_;
  const uint64_t sweep_interval_ns_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> sweeps_{0};

  std::mutex mutex_;
  std::vector<ListenerEntry> listeners_;
  std::vector<Watch> watches_;
  std::vector<ReaperFn> reapers_;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_IO_POLLER_H_
