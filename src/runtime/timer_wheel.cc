#include "runtime/timer_wheel.h"

#include <algorithm>

#include "base/check.h"

namespace flick::runtime {

namespace {
// log2(kSlotsPerLevel): slot indices are byte-sized shifts of the tick count.
constexpr uint64_t kLevelShift = 8;
static_assert(TimerWheel::kSlotsPerLevel == (size_t{1} << kLevelShift));
}  // namespace

TimerWheel::TimerWheel(uint64_t now_ns, uint64_t tick_ns)
    : tick_ns_(tick_ns == 0 ? kDefaultTickNs : tick_ns),
      current_tick_(now_ns / tick_ns_) {
  levels_.resize(kLevels);
  for (auto& level : levels_) {
    level = std::vector<Slot>(kSlotsPerLevel);
  }
}

TimerWheel::~TimerWheel() {
  // Entries are owned by their arming objects; periodics are ours. Unlink
  // everything so no TimerEntry outliving the wheel sees a dangling list.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& level : levels_) {
    for (Slot& slot : level) {
      while (slot.entries.PopFront() != nullptr) {
      }
    }
  }
}

void TimerWheel::ArmLocked(TimerEntry* entry, uint64_t deadline_ns) {
  entry->deadline_ns = deadline_ns;
  // A deadline at or before the current tick fires on the next tick — the
  // slot for the current tick has already been drained.
  const uint64_t deadline_tick =
      std::max(deadline_ns / tick_ns_, current_tick_ + 1);
  const uint64_t delta = deadline_tick - current_tick_;
  size_t level = 0;
  while (level + 1 < kLevels &&
         delta >= (uint64_t{1} << (kLevelShift * (level + 1)))) {
    ++level;
  }
  // Beyond the top level's horizon: clamp into the farthest top-level slot;
  // the entry re-hashes closer every wheel revolution.
  uint64_t slot_tick = deadline_tick >> (kLevelShift * level);
  const uint64_t max_slot_tick =
      (current_tick_ >> (kLevelShift * level)) + (kSlotsPerLevel - 1);
  if (level == kLevels - 1 && slot_tick > max_slot_tick) {
    slot_tick = max_slot_tick;
  }
  levels_[level][slot_tick % kSlotsPerLevel].entries.PushBack(entry);
  armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void TimerWheel::Arm(TimerEntry* entry, uint64_t deadline_ns) {
  FLICK_CHECK(entry->on_fire != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  FLICK_CHECK(!entry->pending());
  ArmLocked(entry, deadline_ns);
  armed_total_.fetch_add(1, std::memory_order_relaxed);
}

bool TimerWheel::Cancel(TimerEntry* entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!entry->pending()) {
    return false;
  }
  // The node knows its links but not its slot; unlink directly.
  IntrusiveListNode* n = &entry->wheel_node;
  n->prev->next = n->next;
  n->next->prev = n->prev;
  n->prev = nullptr;
  n->next = nullptr;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  cancelled_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TimerWheel::Rearm(TimerEntry* entry, uint64_t deadline_ns) {
  FLICK_CHECK(entry->on_fire != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->pending()) {
    IntrusiveListNode* n = &entry->wheel_node;
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  ArmLocked(entry, deadline_ns);
  armed_total_.fetch_add(1, std::memory_order_relaxed);
}

void TimerWheel::DrainSlotLocked(size_t level, size_t slot_index,
                                 std::vector<TimerEntry*>& fire_list) {
  Slot& slot = levels_[level][slot_index];
  // Pop into a local chain first: re-hashing (cascade) pushes into OTHER
  // slots of lower levels, never back into this one mid-drain.
  while (TimerEntry* entry = slot.entries.PopFront()) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    if (level == 0 || entry->deadline_ns / tick_ns_ <= current_tick_) {
      fire_list.push_back(entry);
    } else {
      ArmLocked(entry, entry->deadline_ns);
      cascade_moves_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

uint64_t TimerWheel::NextEventTickLocked() const {
  // Earliest tick at which any occupied slot drains: level-k slot s drains
  // when the clock crosses s << (8k). Empty stretches between events can be
  // skipped wholesale — Advance over an idle hour is O(slots), not O(ticks).
  uint64_t best = UINT64_MAX;
  for (size_t level = 0; level < kLevels; ++level) {
    const uint64_t cur = current_tick_ >> (kLevelShift * level);
    for (uint64_t i = 1; i <= kSlotsPerLevel; ++i) {
      if (!levels_[level][(cur + i) % kSlotsPerLevel].entries.empty()) {
        best = std::min(best, (cur + i) << (kLevelShift * level));
        break;  // later slots of this level drain later
      }
    }
  }
  return best;
}

size_t TimerWheel::Advance(uint64_t now_ns) {
  const uint64_t target_tick = now_ns / tick_ns_;
  std::vector<TimerEntry*> fire_list;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (current_tick_ < target_tick) {
      const uint64_t next_event = NextEventTickLocked();
      if (next_event > target_tick) {
        current_tick_ = target_tick;  // nothing drains in between
        break;
      }
      current_tick_ = next_event;
      DrainSlotLocked(0, current_tick_ % kSlotsPerLevel, fire_list);
      // Crossing a level boundary cascades that level's next slot down.
      uint64_t tick = current_tick_;
      for (size_t level = 1; level < kLevels; ++level) {
        tick >>= kLevelShift;
        if ((current_tick_ & ((uint64_t{1} << (kLevelShift * level)) - 1)) != 0) {
          break;
        }
        DrainSlotLocked(level, tick % kSlotsPerLevel, fire_list);
      }
    }
  }
  for (TimerEntry* entry : fire_list) {
    fired_total_.fetch_add(1, std::memory_order_relaxed);
    entry->on_fire();  // may re-arm `entry`; must not touch the wheel lock state
  }
  return fire_list.size();
}

uint64_t TimerWheel::NextDeadlineNs() const {
  if (armed_count_.load(std::memory_order_relaxed) == 0) {
    return kNoDeadline;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t best = kNoDeadline;
  for (size_t level = 0; level < kLevels; ++level) {
    const uint64_t width_ticks = uint64_t{1} << (kLevelShift * level);
    const uint64_t cur = current_tick_ >> (kLevelShift * level);
    for (uint64_t i = 1; i <= kSlotsPerLevel; ++i) {
      if (!levels_[level][(cur + i) % kSlotsPerLevel].entries.empty()) {
        // Slot start is a lower bound on every deadline it holds, so a
        // sleeper waking at it can never miss a fire.
        best = std::min(best, (cur + i) * width_ticks * tick_ns_);
        break;  // later slots of this level are later in time
      }
    }
  }
  return best;
}

TimerStats TimerWheel::stats() const {
  TimerStats s;
  s.armed = armed_total_.load(std::memory_order_relaxed);
  s.fired = fired_total_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_total_.load(std::memory_order_relaxed);
  s.cascade_moves = cascade_moves_.load(std::memory_order_relaxed);
  return s;
}

uint64_t TimerWheel::AddPeriodic(uint64_t interval_ns, std::function<bool()> fn) {
  return AddPeriodicImpl(interval_ns, 0, std::move(fn));
}

uint64_t TimerWheel::AddBackoffPoll(uint64_t min_interval_ns,
                                    uint64_t max_interval_ns,
                                    std::function<bool()> fn) {
  return AddPeriodicImpl(min_interval_ns, std::max(max_interval_ns, min_interval_ns),
                         std::move(fn));
}

uint64_t TimerWheel::AddPeriodicImpl(uint64_t interval_ns,
                                     uint64_t max_interval_ns,
                                     std::function<bool()> fn) {
  auto periodic = std::make_unique<Periodic>();
  Periodic* raw = periodic.get();
  raw->interval_ns = interval_ns == 0 ? tick_ns_ : interval_ns;
  raw->max_interval_ns = max_interval_ns;
  raw->fn = std::move(fn);
  raw->entry.on_fire = [this, raw] {
    // Poller thread. The entry is already unlinked; decide re-arm vs done.
    const bool done = raw->fn();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto cancelled = std::find(cancelled_detached_.begin(),
                                     cancelled_detached_.end(), raw->token);
    if (cancelled != cancelled_detached_.end()) {
      cancelled_detached_.erase(cancelled);
      periodics_.erase(raw->token);  // destroys raw->fn AFTER it returned
      return;
    }
    if (done) {
      periodics_.erase(raw->token);
      return;
    }
    if (raw->max_interval_ns != 0) {
      raw->interval_ns = std::min(raw->interval_ns * 2, raw->max_interval_ns);
    }
    ArmLocked(&raw->entry, raw->entry.deadline_ns + raw->interval_ns);
    armed_total_.fetch_add(1, std::memory_order_relaxed);
  };
  std::lock_guard<std::mutex> lock(mutex_);
  raw->token = next_periodic_token_++;
  const uint64_t token = raw->token;
  periodics_[token] = std::move(periodic);
  ArmLocked(&raw->entry, (current_tick_ + 1) * tick_ns_ + raw->interval_ns);
  armed_total_.fetch_add(1, std::memory_order_relaxed);
  return token;
}

bool TimerWheel::CancelPeriodic(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = periodics_.find(token);
  if (it == periodics_.end()) {
    return false;
  }
  TimerEntry& entry = it->second->entry;
  if (entry.pending()) {
    IntrusiveListNode* n = &entry.wheel_node;
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    cancelled_total_.fetch_add(1, std::memory_order_relaxed);
    periodics_.erase(it);
    return true;
  }
  // Mid-fire on the poller thread: the fire path sees the token here and
  // destroys the periodic instead of re-arming. (A callback already entered
  // may still finish its current run — same in-flight caveat as Cancel.)
  cancelled_detached_.push_back(token);
  cancelled_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace flick::runtime
