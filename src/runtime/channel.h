// Task channel: bounded SPSC message queue wiring two tasks of a graph (§5:
// "channels move data between tasks").
//
// Pushing notifies the consumer task via the scheduler. A full channel is
// backpressure: the producer records itself blocked and the consumer wakes it
// once space frees — no busy spinning, bounded in-flight memory.
#ifndef FLICK_RUNTIME_CHANNEL_H_
#define FLICK_RUNTIME_CHANNEL_H_

#include <atomic>

#include "concurrency/spsc_ring.h"
#include "runtime/msg.h"
#include "runtime/scheduler.h"
#include "runtime/task.h"

namespace flick::runtime {

class Channel {
 public:
  explicit Channel(size_t capacity) : ring_(capacity) {}

  // A null scheduler leaves any previously bound scheduler in place, so
  // wiring order (task constructors vs. graph assembly) does not matter.
  void BindConsumer(Task* task, Scheduler* scheduler) {
    consumer_ = task;
    if (scheduler != nullptr) {
      scheduler_ = scheduler;
    }
  }
  void BindProducer(Task* task) { producer_ = task; }

  Task* consumer() const { return consumer_; }
  Task* producer() const { return producer_; }

  // Producer side. On success the consumer is notified. On failure (channel
  // full) the caller's MsgRef is left intact, the producer is registered for
  // a wakeup, and it should return kIdle.
  bool TryPush(MsgRef&& msg) {
    if (!ring_.TryPush(std::move(msg))) {
      producer_blocked_.store(true, std::memory_order_release);
      // Re-check: the consumer may have drained between the failed push and
      // the flag store, in which case nobody would wake us.
      if (ring_.SizeApprox() < ring_.capacity()) {
        producer_blocked_.store(false, std::memory_order_release);
        if (producer_ != nullptr && scheduler_ != nullptr) {
          scheduler_->NotifyRunnable(producer_);
        }
      }
      return false;
    }
    if (consumer_ != nullptr && scheduler_ != nullptr) {
      scheduler_->NotifyRunnable(consumer_);
    }
    return true;
  }

  // Consumer side.
  MsgRef TryPop() {
    auto msg = ring_.TryPop();
    if (!msg.has_value()) {
      return MsgRef();
    }
    WakeBlockedProducer();
    return std::move(*msg);
  }

  MsgRef* Front() { return ring_.Front(); }

  bool Empty() const { return ring_.Empty(); }
  size_t SizeApprox() const { return ring_.SizeApprox(); }
  size_t capacity() const { return ring_.capacity(); }

 private:
  void WakeBlockedProducer() {
    if (producer_blocked_.load(std::memory_order_acquire)) {
      producer_blocked_.store(false, std::memory_order_release);
      if (producer_ != nullptr && scheduler_ != nullptr) {
        scheduler_->NotifyRunnable(producer_);
      }
    }
  }

  SpscRing<MsgRef> ring_;
  Task* consumer_ = nullptr;
  Task* producer_ = nullptr;
  Scheduler* scheduler_ = nullptr;
  std::atomic<bool> producer_blocked_{false};
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_CHANNEL_H_
