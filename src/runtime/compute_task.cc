#include "runtime/compute_task.h"

namespace flick::runtime {

ComputeTask::ComputeTask(std::string name, Handler handler, MsgPool* msgs)
    : Task(std::move(name)), handler_(std::move(handler)), msgs_(msgs) {}

TaskRunResult ComputeTask::Run(TaskContext& ctx) {
  EmitContext emit(&outputs_, msgs_);

  // First, retry a message that was blocked on a full output.
  if (stalled_msg_) {
    const HandleResult r = handler_(*stalled_msg_, stalled_input_, emit);
    if (r == HandleResult::kBlocked) {
      return TaskRunResult::kIdle;  // output consumer will wake us
    }
    stalled_msg_ = MsgRef();
    messages_handled_.fetch_add(1, std::memory_order_relaxed);
    ctx.ItemDone();
  }

  const size_t n = inputs_.size();
  size_t empty_streak = 0;
  while (empty_streak < n) {
    Channel* in = inputs_[next_input_];
    MsgRef msg = in->TryPop();
    if (!msg) {
      ++empty_streak;
      next_input_ = (next_input_ + 1) % n;
      continue;
    }
    empty_streak = 0;
    const size_t input_index = next_input_;
    const HandleResult r = handler_(*msg, input_index, emit);
    if (r == HandleResult::kBlocked) {
      stalled_msg_ = std::move(msg);
      stalled_input_ = input_index;
      return TaskRunResult::kIdle;  // woken when the output drains
    }
    messages_handled_.fetch_add(1, std::memory_order_relaxed);
    ctx.ItemDone();
    if (ctx.ShouldYield()) {
      return TaskRunResult::kMoreWork;
    }
  }
  return TaskRunResult::kIdle;
}

MergeTask::MergeTask(std::string name, OrderFn order, CombineFn combine)
    : Task(std::move(name)), order_(std::move(order)), combine_(std::move(combine)) {}

bool MergeTask::Step(bool* made_progress) {
  // Flush a previously blocked emission first.
  if (out_pending_) {
    if (!out_->TryPush(std::move(out_pending_))) {
      return false;
    }
    *made_progress = true;
  }

  // Refill pending slots.
  if (!left_pending_ && !left_eof_) {
    left_pending_ = left_->TryPop();
    if (left_pending_ && left_pending_->kind == Msg::Kind::kEof) {
      left_eof_ = true;
      left_pending_ = MsgRef();
    }
  }
  if (!right_pending_ && !right_eof_) {
    right_pending_ = right_->TryPop();
    if (right_pending_ && right_pending_->kind == Msg::Kind::kEof) {
      right_eof_ = true;
      right_pending_ = MsgRef();
    }
  }

  // foldt semantics: elements are combined/ordered across the two streams.
  MsgRef next;
  if (left_pending_ && right_pending_) {
    const int cmp = order_(*left_pending_, *right_pending_);
    if (cmp == 0) {
      combine_(*left_pending_, *right_pending_);
      next = std::move(left_pending_);
      right_pending_ = MsgRef();
    } else if (cmp < 0) {
      next = std::move(left_pending_);
    } else {
      next = std::move(right_pending_);
    }
  } else if (left_pending_ && right_eof_) {
    next = std::move(left_pending_);
  } else if (right_pending_ && left_eof_) {
    next = std::move(right_pending_);
  } else if (left_eof_ && right_eof_) {
    // Both streams done: flush the held element, then forward one EOF
    // downstream (a one-off heap control message; MergeTask has no pool).
    if (hold_) {
      if (!out_->TryPush(std::move(hold_))) {
        return false;
      }
      *made_progress = true;
    }
    if (!eof_forwarded_) {
      if (!out_pending_) {
        out_pending_ = MsgRef(new Msg(), nullptr);
        out_pending_->kind = Msg::Kind::kEof;
      }
      if (out_->TryPush(std::move(out_pending_))) {
        eof_forwarded_ = true;
        *made_progress = true;
      }
    }
    return false;
  } else {
    return false;  // waiting on an input
  }

  // Run-length combining: hold the most recent output element back; equal-
  // keyed successors (within or across streams — mapper runs are sorted)
  // fold into it, and it is only emitted once a greater key appears. This is
  // what makes the tree a combiner rather than a plain merge.
  if (!hold_) {
    hold_ = std::move(next);
    *made_progress = true;
    return true;
  }
  if (order_(*hold_, *next) == 0) {
    combine_(*hold_, *next);
    *made_progress = true;
    return true;
  }
  if (!out_->TryPush(std::move(hold_))) {
    // Output full: keep both; retry after the consumer drains. `next` moves
    // back to its pending slot conceptually — simplest is the out_pending_
    // buffer for hold_ and re-hold next.
    out_pending_ = std::move(hold_);
    hold_ = std::move(next);
    return false;
  }
  hold_ = std::move(next);
  *made_progress = true;
  return true;
}

TaskRunResult MergeTask::Run(TaskContext& ctx) {
  while (true) {
    bool made_progress = false;
    const bool more = Step(&made_progress);
    if (made_progress) {
      ctx.ItemDone();
    }
    if (!more) {
      return TaskRunResult::kIdle;  // channel notifications drive us
    }
    if (ctx.ShouldYield()) {
      return TaskRunResult::kMoreWork;
    }
  }
}

}  // namespace flick::runtime
