// Long-term state shared across task-graph instances (§4.3: "a key/value
// abstraction ... the programmer declares a dictionary and labels it with a
// global qualifier. Multiple instances of the service share the key/value
// store.").
//
// Dictionaries are named; entries are bounded per dictionary with FIFO
// eviction so a FLICK program's memory stays bounded regardless of traffic.
//
// Eviction bookkeeping: every live entry carries the generation stamped when
// it was inserted, and the FIFO records (key, generation) pairs. Erase leaves
// its FIFO record behind (lazy delete); a record whose generation no longer
// matches the live entry is STALE and is skipped by eviction — without the
// stamp, an erase→re-put of the same key would leave two FIFO records for
// one live entry, and the first eviction to reach the stale record would
// erase the live entry prematurely (and the per-dict bound would drift with
// the FIFO's phantom size). Stale records are reclaimed when they reach the
// FIFO front, and the FIFO is compacted outright when stale records
// outnumber live entries, so erase-heavy workloads stay bounded too.
#ifndef FLICK_RUNTIME_STATE_STORE_H_
#define FLICK_RUNTIME_STATE_STORE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace flick::runtime {

class StateStore {
 public:
  explicit StateStore(size_t max_entries_per_dict = 65536)
      : max_entries_(max_entries_per_dict) {}

  std::optional<std::string> Get(const std::string& dict, const std::string& key) const {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    const auto dict_it = shards_[shard].dicts.find(dict);
    if (dict_it == shards_[shard].dicts.end()) {
      return std::nullopt;
    }
    const auto it = dict_it->second.map.find(key);
    if (it == dict_it->second.map.end()) {
      return std::nullopt;
    }
    return it->second.value;
  }

  void Put(const std::string& dict, const std::string& key, std::string value) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    Dict& d = shards_[shard].dicts[dict];
    if (const auto it = d.map.find(key); it != d.map.end()) {
      // Overwrite keeps the original FIFO position AND generation: exactly
      // one FIFO record stays live per entry.
      it->second.value = std::move(value);
      return;
    }
    const auto it = d.map.emplace(key, Entry{std::move(value), ++d.gen}).first;
    d.fifo.emplace_back(key, it->second.gen);

    // Bounded: evict oldest live insertions. Sharding makes the bound
    // per-shard. The bound is on LIVE entries (map size), not FIFO length —
    // stale records must not count against it.
    const size_t bound = max_entries_ / kShards + 1;
    while (d.map.size() > bound && !d.fifo.empty()) {
      PopFront(d);
    }
    // Reclaim stale records that reached the front, then compact if erases
    // have left more stale records than live entries.
    while (!d.fifo.empty() && !IsLive(d, d.fifo.front())) {
      d.fifo.pop_front();
    }
    if (d.fifo.size() > 2 * d.map.size() + 8) {
      Compact(d);
    }
  }

  bool Erase(const std::string& dict, const std::string& key) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    auto dict_it = shards_[shard].dicts.find(dict);
    if (dict_it == shards_[shard].dicts.end()) {
      return false;
    }
    // The FIFO record turns stale (its generation no longer resolves) and is
    // reclaimed lazily; see the header comment.
    return dict_it->second.map.erase(key) > 0;
  }

  size_t Size(const std::string& dict) const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      const auto it = s.dicts.find(dict);
      if (it != s.dicts.end()) {
        total += it->second.map.size();
      }
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;

  struct Entry {
    std::string value;
    uint64_t gen = 0;  // generation of the FIFO record that owns this entry
  };
  struct Dict {
    std::unordered_map<std::string, Entry> map;
    std::deque<std::pair<std::string, uint64_t>> fifo;  // (key, generation)
    uint64_t gen = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Dict> dicts;
  };

  static bool IsLive(const Dict& d, const std::pair<std::string, uint64_t>& rec) {
    const auto it = d.map.find(rec.first);
    return it != d.map.end() && it->second.gen == rec.second;
  }

  // Pops the FIFO front; erases the live entry it owns, skips it if stale.
  static void PopFront(Dict& d) {
    const auto& rec = d.fifo.front();
    const auto it = d.map.find(rec.first);
    if (it != d.map.end() && it->second.gen == rec.second) {
      d.map.erase(it);
    }
    d.fifo.pop_front();
  }

  static void Compact(Dict& d) {
    std::deque<std::pair<std::string, uint64_t>> live;
    for (auto& rec : d.fifo) {
      if (IsLive(d, rec)) {
        live.push_back(std::move(rec));
      }
    }
    d.fifo.swap(live);
  }

  static size_t ShardIndex(const std::string& dict, const std::string& key) {
    size_t h = std::hash<std::string>{}(key) ^ (std::hash<std::string>{}(dict) << 1);
    return h % kShards;
  }

  const size_t max_entries_;
  Shard shards_[kShards];
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_STATE_STORE_H_
