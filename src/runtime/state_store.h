// Long-term state shared across task-graph instances (§4.3: "a key/value
// abstraction ... the programmer declares a dictionary and labels it with a
// global qualifier. Multiple instances of the service share the key/value
// store.").
//
// Dictionaries are named; entries are bounded per dictionary with FIFO
// eviction so a FLICK program's memory stays bounded regardless of traffic.
//
// Eviction bookkeeping: every live entry carries the generation stamped when
// it was inserted, and the FIFO records (key, generation) pairs. Erase leaves
// its FIFO record behind (lazy delete); a record whose generation no longer
// matches the live entry is STALE and is skipped by eviction — without the
// stamp, an erase→re-put of the same key would leave two FIFO records for
// one live entry, and the first eviction to reach the stale record would
// erase the live entry prematurely (and the per-dict bound would drift with
// the FIFO's phantom size). Stale records are reclaimed when they reach the
// FIFO front, and the FIFO is compacted outright when stale records
// outnumber live entries, so erase-heavy workloads stay bounded too.
//
// Invalidation epochs: cache-style users populate asynchronously — a reader
// misses, fetches from an authority, and Puts the fetched value later. If an
// invalidation (Erase, or an authoritative Put) lands in between, the late
// populate would resurrect the stale value. InvalidationEpoch() snapshots a
// per-(shard, dict) epoch before the fetch; PutIfFresh() re-checks it under
// the shard lock and DROPS the put if any invalidation touched the shard's
// slice of the dict since — invalidate always wins. The epoch is per shard
// slice, not per key, so a racing populate of an unrelated same-shard key
// may also be dropped: conservative (the populate is retried as a miss),
// never stale. Successful PutIfFresh does NOT bump the epoch — two racing
// populates are both authority-fresh, so last-writer-wins is safe.
#ifndef FLICK_RUNTIME_STATE_STORE_H_
#define FLICK_RUNTIME_STATE_STORE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace flick::runtime {

class StateStore {
 public:
  explicit StateStore(size_t max_entries_per_dict = 65536)
      : max_entries_(max_entries_per_dict) {}

  std::optional<std::string> Get(const std::string& dict, const std::string& key) const {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    const auto dict_it = shards_[shard].dicts.find(dict);
    if (dict_it == shards_[shard].dicts.end()) {
      return std::nullopt;
    }
    const auto it = dict_it->second.map.find(key);
    if (it == dict_it->second.map.end()) {
      return std::nullopt;
    }
    return it->second.value;
  }

  // Authoritative write: the caller holds the true value (DSL dict writes,
  // direct state updates). Bumps the invalidation epoch so any in-flight
  // cache populate snapshotted before this write is dropped by PutIfFresh.
  void Put(const std::string& dict, const std::string& key, std::string value) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    Dict& d = shards_[shard].dicts[dict];
    ++d.invalidation_epoch;
    PutLocked(d, key, std::move(value));
  }

  // Snapshot the invalidation epoch covering (dict, key)'s shard slice.
  // Take it BEFORE issuing the authoritative fetch a later PutIfFresh will
  // deliver. Absent dicts report epoch 0, matching the epoch PutIfFresh
  // observes when it creates the dict.
  uint64_t InvalidationEpoch(const std::string& dict, const std::string& key) const {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    const auto dict_it = shards_[shard].dicts.find(dict);
    if (dict_it == shards_[shard].dicts.end()) {
      return 0;
    }
    return dict_it->second.invalidation_epoch;
  }

  // Cache populate: stores `value` only if no invalidation touched the
  // (dict, key) shard slice since `epoch` was snapshotted. Returns false —
  // and stores nothing — when an invalidation won the race. An overwrite via
  // this path keeps the entry's original FIFO position and generation, the
  // same as Put: a re-populate must not silently extend the entry's FIFO
  // lifetime past its original admission.
  bool PutIfFresh(const std::string& dict, const std::string& key, std::string value,
                  uint64_t epoch) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    Dict& d = shards_[shard].dicts[dict];
    if (d.invalidation_epoch != epoch) {
      return false;  // invalidate wins; the stale populate is dropped
    }
    PutLocked(d, key, std::move(value));
    return true;
  }

  bool Erase(const std::string& dict, const std::string& key) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    // Creates the dict if absent: the epoch must advance even when the key
    // was never cached here — a miss-populate for it may be in flight, and
    // without the bump PutIfFresh would admit the pre-invalidation value.
    Dict& d = shards_[shard].dicts[dict];
    ++d.invalidation_epoch;
    // The FIFO record turns stale (its generation no longer resolves) and is
    // reclaimed lazily; see the header comment.
    return d.map.erase(key) > 0;
  }

  size_t Size(const std::string& dict) const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      const auto it = s.dicts.find(dict);
      if (it != s.dicts.end()) {
        total += it->second.map.size();
      }
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;

  struct Entry {
    std::string value;
    uint64_t gen = 0;  // generation of the FIFO record that owns this entry
  };
  struct Dict {
    std::unordered_map<std::string, Entry> map;
    std::deque<std::pair<std::string, uint64_t>> fifo;  // (key, generation)
    uint64_t gen = 0;
    // Bumped by every invalidation (Erase or authoritative Put) that touches
    // this shard's slice of the dict; snapshotted/checked by the
    // InvalidationEpoch/PutIfFresh populate protocol above.
    uint64_t invalidation_epoch = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Dict> dicts;
  };

  // Insert-or-overwrite under the shard lock; shared by Put and PutIfFresh.
  void PutLocked(Dict& d, const std::string& key, std::string value) {
    if (const auto it = d.map.find(key); it != d.map.end()) {
      // Overwrite keeps the original FIFO position AND generation: exactly
      // one FIFO record stays live per entry, and an overwrite never extends
      // the entry's FIFO lifetime.
      it->second.value = std::move(value);
      return;
    }
    const auto it = d.map.emplace(key, Entry{std::move(value), ++d.gen}).first;
    d.fifo.emplace_back(key, it->second.gen);

    // Bounded: evict oldest live insertions. Sharding makes the bound
    // per-shard. The bound is on LIVE entries (map size), not FIFO length —
    // stale records must not count against it.
    const size_t bound = max_entries_ / kShards + 1;
    while (d.map.size() > bound && !d.fifo.empty()) {
      PopFront(d);
    }
    // Reclaim stale records that reached the front, then compact if erases
    // have left more stale records than live entries.
    while (!d.fifo.empty() && !IsLive(d, d.fifo.front())) {
      d.fifo.pop_front();
    }
    if (d.fifo.size() > 2 * d.map.size() + 8) {
      Compact(d);
    }
  }

  static bool IsLive(const Dict& d, const std::pair<std::string, uint64_t>& rec) {
    const auto it = d.map.find(rec.first);
    return it != d.map.end() && it->second.gen == rec.second;
  }

  // Pops the FIFO front; erases the live entry it owns, skips it if stale.
  static void PopFront(Dict& d) {
    const auto& rec = d.fifo.front();
    const auto it = d.map.find(rec.first);
    if (it != d.map.end() && it->second.gen == rec.second) {
      d.map.erase(it);
    }
    d.fifo.pop_front();
  }

  static void Compact(Dict& d) {
    std::deque<std::pair<std::string, uint64_t>> live;
    for (auto& rec : d.fifo) {
      if (IsLive(d, rec)) {
        live.push_back(std::move(rec));
      }
    }
    d.fifo.swap(live);
  }

  static size_t ShardIndex(const std::string& dict, const std::string& key) {
    size_t h = std::hash<std::string>{}(key) ^ (std::hash<std::string>{}(dict) << 1);
    return h % kShards;
  }

  const size_t max_entries_;
  Shard shards_[kShards];
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_STATE_STORE_H_
