// Long-term state shared across task-graph instances (§4.3: "a key/value
// abstraction ... the programmer declares a dictionary and labels it with a
// global qualifier. Multiple instances of the service share the key/value
// store.").
//
// Dictionaries are named; entries are bounded per dictionary with FIFO
// eviction so a FLICK program's memory stays bounded regardless of traffic.
#ifndef FLICK_RUNTIME_STATE_STORE_H_
#define FLICK_RUNTIME_STATE_STORE_H_

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace flick::runtime {

class StateStore {
 public:
  explicit StateStore(size_t max_entries_per_dict = 65536)
      : max_entries_(max_entries_per_dict) {}

  std::optional<std::string> Get(const std::string& dict, const std::string& key) const {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    const auto dict_it = shards_[shard].dicts.find(dict);
    if (dict_it == shards_[shard].dicts.end()) {
      return std::nullopt;
    }
    const auto it = dict_it->second.map.find(key);
    if (it == dict_it->second.map.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  void Put(const std::string& dict, const std::string& key, std::string value) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    Dict& d = shards_[shard].dicts[dict];
    auto [it, inserted] = d.map.try_emplace(key, std::move(value));
    if (!inserted) {
      it->second = std::move(value);
      return;
    }
    d.fifo.push_back(key);
    // Bounded: evict oldest insertions. Sharding makes the bound per-shard.
    while (d.fifo.size() > max_entries_ / kShards + 1) {
      d.map.erase(d.fifo.front());
      d.fifo.pop_front();
    }
  }

  bool Erase(const std::string& dict, const std::string& key) {
    const size_t shard = ShardIndex(dict, key);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    auto dict_it = shards_[shard].dicts.find(dict);
    if (dict_it == shards_[shard].dicts.end()) {
      return false;
    }
    return dict_it->second.map.erase(key) > 0;
  }

  size_t Size(const std::string& dict) const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      const auto it = s.dicts.find(dict);
      if (it != s.dicts.end()) {
        total += it->second.map.size();
      }
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;

  struct Dict {
    std::unordered_map<std::string, std::string> map;
    std::deque<std::string> fifo;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Dict> dicts;
  };

  static size_t ShardIndex(const std::string& dict, const std::string& key) {
    size_t h = std::hash<std::string>{}(key) ^ (std::hash<std::string>{}(dict) << 1);
    return h % kShards;
  }

  const size_t max_entries_;
  Shard shards_[kShards];
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_STATE_STORE_H_
