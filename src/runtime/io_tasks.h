// Input and output tasks (§3.2): the edges of every task graph.
//
//   InputTask:  connection -> deserialiser -> output channel (typed values)
//   OutputTask: input channel -> serialiser -> connection
//
// Both are cooperative: they poll TaskContext::ShouldYield() per message and
// propagate shutdown with an EOF Msg (input side) / connection close (output
// side). Connection EOF decrements the owning graph's live-input count.
#ifndef FLICK_RUNTIME_IO_TASKS_H_
#define FLICK_RUNTIME_IO_TASKS_H_

#include <memory>

#include "buffer/buffer_chain.h"
#include "net/transport.h"
#include "runtime/channel.h"
#include "runtime/codec.h"
#include "runtime/conn_lifetime.h"
#include "runtime/msg.h"
#include "runtime/task.h"
#include "runtime/wire_batch.h"
#include "runtime/wire_fill.h"

namespace flick::runtime {

class InputTask : public Task {
 public:
  InputTask(std::string name, std::unique_ptr<Connection> conn,
            std::unique_ptr<Deserializer> codec, Channel* out, MsgPool* msgs,
            BufferPool* buffers);
  ~InputTask() override;

  TaskRunResult Run(TaskContext& ctx) override;

  Connection* connection() const { return conn_.get(); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  uint64_t messages_in() const { return messages_in_.load(std::memory_order_relaxed); }

  // Replaces the connection (graph reuse from the pool).
  void Rebind(std::unique_ptr<Connection> conn);

  // Arms the connection-lifetime plane for this leg (client legs only; see
  // runtime/conn_lifetime.h): idle keep-alive timeout while the wire is
  // quiescent, progress deadline while a message is partially parsed. A
  // fired deadline closes the connection from this task's own Run slice and
  // counts the reason into `counters`. Call before IO activation; `wheel` is
  // the owning shard's.
  void EnableLifetime(TimerWheel* wheel, Scheduler* scheduler,
                      const ConnLifetimeConfig& config,
                      ConnLifetimeCounters* counters) {
    deadline_.Enable(wheel, scheduler, this, config, counters);
  }

  // Caps the adaptive fill window: pool buffers one vectored read may span
  // (see runtime::kDefaultFillWindow; 1 = legacy one-buffer reads). Set
  // before IO activation; GraphBuilder applies its FillWindow() here.
  void set_fill_window(size_t buffers) { fill_window_.set_max(buffers); }
  size_t fill_window() const { return fill_window_.max(); }
  // Current adapted window. NOT synchronised with Run — only meaningful when
  // the task is quiescent (tests driving Run on their own thread).
  size_t fill_window_current() const { return fill_window_.next(); }

  // --- ingest counters (atomic: read by registry/tests off-thread) ----------
  uint64_t readv_calls() const {
    return read_batch_.readv_calls.load(std::memory_order_relaxed);
  }
  // High-water of bytes moved by a single vectored fill.
  uint64_t bytes_per_readv() const {
    return read_batch_.bytes_per_readv.load(std::memory_order_relaxed);
  }
  uint64_t fills_short() const {
    return read_batch_.fills_short.load(std::memory_order_relaxed);
  }
  uint64_t reads_legacy_equivalent() const {
    return read_batch_.reads_legacy_equivalent.load(std::memory_order_relaxed);
  }

 private:
  // Pushes `pending_` downstream; false if the channel is full.
  bool FlushPending();
  void EmitEof();

  // The ingest loop proper; `fill_bytes` accumulates bytes moved off the
  // wire this slice (Run's deadline epilogue uses it as the progress signal).
  TaskRunResult RunInner(TaskContext& ctx, size_t& fill_bytes);

  // Parses every complete message buffered in rx_. kContinue = caller may
  // pull more bytes; anything else is the TaskRunResult to return (error and
  // EOF handling already done).
  enum class ParseOutcome { kContinue, kIdle, kMoreWork };
  ParseOutcome ParseBuffered(TaskContext& ctx);

  std::unique_ptr<Connection> conn_;
  std::unique_ptr<Deserializer> codec_;
  Channel* out_;
  MsgPool* msgs_;
  BufferChain rx_;
  MsgRef parse_msg_;      // in-progress parse target (survives kNeedMore)
  MsgRef pending_;        // parsed but not yet accepted by the channel
  bool eof_pending_ = false;
  bool eof_sent_ = false;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> messages_in_{0};  // read off-thread by tests/stats
  AdaptiveFillWindow fill_window_;
  ReadBatchCounters read_batch_;
  // Last member: destroyed first, so its Cancel runs while conn_ is alive.
  ConnDeadline deadline_;
};

// Backlog bytes an OutputTask (or pooled connection) accumulates before a
// forced mid-slice flush. Small messages batch into one vectored write per
// run slice; the watermark bounds buffer-pool pressure when a slice carries
// bulk data. 1 = flush after every message (the pre-batching shape);
// 0 = never force (slice-end flushes only).
inline constexpr size_t kDefaultFlushWatermark = 32 * 1024;

class OutputTask : public Task {
 public:
  OutputTask(std::string name, std::unique_ptr<Connection> conn,
             std::unique_ptr<Serializer> codec, Channel* in, BufferPool* buffers);
  ~OutputTask() override;

  TaskRunResult Run(TaskContext& ctx) override;

  Connection* connection() const { return conn_.get(); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  uint64_t messages_out() const { return messages_out_.load(std::memory_order_relaxed); }

  void Rebind(std::unique_ptr<Connection> conn);

  // When set, receiving EOF closes the connection after flushing (default).
  // Cleared for shared backend connections that outlive one client.
  void set_close_on_eof(bool v) { close_on_eof_ = v; }

  // Forced-flush threshold (see kDefaultFlushWatermark). Set before IO
  // activation; GraphBuilder applies its FlushWatermark() here.
  void set_flush_watermark(size_t bytes) { flush_watermark_ = bytes; }
  size_t flush_watermark() const { return flush_watermark_; }

  // --- batching counters (atomic: read by registry/tests off-thread) --------
  uint64_t writev_calls() const {
    return batch_.writev_calls.load(std::memory_order_relaxed);
  }
  uint64_t flushes_forced() const {
    return batch_.flushes_forced.load(std::memory_order_relaxed);
  }
  // High-water of messages drained into a single flush (≈ msgs per writev).
  uint64_t msgs_per_writev() const {
    return batch_.msgs_per_writev.load(std::memory_order_relaxed);
  }

 private:
  // Writes buffered bytes to the connection as vectored batches; false on
  // fatal transport error.
  bool FlushWire() { return FlushChainVectored(tx_, *conn_, batch_, msgs_since_flush_); }

  // Fatal error: tear the connection down and go idle (EOF already
  // propagated upstream via closed()).
  TaskRunResult CloseFatal() {
    conn_->Close();
    closed_.store(true, std::memory_order_release);
    return TaskRunResult::kIdle;
  }

  std::unique_ptr<Connection> conn_;
  std::unique_ptr<Serializer> codec_;
  Channel* in_;
  BufferChain tx_;
  bool close_on_eof_ = true;
  bool eof_received_ = false;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> messages_out_{0};  // read off-thread by tests/stats
  size_t flush_watermark_ = kDefaultFlushWatermark;
  uint64_t msgs_since_flush_ = 0;
  WriteBatchCounters batch_;
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_IO_TASKS_H_
