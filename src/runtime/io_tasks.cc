#include "runtime/io_tasks.h"

#include "base/time_util.h"

namespace flick::runtime {

InputTask::InputTask(std::string name, std::unique_ptr<Connection> conn,
                     std::unique_ptr<Deserializer> codec, Channel* out, MsgPool* msgs,
                     BufferPool* buffers)
    : Task(std::move(name)),
      conn_(std::move(conn)),
      codec_(std::move(codec)),
      out_(out),
      msgs_(msgs),
      rx_(buffers) {
  out_->BindProducer(this);
}

InputTask::~InputTask() = default;

void InputTask::Rebind(std::unique_ptr<Connection> conn) {
  deadline_.Cancel();  // the old wire's windows must not outlive it
  conn_ = std::move(conn);
  codec_->Reset();
  rx_.Clear();
  fill_window_.Reset();  // a fresh wire earns its window back
  parse_msg_ = MsgRef();
  pending_ = MsgRef();
  eof_pending_ = false;
  eof_sent_ = false;
  messages_in_.store(0, std::memory_order_relaxed);
  closed_.store(conn_ == nullptr, std::memory_order_release);
}

bool InputTask::FlushPending() {
  if (pending_) {
    // On failure TryPush leaves `pending_` intact for the next slice.
    if (!out_->TryPush(std::move(pending_))) {
      return false;
    }
  }
  return true;
}

void InputTask::EmitEof() {
  if (eof_sent_) {
    return;
  }
  MsgRef eof = msgs_->Acquire();
  eof->kind = Msg::Kind::kEof;
  eof->conn_id = conn_ != nullptr ? conn_->id() : 0;
  if (out_->TryPush(std::move(eof))) {
    eof_sent_ = true;
    eof_pending_ = false;
  } else {
    eof_pending_ = true;
  }
}

TaskRunResult InputTask::Run(TaskContext& ctx) {
  // Deadline check first: a fired window closes the wire from OUR slice (the
  // one thread allowed to touch conn_). A fire that raced fresh bytes or a
  // completed parse is stale and dropped; the epilogue re-arms the right
  // window.
  if (deadline_.enabled() && !closed_.load(std::memory_order_acquire)) {
    const bool stalled = !conn_->ReadReady();
    const ConnDeadline::Expiry expiry = deadline_.ConsumeExpiry(
        /*idle_plausible=*/stalled && rx_.empty() && !parse_msg_ && !pending_,
        /*progress_plausible=*/stalled && parse_msg_);
    if (expiry != ConnDeadline::Expiry::kNone) {
      deadline_.CountClose(expiry);
      deadline_.Cancel();
      rx_.ReleaseReserve();
      conn_->Close();
      closed_.store(true, std::memory_order_release);
      EmitEof();
      return TaskRunResult::kIdle;
    }
  }

  size_t fill_bytes = 0;
  const TaskRunResult result = RunInner(ctx, fill_bytes);

  if (deadline_.enabled()) {
    if (closed_.load(std::memory_order_acquire)) {
      deadline_.Cancel();
    } else {
      const uint64_t now = MonotonicNanos();
      if (parse_msg_) {
        // Mid-message (any return reason): the progress window slides only
        // when this slice actually moved bytes.
        deadline_.OnPartialMessage(now, fill_bytes > 0);
      } else if (result == TaskRunResult::kIdle && !pending_ && !eof_pending_ &&
                 rx_.empty()) {
        // Fully between messages on a lifetime-managed (client) leg: return
        // the cached fill reserve so an idle connection pins ZERO pool
        // buffers — the per-idle-conn byte cost the bench gates. The next
        // burst re-acquires once: churn per burst, not per sweep. Legs
        // without a lifetime plane keep the PR-4 zero-churn caching (few,
        // transient idle periods; reserve reuse wins there).
        rx_.ReleaseReserve();
        deadline_.OnQuiescent(now);
      }
    }
  }
  return result;
}

TaskRunResult InputTask::RunInner(TaskContext& ctx, size_t& fill_bytes) {
  if (eof_pending_) {
    EmitEof();
    return TaskRunResult::kIdle;  // channel wakes us if still pending
  }
  if (closed_.load(std::memory_order_acquire)) {
    return TaskRunResult::kIdle;
  }

  // Deliver a message parsed on a previous slice that the channel rejected.
  if (pending_ && !FlushPending()) {
    return TaskRunResult::kIdle;  // channel will wake us
  }

  while (true) {
    switch (ParseBuffered(ctx)) {
      case ParseOutcome::kIdle:
        return TaskRunResult::kIdle;
      case ParseOutcome::kMoreWork:
        return TaskRunResult::kMoreWork;
      case ParseOutcome::kContinue:
        break;
    }

    // Buffered bytes exhausted: ONE vectored fill spanning the adaptive
    // window pulls everything the transport has buffered (up to the window).
    size_t moved = 0;
    const FillOutcome fill =
        FillChainVectored(rx_, *conn_, fill_window_, read_batch_, &moved);
    fill_bytes += moved;
    if (fill == FillOutcome::kError) {
      // Peer closed (or transport error): propagate EOF downstream.
      rx_.ReleaseReserve();
      conn_->Close();
      closed_.store(true, std::memory_order_release);
      EmitEof();
      return TaskRunResult::kIdle;
    }
    if (fill == FillOutcome::kNoBuffers) {
      // Pool pressure: requeue and retry next slice. Going idle would strand
      // the buffered bytes on edge-notified transports (no new write, no new
      // edge); the requeue loop is bounded by the consumers whose progress
      // frees the pool.
      return TaskRunResult::kMoreWork;
    }
    if (fill == FillOutcome::kDrained) {
      if (moved == 0) {
        return TaskRunResult::kIdle;  // would block; poller will wake us
      }
      // Short fill: parse the tail, then go idle WITHOUT a trailing
      // would-block probe — the fill itself proved the wire is drained, and
      // the transport's next readiness edge brings us back.
      switch (ParseBuffered(ctx)) {
        case ParseOutcome::kIdle:
          return TaskRunResult::kIdle;
        case ParseOutcome::kMoreWork:
          return TaskRunResult::kMoreWork;
        case ParseOutcome::kContinue:
          // EOF guard: a peer close whose edge COALESCED into this run's
          // notification leaves no future edge — if the conn still reads
          // ready (peer closed, or capped-read residue), loop for another
          // fill so the close surfaces now instead of stranding the graph.
          if (conn_->ReadReady()) {
            break;
          }
          return TaskRunResult::kIdle;
      }
    }
    // Full fill: the transport may hold more; parse, then fill again.
    if (ctx.ShouldYield()) {
      return TaskRunResult::kMoreWork;
    }
  }
}

InputTask::ParseOutcome InputTask::ParseBuffered(TaskContext& ctx) {
  // Parse as many complete messages as the buffer holds.
  while (!rx_.empty()) {
    if (!parse_msg_) {
      parse_msg_ = msgs_->Acquire();
      parse_msg_->conn_id = conn_->id();
    }
    const ParseStatus s = codec_->Deserialize(rx_, parse_msg_.get());
    if (s == ParseStatus::kNeedMore) {
      break;  // keep parse_msg_ (holds partial field data) and read more
    }
    if (s == ParseStatus::kError) {
      // Framing is unrecoverable on a byte stream: drop the connection.
      rx_.ReleaseReserve();
      conn_->Close();
      closed_.store(true, std::memory_order_release);
      EmitEof();
      return ParseOutcome::kIdle;
    }
    messages_in_.fetch_add(1, std::memory_order_relaxed);
    pending_ = std::move(parse_msg_);
    if (!FlushPending()) {
      return ParseOutcome::kIdle;  // backpressure: consumer will wake us
    }
    ctx.ItemDone();
    if (ctx.ShouldYield()) {
      return ParseOutcome::kMoreWork;
    }
  }
  return ParseOutcome::kContinue;
}

OutputTask::OutputTask(std::string name, std::unique_ptr<Connection> conn,
                       std::unique_ptr<Serializer> codec, Channel* in, BufferPool* buffers)
    : Task(std::move(name)),
      conn_(std::move(conn)),
      codec_(std::move(codec)),
      in_(in),
      tx_(buffers) {
  in_->BindConsumer(this, nullptr);  // scheduler bound later via TaskGraph
}

OutputTask::~OutputTask() = default;

void OutputTask::Rebind(std::unique_ptr<Connection> conn) {
  conn_ = std::move(conn);
  tx_.Clear();
  msgs_since_flush_ = 0;
  eof_received_ = false;
  messages_out_.store(0, std::memory_order_relaxed);
  closed_.store(conn_ == nullptr, std::memory_order_release);
}

TaskRunResult OutputTask::Run(TaskContext& ctx) {
  if (closed_.load(std::memory_order_acquire)) {
    // Drain and drop anything still queued so upstream does not stall.
    while (MsgRef msg = in_->TryPop()) {
    }
    return TaskRunResult::kIdle;
  }

  while (true) {
    if (!FlushWire()) {
      return CloseFatal();
    }
    if (!tx_.empty()) {
      // Transport is full: let other tasks run; retry when rescheduled.
      return TaskRunResult::kMoreWork;
    }
    if (eof_received_) {
      if (close_on_eof_) {
        conn_->Close();
        closed_.store(true, std::memory_order_release);
      } else {
        eof_received_ = false;  // shared connection stays up
      }
      return TaskRunResult::kIdle;
    }

    // Drain the channel backlog into tx_ WITHOUT flushing per message: every
    // message waiting in this run slice coalesces into one vectored write.
    // Flush triggers: backlog high-water (forced), slice end (yield), and
    // channel drained (the loop-top flush after `break`).
    while (true) {
      MsgRef msg = in_->TryPop();
      if (!msg) {
        break;  // slice end: loop top flushes the batch, then goes idle
      }
      if (msg->kind == Msg::Kind::kEof) {
        eof_received_ = true;
        break;  // loop top flushes, then closes
      }
      const Status status = codec_->Serialize(*msg, tx_);
      if (!status.ok()) {
        // Output pool exhausted: treat as fatal for this connection rather
        // than silently dropping bytes mid-stream.
        return CloseFatal();
      }
      messages_out_.fetch_add(1, std::memory_order_relaxed);
      ++msgs_since_flush_;
      ctx.ItemDone();
      if (flush_watermark_ > 0 && tx_.readable() >= flush_watermark_) {
        batch_.flushes_forced.fetch_add(1, std::memory_order_relaxed);
        if (!FlushWire()) {
          return CloseFatal();
        }
        if (!tx_.empty()) {
          return TaskRunResult::kMoreWork;  // transport full mid-batch
        }
      }
      if (ctx.ShouldYield()) {
        if (!FlushWire()) {
          return CloseFatal();
        }
        return TaskRunResult::kMoreWork;
      }
    }
    if (!eof_received_) {
      // Channel drained: flush the batch and wait for the next push.
      if (!FlushWire()) {
        return CloseFatal();
      }
      return tx_.empty() ? TaskRunResult::kIdle : TaskRunResult::kMoreWork;
    }
    // EOF: loop to the top, which flushes then closes (or re-arms).
  }
}

}  // namespace flick::runtime
