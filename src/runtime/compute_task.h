// Compute tasks: the user-logic nodes of a task graph.
//
// ComputeTask drains its input channels round-robin and hands each message to
// a handler (the FLICK compiler's generated function body, or a native
// functor in src/services). The handler emits results through EmitContext —
// possibly to several outputs (fan-out > 1, §6.1 Memcached proxy).
//
// MergeTask implements `foldt` (§4.3): a binary merge node over two ordered
// input streams, combining equal-ordered elements with a user function.
// Compilers build a balanced tree of MergeTasks for k inputs (k-way merge).
#ifndef FLICK_RUNTIME_COMPUTE_TASK_H_
#define FLICK_RUNTIME_COMPUTE_TASK_H_

#include <functional>
#include <string>
#include <vector>

#include "runtime/channel.h"
#include "runtime/msg.h"
#include "runtime/task.h"

namespace flick::runtime {

// Handler-facing emission API. Emit returns false on a full output channel;
// the runtime then re-delivers the SAME input message later, so handlers must
// be idempotent per message or check CanEmit first.
class EmitContext {
 public:
  EmitContext(std::vector<Channel*>* outputs, MsgPool* msgs)
      : outputs_(outputs), msgs_(msgs) {}

  size_t output_count() const { return outputs_->size(); }

  bool CanEmit(size_t output_index) const {
    Channel* ch = (*outputs_)[output_index];
    return ch->SizeApprox() < ch->capacity();
  }

  bool Emit(size_t output_index, MsgRef&& msg) {
    return (*outputs_)[output_index]->TryPush(std::move(msg));
  }

  MsgRef NewMsg() { return msgs_->Acquire(); }

 private:
  std::vector<Channel*>* outputs_;
  MsgPool* msgs_;
};

// Return value of a handler invocation.
enum class HandleResult {
  kConsumed,  // message fully handled
  kBlocked,   // output full: re-deliver this message later
};

class ComputeTask : public Task {
 public:
  // handler(msg, input_index, emit) — msg ownership passes to the handler
  // only when it returns kConsumed.
  using Handler = std::function<HandleResult(Msg& msg, size_t input_index, EmitContext& emit)>;

  ComputeTask(std::string name, Handler handler, MsgPool* msgs);

  // Wiring (before scheduling).
  void AddInput(Channel* ch, Scheduler* scheduler) {
    ch->BindConsumer(this, scheduler);
    inputs_.push_back(ch);
  }
  void AddOutput(Channel* ch) {
    ch->BindProducer(this);
    outputs_.push_back(ch);
  }

  size_t input_count() const { return inputs_.size(); }
  uint64_t messages_handled() const {
    return messages_handled_.load(std::memory_order_relaxed);
  }

  TaskRunResult Run(TaskContext& ctx) override;

 private:
  Handler handler_;
  MsgPool* msgs_;
  std::vector<Channel*> inputs_;
  std::vector<Channel*> outputs_;
  MsgRef stalled_msg_;       // message whose handling was blocked
  size_t stalled_input_ = 0;
  size_t next_input_ = 0;    // round-robin drain position
  std::atomic<uint64_t> messages_handled_{0};  // read off-thread by tests/stats
};

// foldt (§4.3): merges two key-ordered input streams, combining values of
// equal keys. Emits in key order. Used pairwise to build aggregation trees
// (Figure 3c).
class MergeTask : public Task {
 public:
  // order(a, b) < 0 | 0 | > 0 ; combine(a, b) -> merged message
  using OrderFn = std::function<int(const Msg&, const Msg&)>;
  using CombineFn = std::function<void(Msg& into, const Msg& from)>;

  MergeTask(std::string name, OrderFn order, CombineFn combine);

  void BindInputs(Channel* left, Channel* right, Scheduler* scheduler) {
    left->BindConsumer(this, scheduler);
    right->BindConsumer(this, scheduler);
    left_ = left;
    right_ = right;
  }
  void BindOutput(Channel* out) {
    out->BindProducer(this);
    out_ = out;
  }

  TaskRunResult Run(TaskContext& ctx) override;

 private:
  // Attempts one merge step; false when blocked on input or output.
  bool Step(bool* made_progress);

  OrderFn order_;
  CombineFn combine_;
  Channel* left_ = nullptr;
  Channel* right_ = nullptr;
  Channel* out_ = nullptr;
  MsgRef left_pending_;
  MsgRef right_pending_;
  bool left_eof_ = false;
  bool right_eof_ = false;
  bool eof_forwarded_ = false;
  MsgRef out_pending_;  // emitted but not yet accepted by the channel
  MsgRef hold_;         // run-length combine buffer (last output element)
};

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_COMPUTE_TASK_H_
