// Shared machinery of the coalesced ingest path: the vectored chain fill used
// by every reader (InputTask sources, BackendPool connection tasks), the
// adaptive fill window that sizes it, and the counters it maintains. One
// implementation — the read-side mirror of wire_batch.h — so the counters
// mean the same thing on every wire and a fix lands everywhere at once.
#ifndef FLICK_RUNTIME_WIRE_FILL_H_
#define FLICK_RUNTIME_WIRE_FILL_H_

#include <atomic>
#include <cstdint>

#include "base/io_slice.h"
#include "buffer/buffer_chain.h"
#include "net/transport.h"
#include "runtime/wire_batch.h"

namespace flick::runtime {

// Max pool buffers one vectored fill may span. An idle connection never
// reserves more than one; a hot one amortises up to this many buffers per
// transport read.
inline constexpr size_t kDefaultFillWindow = 8;

// Ingest statistics, atomic because registries/tests/stats read them while
// worker threads write.
struct ReadBatchCounters {
  std::atomic<uint64_t> readv_calls{0};      // vectored fills that moved bytes
  std::atomic<uint64_t> bytes_per_readv{0};  // high-water bytes per fill
  std::atomic<uint64_t> fills_short{0};      // fills that proved the wire drained
  // Reads the legacy one-read-per-buffer path would have issued for the same
  // traffic: one per buffer a fill spanned, plus the trailing would-block
  // probe a short fill makes unnecessary (the legacy loop always paid it).
  // readv_calls staying strictly below this is the amortisation invariant
  // the CI smoke asserts.
  std::atomic<uint64_t> reads_legacy_equivalent{0};
};

// Adaptive fill window (per wire, single-writer): starts at one buffer so an
// idle connection costs one buffer, doubles after every full fill — the
// window, not the socket, was the limiting factor — up to `max`, and halves
// after a short or empty fill. Pool pressure clamps it to what the pool
// could actually reserve.
class AdaptiveFillWindow {
 public:
  AdaptiveFillWindow() = default;
  explicit AdaptiveFillWindow(size_t max) { set_max(max); }

  // Buffers the next fill should reserve.
  size_t next() const { return window_; }
  size_t max() const { return max_; }

  void set_max(size_t max) {
    max_ = max == 0 ? 1 : max;
    if (max_ > kMaxIoSlices) {
      max_ = kMaxIoSlices;
    }
    if (window_ > max_) {
      window_ = max_;
    }
  }

  void Reset() { window_ = 1; }

  void OnFullFill() { window_ = window_ * 2 > max_ ? max_ : window_ * 2; }
  void OnShortFill() { window_ = window_ > 1 ? window_ / 2 : 1; }
  void ClampTo(size_t reserved) {
    if (reserved > 0 && window_ > reserved) {
      window_ = reserved;  // pool pressure: do not ask for more than exists
    }
  }

 private:
  size_t max_ = kDefaultFillWindow;
  size_t window_ = 1;
};

enum class FillOutcome {
  kMore,      // full fill: the wire may hold more; fill again
  kDrained,   // short or empty fill: the wire is drained for now
  kNoBuffers, // pool exhausted: nothing reserved, requeue and retry
  kError,     // transport EOF/error: caller tears the wire down
};

// One vectored fill of `chain` from `conn`: reserves `window.next()` pool
// buffers, issues ONE scatter read across them, commits exactly the produced
// prefix, and adapts the window. `*bytes_out` (optional) receives the bytes
// moved. A short fill proves the wire is drained in the same call that moved
// the bytes — callers go idle on kDrained without a trailing would-block
// probe; the transport's readiness edge (or the poller's scan, for hook-less
// transports) re-notifies when new data lands.
inline FillOutcome FillChainVectored(BufferChain& chain, Connection& conn,
                                     AdaptiveFillWindow& window,
                                     ReadBatchCounters& counters,
                                     size_t* bytes_out = nullptr) {
  if (bytes_out != nullptr) {
    *bytes_out = 0;
  }
  MutIoSlice slices[kMaxIoSlices];
  const size_t n = chain.ReserveSlices(slices, window.next());
  if (n == 0) {
    return FillOutcome::kNoBuffers;
  }
  window.ClampTo(n);
  size_t capacity = 0;
  for (size_t i = 0; i < n; ++i) {
    capacity += slices[i].len;
  }
  auto got = conn.Readv(slices, n);
  if (!got.ok()) {
    return FillOutcome::kError;
  }
  chain.CommitFill(*got);
  if (bytes_out != nullptr) {
    *bytes_out = *got;
  }
  if (*got == 0) {
    // Would-block probe: not a counted fill (would-block writes are not
    // counted writevs either), but the window shrinks — this wire is not
    // keeping it busy. The legacy path paid the same probe read, so the
    // equivalence counter moves for NEITHER side: savings come only from
    // segment amortisation and avoided drain probes, never from probes both
    // paths issued.
    window.OnShortFill();
    return FillOutcome::kDrained;
  }
  counters.readv_calls.fetch_add(1, std::memory_order_relaxed);
  AtomicStoreMax(counters.bytes_per_readv, *got);
  // One legacy read per buffer the fill spanned (the old path read exactly
  // one buffer per transport call).
  uint64_t segments = 0;
  for (size_t i = 0, rem = *got; i < n && rem > 0; ++i) {
    ++segments;
    rem -= rem < slices[i].len ? rem : slices[i].len;
  }
  if (*got == capacity) {
    // Full fill: more data may be buffered; grow the window so the next fill
    // amortises further. The legacy loop would also come straight back.
    counters.reads_legacy_equivalent.fetch_add(segments, std::memory_order_relaxed);
    window.OnFullFill();
    return FillOutcome::kMore;
  }
  // Short fill: drained mid-window. The legacy path needed a trailing
  // would-block read to learn what this call already proved — that probe is
  // the per-wakeup syscall the coalesced path saves even at window 1.
  counters.fills_short.fetch_add(1, std::memory_order_relaxed);
  counters.reads_legacy_equivalent.fetch_add(segments + 1, std::memory_order_relaxed);
  window.OnShortFill();
  return FillOutcome::kDrained;
}

}  // namespace flick::runtime

#endif  // FLICK_RUNTIME_WIRE_FILL_H_
