#include "runtime/conn_lifetime.h"

namespace flick::runtime {

void ConnDeadline::Enable(TimerWheel* wheel, Scheduler* scheduler, Task* task,
                          const ConnLifetimeConfig& config,
                          ConnLifetimeCounters* counters) {
  if (!config.deadlines_enabled()) {
    return;
  }
  wheel_ = wheel;
  scheduler_ = scheduler;
  task_ = task;
  idle_timeout_ns_ = config.idle_timeout_ns;
  progress_deadline_ns_ = config.header_deadline_ns;
  counters_ = counters;
  // Poller thread. Record which window ran out and wake the owner; the owner
  // closes its own wire on its next slice (never a cross-thread Close).
  entry_.on_fire = [this] {
    expired_.store(armed_kind_.load(std::memory_order_acquire),
                   std::memory_order_release);
    scheduler_->NotifyRunnable(task_);
  };
}

void ConnDeadline::OnQuiescent(uint64_t now_ns) {
  if (wheel_ == nullptr) {
    return;
  }
  expired_.store(Expiry::kNone, std::memory_order_relaxed);
  if (idle_timeout_ns_ == 0) {
    Cancel();
    return;
  }
  // Already guarding the idle window: let it run down instead of sliding it
  // on every spurious wake.
  if (armed_kind_.load(std::memory_order_relaxed) == Expiry::kIdle &&
      entry_.pending()) {
    return;
  }
  armed_kind_.store(Expiry::kIdle, std::memory_order_release);
  wheel_->Rearm(&entry_, now_ns + idle_timeout_ns_);
}

void ConnDeadline::OnPartialMessage(uint64_t now_ns, bool progressed) {
  if (wheel_ == nullptr) {
    return;
  }
  expired_.store(Expiry::kNone, std::memory_order_relaxed);
  if (progress_deadline_ns_ == 0) {
    Cancel();
    return;
  }
  // A stalled slice must not extend the window — that is the whole point.
  if (!progressed &&
      armed_kind_.load(std::memory_order_relaxed) == Expiry::kProgress &&
      entry_.pending()) {
    return;
  }
  armed_kind_.store(Expiry::kProgress, std::memory_order_release);
  wheel_->Rearm(&entry_, now_ns + progress_deadline_ns_);
}

void ConnDeadline::Cancel() {
  if (wheel_ == nullptr) {
    return;
  }
  wheel_->Cancel(&entry_);
  armed_kind_.store(Expiry::kNone, std::memory_order_relaxed);
  expired_.store(Expiry::kNone, std::memory_order_relaxed);
}

ConnDeadline::Expiry ConnDeadline::ConsumeExpiry(bool idle_plausible,
                                                 bool progress_plausible) {
  if (wheel_ == nullptr) {
    return Expiry::kNone;
  }
  const Expiry e = expired_.exchange(Expiry::kNone, std::memory_order_acq_rel);
  if (e == Expiry::kIdle && idle_plausible) {
    return e;
  }
  if (e == Expiry::kProgress && progress_plausible) {
    return e;
  }
  // Stale fire (bytes raced the deadline): drop it; the slice-end hook
  // re-arms the right window.
  return Expiry::kNone;
}

void ConnDeadline::CountClose(Expiry expiry) {
  if (counters_ == nullptr) {
    return;
  }
  if (expiry == Expiry::kIdle) {
    counters_->idle_closed.fetch_add(1, std::memory_order_relaxed);
  } else if (expiry == Expiry::kProgress) {
    counters_->deadline_closed.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ShardAdmission::TryAdmit() {
  if (cap_ == 0) {
    live_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  size_t cur = live_.load(std::memory_order_relaxed);
  while (cur < cap_) {
    if (live_.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  counters_.admissions_shed.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace flick::runtime
