// Length/value expressions inside message grammars (§4.2, Listing 2).
//
// A FLICK grammar field may have a size that depends on previously parsed
// fields ("key : string &length = self.key_len") and `var` fields compute
// values during parsing ("&parse = self.total_len - (...)") or write back
// during serialisation ("&serialize = self.total_len = ... + $$", where $$
// is the actual size of the field being serialised).
//
// LenExpr is a tiny immutable expression tree over {constant, field-by-name,
// $$, +, -, *}. Units resolve field names to indices when built.
#ifndef FLICK_GRAMMAR_LEN_EXPR_H_
#define FLICK_GRAMMAR_LEN_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/check.h"

namespace flick::grammar {

class LenExpr {
 public:
  enum class Op { kConst, kField, kDollar, kAdd, kSub, kMul };

  // Default: the constant 0.
  LenExpr() { node_ = MakeNode(Op::kConst, 0, ""); }

  static LenExpr Const(uint64_t value) {
    LenExpr e;
    e.node_ = MakeNode(Op::kConst, value, "");
    return e;
  }

  static LenExpr Field(std::string name) {
    LenExpr e;
    e.node_ = MakeNode(Op::kField, 0, std::move(name));
    return e;
  }

  // $$ — the actual byte size of the field being serialised.
  static LenExpr Dollar() {
    LenExpr e;
    e.node_ = MakeNode(Op::kDollar, 0, "");
    return e;
  }

  friend LenExpr operator+(const LenExpr& a, const LenExpr& b) { return Binary(Op::kAdd, a, b); }
  friend LenExpr operator-(const LenExpr& a, const LenExpr& b) { return Binary(Op::kSub, a, b); }
  friend LenExpr operator*(const LenExpr& a, const LenExpr& b) { return Binary(Op::kMul, a, b); }

  bool is_const() const { return node_->op == Op::kConst; }
  uint64_t const_value() const { return node_->constant; }

  // True when the expression is exactly one field reference.
  bool is_single_field() const { return node_->op == Op::kField; }
  int single_field_index() const { return node_->field_index; }

  // Collects referenced field names (for validation).
  void CollectFieldNames(std::vector<std::string>* out) const { Collect(node_.get(), out); }

  // Resolves field names to indices via the callback; CHECK-fails never —
  // returns false if a name is unknown.
  template <typename Resolver>
  bool Resolve(const Resolver& resolver) {
    return ResolveNode(node_.get(), resolver);
  }

  // Evaluates with `fields[i]` = numeric value of field i and `dollar` = $$.
  uint64_t Eval(const std::vector<uint64_t>& fields, uint64_t dollar = 0) const {
    return EvalNode(node_.get(), fields, dollar);
  }

  bool uses_dollar() const { return UsesDollar(node_.get()); }

 private:
  struct Node {
    Op op;
    uint64_t constant;
    std::string field_name;
    int field_index;
    std::shared_ptr<Node> lhs;
    std::shared_ptr<Node> rhs;
  };

  static std::shared_ptr<Node> MakeNode(Op op, uint64_t constant, std::string name) {
    return std::make_shared<Node>(Node{op, constant, std::move(name), -1, nullptr, nullptr});
  }

  static LenExpr Binary(Op op, const LenExpr& a, const LenExpr& b) {
    LenExpr e;
    e.node_ = std::make_shared<Node>(Node{op, 0, "", -1, a.node_, b.node_});
    return e;
  }

  static void Collect(const Node* n, std::vector<std::string>* out) {
    if (n == nullptr) {
      return;
    }
    if (n->op == Op::kField) {
      out->push_back(n->field_name);
    }
    Collect(n->lhs.get(), out);
    Collect(n->rhs.get(), out);
  }

  template <typename Resolver>
  static bool ResolveNode(Node* n, const Resolver& resolver) {
    if (n == nullptr) {
      return true;
    }
    if (n->op == Op::kField) {
      const int index = resolver(n->field_name);
      if (index < 0) {
        return false;
      }
      n->field_index = index;
    }
    return ResolveNode(n->lhs.get(), resolver) && ResolveNode(n->rhs.get(), resolver);
  }

  static uint64_t EvalNode(const Node* n, const std::vector<uint64_t>& fields, uint64_t dollar) {
    switch (n->op) {
      case Op::kConst: return n->constant;
      case Op::kDollar: return dollar;
      case Op::kField:
        FLICK_DCHECK(n->field_index >= 0 &&
                     static_cast<size_t>(n->field_index) < fields.size());
        return fields[static_cast<size_t>(n->field_index)];
      case Op::kAdd: return EvalNode(n->lhs.get(), fields, dollar) + EvalNode(n->rhs.get(), fields, dollar);
      case Op::kSub: {
        const uint64_t l = EvalNode(n->lhs.get(), fields, dollar);
        const uint64_t r = EvalNode(n->rhs.get(), fields, dollar);
        return l >= r ? l - r : 0;  // clamp: malformed lengths must not wrap
      }
      case Op::kMul: return EvalNode(n->lhs.get(), fields, dollar) * EvalNode(n->rhs.get(), fields, dollar);
    }
    return 0;
  }

  static bool UsesDollar(const Node* n) {
    if (n == nullptr) {
      return false;
    }
    if (n->op == Op::kDollar) {
      return true;
    }
    return UsesDollar(n->lhs.get()) || UsesDollar(n->rhs.get());
  }

  std::shared_ptr<Node> node_;
};

}  // namespace flick::grammar

#endif  // FLICK_GRAMMAR_LEN_EXPR_H_
