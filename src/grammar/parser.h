// Incremental unit parser (§4.2: "supports the incremental parsing of
// messages as new data arrives").
//
// Feed() consumes bytes from a BufferChain and fills a Message. If the chain
// runs dry mid-message, the parser keeps its position (current field, bytes
// consumed within it) and resumes on the next Feed — input tasks call it once
// per network read with whatever fragment arrived.
#ifndef FLICK_GRAMMAR_PARSER_H_
#define FLICK_GRAMMAR_PARSER_H_

#include <cstdint>

#include "buffer/buffer_chain.h"
#include "grammar/message.h"
#include "grammar/unit.h"

namespace flick::grammar {

enum class ParseStatus {
  kDone,      // a complete message was produced
  kNeedMore,  // ran out of input mid-message; state kept
  kError,     // irrecoverable framing error
};

class UnitParser {
 public:
  explicit UnitParser(const Unit* unit) : unit_(unit) { Reset(); }

  const Unit* unit() const { return unit_; }

  // Attempts to complete one message from `input`. On kDone, `out` holds the
  // message and the consumed bytes are removed from `input`. On kNeedMore,
  // partial bytes are consumed and parsing resumes on the next call with the
  // SAME `out` message.
  ParseStatus Feed(BufferChain& input, Message* out);

  // Abandons any partial message.
  void Reset();

  bool mid_message() const { return field_index_ > 0 || field_consumed_ > 0; }

  // Guard against absurd lengths from corrupt peers (bounded resource use).
  void set_max_field_size(size_t n) { max_field_size_ = n; }

 private:
  const Unit* unit_;
  size_t field_index_ = 0;     // current field
  size_t field_consumed_ = 0;  // bytes of current field consumed so far
  size_t field_size_ = 0;      // resolved size of current field
  bool field_started_ = false;
  size_t message_bytes_ = 0;   // wire bytes consumed for this message
  size_t max_field_size_ = 64 * 1024 * 1024;

  // ascii integer in flight (digits and the CRLF terminator may arrive split
  // across reads).
  uint64_t ascii_value_ = 0;
  size_t ascii_digits_ = 0;
  bool ascii_seen_cr_ = false;
};

}  // namespace flick::grammar

#endif  // FLICK_GRAMMAR_PARSER_H_
