// Message grammar units (§4.2): ordered field sequences with fixed-size
// integers, dependent-length byte/string fields, computed `var` fields and
// anonymous skip fields. Built with UnitBuilder, validated at Build() time.
//
// Projection (§4.2 "FLICK programs make accesses to message fields explicit")
// is expressed per field: a field that is not in the accessed set is still
// framed (its length still drives parsing) but its bytes are not materialised
// into the message, only counted and passed through.
#ifndef FLICK_GRAMMAR_UNIT_H_
#define FLICK_GRAMMAR_UNIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/byte_order.h"
#include "base/result.h"
#include "grammar/len_expr.h"

namespace flick::grammar {

enum class FieldKind {
  kUInt,   // fixed 1..8-byte unsigned integer, endian per unit
  kBytes,  // byte/string field; fixed or expression-driven length
  kVar,    // no wire bytes; value computed by parse_expr / serialize writes
};

struct FieldSpec {
  std::string name;  // empty => anonymous ("_", not accessible)
  FieldKind kind = FieldKind::kBytes;

  // kUInt: byte width. kBytes with !length.is_const(): ignored.
  size_t fixed_size = 0;

  // kUInt only: wire form is ASCII decimal digits terminated by "\r\n"
  // (the terminator is consumed with the field). Wire width is variable,
  // so ascii fields end the unit's fixed prefix. fixed_size is ignored.
  bool ascii = false;

  // kBytes: length in bytes (may reference earlier numeric fields).
  LenExpr length;

  // kVar: value computed during parse.
  LenExpr parse_expr;

  // Serialisation write-back: after the sized fields' actual lengths are
  // known, `serialize_target` (a field name) is assigned serialize_expr
  // evaluated with $$ = actual size of the field named `dollar_source`.
  std::string serialize_target;
  LenExpr serialize_expr;
  std::string dollar_source;

  // Projection: materialise bytes into the message? (numeric fields are
  // always materialised — they may drive later lengths.)
  bool materialize = true;
};

class Unit;

class UnitBuilder {
 public:
  explicit UnitBuilder(std::string name) : name_(std::move(name)) {}

  UnitBuilder& ByteOrder(flick::ByteOrder order) {
    byte_order_ = order;
    return *this;
  }

  // Fixed-width unsigned integer field.
  UnitBuilder& UInt(std::string name, size_t bytes);
  // Anonymous fixed-width integer (reserved wire space).
  UnitBuilder& SkipUInt(size_t bytes) { return UInt("", bytes); }

  // ASCII-decimal unsigned integer terminated by "\r\n" (RESP-style line
  // framing). Participates in length expressions like any numeric field.
  UnitBuilder& AsciiUInt(std::string name);

  // Byte/string field with constant or computed length.
  UnitBuilder& Bytes(std::string name, LenExpr length);
  UnitBuilder& Bytes(std::string name, uint64_t fixed_length) {
    return Bytes(std::move(name), LenExpr::Const(fixed_length));
  }
  UnitBuilder& SkipBytes(LenExpr length) { return Bytes("", std::move(length)); }

  // var field: computed on parse, optional write-back on serialise.
  UnitBuilder& Var(std::string name, LenExpr parse_expr);

  // Declares: on serialise, set `target` := expr($$ = size of `dollar_source`).
  // Attaches to the most recently added field.
  UnitBuilder& SerializeWriteback(std::string target, LenExpr expr, std::string dollar_source);

  // Marks a named field as pass-through (framed but not materialised).
  UnitBuilder& NoMaterialize(const std::string& name);

  Result<Unit> Build();

 private:
  std::string name_;
  flick::ByteOrder byte_order_ = flick::ByteOrder::kBig;
  std::vector<FieldSpec> fields_;
};

class Unit {
 public:
  const std::string& name() const { return name_; }
  flick::ByteOrder byte_order() const { return byte_order_; }
  const std::vector<FieldSpec>& fields() const { return fields_; }

  // Index of a named field, or -1.
  int FieldIndex(const std::string& name) const;

  // Sum of fixed sizes of the leading run of constant-size fields — the
  // minimum bytes needed before any dynamic length can be computed.
  size_t fixed_prefix_size() const { return fixed_prefix_size_; }

  // Returns a copy of this unit where only `accessed` fields (and fields
  // feeding their lengths) are materialised.
  Unit Project(const std::vector<std::string>& accessed) const;

 private:
  friend class UnitBuilder;

  std::string name_;
  flick::ByteOrder byte_order_ = flick::ByteOrder::kBig;
  std::vector<FieldSpec> fields_;
  size_t fixed_prefix_size_ = 0;
};

}  // namespace flick::grammar

#endif  // FLICK_GRAMMAR_UNIT_H_
