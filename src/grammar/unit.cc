#include "grammar/unit.h"

#include <set>

namespace flick::grammar {

UnitBuilder& UnitBuilder::UInt(std::string name, size_t bytes) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kUInt;
  f.fixed_size = bytes;
  fields_.push_back(std::move(f));
  return *this;
}

UnitBuilder& UnitBuilder::AsciiUInt(std::string name) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kUInt;
  f.ascii = true;
  fields_.push_back(std::move(f));
  return *this;
}

UnitBuilder& UnitBuilder::Bytes(std::string name, LenExpr length) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kBytes;
  f.length = std::move(length);
  if (f.length.is_const()) {
    f.fixed_size = f.length.const_value();
  }
  fields_.push_back(std::move(f));
  return *this;
}

UnitBuilder& UnitBuilder::Var(std::string name, LenExpr parse_expr) {
  FieldSpec f;
  f.name = std::move(name);
  f.kind = FieldKind::kVar;
  f.parse_expr = std::move(parse_expr);
  fields_.push_back(std::move(f));
  return *this;
}

UnitBuilder& UnitBuilder::SerializeWriteback(std::string target, LenExpr expr,
                                             std::string dollar_source) {
  FLICK_CHECK(!fields_.empty());
  FieldSpec& f = fields_.back();
  f.serialize_target = std::move(target);
  f.serialize_expr = std::move(expr);
  f.dollar_source = std::move(dollar_source);
  return *this;
}

UnitBuilder& UnitBuilder::NoMaterialize(const std::string& name) {
  for (FieldSpec& f : fields_) {
    if (f.name == name) {
      f.materialize = false;
      return *this;
    }
  }
  FLICK_CHECK(false && "NoMaterialize: unknown field");
  return *this;
}

Result<Unit> UnitBuilder::Build() {
  Unit unit;
  unit.name_ = std::move(name_);
  unit.byte_order_ = byte_order_;
  unit.fields_ = std::move(fields_);

  // Validate names are unique (anonymous fields excepted).
  std::set<std::string> seen;
  for (const FieldSpec& f : unit.fields_) {
    if (f.name.empty()) {
      continue;
    }
    if (!seen.insert(f.name).second) {
      return InvalidArgument("duplicate field name: " + f.name);
    }
  }

  // Integer widths must be 1..8 (ascii integers have no fixed wire width).
  for (const FieldSpec& f : unit.fields_) {
    if (f.kind == FieldKind::kUInt && !f.ascii &&
        (f.fixed_size == 0 || f.fixed_size > 8)) {
      return InvalidArgument("integer field width out of range: " + f.name);
    }
  }

  // Resolve expressions; every referenced field must be an *earlier* numeric
  // field (uint or var) so incremental parsing is single-pass (LL(1)-style).
  for (size_t i = 0; i < unit.fields_.size(); ++i) {
    FieldSpec& f = unit.fields_[i];
    auto resolver_before = [&](const std::string& name) -> int {
      for (size_t j = 0; j < i; ++j) {
        const FieldSpec& g = unit.fields_[j];
        if (g.name == name &&
            (g.kind == FieldKind::kUInt || g.kind == FieldKind::kVar)) {
          return static_cast<int>(j);
        }
      }
      return -1;
    };
    if (f.kind == FieldKind::kBytes && !f.length.Resolve(resolver_before)) {
      return InvalidArgument("length of '" + f.name +
                             "' references an unknown or later field");
    }
    if (f.kind == FieldKind::kVar && !f.parse_expr.Resolve(resolver_before)) {
      return InvalidArgument("parse expr of '" + f.name +
                             "' references an unknown or later field");
    }
    if (!f.serialize_target.empty()) {
      // Write-back targets/sources may be anywhere in the unit.
      auto resolver_any = [&](const std::string& name) -> int {
        for (size_t j = 0; j < unit.fields_.size(); ++j) {
          if (unit.fields_[j].name == name) {
            return static_cast<int>(j);
          }
        }
        return -1;
      };
      if (resolver_any(f.serialize_target) < 0) {
        return InvalidArgument("serialize target '" + f.serialize_target + "' unknown");
      }
      if (!f.dollar_source.empty() && resolver_any(f.dollar_source) < 0) {
        return InvalidArgument("dollar source '" + f.dollar_source + "' unknown");
      }
      if (!f.serialize_expr.Resolve(resolver_any)) {
        return InvalidArgument("serialize expr of '" + f.name + "' references unknown field");
      }
    }
  }

  // Fixed prefix: leading constant-size wire fields.
  size_t prefix = 0;
  for (const FieldSpec& f : unit.fields_) {
    if (f.kind == FieldKind::kVar) {
      continue;  // no wire bytes
    }
    if ((f.kind == FieldKind::kUInt && !f.ascii) ||
        (f.kind == FieldKind::kBytes && f.length.is_const())) {
      prefix += f.fixed_size;
    } else {
      break;  // ascii ints and expression-sized bytes have variable width
    }
  }
  unit.fixed_prefix_size_ = prefix;

  return unit;
}

int Unit::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].name.empty() && fields_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Unit Unit::Project(const std::vector<std::string>& accessed) const {
  Unit projected = *this;
  std::set<std::string> keep(accessed.begin(), accessed.end());
  // Fields feeding any parse-side expression must stay materialised; bytes
  // fields outside the accessed set become pass-through. (Serialize-side
  // references are deliberately ignored: a projected unit serves the parse
  // path, and re-serialising a projected message is unsupported by design —
  // pass-through fields have lost their payload.)
  std::set<std::string> needed;
  for (const FieldSpec& f : projected.fields_) {
    std::vector<std::string> refs;
    f.length.CollectFieldNames(&refs);
    f.parse_expr.CollectFieldNames(&refs);
    needed.insert(refs.begin(), refs.end());
  }
  for (FieldSpec& f : projected.fields_) {
    if (f.kind != FieldKind::kBytes) {
      continue;
    }
    if (f.name.empty() || (keep.count(f.name) == 0 && needed.count(f.name) == 0)) {
      f.materialize = false;
    }
  }
  return projected;
}

}  // namespace flick::grammar
