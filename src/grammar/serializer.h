// Unit serializer: converts a Message back to wire bytes (§4.2: output tasks
// run "efficient serialisation code generated from the FLICK program").
//
// Before emitting, length fields are recomputed from the actual sizes of the
// byte fields that reference them:
//   * a bytes field whose length expression is a single field reference
//     drives that field directly (key_len := len(key));
//   * `var` fields with a SerializeWriteback assign their target from the
//     declared expression with $$ bound to the named source field's size
//     (total_len := key_len + extras_len + len(value)).
#ifndef FLICK_GRAMMAR_SERIALIZER_H_
#define FLICK_GRAMMAR_SERIALIZER_H_

#include "buffer/buffer_chain.h"
#include "grammar/message.h"

namespace flick::grammar {

class UnitSerializer {
 public:
  explicit UnitSerializer(const Unit* unit) : unit_(unit) {}

  // Recomputes dependent lengths in `msg` (mutating its numeric fields), then
  // appends the wire representation to `out`. Fails with kResourceExhausted
  // if the output pool runs dry, kFailedPrecondition on unit mismatch.
  Status Serialize(Message& msg, BufferChain& out) const;

  // Wire size the message will occupy (after length fix-up).
  size_t WireSize(const Message& msg) const;

 private:
  void FixupLengths(Message& msg) const;

  const Unit* unit_;
};

}  // namespace flick::grammar

#endif  // FLICK_GRAMMAR_SERIALIZER_H_
