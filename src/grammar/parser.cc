#include "grammar/parser.h"

namespace flick::grammar {

void UnitParser::Reset() {
  field_index_ = 0;
  field_consumed_ = 0;
  field_size_ = 0;
  field_started_ = false;
  message_bytes_ = 0;
  ascii_value_ = 0;
  ascii_digits_ = 0;
  ascii_seen_cr_ = false;
}

ParseStatus UnitParser::Feed(BufferChain& input, Message* out) {
  FLICK_CHECK(out != nullptr);
  if (field_index_ == 0 && field_consumed_ == 0 && !field_started_) {
    // Fresh message: bind (or re-bind) the output.
    if (out->unit() != unit_) {
      out->BindUnit(unit_);
    } else {
      out->Reset();
    }
    message_bytes_ = 0;
  }

  const auto& fields = unit_->fields();
  while (field_index_ < fields.size()) {
    const FieldSpec& f = fields[field_index_];
    const int index = static_cast<int>(field_index_);

    if (f.kind == FieldKind::kVar) {
      out->SetUInt(index, f.parse_expr.Eval(out->nums()));
      ++field_index_;
      continue;
    }

    if (!field_started_) {
      // Resolve this field's size; dynamic lengths depend only on earlier
      // numeric fields, already present in `out`.
      if (f.kind == FieldKind::kUInt && f.ascii) {
        field_size_ = 0;  // variable: digits + CRLF, consumed byte-by-byte
        ascii_value_ = 0;
        ascii_digits_ = 0;
        ascii_seen_cr_ = false;
      } else if (f.kind == FieldKind::kUInt) {
        field_size_ = f.fixed_size;
      } else if (f.length.is_const()) {
        field_size_ = f.length.const_value();
      } else {
        field_size_ = f.length.Eval(out->nums());
      }
      if (field_size_ > max_field_size_) {
        Reset();
        return ParseStatus::kError;
      }
      field_consumed_ = 0;
      field_started_ = true;
      if (f.kind == FieldKind::kBytes) {
        out->BeginBytesField(index);
      }
    }

    if (f.kind == FieldKind::kUInt && f.ascii) {
      // ASCII decimal digits terminated by CRLF; digits and the terminator
      // may straddle reads, so consume one byte at a time.
      bool done = false;
      while (!done) {
        std::string_view front = input.FrontView();
        if (front.empty()) {
          return ParseStatus::kNeedMore;
        }
        const uint8_t c = static_cast<uint8_t>(front[0]);
        if (ascii_seen_cr_) {
          if (c != '\n') {
            Reset();
            return ParseStatus::kError;
          }
          done = true;
        } else if (c == '\r') {
          if (ascii_digits_ == 0) {
            Reset();
            return ParseStatus::kError;
          }
          ascii_seen_cr_ = true;
        } else if (c >= '0' && c <= '9') {
          if (++ascii_digits_ > 19) {  // uint64 overflow guard
            Reset();
            return ParseStatus::kError;
          }
          ascii_value_ = ascii_value_ * 10 + (c - '0');
        } else {
          Reset();
          return ParseStatus::kError;
        }
        input.Consume(1);
        ++field_consumed_;
        ++message_bytes_;
      }
      out->SetUInt(index, ascii_value_);
      field_started_ = false;
      field_consumed_ = 0;
      ++field_index_;
      continue;
    }

    if (f.kind == FieldKind::kUInt) {
      // Integers decode atomically: wait for the full width.
      if (input.readable() < field_size_) {
        return ParseStatus::kNeedMore;
      }
      uint8_t raw[8];
      input.Read(raw, field_size_);
      message_bytes_ += field_size_;
      out->SetUInt(index, LoadUInt(raw, field_size_, unit_->byte_order()));
      field_started_ = false;
      ++field_index_;
      continue;
    }

    // Bytes field: consume incrementally.
    while (field_consumed_ < field_size_) {
      std::string_view front = input.FrontView();
      if (front.empty()) {
        return ParseStatus::kNeedMore;
      }
      const size_t want = field_size_ - field_consumed_;
      const size_t take = front.size() < want ? front.size() : want;
      out->AppendBytes(index, reinterpret_cast<const uint8_t*>(front.data()), take,
                       f.materialize);
      input.Consume(take);
      field_consumed_ += take;
      message_bytes_ += take;
    }
    field_started_ = false;
    field_consumed_ = 0;
    ++field_index_;
  }

  out->set_wire_size(message_bytes_);
  Reset();
  return ParseStatus::kDone;
}

}  // namespace flick::grammar
