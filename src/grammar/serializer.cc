#include "grammar/serializer.h"

namespace flick::grammar {
namespace {

// Renders `v` as ASCII decimal into `buf` (no terminator); returns digit count.
size_t RenderAsciiUInt(uint64_t v, char buf[20]) {
  size_t n = 0;
  char tmp[20];
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = tmp[n - 1 - i];
  }
  return n;
}

}  // namespace

void UnitSerializer::FixupLengths(Message& msg) const {
  const auto& fields = unit_->fields();
  // Pass 1: simple length references (key_len := len(key)).
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kBytes && f.length.is_single_field()) {
      msg.SetUInt(f.length.single_field_index(),
                  msg.GetBytes(static_cast<int>(i)).size());
    }
  }
  // Pass 2: declared write-backs, in field order.
  for (const FieldSpec& f : fields) {
    if (f.serialize_target.empty()) {
      continue;
    }
    uint64_t dollar = 0;
    if (!f.dollar_source.empty()) {
      const int src = unit_->FieldIndex(f.dollar_source);
      dollar = msg.GetBytes(src).size();
    }
    const int target = unit_->FieldIndex(f.serialize_target);
    msg.SetUInt(target, f.serialize_expr.Eval(msg.nums(), dollar));
  }
  // Pass 3: var fields with a parse expression but no write-back are
  // recomputed so round-tripping keeps them consistent.
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kVar && f.serialize_target.empty()) {
      msg.SetUInt(static_cast<int>(i), f.parse_expr.Eval(msg.nums()));
    }
  }
}

size_t UnitSerializer::WireSize(const Message& msg) const {
  const auto& fields = unit_->fields();
  size_t total = 0;
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kUInt && f.ascii) {
      char digits[20];
      total += RenderAsciiUInt(msg.GetUInt(static_cast<int>(i)), digits) + 2;
    } else if (f.kind == FieldKind::kUInt) {
      total += f.fixed_size;
    } else if (f.kind == FieldKind::kBytes) {
      total += msg.GetBytes(static_cast<int>(i)).size();
    }
  }
  return total;
}

Status UnitSerializer::Serialize(Message& msg, BufferChain& out) const {
  if (msg.unit() != unit_) {
    return FailedPrecondition("message unit does not match serializer unit");
  }
  FixupLengths(msg);
  const auto& fields = unit_->fields();
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kVar) {
      continue;
    }
    if (f.kind == FieldKind::kUInt && f.ascii) {
      char wire[22];
      const size_t n = RenderAsciiUInt(msg.GetUInt(static_cast<int>(i)), wire);
      wire[n] = '\r';
      wire[n + 1] = '\n';
      if (!out.Append(wire, n + 2)) {
        return ResourceExhausted("output buffer pool empty");
      }
      continue;
    }
    if (f.kind == FieldKind::kUInt) {
      uint8_t raw[8];
      StoreUInt(raw, f.fixed_size, unit_->byte_order(), msg.GetUInt(static_cast<int>(i)));
      if (!out.Append(raw, f.fixed_size)) {
        return ResourceExhausted("output buffer pool empty");
      }
      continue;
    }
    const std::string_view bytes = msg.GetBytes(static_cast<int>(i));
    if (!out.Append(bytes.data(), bytes.size())) {
      return ResourceExhausted("output buffer pool empty");
    }
  }
  return OkStatus();
}

}  // namespace flick::grammar
