#include "grammar/serializer.h"

namespace flick::grammar {

void UnitSerializer::FixupLengths(Message& msg) const {
  const auto& fields = unit_->fields();
  // Pass 1: simple length references (key_len := len(key)).
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kBytes && f.length.is_single_field()) {
      msg.SetUInt(f.length.single_field_index(),
                  msg.GetBytes(static_cast<int>(i)).size());
    }
  }
  // Pass 2: declared write-backs, in field order.
  for (const FieldSpec& f : fields) {
    if (f.serialize_target.empty()) {
      continue;
    }
    uint64_t dollar = 0;
    if (!f.dollar_source.empty()) {
      const int src = unit_->FieldIndex(f.dollar_source);
      dollar = msg.GetBytes(src).size();
    }
    const int target = unit_->FieldIndex(f.serialize_target);
    msg.SetUInt(target, f.serialize_expr.Eval(msg.nums(), dollar));
  }
  // Pass 3: var fields with a parse expression but no write-back are
  // recomputed so round-tripping keeps them consistent.
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kVar && f.serialize_target.empty()) {
      msg.SetUInt(static_cast<int>(i), f.parse_expr.Eval(msg.nums()));
    }
  }
}

size_t UnitSerializer::WireSize(const Message& msg) const {
  const auto& fields = unit_->fields();
  size_t total = 0;
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kUInt) {
      total += f.fixed_size;
    } else if (f.kind == FieldKind::kBytes) {
      total += msg.GetBytes(static_cast<int>(i)).size();
    }
  }
  return total;
}

Status UnitSerializer::Serialize(Message& msg, BufferChain& out) const {
  if (msg.unit() != unit_) {
    return FailedPrecondition("message unit does not match serializer unit");
  }
  FixupLengths(msg);
  const auto& fields = unit_->fields();
  for (size_t i = 0; i < fields.size(); ++i) {
    const FieldSpec& f = fields[i];
    if (f.kind == FieldKind::kVar) {
      continue;
    }
    if (f.kind == FieldKind::kUInt) {
      uint8_t raw[8];
      StoreUInt(raw, f.fixed_size, unit_->byte_order(), msg.GetUInt(static_cast<int>(i)));
      if (!out.Append(raw, f.fixed_size)) {
        return ResourceExhausted("output buffer pool empty");
      }
      continue;
    }
    const std::string_view bytes = msg.GetBytes(static_cast<int>(i));
    if (!out.Append(bytes.data(), bytes.size())) {
      return ResourceExhausted("output buffer pool empty");
    }
  }
  return OkStatus();
}

}  // namespace flick::grammar
