// Parsed message representation.
//
// Numeric fields land in a flat vector; byte fields are copied into a single
// reusable arena (one allocation amortised across the message's lifetime —
// the input task reuses Message objects, so the steady state allocates
// nothing, matching §4.2's "does not dynamically allocate memory").
// Pass-through (non-materialised) fields record only their size.
#ifndef FLICK_GRAMMAR_MESSAGE_H_
#define FLICK_GRAMMAR_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/check.h"
#include "grammar/unit.h"

namespace flick::grammar {

class Message {
 public:
  Message() = default;

  void BindUnit(const Unit* unit) {
    unit_ = unit;
    Reset();
  }

  const Unit* unit() const { return unit_; }

  void Reset() {
    FLICK_DCHECK(unit_ != nullptr);
    const size_t n = unit_->fields().size();
    nums_.assign(n, 0);
    spans_.assign(n, Span{});
    arena_.clear();
  }

  // --- numeric fields -------------------------------------------------------
  uint64_t GetUInt(int index) const {
    FLICK_DCHECK(InRange(index));
    return nums_[static_cast<size_t>(index)];
  }
  uint64_t GetUInt(const std::string& name) const { return GetUInt(MustIndex(name)); }
  void SetUInt(int index, uint64_t value) {
    FLICK_DCHECK(InRange(index));
    nums_[static_cast<size_t>(index)] = value;
  }
  void SetUInt(const std::string& name, uint64_t value) { SetUInt(MustIndex(name), value); }

  // --- byte fields ----------------------------------------------------------
  std::string_view GetBytes(int index) const {
    FLICK_DCHECK(InRange(index));
    const Span& s = spans_[static_cast<size_t>(index)];
    return std::string_view(arena_.data() + s.offset, s.materialized_size);
  }
  std::string_view GetBytes(const std::string& name) const { return GetBytes(MustIndex(name)); }

  // Wire size of the field (equals GetBytes().size() unless pass-through).
  size_t FieldWireSize(int index) const {
    FLICK_DCHECK(InRange(index));
    return spans_[static_cast<size_t>(index)].wire_size;
  }

  void SetBytes(int index, std::string_view data) {
    FLICK_DCHECK(InRange(index));
    Span& s = spans_[static_cast<size_t>(index)];
    s.offset = arena_.size();
    arena_.append(data.data(), data.size());
    s.materialized_size = data.size();
    s.wire_size = data.size();
  }
  void SetBytes(const std::string& name, std::string_view data) {
    SetBytes(MustIndex(name), data);
  }

  // --- parser-side incremental append --------------------------------------
  void BeginBytesField(int index) {
    Span& s = spans_[static_cast<size_t>(index)];
    s.offset = arena_.size();
    s.materialized_size = 0;
    s.wire_size = 0;
  }
  void AppendBytes(int index, const uint8_t* data, size_t n, bool materialize) {
    Span& s = spans_[static_cast<size_t>(index)];
    if (materialize) {
      arena_.append(reinterpret_cast<const char*>(data), n);
      s.materialized_size += n;
    }
    s.wire_size += n;
  }

  // Total bytes this message would occupy on the wire (valid after parse).
  size_t wire_size() const { return wire_size_; }
  void set_wire_size(size_t n) { wire_size_ = n; }

  // Flat numeric-field view, in field order (length expressions evaluate
  // against this).
  const std::vector<uint64_t>& nums() const { return nums_; }

 private:
  struct Span {
    size_t offset = 0;
    size_t materialized_size = 0;
    size_t wire_size = 0;
  };

  bool InRange(int index) const {
    return unit_ != nullptr && index >= 0 && static_cast<size_t>(index) < nums_.size();
  }

  int MustIndex(const std::string& name) const {
    const int index = unit_->FieldIndex(name);
    FLICK_CHECK(index >= 0);
    return index;
  }

  const Unit* unit_ = nullptr;
  std::vector<uint64_t> nums_;
  std::vector<Span> spans_;
  std::string arena_;
  size_t wire_size_ = 0;
};

}  // namespace flick::grammar

#endif  // FLICK_GRAMMAR_MESSAGE_H_
