// Transport abstraction the FLICK platform runs on.
//
// The paper's platform runs either on the kernel TCP stack or on a modified
// mTCP + DPDK user-space stack (§5). This repo provides the same seam:
//   * SimTransport  — in-process fabric with calibrated kernel/mTCP cost
//                     models (used by benches; see DESIGN.md §2), and
//   * KernelTransport — real non-blocking sockets on loopback.
// All IO is non-blocking; the runtime polls readiness cooperatively.
#ifndef FLICK_NET_TRANSPORT_H_
#define FLICK_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>

#include "base/result.h"

namespace flick {

// A bidirectional byte-stream connection endpoint. Non-blocking:
//   Read/Write return 0 when they would block;
//   Read returns kUnavailable once the peer has closed and data is drained.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual Result<size_t> Read(void* buf, size_t len) = 0;
  virtual Result<size_t> Write(const void* buf, size_t len) = 0;

  // Half-close is not modelled; Close tears down both directions.
  virtual void Close() = 0;
  virtual bool IsOpen() const = 0;

  // True when a Read would make progress (data buffered or peer closed).
  virtual bool ReadReady() const = 0;

  virtual uint64_t id() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Non-blocking; nullptr when no pending connection.
  virtual std::unique_ptr<Connection> Accept() = 0;
  virtual uint16_t port() const = 0;
  virtual void Close() = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(uint16_t port) = 0;
  virtual Result<std::unique_ptr<Connection>> Connect(uint16_t port) = 0;
  virtual const char* name() const = 0;
};

}  // namespace flick

#endif  // FLICK_NET_TRANSPORT_H_
