// Transport abstraction the FLICK platform runs on.
//
// The paper's platform runs either on the kernel TCP stack or on a modified
// mTCP + DPDK user-space stack (§5). This repo provides the same seam:
//   * SimTransport  — in-process fabric with calibrated kernel/mTCP cost
//                     models (used by benches; see DESIGN.md §2), and
//   * KernelTransport — real non-blocking sockets on loopback.
// All IO is non-blocking; the runtime polls readiness cooperatively.
#ifndef FLICK_NET_TRANSPORT_H_
#define FLICK_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "base/io_slice.h"
#include "base/result.h"

namespace flick {

// A bidirectional byte-stream connection endpoint. Non-blocking:
//   Read/Write return 0 when they would block;
//   Read returns kUnavailable once the peer has closed and data is drained.
class Connection {
 public:
  virtual ~Connection() = default;

  virtual Result<size_t> Read(void* buf, size_t len) = 0;
  virtual Result<size_t> Write(const void* buf, size_t len) = 0;

  // Scatter-gather write: sends the slices in order as one byte stream, with
  // short-write semantics — the return value is total bytes accepted, which
  // may end mid-slice (0 when the transport would block). Transports override
  // this to make the whole batch cost ONE kernel crossing (`writev`); the
  // base implementation degrades to one Write per slice so every Connection
  // stays correct.
  virtual Result<size_t> Writev(const IoSlice* slices, size_t count) {
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) {
      if (slices[i].len == 0) {
        continue;
      }
      auto wrote = Write(slices[i].data, slices[i].len);
      if (!wrote.ok()) {
        // Bytes already accepted are on the wire; surface them and let the
        // caller hit the error on its next flush.
        return total > 0 ? Result<size_t>(total) : wrote;
      }
      total += *wrote;
      if (*wrote < slices[i].len) {
        break;  // transport backpressure mid-slice
      }
    }
    return total;
  }

  // Scatter read: fills the slices in order from the byte stream, with
  // short-read semantics — the return value is total bytes filled, which may
  // end mid-slice (0 when the transport would block). Transports override
  // this to make the whole fill cost ONE kernel crossing (`readv`/`recvmsg`);
  // the base implementation degrades to one Read per slice so every
  // Connection stays correct.
  virtual Result<size_t> Readv(const MutIoSlice* slices, size_t count) {
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) {
      if (slices[i].len == 0) {
        continue;
      }
      auto got = Read(slices[i].data, slices[i].len);
      if (!got.ok()) {
        // Bytes already filled belong to the stream; surface them and let the
        // caller hit the EOF/error on its next fill.
        return total > 0 ? Result<size_t>(total) : got;
      }
      total += *got;
      if (*got < slices[i].len) {
        break;  // stream drained mid-slice
      }
    }
    return total;
  }

  // Half-close is not modelled; Close tears down both directions.
  virtual void Close() = 0;
  virtual bool IsOpen() const = 0;

  // True when a Read would make progress (data buffered or peer closed).
  virtual bool ReadReady() const = 0;

  // Event-driven readiness (the epoll seam): transports that can deliver
  // readiness EDGES invoke `hook` from the peer's writer thread whenever
  // bytes land or the peer closes, and return true — the watcher then never
  // has to poll ReadReady() for this connection. Contract:
  //   * installing a hook on an already-readable connection invokes it once
  //     immediately (bytes that predate the hook are not lost);
  //   * SetReadReadyHook(nullptr) clears the hook and guarantees no
  //     invocation is in flight once it returns (safe to free the watcher);
  //   * the hook must be cheap and must never call back into this connection
  //     (it runs under the transport's hook lock).
  // The default declines: pure-polling transports (kernel loopback) return
  // false and the poller falls back to the ReadReady() scan.
  virtual bool SetReadReadyHook(std::function<void()> hook) {
    (void)hook;
    return false;
  }

  virtual uint64_t id() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Non-blocking; nullptr when no pending connection.
  virtual std::unique_ptr<Connection> Accept() = 0;
  virtual uint16_t port() const = 0;
  virtual void Close() = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(uint16_t port) = 0;

  // Additional accept socket on a port this transport already listens on —
  // the sharded-IO-plane accept path: each poller shard drains its own
  // listener, so one accepted connection's whole graph stays on one shard.
  // Kernel: an SO_REUSEPORT member socket (the kernel hash-distributes new
  // connections over the group). Sim: joins the port's accept group;
  // connections are placed round-robin across members. Transports that
  // cannot share a port keep this default; the platform then registers the
  // single listener with every shard and lets sweep order distribute.
  virtual Result<std::unique_ptr<Listener>> ListenShared(uint16_t port) {
    (void)port;
    return Status(StatusCode::kUnimplemented, "transport cannot share a port");
  }

  virtual Result<std::unique_ptr<Connection>> Connect(uint16_t port) = 0;
  virtual const char* name() const = 0;
};

}  // namespace flick

#endif  // FLICK_NET_TRANSPORT_H_
