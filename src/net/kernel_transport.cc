#include "net/kernel_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>

namespace flick {
namespace {

std::atomic<uint64_t> g_next_id{1};

Status Errno(const char* what) {
  return Status(StatusCode::kUnavailable, std::string(what) + ": " + strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

KernelConnection::KernelConnection(int fd, uint64_t id) : fd_(fd), id_(id) {
  SetNonBlocking(fd_);
  SetNoDelay(fd_);
}

KernelConnection::~KernelConnection() { Close(); }

Result<size_t> KernelConnection::Read(void* buf, size_t len) {
  if (fd_ < 0) {
    return Status(StatusCode::kUnavailable, "read on closed connection");
  }
  const ssize_t n = ::recv(fd_, buf, len, 0);
  if (n > 0) {
    return static_cast<size_t>(n);
  }
  if (n == 0) {
    return Status(StatusCode::kUnavailable, "peer closed");
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return size_t{0};
  }
  return Errno("recv");
}

Result<size_t> KernelConnection::Readv(const MutIoSlice* slices, size_t count) {
  if (fd_ < 0) {
    return Status(StatusCode::kUnavailable, "read on closed connection");
  }
  // recvmsg scatter fill: every slice is filled in stream order under one
  // kernel crossing; short-read semantics let the caller treat a partial
  // window as proof the socket is drained.
  struct iovec iov[kMaxIoSlices];
  size_t n_iov = 0;
  for (size_t i = 0; i < count && n_iov < kMaxIoSlices; ++i) {
    if (slices[i].len == 0) {
      continue;
    }
    iov[n_iov].iov_base = slices[i].data;
    iov[n_iov].iov_len = slices[i].len;
    ++n_iov;
  }
  if (n_iov == 0) {
    return size_t{0};
  }
  struct msghdr msg = {};
  msg.msg_iov = iov;
  msg.msg_iovlen = n_iov;
  const ssize_t n = ::recvmsg(fd_, &msg, 0);
  if (n > 0) {
    return static_cast<size_t>(n);
  }
  if (n == 0) {
    return Status(StatusCode::kUnavailable, "peer closed");
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return size_t{0};
  }
  return Errno("recvmsg");
}

Result<size_t> KernelConnection::Write(const void* buf, size_t len) {
  if (fd_ < 0) {
    return Status(StatusCode::kUnavailable, "write on closed connection");
  }
  const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
  if (n >= 0) {
    return static_cast<size_t>(n);
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return size_t{0};
  }
  return Errno("send");
}

Result<size_t> KernelConnection::Writev(const IoSlice* slices, size_t count) {
  if (fd_ < 0) {
    return Status(StatusCode::kUnavailable, "write on closed connection");
  }
  // sendmsg instead of writev for MSG_NOSIGNAL; short-write semantics let the
  // caller loop when a chain has more than kMaxIoSlices segments.
  struct iovec iov[kMaxIoSlices];
  size_t n_iov = 0;
  for (size_t i = 0; i < count && n_iov < kMaxIoSlices; ++i) {
    if (slices[i].len == 0) {
      continue;
    }
    iov[n_iov].iov_base = const_cast<void*>(slices[i].data);
    iov[n_iov].iov_len = slices[i].len;
    ++n_iov;
  }
  if (n_iov == 0) {
    return size_t{0};
  }
  struct msghdr msg = {};
  msg.msg_iov = iov;
  msg.msg_iovlen = n_iov;
  const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
  if (n >= 0) {
    return static_cast<size_t>(n);
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return size_t{0};
  }
  return Errno("sendmsg");
}

void KernelConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool KernelConnection::ReadReady() const {
  if (fd_ < 0) {
    return false;
  }
  struct pollfd pfd = {fd_, POLLIN, 0};
  return ::poll(&pfd, 1, 0) > 0;
}

KernelListener::~KernelListener() { Close(); }

std::unique_ptr<Connection> KernelListener::Accept() {
  if (fd_ < 0) {
    return nullptr;
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return nullptr;
  }
  return std::make_unique<KernelConnection>(client,
                                            g_next_id.fetch_add(1, std::memory_order_relaxed));
}

void KernelListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Listener>> KernelTransport::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Every member of a sharded accept group must set SO_REUSEPORT before
  // bind — including the first socket — so it is set unconditionally.
  setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind");
  }
  if (::listen(fd, 1024) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  SetNonBlocking(fd);
  // Recover the bound port when the caller asked for an ephemeral one.
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return Result<std::unique_ptr<Listener>>(
      std::make_unique<KernelListener>(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<Connection>> KernelTransport::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Blocking connect keeps test code simple; the socket turns non-blocking in
  // the KernelConnection constructor.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("connect");
  }
  return Result<std::unique_ptr<Connection>>(std::make_unique<KernelConnection>(
      fd, g_next_id.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace flick
