// In-process network fabric with calibrated stack-cost models.
//
// Stands in for the paper's testbed (kernel TCP vs modified mTCP + DPDK,
// §5/§6). Every connection is a pair of lock-free byte rings; the cost model
// burns real CPU on the calling core for connection setup/teardown, per
// syscall-equivalent operation, and per byte copied — so the relative cost
// structure the paper measures (mTCP's cheap connection setup and batched IO)
// is reproduced on the same code path the scheduler actually runs.
#ifndef FLICK_NET_SIM_TRANSPORT_H_
#define FLICK_NET_SIM_TRANSPORT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "concurrency/mpmc_queue.h"
#include "concurrency/spsc_byte_ring.h"
#include "net/transport.h"

namespace flick {

// Costs in SpinWork units (~1 unit = one dependent multiply-add).
struct StackCostModel {
  const char* name = "null";
  uint64_t connect_cost = 0;    // client side of handshake
  uint64_t accept_cost = 0;     // server side of handshake
  uint64_t teardown_cost = 0;   // per close
  uint64_t op_cost = 0;         // per read/write call ("syscall" + VFS work)
  uint64_t per_kb_cost = 0;     // per KiB copied

  // Test hook: caps bytes moved per Write/Writev/Readv call (0 = unlimited).
  // Lets tests inject short writes AND short reads — including mid-iovec —
  // deterministically, the way a real socket buffer boundary would land.
  size_t max_bytes_per_op = 0;

  // Kernel TCP: expensive socket setup/teardown (VFS inode + fd table, §5)
  // and a mode switch per socket call.
  static StackCostModel Kernel();
  // mTCP + DPDK: connection setup an order of magnitude cheaper, per-call
  // overhead amortised by batching.
  static StackCostModel Mtcp();
  // Free IO, for microbenchmarks that want to isolate platform costs.
  static StackCostModel Null();
};

namespace internal {

// One side's readiness hook (see Connection::SetReadReadyHook). The mutex
// serializes install/clear against invocation: writers fire under it, so
// after SetReadReadyHook(nullptr) returns no invocation is in flight.
struct ReadyHook {
  std::mutex mu;
  std::function<void()> fn;
};

// Shared state of one simulated connection: two byte rings + open flags +
// per-side readiness hooks.
struct SimConnState {
  explicit SimConnState(size_t ring_capacity)
      : a_to_b(ring_capacity), b_to_a(ring_capacity) {}

  SpscByteRing a_to_b;
  SpscByteRing b_to_a;
  std::atomic<bool> a_open{true};
  std::atomic<bool> b_open{true};
  ReadyHook a_hook;  // fired by b's writes into b_to_a (and b's close)
  ReadyHook b_hook;  // fired by a's writes into a_to_b (and a's close)
};

}  // namespace internal

class SimNetwork;

class SimConnection : public Connection {
 public:
  SimConnection(std::shared_ptr<internal::SimConnState> state, bool is_a,
                const StackCostModel& cost, uint64_t id);
  ~SimConnection() override;

  Result<size_t> Read(void* buf, size_t len) override;
  Result<size_t> Readv(const MutIoSlice* slices, size_t count) override;
  Result<size_t> Write(const void* buf, size_t len) override;
  Result<size_t> Writev(const IoSlice* slices, size_t count) override;
  void Close() override;
  bool IsOpen() const override;
  bool ReadReady() const override;
  bool SetReadReadyHook(std::function<void()> hook) override;
  uint64_t id() const override { return id_; }

 private:
  friend class SimListener;

  SpscByteRing& rx() const { return is_a_ ? state_->b_to_a : state_->a_to_b; }
  SpscByteRing& tx() const { return is_a_ ? state_->a_to_b : state_->b_to_a; }
  std::atomic<bool>& my_open() const { return is_a_ ? state_->a_open : state_->b_open; }
  std::atomic<bool>& peer_open() const { return is_a_ ? state_->b_open : state_->a_open; }
  internal::ReadyHook& my_hook() const { return is_a_ ? state_->a_hook : state_->b_hook; }
  internal::ReadyHook& peer_hook() const { return is_a_ ? state_->b_hook : state_->a_hook; }
  // Wakes the peer's watcher after bytes landed in tx() or this side closed.
  void FirePeerHook() const;
  // Wakes OUR watcher when a capped (injected-short) read left bytes in rx().
  void RearmIfResidual() const;

  std::shared_ptr<internal::SimConnState> state_;
  const bool is_a_;
  const StackCostModel cost_;  // by value: connections may outlive transports
  const uint64_t id_;
};

class SimListener : public Listener {
 public:
  SimListener(SimNetwork* network, uint16_t port, StackCostModel cost);
  ~SimListener() override;

  std::unique_ptr<Connection> Accept() override;
  uint16_t port() const override { return port_; }
  void Close() override;

 private:
  friend class SimNetwork;

  SimNetwork* network_;
  uint16_t port_;
  StackCostModel cost_;
  std::atomic<bool> closed_{false};
  MpmcQueue<std::unique_ptr<SimConnection>> pending_;
};

// The fabric. One SimNetwork is shared by all parties of an experiment; the
// cost model is per-SimTransport, so a FLICK-on-mTCP middlebox can serve
// clients that run a kernel-model stack.
class SimNetwork {
 public:
  explicit SimNetwork(size_t ring_capacity = 1 << 18) : ring_capacity_(ring_capacity) {}

  Result<std::unique_ptr<Listener>> Listen(uint16_t port, const StackCostModel& cost);

  // Joins (or opens) `port`'s accept group: the sim's SO_REUSEPORT
  // equivalent. New connections are placed round-robin across the group's
  // members, so each poller shard draining its own member sees an even share
  // of accepts. Plain Listen still rejects an occupied port.
  Result<std::unique_ptr<Listener>> ListenShared(uint16_t port,
                                                 const StackCostModel& cost);

  Result<std::unique_ptr<Connection>> Connect(uint16_t port, const StackCostModel& cost);

  // Fabric-wide connection accounting: cumulative successful dials and dials
  // that found no listener. Benches use these to show pooled backend fan-in
  // (connection count independent of client concurrency).
  uint64_t total_connects() const {
    return total_connects_.load(std::memory_order_relaxed);
  }
  uint64_t failed_connects() const {
    return failed_connects_.load(std::memory_order_relaxed);
  }

 private:
  friend class SimListener;
  void Unregister(uint16_t port, SimListener* listener);

  // All listeners sharing one port (size 1 without ListenShared); next_rr
  // round-robins connection placement across them.
  struct PortGroup {
    std::vector<SimListener*> members;
    size_t next_rr = 0;
  };

  const size_t ring_capacity_;
  std::mutex mutex_;
  std::map<uint16_t, PortGroup> listeners_;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> total_connects_{0};
  std::atomic<uint64_t> failed_connects_{0};
};

// Transport facade binding a fabric to a cost model.
class SimTransport : public Transport {
 public:
  SimTransport(SimNetwork* network, StackCostModel cost)
      : network_(network), cost_(cost) {}

  Result<std::unique_ptr<Listener>> Listen(uint16_t port) override {
    return network_->Listen(port, cost_);
  }
  Result<std::unique_ptr<Listener>> ListenShared(uint16_t port) override {
    return network_->ListenShared(port, cost_);
  }
  Result<std::unique_ptr<Connection>> Connect(uint16_t port) override {
    return network_->Connect(port, cost_);
  }
  const char* name() const override { return cost_.name; }

 private:
  SimNetwork* network_;
  StackCostModel cost_;
};

}  // namespace flick

#endif  // FLICK_NET_SIM_TRANSPORT_H_
