// In-process network fabric with calibrated stack-cost models.
//
// Stands in for the paper's testbed (kernel TCP vs modified mTCP + DPDK,
// §5/§6). Every connection is a pair of lock-free byte rings; the cost model
// burns real CPU on the calling core for connection setup/teardown, per
// syscall-equivalent operation, and per byte copied — so the relative cost
// structure the paper measures (mTCP's cheap connection setup and batched IO)
// is reproduced on the same code path the scheduler actually runs.
#ifndef FLICK_NET_SIM_TRANSPORT_H_
#define FLICK_NET_SIM_TRANSPORT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "concurrency/mpmc_queue.h"
#include "concurrency/spsc_byte_ring.h"
#include "net/transport.h"

namespace flick {

// Costs in SpinWork units (~1 unit = one dependent multiply-add).
struct StackCostModel {
  const char* name = "null";
  uint64_t connect_cost = 0;    // client side of handshake
  uint64_t accept_cost = 0;     // server side of handshake
  uint64_t teardown_cost = 0;   // per close
  uint64_t op_cost = 0;         // per read/write call ("syscall" + VFS work)
  uint64_t per_kb_cost = 0;     // per KiB copied

  // Test hook: caps bytes moved per Write/Writev/Readv call (0 = unlimited).
  // Lets tests inject short writes AND short reads — including mid-iovec —
  // deterministically, the way a real socket buffer boundary would land.
  size_t max_bytes_per_op = 0;

  // Kernel TCP: expensive socket setup/teardown (VFS inode + fd table, §5)
  // and a mode switch per socket call.
  static StackCostModel Kernel();
  // mTCP + DPDK: connection setup an order of magnitude cheaper, per-call
  // overhead amortised by batching.
  static StackCostModel Mtcp();
  // Free IO, for microbenchmarks that want to isolate platform costs.
  static StackCostModel Null();
};

// ---------------------------------------------------------------------------
// Deterministic fault-injection plane.
//
// Chaos tests script failures against a port and then assert EXACT delivery:
// every injected fault increments a queryable counter, so a test that refuses
// 3 dials and RSTs 1 stream can check those numbers, not probabilistic hope.
// Faults are scoped per port (connect refusal / blackhole budgets) and per
// accepted dial (a FIFO of ConnFaultSpec applied to successive connections).
// All byte thresholds are absolute offsets in the faulted direction; the
// sentinel kFaultNever disables a trigger.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kFaultNever = ~uint64_t{0};

// Faults applied to ONE connection, observed from the dialing (client) side.
// "rx" is what the client reads (the backend's responses), "tx" what it
// writes — so `rst_after_rx_bytes = 100` means: deliver exactly 100 response
// bytes, then every further read fails like a TCP RST.
struct ConnFaultSpec {
  uint64_t rst_after_rx_bytes = kFaultNever;       // then reads fail (reset)
  uint64_t truncate_after_rx_bytes = kFaultNever;  // then reads see clean EOF
  uint64_t corrupt_rx_at_byte = kFaultNever;       // XOR one byte at offset
  uint64_t stall_rx_after_bytes = kFaultNever;     // reads would-block ...
  uint64_t stall_rx_for_ns = 0;                    // ... for this long
  uint64_t stall_tx_after_bytes = kFaultNever;     // writes would-block ...
  uint64_t stall_tx_for_ns = 0;                    // ... for this long
};

// A port's scripted failure schedule. Connect-scoped budgets burn first-come
// (every dial decrements under the fabric lock, so delivery is deterministic
// even with concurrent dialers); conn_faults apply FIFO to dials that get
// through, optionally repeating the last spec forever.
struct FaultPlan {
  uint64_t seed = 1;                // corruption mask derivation
  uint32_t refuse_connects = 0;     // next N dials: immediate refusal
  uint32_t blackhole_connects = 0;  // next N dials: accepted, never answered
  std::vector<ConnFaultSpec> conn_faults;
  bool repeat_last = false;
};

// Cumulative injected-fault tallies for one port. Plain struct snapshot
// returned by SimNetwork::fault_counters().
struct FaultCountersSnapshot {
  uint64_t connects_refused = 0;
  uint64_t connects_blackholed = 0;
  uint64_t faulted_connects = 0;  // dials that picked up a ConnFaultSpec
  uint64_t rsts = 0;
  uint64_t truncations = 0;
  uint64_t bytes_corrupted = 0;
  uint64_t read_stalls = 0;
  uint64_t write_stalls = 0;
};

namespace internal {

// One side's readiness hook (see Connection::SetReadReadyHook). The mutex
// serializes install/clear against invocation: writers fire under it, so
// after SetReadReadyHook(nullptr) returns no invocation is in flight.
struct ReadyHook {
  std::mutex mu;
  std::function<void()> fn;
};

// Shared per-port fault counters; connections outlive ClearFaults, so they
// hold a shared_ptr and keep counting into the same tallies.
struct FaultCounters {
  std::atomic<uint64_t> connects_refused{0};
  std::atomic<uint64_t> connects_blackholed{0};
  std::atomic<uint64_t> faulted_connects{0};
  std::atomic<uint64_t> rsts{0};
  std::atomic<uint64_t> truncations{0};
  std::atomic<uint64_t> bytes_corrupted{0};
  std::atomic<uint64_t> read_stalls{0};
  std::atomic<uint64_t> write_stalls{0};
};

// Per-connection fault progress. Byte cursors are only touched by the owning
// side's Read/Write calls (caller-serialized, like the rings); the fields
// ReadReady() may race against — stall deadlines and the sticky outcome
// flags — are atomics.
struct ConnFaultState {
  ConnFaultSpec spec;
  uint64_t seed = 1;
  std::shared_ptr<FaultCounters> counters;
  uint64_t rx_seen = 0;
  uint64_t tx_seen = 0;
  std::atomic<uint64_t> stall_rx_until_ns{0};  // 0 = stall not yet armed
  std::atomic<uint64_t> stall_tx_until_ns{0};
  bool rx_stall_done = false;
  bool tx_stall_done = false;
  std::atomic<bool> rst_fired{false};
  std::atomic<bool> truncated{false};
};

// Shared state of one simulated connection: two byte rings + open flags +
// per-side readiness hooks.
struct SimConnState {
  explicit SimConnState(size_t ring_capacity)
      : a_to_b(ring_capacity), b_to_a(ring_capacity) {}

  SpscByteRing a_to_b;
  SpscByteRing b_to_a;
  std::atomic<bool> a_open{true};
  std::atomic<bool> b_open{true};
  ReadyHook a_hook;  // fired by b's writes into b_to_a (and b's close)
  ReadyHook b_hook;  // fired by a's writes into a_to_b (and a's close)
};

}  // namespace internal

class SimNetwork;

class SimConnection : public Connection {
 public:
  SimConnection(std::shared_ptr<internal::SimConnState> state, bool is_a,
                const StackCostModel& cost, uint64_t id);
  ~SimConnection() override;

  Result<size_t> Read(void* buf, size_t len) override;
  Result<size_t> Readv(const MutIoSlice* slices, size_t count) override;
  Result<size_t> Write(const void* buf, size_t len) override;
  Result<size_t> Writev(const IoSlice* slices, size_t count) override;
  void Close() override;
  bool IsOpen() const override;
  bool ReadReady() const override;
  bool SetReadReadyHook(std::function<void()> hook) override;
  uint64_t id() const override { return id_; }

 private:
  friend class SimListener;
  friend class SimNetwork;

  SpscByteRing& rx() const { return is_a_ ? state_->b_to_a : state_->a_to_b; }
  SpscByteRing& tx() const { return is_a_ ? state_->a_to_b : state_->b_to_a; }
  std::atomic<bool>& my_open() const { return is_a_ ? state_->a_open : state_->b_open; }
  std::atomic<bool>& peer_open() const { return is_a_ ? state_->b_open : state_->a_open; }
  internal::ReadyHook& my_hook() const { return is_a_ ? state_->a_hook : state_->b_hook; }
  internal::ReadyHook& peer_hook() const { return is_a_ ? state_->b_hook : state_->a_hook; }
  // Wakes the peer's watcher after bytes landed in tx() or this side closed.
  void FirePeerHook() const;
  // Wakes OUR watcher when a capped (injected-short) read left bytes in rx().
  void RearmIfResidual() const;

  // Fault-plane gates. Each returns true when it fully decided the call's
  // outcome (error or would-block) and wrote it to *out.
  bool FaultGateRead(Result<size_t>* out, size_t* budget);
  bool FaultGateWrite(Result<size_t>* out, size_t* budget);
  void FaultCorrupt(uint8_t* p, size_t len, uint64_t start_offset);

  std::shared_ptr<internal::SimConnState> state_;
  const bool is_a_;
  const StackCostModel cost_;  // by value: connections may outlive transports
  const uint64_t id_;
  // Installed by SimNetwork::Connect on dialing sides covered by a FaultPlan;
  // null (the overwhelmingly common case) costs one branch per IO call.
  std::shared_ptr<internal::ConnFaultState> faults_;
};

class SimListener : public Listener {
 public:
  SimListener(SimNetwork* network, uint16_t port, StackCostModel cost);
  ~SimListener() override;

  std::unique_ptr<Connection> Accept() override;
  uint16_t port() const override { return port_; }
  void Close() override;

 private:
  friend class SimNetwork;

  SimNetwork* network_;
  uint16_t port_;
  StackCostModel cost_;
  std::atomic<bool> closed_{false};
  MpmcQueue<std::unique_ptr<SimConnection>> pending_;
};

// The fabric. One SimNetwork is shared by all parties of an experiment; the
// cost model is per-SimTransport, so a FLICK-on-mTCP middlebox can serve
// clients that run a kernel-model stack.
class SimNetwork {
 public:
  explicit SimNetwork(size_t ring_capacity = 1 << 18) : ring_capacity_(ring_capacity) {}

  Result<std::unique_ptr<Listener>> Listen(uint16_t port, const StackCostModel& cost);

  // Joins (or opens) `port`'s accept group: the sim's SO_REUSEPORT
  // equivalent. New connections are placed round-robin across the group's
  // members, so each poller shard draining its own member sees an even share
  // of accepts. Plain Listen still rejects an occupied port.
  Result<std::unique_ptr<Listener>> ListenShared(uint16_t port,
                                                 const StackCostModel& cost);

  Result<std::unique_ptr<Connection>> Connect(uint16_t port, const StackCostModel& cost);

  // Installs (replacing any prior plan) a scripted failure schedule for
  // `port`. Applies to dials made AFTER the call; existing connections keep
  // any spec they picked up at dial time. Counters are cumulative across
  // InjectFaults calls on the same port.
  void InjectFaults(uint16_t port, FaultPlan plan);
  // Stops applying faults to new dials on `port`. Connections already
  // carrying a spec keep it (and keep counting).
  void ClearFaults(uint16_t port);
  // Snapshot of the injected-fault tallies for `port` (zeros if no plan was
  // ever installed).
  FaultCountersSnapshot fault_counters(uint16_t port) const;

  // Fabric-wide connection accounting: cumulative successful dials and dials
  // that found no listener. Benches use these to show pooled backend fan-in
  // (connection count independent of client concurrency).
  uint64_t total_connects() const {
    return total_connects_.load(std::memory_order_relaxed);
  }
  uint64_t failed_connects() const {
    return failed_connects_.load(std::memory_order_relaxed);
  }

 private:
  friend class SimListener;
  void Unregister(uint16_t port, SimListener* listener);

  // All listeners sharing one port (size 1 without ListenShared); next_rr
  // round-robins connection placement across them.
  struct PortGroup {
    std::vector<SimListener*> members;
    size_t next_rr = 0;
  };

  // A port's installed fault plan plus its FIFO cursor. Counters live behind
  // a shared_ptr so connections that outlive ClearFaults keep tallying.
  struct PortFaults {
    FaultPlan plan;
    size_t next_spec = 0;
    std::shared_ptr<internal::FaultCounters> counters =
        std::make_shared<internal::FaultCounters>();
  };

  const size_t ring_capacity_;
  mutable std::mutex mutex_;
  std::map<uint16_t, PortGroup> listeners_;
  std::map<uint16_t, PortFaults> faults_;  // guarded by mutex_
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> total_connects_{0};
  std::atomic<uint64_t> failed_connects_{0};
};

// Transport facade binding a fabric to a cost model.
class SimTransport : public Transport {
 public:
  SimTransport(SimNetwork* network, StackCostModel cost)
      : network_(network), cost_(cost) {}

  Result<std::unique_ptr<Listener>> Listen(uint16_t port) override {
    return network_->Listen(port, cost_);
  }
  Result<std::unique_ptr<Listener>> ListenShared(uint16_t port) override {
    return network_->ListenShared(port, cost_);
  }
  Result<std::unique_ptr<Connection>> Connect(uint16_t port) override {
    return network_->Connect(port, cost_);
  }
  const char* name() const override { return cost_.name; }

 private:
  SimNetwork* network_;
  StackCostModel cost_;
};

}  // namespace flick

#endif  // FLICK_NET_SIM_TRANSPORT_H_
