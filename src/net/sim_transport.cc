#include "net/sim_transport.h"

#include <algorithm>

#include "base/spin_work.h"
#include "base/time_util.h"

namespace flick {

// Calibration notes (DESIGN.md §2): the absolute unit scale is arbitrary; the
// ratios are what reproduce the paper. Kernel connection setup/teardown is
// ~8x mTCP's (paper §6.3: non-persistent throughput 45k vs 193k req/s is
// dominated by per-connection cost), and kernel per-call overhead ~4x (mode
// switch + VFS; §5).
StackCostModel StackCostModel::Kernel() {
  return StackCostModel{"sim-kernel", /*connect=*/9000, /*accept=*/14000,
                        /*teardown=*/7000, /*op=*/900, /*per_kb=*/60};
}

StackCostModel StackCostModel::Mtcp() {
  return StackCostModel{"sim-mtcp", /*connect=*/1200, /*accept=*/1800,
                        /*teardown=*/900, /*op=*/220, /*per_kb=*/60};
}

StackCostModel StackCostModel::Null() { return StackCostModel{}; }

SimConnection::SimConnection(std::shared_ptr<internal::SimConnState> state, bool is_a,
                             const StackCostModel& cost, uint64_t id)
    : state_(std::move(state)), is_a_(is_a), cost_(cost), id_(id) {}

SimConnection::~SimConnection() { Close(); }

// --------------------------------------------------------------------------
// Fault gates. A null faults_ costs one branch; with a spec installed, the
// gates decide terminal outcomes (injected RST / truncation EOF / stall
// would-block) and cap the byte budget so a threshold lands exactly at its
// scripted offset — "deliver 100 bytes then reset" means byte 101 never
// reaches the caller.
// --------------------------------------------------------------------------

bool SimConnection::FaultGateRead(Result<size_t>* out, size_t* budget) {
  internal::ConnFaultState& f = *faults_;
  if (f.rst_fired.load(std::memory_order_relaxed)) {
    *out = Status(StatusCode::kUnavailable, "connection reset (injected)");
    return true;
  }
  if (f.truncated.load(std::memory_order_relaxed)) {
    *out = Status(StatusCode::kUnavailable, "peer closed");
    return true;
  }
  if (!f.rx_stall_done && f.spec.stall_rx_after_bytes != kFaultNever &&
      f.rx_seen >= f.spec.stall_rx_after_bytes) {
    const uint64_t now = MonotonicNanos();
    uint64_t until = f.stall_rx_until_ns.load(std::memory_order_relaxed);
    if (until == 0) {
      until = now + f.spec.stall_rx_for_ns;
      f.stall_rx_until_ns.store(until, std::memory_order_release);
      f.counters->read_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (now < until) {
      *out = size_t{0};  // would-block for the stall window
      return true;
    }
    f.rx_stall_done = true;
  }
  if (f.spec.rst_after_rx_bytes != kFaultNever) {
    if (f.rx_seen >= f.spec.rst_after_rx_bytes) {
      f.rst_fired.store(true, std::memory_order_relaxed);
      f.counters->rsts.fetch_add(1, std::memory_order_relaxed);
      *out = Status(StatusCode::kUnavailable, "connection reset (injected)");
      return true;
    }
    *budget = std::min<uint64_t>(*budget, f.spec.rst_after_rx_bytes - f.rx_seen);
  }
  if (f.spec.truncate_after_rx_bytes != kFaultNever) {
    if (f.rx_seen >= f.spec.truncate_after_rx_bytes) {
      f.truncated.store(true, std::memory_order_relaxed);
      f.counters->truncations.fetch_add(1, std::memory_order_relaxed);
      // Clean EOF: same status the organic peer-closed path returns, so the
      // consumer exercises its real mid-message-EOF handling.
      *out = Status(StatusCode::kUnavailable, "peer closed");
      return true;
    }
    *budget =
        std::min<uint64_t>(*budget, f.spec.truncate_after_rx_bytes - f.rx_seen);
  }
  return false;
}

bool SimConnection::FaultGateWrite(Result<size_t>* out, size_t* budget) {
  (void)budget;
  internal::ConnFaultState& f = *faults_;
  if (f.rst_fired.load(std::memory_order_relaxed)) {
    *out = Status(StatusCode::kUnavailable, "connection reset (injected)");
    return true;
  }
  if (!f.tx_stall_done && f.spec.stall_tx_after_bytes != kFaultNever &&
      f.tx_seen >= f.spec.stall_tx_after_bytes) {
    const uint64_t now = MonotonicNanos();
    uint64_t until = f.stall_tx_until_ns.load(std::memory_order_relaxed);
    if (until == 0) {
      until = now + f.spec.stall_tx_for_ns;
      f.stall_tx_until_ns.store(until, std::memory_order_release);
      f.counters->write_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (now < until) {
      *out = size_t{0};  // would-block for the stall window
      return true;
    }
    f.tx_stall_done = true;
  }
  return false;
}

// XORs the scripted rx byte if it landed inside [start_offset, +len). The
// mask is seed-derived and never zero, so corruption is guaranteed visible.
void SimConnection::FaultCorrupt(uint8_t* p, size_t len, uint64_t start_offset) {
  internal::ConnFaultState& f = *faults_;
  const uint64_t at = f.spec.corrupt_rx_at_byte;
  if (at == kFaultNever || at < start_offset || at >= start_offset + len) {
    return;
  }
  const uint8_t mask =
      static_cast<uint8_t>((f.seed * 0x9E3779B97F4A7C15ull) >> 56) | 0x01;
  p[at - start_offset] ^= mask;
  f.spec.corrupt_rx_at_byte = kFaultNever;  // single-shot
  f.counters->bytes_corrupted.fetch_add(1, std::memory_order_relaxed);
}

Result<size_t> SimConnection::Read(void* buf, size_t len) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "read on closed connection");
  }
  size_t fault_budget = len;
  if (faults_ != nullptr) {
    Result<size_t> gated{size_t{0}};
    if (FaultGateRead(&gated, &fault_budget)) {
      return gated;
    }
    len = std::min(len, fault_budget);
  }
  const size_t n = rx().Read(buf, len);
  if (n == 0) {
    // Empty poll: a readiness probe, not a full syscall — event-driven
    // callers (epoll, mTCP) do not pay a read for non-readable sockets.
    SpinWork(cost_.op_cost / 8);
    if (!peer_open().load(std::memory_order_acquire) && rx().ReadableBytes() == 0) {
      return Status(StatusCode::kUnavailable, "peer closed");
    }
    return size_t{0};
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((n + 1023) / 1024));
  if (faults_ != nullptr) {
    FaultCorrupt(static_cast<uint8_t*>(buf), n, faults_->rx_seen);
    faults_->rx_seen += n;
    // A fault-capped read may strand ring bytes past the threshold; re-arm
    // so the consumer comes back and observes the scripted outcome.
    RearmIfResidual();
  }
  if (cost_.max_bytes_per_op > 0) {
    RearmIfResidual();
  }
  return n;
}

// The read-side mirror of Writev: every segment is filled in order under ONE
// op_cost charge, so a window of N rx buffers costs N-1 fewer simulated
// syscalls than per-buffer reads — the cost structure a real readv/recvmsg
// gives. `max_bytes_per_op` caps the fill total so tests can inject short
// reads mid-iovec.
Result<size_t> SimConnection::Readv(const MutIoSlice* slices, size_t count) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "read on closed connection");
  }
  size_t budget =
      cost_.max_bytes_per_op > 0 ? cost_.max_bytes_per_op : static_cast<size_t>(-1);
  if (faults_ != nullptr) {
    Result<size_t> gated{size_t{0}};
    size_t fault_budget = budget;
    if (FaultGateRead(&gated, &fault_budget)) {
      return gated;
    }
    budget = std::min(budget, fault_budget);
  }
  size_t total = 0;
  for (size_t i = 0; i < count && total < budget; ++i) {
    auto* p = static_cast<uint8_t*>(slices[i].data);
    size_t want = slices[i].len;
    if (want > budget - total) {
      want = budget - total;  // short-read injection lands mid-iovec
    }
    const size_t n = rx().Read(p, want);
    if (faults_ != nullptr && n > 0) {
      FaultCorrupt(p, n, faults_->rx_seen + total);
    }
    total += n;
    if (n < slices[i].len) {
      break;  // ring drained (or injected cap): short read
    }
  }
  if (total == 0) {
    // Empty poll: a readiness probe, not a full syscall.
    SpinWork(cost_.op_cost / 8);
    if (!peer_open().load(std::memory_order_acquire) && rx().ReadableBytes() == 0) {
      return Status(StatusCode::kUnavailable, "peer closed");
    }
    return total;
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((total + 1023) / 1024));
  if (faults_ != nullptr) {
    faults_->rx_seen += total;
    RearmIfResidual();  // fault-capped fill may strand bytes past a threshold
  }
  if (cost_.max_bytes_per_op > 0) {
    RearmIfResidual();
  }
  return total;
}

Result<size_t> SimConnection::Write(const void* buf, size_t len) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "write on closed connection");
  }
  if (!peer_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "peer closed");
  }
  if (faults_ != nullptr) {
    Result<size_t> gated{size_t{0}};
    size_t fault_budget = len;
    if (FaultGateWrite(&gated, &fault_budget)) {
      return gated;
    }
  }
  if (cost_.max_bytes_per_op > 0 && len > cost_.max_bytes_per_op) {
    len = cost_.max_bytes_per_op;
  }
  const size_t n = tx().Write(buf, len);
  if (n == 0) {
    SpinWork(cost_.op_cost / 8);  // transport full: would-block probe
    return n;
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((n + 1023) / 1024));
  if (faults_ != nullptr) {
    faults_->tx_seen += n;
  }
  FirePeerHook();
  return n;
}

// The point of the vectored path: every segment is copied in order under ONE
// op_cost charge, so batching N messages costs N fewer simulated syscalls —
// the same cost structure a real writev gives over per-message send.
Result<size_t> SimConnection::Writev(const IoSlice* slices, size_t count) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "write on closed connection");
  }
  if (!peer_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "peer closed");
  }
  if (faults_ != nullptr) {
    Result<size_t> gated{size_t{0}};
    size_t fault_budget = static_cast<size_t>(-1);
    if (FaultGateWrite(&gated, &fault_budget)) {
      return gated;
    }
  }
  const size_t budget =
      cost_.max_bytes_per_op > 0 ? cost_.max_bytes_per_op : static_cast<size_t>(-1);
  size_t total = 0;
  for (size_t i = 0; i < count && total < budget; ++i) {
    const auto* p = static_cast<const uint8_t*>(slices[i].data);
    size_t remaining = slices[i].len;
    if (remaining > budget - total) {
      remaining = budget - total;  // partial-write injection lands mid-iovec
    }
    const size_t n = tx().Write(p, remaining);
    total += n;
    if (n < slices[i].len) {
      break;  // ring full (or injected cap): short write
    }
  }
  if (total == 0) {
    SpinWork(cost_.op_cost / 8);  // transport full: would-block probe
    return total;
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((total + 1023) / 1024));
  if (faults_ != nullptr) {
    faults_->tx_seen += total;
  }
  FirePeerHook();
  return total;
}

void SimConnection::Close() {
  bool was_open = my_open().exchange(false, std::memory_order_acq_rel);
  if (was_open) {
    SpinWork(cost_.teardown_cost);
    FirePeerHook();  // peer is now "readable": its reads return kUnavailable
  }
}

bool SimConnection::IsOpen() const { return my_open().load(std::memory_order_acquire); }

bool SimConnection::ReadReady() const {
  if (!my_open().load(std::memory_order_acquire)) {
    return false;
  }
  if (faults_ != nullptr) {
    // A fired terminal fault makes the conn "readable": the next read
    // surfaces the scripted error promptly instead of idling.
    if (faults_->rst_fired.load(std::memory_order_relaxed) ||
        faults_->truncated.load(std::memory_order_relaxed)) {
      return true;
    }
    const uint64_t until =
        faults_->stall_rx_until_ns.load(std::memory_order_acquire);
    if (until != 0 && MonotonicNanos() < until) {
      return false;  // mid-stall: nothing to read no matter what the ring says
    }
  }
  return rx().ReadableBytes() > 0 || !peer_open().load(std::memory_order_acquire);
}

namespace {

void FireHook(internal::ReadyHook& hook) {
  std::lock_guard<std::mutex> lock(hook.mu);
  if (hook.fn != nullptr) {
    hook.fn();
  }
}

}  // namespace

// Fired on EVERY successful write, not just the empty->nonempty edge: the
// SPSC ring is lock-free, so a writer cannot atomically pair "was the ring
// empty" with its publish — a reader draining between the two would swallow
// the edge and strand the bytes. Unconditional fire is race-free because the
// receiver (Scheduler::NotifyRunnable) coalesces duplicate notifications.
void SimConnection::FirePeerHook() const { FireHook(peer_hook()); }

// An injected short read (max_bytes_per_op below what the ring holds) breaks
// the "short fill proves the wire drained" contract readers rely on — and the
// leftover bytes may never see another write, hence never another edge. Re-arm
// by firing our OWN hook, the way level-triggered epoll keeps reporting a
// socket with residual bytes.
void SimConnection::RearmIfResidual() const {
  if (rx().ReadableBytes() > 0) {
    FireHook(my_hook());
  }
}

bool SimConnection::SetReadReadyHook(std::function<void()> hook) {
  internal::ReadyHook& slot = my_hook();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.fn = std::move(hook);
  if (slot.fn != nullptr && ReadReady()) {
    slot.fn();  // catch-up: bytes (or an EOF) that predate the install
  }
  return true;
}

SimListener::SimListener(SimNetwork* network, uint16_t port, StackCostModel cost)
    : network_(network), port_(port), cost_(cost) {}

SimListener::~SimListener() { Close(); }

std::unique_ptr<Connection> SimListener::Accept() {
  auto conn = pending_.TryPop();
  if (!conn.has_value()) {
    return nullptr;
  }
  SpinWork(cost_.accept_cost);
  return std::move(*conn);
}

void SimListener::Close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    network_->Unregister(port_, this);
    pending_.Close();
  }
}

Result<std::unique_ptr<Listener>> SimNetwork::Listen(uint16_t port,
                                                     const StackCostModel& cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = listeners_.try_emplace(port);
  if (!inserted) {
    return Status(StatusCode::kAlreadyExists, "port in use");
  }
  auto listener = std::make_unique<SimListener>(this, port, cost);
  it->second.members.push_back(listener.get());
  return Result<std::unique_ptr<Listener>>(std::move(listener));
}

Result<std::unique_ptr<Listener>> SimNetwork::ListenShared(uint16_t port,
                                                           const StackCostModel& cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto listener = std::make_unique<SimListener>(this, port, cost);
  listeners_[port].members.push_back(listener.get());
  return Result<std::unique_ptr<Listener>>(std::move(listener));
}

Result<std::unique_ptr<Connection>> SimNetwork::Connect(uint16_t port,
                                                        const StackCostModel& cost) {
  // Handshake work happens outside the fabric lock so concurrent clients pay
  // it in parallel, as real stacks do.
  SpinWork(cost.connect_cost);
  auto state = std::make_shared<internal::SimConnState>(ring_capacity_);
  const uint64_t base_id = next_conn_id_.fetch_add(2, std::memory_order_relaxed);
  auto client = std::make_unique<SimConnection>(state, /*is_a=*/true, cost, base_id);

  // The fabric lock is held across the hand-off so the listener cannot be
  // destroyed between lookup and enqueue (lock order: fabric -> queue).
  std::lock_guard<std::mutex> lock(mutex_);

  // Fault plane: connect-scoped budgets burn under the fabric lock, so
  // concurrent dialers consume them deterministically, one each.
  PortFaults* pf = nullptr;
  if (auto fit = faults_.find(port); fit != faults_.end()) {
    pf = &fit->second;
  }
  if (pf != nullptr && pf->plan.refuse_connects > 0) {
    --pf->plan.refuse_connects;
    pf->counters->connects_refused.fetch_add(1, std::memory_order_relaxed);
    failed_connects_.fetch_add(1, std::memory_order_relaxed);
    return Status(StatusCode::kUnavailable, "connection refused (injected)");
  }
  if (pf != nullptr && pf->plan.blackhole_connects > 0) {
    --pf->plan.blackhole_connects;
    pf->counters->connects_blackholed.fetch_add(1, std::memory_order_relaxed);
    // The dial "succeeds" but no server side ever exists: the peer-open flag
    // stays true, so the client's reads would-block forever — a SYN-accepted
    // host that went dark.
    return Result<std::unique_ptr<Connection>>(std::move(client));
  }

  auto it = listeners_.find(port);
  if (it == listeners_.end() || it->second.members.empty()) {
    failed_connects_.fetch_add(1, std::memory_order_relaxed);
    return Status(StatusCode::kUnavailable, "connection refused");
  }
  // Round-robin placement over the port's accept group (one member per
  // poller shard under a sharded IO plane); a closing member is skipped.
  PortGroup& group = it->second;
  for (size_t tries = 0; tries < group.members.size(); ++tries) {
    SimListener* listener = group.members[group.next_rr % group.members.size()];
    group.next_rr = (group.next_rr + 1) % group.members.size();
    if (listener->closed_.load(std::memory_order_acquire)) {
      continue;  // mid-close: Unregister removes it after the flag flips
    }
    auto server = std::make_unique<SimConnection>(state, /*is_a=*/false,
                                                  listener->cost_, base_id + 1);
    if (listener->pending_.TryPush(std::move(server))) {
      total_connects_.fetch_add(1, std::memory_order_relaxed);
      if (pf != nullptr) {
        // FIFO spec hand-out: dial K gets conn_faults[K] (or the last spec
        // forever under repeat_last). Installed before the client is
        // returned, so the owner's first IO call already sees it.
        const ConnFaultSpec* spec = nullptr;
        if (pf->next_spec < pf->plan.conn_faults.size()) {
          spec = &pf->plan.conn_faults[pf->next_spec++];
        } else if (pf->plan.repeat_last && !pf->plan.conn_faults.empty()) {
          spec = &pf->plan.conn_faults.back();
        }
        if (spec != nullptr) {
          auto fs = std::make_shared<internal::ConnFaultState>();
          fs->spec = *spec;
          fs->seed = pf->plan.seed;
          fs->counters = pf->counters;
          client->faults_ = std::move(fs);
          pf->counters->faulted_connects.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return Result<std::unique_ptr<Connection>>(std::move(client));
    }
    // TryPush consumed and destroyed the candidate; its destructor closed
    // the SHARED state's server side — reopen before offering the same
    // state to the next member, or the accepted connection is born dead.
    state->b_open.store(true, std::memory_order_release);
  }
  failed_connects_.fetch_add(1, std::memory_order_relaxed);
  return Status(StatusCode::kUnavailable, "listener closed");
}

void SimNetwork::InjectFaults(uint16_t port, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  PortFaults& pf = faults_[port];  // counters survive plan replacement
  pf.plan = std::move(plan);
  pf.next_spec = 0;
}

void SimNetwork::ClearFaults(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = faults_.find(port);
  if (it == faults_.end()) {
    return;
  }
  // Keep the entry (and its counters — live conns share them); just stop
  // applying faults to new dials.
  it->second.plan = FaultPlan{};
  it->second.next_spec = 0;
}

FaultCountersSnapshot SimNetwork::fault_counters(uint16_t port) const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultCountersSnapshot snap;
  auto it = faults_.find(port);
  if (it == faults_.end()) {
    return snap;
  }
  const internal::FaultCounters& c = *it->second.counters;
  snap.connects_refused = c.connects_refused.load(std::memory_order_relaxed);
  snap.connects_blackholed = c.connects_blackholed.load(std::memory_order_relaxed);
  snap.faulted_connects = c.faulted_connects.load(std::memory_order_relaxed);
  snap.rsts = c.rsts.load(std::memory_order_relaxed);
  snap.truncations = c.truncations.load(std::memory_order_relaxed);
  snap.bytes_corrupted = c.bytes_corrupted.load(std::memory_order_relaxed);
  snap.read_stalls = c.read_stalls.load(std::memory_order_relaxed);
  snap.write_stalls = c.write_stalls.load(std::memory_order_relaxed);
  return snap;
}

void SimNetwork::Unregister(uint16_t port, SimListener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(port);
  if (it == listeners_.end()) {
    return;
  }
  auto& members = it->second.members;
  members.erase(std::remove(members.begin(), members.end(), listener), members.end());
  if (members.empty()) {
    listeners_.erase(it);
  }
}

}  // namespace flick
