#include "net/sim_transport.h"

#include <algorithm>

#include "base/spin_work.h"

namespace flick {

// Calibration notes (DESIGN.md §2): the absolute unit scale is arbitrary; the
// ratios are what reproduce the paper. Kernel connection setup/teardown is
// ~8x mTCP's (paper §6.3: non-persistent throughput 45k vs 193k req/s is
// dominated by per-connection cost), and kernel per-call overhead ~4x (mode
// switch + VFS; §5).
StackCostModel StackCostModel::Kernel() {
  return StackCostModel{"sim-kernel", /*connect=*/9000, /*accept=*/14000,
                        /*teardown=*/7000, /*op=*/900, /*per_kb=*/60};
}

StackCostModel StackCostModel::Mtcp() {
  return StackCostModel{"sim-mtcp", /*connect=*/1200, /*accept=*/1800,
                        /*teardown=*/900, /*op=*/220, /*per_kb=*/60};
}

StackCostModel StackCostModel::Null() { return StackCostModel{}; }

SimConnection::SimConnection(std::shared_ptr<internal::SimConnState> state, bool is_a,
                             const StackCostModel& cost, uint64_t id)
    : state_(std::move(state)), is_a_(is_a), cost_(cost), id_(id) {}

SimConnection::~SimConnection() { Close(); }

Result<size_t> SimConnection::Read(void* buf, size_t len) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "read on closed connection");
  }
  const size_t n = rx().Read(buf, len);
  if (n == 0) {
    // Empty poll: a readiness probe, not a full syscall — event-driven
    // callers (epoll, mTCP) do not pay a read for non-readable sockets.
    SpinWork(cost_.op_cost / 8);
    if (!peer_open().load(std::memory_order_acquire) && rx().ReadableBytes() == 0) {
      return Status(StatusCode::kUnavailable, "peer closed");
    }
    return size_t{0};
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((n + 1023) / 1024));
  if (cost_.max_bytes_per_op > 0) {
    RearmIfResidual();
  }
  return n;
}

// The read-side mirror of Writev: every segment is filled in order under ONE
// op_cost charge, so a window of N rx buffers costs N-1 fewer simulated
// syscalls than per-buffer reads — the cost structure a real readv/recvmsg
// gives. `max_bytes_per_op` caps the fill total so tests can inject short
// reads mid-iovec.
Result<size_t> SimConnection::Readv(const MutIoSlice* slices, size_t count) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "read on closed connection");
  }
  const size_t budget =
      cost_.max_bytes_per_op > 0 ? cost_.max_bytes_per_op : static_cast<size_t>(-1);
  size_t total = 0;
  for (size_t i = 0; i < count && total < budget; ++i) {
    auto* p = static_cast<uint8_t*>(slices[i].data);
    size_t want = slices[i].len;
    if (want > budget - total) {
      want = budget - total;  // short-read injection lands mid-iovec
    }
    const size_t n = rx().Read(p, want);
    total += n;
    if (n < slices[i].len) {
      break;  // ring drained (or injected cap): short read
    }
  }
  if (total == 0) {
    // Empty poll: a readiness probe, not a full syscall.
    SpinWork(cost_.op_cost / 8);
    if (!peer_open().load(std::memory_order_acquire) && rx().ReadableBytes() == 0) {
      return Status(StatusCode::kUnavailable, "peer closed");
    }
    return total;
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((total + 1023) / 1024));
  if (cost_.max_bytes_per_op > 0) {
    RearmIfResidual();
  }
  return total;
}

Result<size_t> SimConnection::Write(const void* buf, size_t len) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "write on closed connection");
  }
  if (!peer_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "peer closed");
  }
  if (cost_.max_bytes_per_op > 0 && len > cost_.max_bytes_per_op) {
    len = cost_.max_bytes_per_op;
  }
  const size_t n = tx().Write(buf, len);
  if (n == 0) {
    SpinWork(cost_.op_cost / 8);  // transport full: would-block probe
    return n;
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((n + 1023) / 1024));
  FirePeerHook();
  return n;
}

// The point of the vectored path: every segment is copied in order under ONE
// op_cost charge, so batching N messages costs N fewer simulated syscalls —
// the same cost structure a real writev gives over per-message send.
Result<size_t> SimConnection::Writev(const IoSlice* slices, size_t count) {
  if (!my_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "write on closed connection");
  }
  if (!peer_open().load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "peer closed");
  }
  const size_t budget =
      cost_.max_bytes_per_op > 0 ? cost_.max_bytes_per_op : static_cast<size_t>(-1);
  size_t total = 0;
  for (size_t i = 0; i < count && total < budget; ++i) {
    const auto* p = static_cast<const uint8_t*>(slices[i].data);
    size_t remaining = slices[i].len;
    if (remaining > budget - total) {
      remaining = budget - total;  // partial-write injection lands mid-iovec
    }
    const size_t n = tx().Write(p, remaining);
    total += n;
    if (n < slices[i].len) {
      break;  // ring full (or injected cap): short write
    }
  }
  if (total == 0) {
    SpinWork(cost_.op_cost / 8);  // transport full: would-block probe
    return total;
  }
  SpinWork(cost_.op_cost + cost_.per_kb_cost * ((total + 1023) / 1024));
  FirePeerHook();
  return total;
}

void SimConnection::Close() {
  bool was_open = my_open().exchange(false, std::memory_order_acq_rel);
  if (was_open) {
    SpinWork(cost_.teardown_cost);
    FirePeerHook();  // peer is now "readable": its reads return kUnavailable
  }
}

bool SimConnection::IsOpen() const { return my_open().load(std::memory_order_acquire); }

bool SimConnection::ReadReady() const {
  if (!my_open().load(std::memory_order_acquire)) {
    return false;
  }
  return rx().ReadableBytes() > 0 || !peer_open().load(std::memory_order_acquire);
}

namespace {

void FireHook(internal::ReadyHook& hook) {
  std::lock_guard<std::mutex> lock(hook.mu);
  if (hook.fn != nullptr) {
    hook.fn();
  }
}

}  // namespace

// Fired on EVERY successful write, not just the empty->nonempty edge: the
// SPSC ring is lock-free, so a writer cannot atomically pair "was the ring
// empty" with its publish — a reader draining between the two would swallow
// the edge and strand the bytes. Unconditional fire is race-free because the
// receiver (Scheduler::NotifyRunnable) coalesces duplicate notifications.
void SimConnection::FirePeerHook() const { FireHook(peer_hook()); }

// An injected short read (max_bytes_per_op below what the ring holds) breaks
// the "short fill proves the wire drained" contract readers rely on — and the
// leftover bytes may never see another write, hence never another edge. Re-arm
// by firing our OWN hook, the way level-triggered epoll keeps reporting a
// socket with residual bytes.
void SimConnection::RearmIfResidual() const {
  if (rx().ReadableBytes() > 0) {
    FireHook(my_hook());
  }
}

bool SimConnection::SetReadReadyHook(std::function<void()> hook) {
  internal::ReadyHook& slot = my_hook();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.fn = std::move(hook);
  if (slot.fn != nullptr && ReadReady()) {
    slot.fn();  // catch-up: bytes (or an EOF) that predate the install
  }
  return true;
}

SimListener::SimListener(SimNetwork* network, uint16_t port, StackCostModel cost)
    : network_(network), port_(port), cost_(cost) {}

SimListener::~SimListener() { Close(); }

std::unique_ptr<Connection> SimListener::Accept() {
  auto conn = pending_.TryPop();
  if (!conn.has_value()) {
    return nullptr;
  }
  SpinWork(cost_.accept_cost);
  return std::move(*conn);
}

void SimListener::Close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    network_->Unregister(port_, this);
    pending_.Close();
  }
}

Result<std::unique_ptr<Listener>> SimNetwork::Listen(uint16_t port,
                                                     const StackCostModel& cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = listeners_.try_emplace(port);
  if (!inserted) {
    return Status(StatusCode::kAlreadyExists, "port in use");
  }
  auto listener = std::make_unique<SimListener>(this, port, cost);
  it->second.members.push_back(listener.get());
  return Result<std::unique_ptr<Listener>>(std::move(listener));
}

Result<std::unique_ptr<Listener>> SimNetwork::ListenShared(uint16_t port,
                                                           const StackCostModel& cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto listener = std::make_unique<SimListener>(this, port, cost);
  listeners_[port].members.push_back(listener.get());
  return Result<std::unique_ptr<Listener>>(std::move(listener));
}

Result<std::unique_ptr<Connection>> SimNetwork::Connect(uint16_t port,
                                                        const StackCostModel& cost) {
  // Handshake work happens outside the fabric lock so concurrent clients pay
  // it in parallel, as real stacks do.
  SpinWork(cost.connect_cost);
  auto state = std::make_shared<internal::SimConnState>(ring_capacity_);
  const uint64_t base_id = next_conn_id_.fetch_add(2, std::memory_order_relaxed);
  auto client = std::make_unique<SimConnection>(state, /*is_a=*/true, cost, base_id);

  // The fabric lock is held across the hand-off so the listener cannot be
  // destroyed between lookup and enqueue (lock order: fabric -> queue).
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(port);
  if (it == listeners_.end() || it->second.members.empty()) {
    failed_connects_.fetch_add(1, std::memory_order_relaxed);
    return Status(StatusCode::kUnavailable, "connection refused");
  }
  // Round-robin placement over the port's accept group (one member per
  // poller shard under a sharded IO plane); a closing member is skipped.
  PortGroup& group = it->second;
  for (size_t tries = 0; tries < group.members.size(); ++tries) {
    SimListener* listener = group.members[group.next_rr % group.members.size()];
    group.next_rr = (group.next_rr + 1) % group.members.size();
    if (listener->closed_.load(std::memory_order_acquire)) {
      continue;  // mid-close: Unregister removes it after the flag flips
    }
    auto server = std::make_unique<SimConnection>(state, /*is_a=*/false,
                                                  listener->cost_, base_id + 1);
    if (listener->pending_.TryPush(std::move(server))) {
      total_connects_.fetch_add(1, std::memory_order_relaxed);
      return Result<std::unique_ptr<Connection>>(std::move(client));
    }
    // TryPush consumed and destroyed the candidate; its destructor closed
    // the SHARED state's server side — reopen before offering the same
    // state to the next member, or the accepted connection is born dead.
    state->b_open.store(true, std::memory_order_release);
  }
  failed_connects_.fetch_add(1, std::memory_order_relaxed);
  return Status(StatusCode::kUnavailable, "listener closed");
}

void SimNetwork::Unregister(uint16_t port, SimListener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(port);
  if (it == listeners_.end()) {
    return;
  }
  auto& members = it->second.members;
  members.erase(std::remove(members.begin(), members.end(), listener), members.end());
  if (members.empty()) {
    listeners_.erase(it);
  }
}

}  // namespace flick
