// Real kernel TCP transport: non-blocking IPv4 sockets on loopback.
//
// Used by tests and examples to show the platform running on the actual
// kernel stack (the paper's non-mTCP configuration). Benches use
// SimTransport so results are not at the mercy of the host's net stack.
#ifndef FLICK_NET_KERNEL_TRANSPORT_H_
#define FLICK_NET_KERNEL_TRANSPORT_H_

#include <cstdint>

#include "net/transport.h"

namespace flick {

class KernelConnection : public Connection {
 public:
  explicit KernelConnection(int fd, uint64_t id);
  ~KernelConnection() override;

  Result<size_t> Read(void* buf, size_t len) override;
  Result<size_t> Readv(const MutIoSlice* slices, size_t count) override;
  Result<size_t> Write(const void* buf, size_t len) override;
  Result<size_t> Writev(const IoSlice* slices, size_t count) override;
  void Close() override;
  bool IsOpen() const override { return fd_ >= 0; }
  bool ReadReady() const override;
  uint64_t id() const override { return id_; }

 private:
  int fd_;
  uint64_t id_;
};

class KernelListener : public Listener {
 public:
  KernelListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  ~KernelListener() override;

  std::unique_ptr<Connection> Accept() override;
  uint16_t port() const override { return port_; }
  void Close() override;

 private:
  int fd_;
  uint16_t port_;
};

class KernelTransport : public Transport {
 public:
  KernelTransport() = default;

  Result<std::unique_ptr<Listener>> Listen(uint16_t port) override;
  // Every kernel listening socket is opened with SO_REUSEPORT (the kernel
  // requires it on EVERY group member, including the first, before bind),
  // so a sharded accept group is just another Listen on the same port: the
  // kernel hashes new connections across the group's sockets. Trade-off:
  // the kernel no longer rejects a duplicate same-user bind of an occupied
  // port — Platform::RegisterProgram guards same-process duplicates itself.
  Result<std::unique_ptr<Listener>> ListenShared(uint16_t port) override {
    return Listen(port);
  }
  Result<std::unique_ptr<Connection>> Connect(uint16_t port) override;
  const char* name() const override { return "kernel"; }
};

}  // namespace flick

#endif  // FLICK_NET_KERNEL_TRANSPORT_H_
