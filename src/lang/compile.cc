#include "lang/compile.h"

#include "lang/interp.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace flick::lang {
namespace {

// Lowers a field size annotation into a grammar LenExpr.
Result<grammar::LenExpr> LowerSizeExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return grammar::LenExpr::Const(expr.int_value);
    case ExprKind::kVar:
      return grammar::LenExpr::Field(expr.text);
    case ExprKind::kBinary: {
      auto lhs = LowerSizeExpr(*expr.base);
      if (!lhs.ok()) {
        return lhs.status();
      }
      auto rhs = LowerSizeExpr(*expr.index);
      if (!rhs.ok()) {
        return rhs.status();
      }
      switch (expr.op) {
        case BinOp::kAdd: return *lhs + *rhs;
        case BinOp::kSub: return *lhs - *rhs;
        case BinOp::kMul: return *lhs * *rhs;
        default: return InvalidArgument("size expressions support only +, -, *");
      }
    }
    default:
      return InvalidArgument("unsupported size expression");
  }
}

// Synthesizes the wire grammar for a record type (§4.2). Strings without a
// size annotation become length-prefixed ("auto-framed") with a synthesized
// 4-byte length field named "__len_<field>".
Result<grammar::Unit> SynthesizeUnit(const TypeDecl& type) {
  grammar::UnitBuilder builder(type.name);
  builder.ByteOrder(ByteOrder::kBig);
  for (const FieldDecl& field : type.fields) {
    if (field.type == "integer") {
      if (field.annotation.is_ascii) {
        builder.AsciiUInt(field.name);
        continue;
      }
      uint64_t width = 8;
      if (field.annotation.size != nullptr) {
        if (field.annotation.size->kind != ExprKind::kIntLit) {
          return InvalidArgument("integer width must be a constant in field '" + field.name +
                                 "'");
        }
        width = field.annotation.size->int_value;
      }
      builder.UInt(field.name, width);
      continue;
    }
    // string
    if (field.annotation.size != nullptr) {
      auto len = LowerSizeExpr(*field.annotation.size);
      if (!len.ok()) {
        return len.status();
      }
      builder.Bytes(field.name, std::move(len).value());
    } else {
      if (field.name.empty()) {
        return InvalidArgument("anonymous string fields need a {size=...} annotation");
      }
      const std::string len_name = "__len_" + field.name;
      builder.UInt(len_name, 4);
      builder.Bytes(field.name, grammar::LenExpr::Field(len_name));
    }
  }
  return std::move(builder).Build();
}

}  // namespace

Result<std::shared_ptr<CompiledProgram>> CompileSource(const std::string& source) {
  auto parsed = Parse(source);
  if (!parsed.ok()) {
    return parsed.status();
  }
  auto compiled = std::make_shared<CompiledProgram>();
  compiled->ast = std::move(parsed).value();

  const Status checked = CheckOk(compiled->ast);
  if (!checked.ok()) {
    return checked;
  }

  for (const TypeDecl& type : compiled->ast.types) {
    auto unit = SynthesizeUnit(type);
    if (!unit.ok()) {
      return Status(unit.status().code(),
                    "type '" + type.name + "': " + unit.status().message());
    }
    compiled->units.emplace(type.name, std::move(unit).value());
  }
  return compiled;
}

runtime::ComputeTask::Handler MakeProcHandler(std::shared_ptr<const CompiledProgram> program,
                                              const ProcDecl* proc, ProcWiring wiring,
                                              runtime::StateStore* state,
                                              std::string state_prefix) {
  // The interpreter is shared by all invocations of this handler; compute
  // tasks are single-threaded by construction so no locking is needed.
  auto interp = std::make_shared<Interp>(program.get(), state,
                                         state_prefix.empty() ? proc->name : state_prefix);

  // Pre-build the base environment: channel endpoints and globals.
  auto base_env = std::make_shared<Interp::Env>();
  for (const Param& param : proc->params) {
    if (!param.channel.has_value()) {
      continue;
    }
    const auto ep = wiring.endpoints.find(param.name);
    Value v;
    if (param.channel->is_array) {
      v.kind = Value::Kind::kChannelArray;
    } else {
      v.kind = Value::Kind::kChannel;
    }
    if (ep != wiring.endpoints.end()) {
      for (size_t out : ep->second.outputs) {
        v.outs.push_back(static_cast<int>(out));
      }
    }
    (*base_env)[param.name] = std::move(v);
  }

  return [program, proc, wiring = std::move(wiring), interp,
          base_env](runtime::Msg& msg, size_t input_index,
                    runtime::EmitContext& emit) -> runtime::HandleResult {
    if (msg.kind == runtime::Msg::Kind::kEof) {
      // Forward EOF to every output so downstream IO tasks can close.
      for (size_t out = 0; out < emit.output_count(); ++out) {
        runtime::MsgRef eof = emit.NewMsg();
        eof->kind = runtime::Msg::Kind::kEof;
        (void)emit.Emit(out, std::move(eof));
      }
      return runtime::HandleResult::kConsumed;
    }

    const std::string* param_name = wiring.ParamForInput(input_index);
    if (param_name == nullptr) {
      return runtime::HandleResult::kConsumed;  // unwired input: drop
    }

    // Find the first pipeline rule whose source is this channel param.
    const Stmt* rule = nullptr;
    for (const StmtPtr& stmt : proc->body) {
      if (stmt->kind == StmtKind::kSend && stmt->value->kind == ExprKind::kVar &&
          stmt->value->text == *param_name) {
        rule = stmt.get();
        break;
      }
    }
    if (rule == nullptr) {
      return runtime::HandleResult::kConsumed;  // no rule: drop
    }

    // Execute: current value = the arrived record; stages transform/send.
    Interp::Effects fx;
    fx.emit = &emit;
    interp->ResetFuel();

    Interp::Env env = *base_env;
    // Globals must exist in scope even when declared mid-body.
    for (const StmtPtr& stmt : proc->body) {
      if (stmt->kind == StmtKind::kGlobal) {
        Value v;
        v.kind = Value::Kind::kDict;
        v.dict = (proc->name) + "." + stmt->name;
        env[stmt->name] = std::move(v);
      }
    }

    const TypeDecl* in_type = nullptr;
    for (const Param& p : proc->params) {
      if (p.name == *param_name && p.channel.has_value() && p.channel->in_type != "-") {
        in_type = program->ast.FindType(p.channel->in_type);
      }
    }
    Value current;
    if (msg.kind == runtime::Msg::Kind::kGrammar) {
      current = Value::Record(&msg.gmsg, in_type);
    } else {
      current = Value::Str(msg.bytes);
    }

    for (const ExprPtr& stage : rule->send_stages) {
      if (fx.blocked) {
        break;
      }
      if (stage->kind == ExprKind::kCall && program->ast.FindFun(stage->text) != nullptr) {
        const FunDecl* fun = program->ast.FindFun(stage->text);
        std::vector<Value> args;
        for (const ExprPtr& a : stage->args) {
          args.push_back(interp->Eval(*a, env, fx));
        }
        args.push_back(current);
        current = interp->CallFun(*fun, std::move(args), fx);
      } else {
        if (!interp->Send(*stage, current, env, fx)) {
          break;
        }
        current = Value::Unit();
      }
    }

    interp->ClearTemps();
    return fx.blocked ? runtime::HandleResult::kBlocked : runtime::HandleResult::kConsumed;
  };
}

runtime::MergeTask::OrderFn MakeFoldtOrder(std::shared_ptr<const CompiledProgram> program,
                                           const std::string& record_type,
                                           const std::string& order_field) {
  const grammar::Unit* unit = program->UnitFor(record_type);
  FLICK_CHECK(unit != nullptr);
  const int field = unit->FieldIndex(order_field);
  FLICK_CHECK(field >= 0);
  const bool is_bytes =
      unit->fields()[static_cast<size_t>(field)].kind == grammar::FieldKind::kBytes;
  return [field, is_bytes](const runtime::Msg& a, const runtime::Msg& b) -> int {
    if (is_bytes) {
      const auto ka = a.gmsg.GetBytes(field);
      const auto kb = b.gmsg.GetBytes(field);
      return ka.compare(kb) < 0 ? -1 : (ka == kb ? 0 : 1);
    }
    const uint64_t ka = a.gmsg.GetUInt(field);
    const uint64_t kb = b.gmsg.GetUInt(field);
    return ka < kb ? -1 : (ka == kb ? 0 : 1);
  };
}

runtime::MergeTask::CombineFn MakeFoldtCombine(std::shared_ptr<const CompiledProgram> program,
                                               const std::string& combine_fun) {
  const FunDecl* fun = program->ast.FindFun(combine_fun);
  FLICK_CHECK(fun != nullptr);
  // One interpreter per combine callback; MergeTasks are single-threaded.
  auto interp = std::make_shared<Interp>(program.get(), nullptr, "foldt");
  return [program, fun, interp](runtime::Msg& into, const runtime::Msg& from) {
    Interp::Effects fx;  // no emission inside combine
    interp->ResetFuel();
    const TypeDecl* type = nullptr;
    if (!fun->params.empty()) {
      type = program->ast.FindType(fun->params[0].value_type);
    }
    std::vector<Value> args;
    args.push_back(Value::Record(&into.gmsg, type));
    args.push_back(Value::Record(const_cast<grammar::Message*>(&from.gmsg), type));
    const Value result = interp->CallFun(*fun, std::move(args), fx);
    if (result.kind == Value::Kind::kRecord && result.record != nullptr) {
      into.gmsg = *result.record;
    }
    interp->ClearTemps();
  };
}

}  // namespace flick::lang
