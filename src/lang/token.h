// Token stream for the FLICK language (§4). The surface syntax is
// indentation-structured (Listings 1 & 3): the lexer emits synthetic INDENT /
// DEDENT / NEWLINE tokens, Python-style.
#ifndef FLICK_LANG_TOKEN_H_
#define FLICK_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace flick::lang {

enum class TokenKind {
  // literals / identifiers
  kIdent,
  kInt,       // decimal or 0x hex
  kString,    // "..."
  // keywords
  kType, kRecord, kProc, kFun, kGlobal, kLet, kIf, kElse, kAnd, kOr, kNot,
  kMod, kNone, kRef, kDict, kFoldt, kOn, kOrdering, kBy, kCombine, kReturn,
  kTrue, kFalse,
  // punctuation / operators
  kColon, kComma, kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kArrow,      // ->
  kSend,       // =>
  kAssign,     // :=
  kEq,         // =
  kNeq,        // <>
  kLt, kGt, kLe, kGe,
  kPlus, kMinus, kStar, kSlash,
  kDot, kUnderscore,
  // layout
  kNewline, kIndent, kDedent,
  kEof,
  kError,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier/string payload
  uint64_t int_value = 0;
  int line = 0;
  int column = 0;
};

}  // namespace flick::lang

#endif  // FLICK_LANG_TOKEN_H_
