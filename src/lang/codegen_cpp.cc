#include "lang/codegen_cpp.h"

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lang/lower.h"

namespace flick::lang {
namespace {

// ----------------------------------------------------- size / pseudo-code ----

// C++ rendering of a size annotation as a grammar::LenExpr value. At the top
// level a plain integer literal uses the Bytes(name, uint64_t) overload
// (identical to LenExpr::Const); nested literals must spell the constructor.
void EmitLenExpr(const Expr& expr, std::ostringstream& out, bool top_level) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      if (top_level) {
        out << expr.int_value;
      } else {
        out << "grammar::LenExpr::Const(" << expr.int_value << ")";
      }
      return;
    case ExprKind::kVar:
      out << "grammar::LenExpr::Field(\"" << expr.text << "\")";
      return;
    case ExprKind::kBinary: {
      out << "(";
      EmitLenExpr(*expr.base, out, /*top_level=*/false);
      out << (expr.op == BinOp::kAdd ? " + " : expr.op == BinOp::kSub ? " - " : " * ");
      EmitLenExpr(*expr.index, out, /*top_level=*/false);
      out << ")";
      return;
    }
    default:
      out << "/*unsupported*/0";
  }
}

// The pseudo-code renderer for the `#if 0` reference block: the checked fun
// and proc bodies as readable C++-ish statements. Not part of the compiled
// surface — the executable logic ships in the handlers rendered from the
// lowering plans below.
void EmitExpr(const Expr& expr, std::ostringstream& out) {
  switch (expr.kind) {
    case ExprKind::kIntLit: out << expr.int_value; return;
    case ExprKind::kStringLit: out << '"' << expr.text << '"'; return;
    case ExprKind::kBoolLit: out << (expr.bool_value ? "true" : "false"); return;
    case ExprKind::kNoneLit: out << "std::nullopt"; return;
    case ExprKind::kVar: out << expr.text; return;
    case ExprKind::kField:
      EmitExpr(*expr.base, out);
      out << ".get_" << expr.text << "()";
      return;
    case ExprKind::kIndex:
      EmitExpr(*expr.base, out);
      out << "[";
      EmitExpr(*expr.index, out);
      out << "]";
      return;
    case ExprKind::kCall: {
      if (expr.text == "hash") {
        out << "flick::HashBytes(";
      } else if (expr.text == "len") {
        out << "std::size(";
      } else {
        out << expr.text << "(";
      }
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) {
          out << ", ";
        }
        EmitExpr(*expr.args[i], out);
      }
      out << ")";
      return;
    }
    case ExprKind::kBinary: {
      const char* op = "?";
      switch (expr.op) {
        case BinOp::kEq: op = "=="; break;
        case BinOp::kNeq: op = "!="; break;
        case BinOp::kLt: op = "<"; break;
        case BinOp::kGt: op = ">"; break;
        case BinOp::kLe: op = "<="; break;
        case BinOp::kGe: op = ">="; break;
        case BinOp::kAdd: op = "+"; break;
        case BinOp::kSub: op = "-"; break;
        case BinOp::kMul: op = "*"; break;
        case BinOp::kDiv: op = "/"; break;
        case BinOp::kMod: op = "%"; break;
        case BinOp::kAnd: op = "&&"; break;
        case BinOp::kOr: op = "||"; break;
      }
      out << "(";
      EmitExpr(*expr.base, out);
      out << " " << op << " ";
      EmitExpr(*expr.index, out);
      out << ")";
      return;
    }
    case ExprKind::kUnary:
      out << (expr.unary_op == '!' ? "!" : "-");
      EmitExpr(*expr.base, out);
      return;
  }
}

void EmitStmt(const Stmt& stmt, std::ostringstream& out, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (stmt.kind) {
    case StmtKind::kGlobal:
      out << pad << "// global " << stmt.name << ": shared StateStore dict\n";
      return;
    case StmtKind::kLet:
      out << pad << "const auto " << stmt.name << " = ";
      EmitExpr(*stmt.value, out);
      out << ";\n";
      return;
    case StmtKind::kAssign:
      out << pad;
      EmitExpr(*stmt.target, out);
      out << " = ";
      EmitExpr(*stmt.value, out);
      out << ";  // StateStore::Put\n";
      return;
    case StmtKind::kSend: {
      out << pad << "// pipeline: value";
      out << "\n" << pad << "auto pipeline_value = ";
      EmitExpr(*stmt.value, out);
      out << ";\n";
      for (const ExprPtr& stage : stmt.send_stages) {
        if (stage->kind == ExprKind::kCall) {
          out << pad << "pipeline_value = ";
          EmitExpr(*stage, out);
          out << ";  // +pipeline_value as last arg\n";
        } else {
          out << pad << "emit.Emit(/*channel=*/";
          EmitExpr(*stage, out);
          out << ", pipeline_value);\n";
        }
      }
      return;
    }
    case StmtKind::kIf:
      out << pad << "if (";
      EmitExpr(*stmt.cond, out);
      out << ") {\n";
      for (const StmtPtr& s : stmt.then_block) {
        EmitStmt(*s, out, indent + 1);
      }
      if (!stmt.else_block.empty()) {
        out << pad << "} else {\n";
        for (const StmtPtr& s : stmt.else_block) {
          EmitStmt(*s, out, indent + 1);
        }
      }
      out << pad << "}\n";
      return;
    case StmtKind::kExpr:
      out << pad << "return ";
      EmitExpr(*stmt.value, out);
      out << ";\n";
      return;
    case StmtKind::kFoldt:
      out << pad << "// foldt on " << stmt.foldt_channels << " ordering by "
          << stmt.foldt_order_field << " combine " << stmt.foldt_combine_fun
          << " -> MergeTask tree (see services/hadoop_agg.cc)\n";
      return;
  }
}

// --------------------------------------------------------- canonical shape ----

// The canonical service wiring: scalar channels take compute indices in
// declaration order; the (single) channel array takes the tail block starting
// at `array_base` — one slot per backend, count known only at graph-build
// time. Matches services::DslService::OnConnection.
struct CanonicalShape {
  ProcWiring wiring;                  // array gets ONE analysis slot at array_base
  std::vector<const Param*> scalars;  // channel params, index = position in list
  const Param* array = nullptr;
  int array_base = -1;
  bool supported = false;  // false: >1 array — only pseudo-code is emitted
};

CanonicalShape ShapeOf(const ProcDecl& proc) {
  CanonicalShape shape;
  size_t arrays = 0;
  for (const Param& p : proc.params) {
    if (!p.channel.has_value()) {
      continue;
    }
    if (p.channel->is_array) {
      ++arrays;
      shape.array = &p;
    } else {
      shape.scalars.push_back(&p);
    }
  }
  shape.supported = arrays <= 1;
  if (!shape.supported) {
    return shape;
  }
  int next = 0;
  for (const Param* p : shape.scalars) {
    shape.wiring.endpoints[p->name].inputs = {static_cast<size_t>(next)};
    shape.wiring.endpoints[p->name].outputs = {static_cast<size_t>(next)};
    ++next;
  }
  if (shape.array != nullptr) {
    shape.array_base = next;
    shape.wiring.endpoints[shape.array->name].inputs = {static_cast<size_t>(next)};
    shape.wiring.endpoints[shape.array->name].outputs = {static_cast<size_t>(next)};
  }
  return shape;
}

// ----------------------------------------------------------- native handler ----

const char* ShapeName(RulePlan::Shape shape) {
  switch (shape) {
    case RulePlan::Shape::kForward: return "forward";
    case RulePlan::Shape::kHashRoute: return "hash-route";
    case RulePlan::Shape::kCacheUpdateForward: return "cache-update + forward";
    case RulePlan::Shape::kCacheTestRoute: return "cache-test / hash-route";
  }
  return "?";
}

std::string FieldComment(const grammar::Unit* unit, int index) {
  if (unit == nullptr || index < 0 ||
      static_cast<size_t>(index) >= unit->fields().size()) {
    return "";
  }
  return " /* " + unit->fields()[static_cast<size_t>(index)].name + " */";
}

// Renders the hash-route tail of a plan: interp-parity hash (masked positive,
// int64 mod), target = array_base + idx.
void EmitRouteTail(const RulePlan& plan, const CanonicalShape& shape,
                   const grammar::Unit* unit, std::ostringstream& out,
                   const std::string& pad) {
  out << pad << "if (backend_count == 0) {\n"
      << pad << "  return runtime::HandleResult::kConsumed;  // route with no targets: drop\n"
      << pad << "}\n";
  if (plan.key_is_bytes) {
    out << pad << "const uint64_t h = flick::HashBytes(m.GetBytes(" << plan.key_field
        << FieldComment(unit, plan.key_field) << ")) & 0x7fffffffffffffffull;\n";
  } else {
    out << pad << "const uint64_t h = flick::MixU64(m.GetUInt(" << plan.key_field
        << FieldComment(unit, plan.key_field) << ")) >> 1;\n";
  }
  out << pad << "const size_t target = " << shape.array_base
      << " + static_cast<size_t>(static_cast<int64_t>(h) % "
         "static_cast<int64_t>(backend_count));\n"
      << pad << "if (!emit.CanEmit(target)) {\n"
      << pad << "  return runtime::HandleResult::kBlocked;\n"
      << pad << "}\n"
      << pad << "(void)EmitRecordCopy(emit, target, m);\n"
      << pad << "return runtime::HandleResult::kConsumed;\n";
}

// Renders one lowered plan as straight-line handler code. Same semantics as
// lang/lower.cc's RunPlan, with every field index baked as a constant.
void EmitPlanBody(const RulePlan& plan, const CanonicalShape& shape,
                  const std::string& proc_name, const grammar::Unit* unit,
                  std::ostringstream& out, const std::string& pad) {
  switch (plan.shape) {
    case RulePlan::Shape::kForward:
      out << pad << "if (!emit.CanEmit(" << plan.forward_out << ")) {\n"
          << pad << "  return runtime::HandleResult::kBlocked;\n"
          << pad << "}\n"
          << pad << "(void)EmitRecordCopy(emit, " << plan.forward_out << ", m);\n"
          << pad << "return runtime::HandleResult::kConsumed;\n";
      return;
    case RulePlan::Shape::kHashRoute:
      EmitRouteTail(plan, shape, unit, out, pad);
      return;
    case RulePlan::Shape::kCacheUpdateForward:
      out << pad << "if (!emit.CanEmit(" << plan.forward_out << ")) {\n"
          << pad << "  return runtime::HandleResult::kBlocked;\n"
          << pad << "}\n"
          << pad << "uint64_t cmp = 0;\n"
          << pad << "if (state != nullptr && FieldU64(m, " << plan.cmp_field << ", "
          << (plan.cmp_is_bytes ? "true" : "false") << FieldComment(unit, plan.cmp_field)
          << ", &cmp) && cmp == " << plan.cmp_value << "u) {\n"
          << pad << "  state->Put(\"" << plan.dict << "\", std::string(m.GetBytes("
          << plan.key_field << FieldComment(unit, plan.key_field)
          << ")), SerializeRecord(m));\n"
          << pad << "}\n"
          << pad << "(void)EmitRecordCopy(emit, " << plan.forward_out << ", m);\n"
          << pad << "return runtime::HandleResult::kConsumed;\n";
      return;
    case RulePlan::Shape::kCacheTestRoute:
      out << pad << "uint64_t cmp = 0;\n"
          << pad << "if (state != nullptr && FieldU64(m, " << plan.cmp_field << ", "
          << (plan.cmp_is_bytes ? "true" : "false") << FieldComment(unit, plan.cmp_field)
          << ", &cmp) && cmp == " << plan.cmp_value << "u) {\n"
          << pad << "  if (auto cached = state->Get(\"" << plan.dict
          << "\", std::string(m.GetBytes(" << plan.key_field
          << FieldComment(unit, plan.key_field) << "))); cached.has_value()) {\n"
          << pad << "    if (!emit.CanEmit(" << plan.forward_out << ")) {\n"
          << pad << "      return runtime::HandleResult::kBlocked;\n"
          << pad << "    }\n"
          << pad << "    runtime::MsgRef hit = emit.NewMsg();\n"
          << pad << "    hit->kind = runtime::Msg::Kind::kBytes;  // cached wire form\n"
          << pad << "    hit->bytes = std::move(*cached);\n"
          << pad << "    (void)emit.Emit(" << plan.forward_out << ", std::move(hit));\n"
          << pad << "    return runtime::HandleResult::kConsumed;\n"
          << pad << "  }\n"
          << pad << "}\n";
      EmitRouteTail(plan, shape, unit, out, pad);
      return;
  }
  (void)proc_name;
}

// The run-time support helpers every generated handler leans on. Emitted once
// per translation unit, in an anonymous namespace.
constexpr const char kSupportHelpers[] = R"cpp(namespace {

// Interpreter-parity numeric view of a field: uint fields read directly,
// short byte fields (1..8 bytes) compare big-endian, anything else is
// incomparable and the guard fails closed.
[[maybe_unused]] inline bool FieldU64(const grammar::Message& m, int field,
                                      bool is_bytes, uint64_t* out) {
  if (!is_bytes) {
    *out = m.GetUInt(field);
    return true;
  }
  const std::string_view bytes = m.GetBytes(field);
  if (bytes.empty() || bytes.size() > 8) {
    return false;
  }
  uint64_t v = 0;
  for (const char c : bytes) {
    v = (v << 8) | static_cast<uint8_t>(c);
  }
  *out = v;
  return true;
}

// Dict values for records are the serialized wire form (interp parity;
// serialisation mutates length fields by design).
[[maybe_unused]] inline std::string SerializeRecord(grammar::Message& m) {
  static thread_local BufferPool pool(64, 16 * 1024);
  BufferChain chain(&pool);
  grammar::UnitSerializer serializer(m.unit());
  FLICK_CHECK(serializer.Serialize(m, chain).ok());
  return chain.ToString();
}

[[maybe_unused]] inline bool EmitRecordCopy(runtime::EmitContext& emit, size_t out,
                                            const grammar::Message& m) {
  runtime::MsgRef ref = emit.NewMsg();
  ref->kind = runtime::Msg::Kind::kGrammar;
  ref->gmsg = m;  // deep copy into the outgoing message
  return emit.Emit(out, std::move(ref));
}

}  // namespace
)cpp";

}  // namespace

std::string GenerateCpp(const CompiledProgram& program) {
  std::ostringstream out;
  out << "// Generated by the FLICK compiler (codegen_cpp pass).\n"
         "// Types -> grammar units; procs -> native ComputeTask handlers rendered\n"
         "// from the lowering pass's rule plans (field indices baked as constants);\n"
         "// graphs -> GraphBuilder wiring on the pooled runtime. Rules the lowering\n"
         "// pass could not prove dispatch to the optional `fallback` handler.\n"
         "#include <cstdint>\n"
         "#include <memory>\n"
         "#include <string>\n"
         "#include <string_view>\n"
         "#include <utility>\n"
         "\n"
         "#include \"base/check.h\"\n"
         "#include \"base/hash.h\"\n"
         "#include \"buffer/buffer_chain.h\"\n"
         "#include \"buffer/buffer_pool.h\"\n"
         "#include \"grammar/serializer.h\"\n"
         "#include \"grammar/unit.h\"\n"
         "#include \"runtime/compute_task.h\"\n"
         "#include \"runtime/state_store.h\"\n"
         "#include \"services/graph_builder.h\"\n"
         "\n"
         "namespace flick::flickgen {\n\n";
  out << kSupportHelpers << "\n";

  // ------------------------------------------------------------- units ------
  for (const TypeDecl& type : program.ast.types) {
    out << "// type " << type.name << "\n";
    out << "grammar::Unit Make_" << type.name << "_Unit() {\n";
    out << "  return grammar::UnitBuilder(\"" << type.name << "\")\n";
    out << "      .ByteOrder(ByteOrder::kBig)\n";
    for (const FieldDecl& field : type.fields) {
      const std::string& name = field.name;
      if (field.type == "integer") {
        if (field.annotation.is_ascii) {
          out << "      .AsciiUInt(\"" << name << "\")\n";
          continue;
        }
        uint64_t width = 8;
        if (field.annotation.size != nullptr &&
            field.annotation.size->kind == ExprKind::kIntLit) {
          width = field.annotation.size->int_value;
        }
        out << "      .UInt(\"" << name << "\", " << width << ")\n";
      } else if (field.annotation.size != nullptr) {
        std::ostringstream size;
        EmitLenExpr(*field.annotation.size, size, /*top_level=*/true);
        out << "      .Bytes(\"" << name << "\", " << size.str() << ")\n";
      } else {
        out << "      .UInt(\"__len_" << name << "\", 4)\n";
        out << "      .Bytes(\"" << name << "\", grammar::LenExpr::Field(\"__len_"
            << name << "\"))\n";
      }
    }
    out << "      .Build().value();\n}\n\n";
    out << "const grammar::Unit& " << type.name << "_Unit() {\n"
        << "  static const grammar::Unit unit = Make_" << type.name << "_Unit();\n"
        << "  return unit;\n}\n\n";
  }

  // -------------------------------------------- reference pseudo-code ------
  // The checked source-level bodies, for inspection. The executable logic is
  // in the handlers below; anything here that did NOT lower is reachable only
  // through the fallback handler.
  out << "// Checked fun/proc bodies (reference rendering, not compiled).\n";
  out << "#if 0\n";
  for (const FunDecl& fun : program.ast.funs) {
    out << "// fun " << fun.name << "\n";
    out << "auto " << fun.name << " = [](";
    for (size_t i = 0; i < fun.params.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << "auto&& " << fun.params[i].name;
    }
    out << ") {\n";
    for (const StmtPtr& stmt : fun.body) {
      EmitStmt(*stmt, out, 1);
    }
    out << "};\n\n";
  }
  for (const ProcDecl& proc : program.ast.procs) {
    out << "// proc " << proc.name << "\n";
    for (const StmtPtr& stmt : proc.body) {
      EmitStmt(*stmt, out, 0);
    }
    out << "\n";
  }
  out << "#endif\n\n";

  // ----------------------------------------------------------- handlers ------
  for (const ProcDecl& proc : program.ast.procs) {
    const CanonicalShape shape = ShapeOf(proc);
    ProcPlan plan;
    if (shape.supported) {
      plan = AnalyzeProc(program, proc, shape.wiring);
    }

    out << "// proc " << proc.name << " -> ComputeTask handler. `backend_count` is\n"
           "// the size of the backend channel array at graph-build time (0 if the\n"
           "// proc has none); un-lowered inputs dispatch to `fallback` (pass the\n"
           "// interpreter handler, or {} to drop).\n";
    out << "runtime::ComputeTask::Handler Make_" << proc.name << "_Handler(\n"
           "    [[maybe_unused]] runtime::StateStore* state, size_t backend_count,\n"
           "    runtime::ComputeTask::Handler fallback) {\n";
    out << "  return [state, backend_count, fallback = std::move(fallback)](\n"
           "             runtime::Msg& msg, size_t input,\n"
           "             runtime::EmitContext& emit) -> runtime::HandleResult {\n"
           "    (void)state;\n"
           "    (void)backend_count;\n"
           "    if (msg.kind == runtime::Msg::Kind::kEof) {\n"
           "      // All-or-nothing EOF broadcast (hand-written-service discipline).\n"
           "      for (size_t o = 0; o < emit.output_count(); ++o) {\n"
           "        if (!emit.CanEmit(o)) {\n"
           "          return runtime::HandleResult::kBlocked;\n"
           "        }\n"
           "      }\n"
           "      for (size_t o = 0; o < emit.output_count(); ++o) {\n"
           "        runtime::MsgRef eof = emit.NewMsg();\n"
           "        eof->kind = runtime::Msg::Kind::kEof;\n"
           "        (void)emit.Emit(o, std::move(eof));\n"
           "      }\n"
           "      return runtime::HandleResult::kConsumed;\n"
           "    }\n"
           "    if (msg.kind == runtime::Msg::Kind::kGrammar) {\n"
           "      [[maybe_unused]] grammar::Message& m = msg.gmsg;\n";

    bool emitted_any = false;
    if (shape.supported) {
      for (size_t si = 0; si < shape.scalars.size(); ++si) {
        const auto& rules = plan.rules;
        if (si < rules.size() && rules[si].has_value()) {
          const Param* p = shape.scalars[si];
          const grammar::Unit* unit = p->channel->in_type == "-"
                                          ? nullptr
                                          : program.UnitFor(p->channel->in_type);
          out << "      if (input == " << si << ") {  // " << p->name << ": "
              << ShapeName(rules[si]->shape) << "\n";
          EmitPlanBody(*rules[si], shape, proc.name, unit, out, "        ");
          out << "      }\n";
          emitted_any = true;
        }
      }
      if (shape.array != nullptr && shape.array_base >= 0 &&
          static_cast<size_t>(shape.array_base) < plan.rules.size() &&
          plan.rules[static_cast<size_t>(shape.array_base)].has_value()) {
        const grammar::Unit* unit =
            shape.array->channel->in_type == "-"
                ? nullptr
                : program.UnitFor(shape.array->channel->in_type);
        out << "      if (input >= " << shape.array_base << ") {  // "
            << shape.array->name << ": "
            << ShapeName(plan.rules[static_cast<size_t>(shape.array_base)]->shape)
            << "\n";
        EmitPlanBody(*plan.rules[static_cast<size_t>(shape.array_base)], shape,
                     proc.name, unit, out, "        ");
        out << "      }\n";
        emitted_any = true;
      }
    }
    if (!emitted_any) {
      out << "      // no rule of this proc lowered: everything runs through\n"
             "      // the fallback handler below.\n";
    }
    out << "    }\n"
           "    return fallback ? fallback(msg, input, emit)\n"
           "                    : runtime::HandleResult::kConsumed;\n"
           "  };\n}\n\n";

    // ------------------------------------------------------ graph wiring ----
    // Only the canonical middlebox shape gets wiring: one scalar channel the
    // service reads from (the accepted client) plus an optional backend array.
    const Param* client = nullptr;
    for (const Param* p : shape.scalars) {
      if (p->channel->in_type != "-") {
        client = p;
        break;
      }
    }
    if (!shape.supported || client == nullptr || shape.scalars.size() != 1) {
      out << "// proc " << proc.name << ": no canonical client/backends shape — "
             "graph wiring not generated.\n\n";
      continue;
    }
    const std::string in_unit = client->channel->in_type + "_Unit()";
    const std::string out_unit = client->channel->out_type == "-"
                                     ? in_unit
                                     : client->channel->out_type + "_Unit()";
    out << "// proc " << proc.name << " -> per-connection graph (Fig. 3 shape):\n"
           "// client source -> proc stage -> client sink + pooled backend legs.\n"
           "// Call per accepted connection, then b.Launch(registry).\n";
    out << "void Build_" << proc.name << "_Graph(\n"
           "    services::GraphBuilder& b, std::unique_ptr<Connection> client_conn,\n";
    if (shape.array != nullptr) {
      out << "    services::BackendPool& pool,\n";
    }
    out << "    runtime::StateStore* state, runtime::ComputeTask::Handler fallback) {\n";
    out << "  auto client = b.Adopt(std::move(client_conn));\n";
    out << "  auto request = b.Source(\n"
           "      \"client-in\", client,\n"
           "      std::make_unique<runtime::GrammarDeserializer>(&" << in_unit << "));\n";
    if (shape.array != nullptr) {
      out << "  auto legs = b.FanOutPooled(pool, /*capacity=*/64);\n";
      out << "  auto proc = b.Stage(\"proc:" << proc.name << "\",\n"
             "                      Make_" << proc.name << "_Handler(state, legs.size(),\n"
             "                                                       std::move(fallback)))\n"
             "                  .From(request);  // proc input 0\n";
    } else {
      out << "  auto proc = b.Stage(\"proc:" << proc.name << "\",\n"
             "                      Make_" << proc.name << "_Handler(state, 0,\n"
             "                                                       std::move(fallback)))\n"
             "                  .From(request);  // proc input 0\n";
    }
    out << "  b.Sink(\"client-out\", client,\n"
           "         std::make_unique<runtime::GrammarSerializer>(&" << out_unit
        << "))\n"
           "      .From(proc);  // proc output 0\n";
    if (shape.array != nullptr) {
      out << "  for (auto& leg : legs) {\n"
             "    leg.sink.From(proc);  // proc outputs 1..n\n"
             "  }\n"
             "  for (auto& leg : legs) {\n"
             "    proc.From(leg.source);  // proc inputs 1..n\n"
             "  }\n";
    }
    out << "}\n\n";
  }

  out << "}  // namespace flick::flickgen\n";
  return out.str();
}

}  // namespace flick::lang
