#include "lang/lower.h"

#include <map>

#include "base/byte_order.h"
#include "base/hash.h"
#include "buffer/buffer_pool.h"
#include "grammar/serializer.h"

namespace flick::lang {
namespace {

// ----------------------------------------------------------------- analysis --

// Analysis-time symbolic value of a name in scope: proc channel params,
// globals, and (inside a stage function) the bound parameters.
struct Sym {
  enum class Kind { kChannel, kChannelArray, kDict };
  Kind kind = Kind::kChannel;
  std::vector<int> outs;  // channel output indices
  std::string dict;       // state dict name
};
using SymEnv = std::map<std::string, Sym>;

const Sym* LookupVar(const SymEnv& env, const Expr& e, Sym::Kind kind) {
  if (e.kind != ExprKind::kVar) {
    return nullptr;
  }
  const auto it = env.find(e.text);
  if (it == env.end() || it->second.kind != kind) {
    return nullptr;
  }
  return &it->second;
}

struct FieldRef {
  int index = -1;
  bool is_bytes = true;
  std::string name;
};

// Matches `<input>.<field>` where <field> exists in the input unit.
std::optional<FieldRef> InputFieldRef(const Expr& e, const std::string& input,
                                      const grammar::Unit& unit) {
  if (e.kind != ExprKind::kField || e.base == nullptr ||
      e.base->kind != ExprKind::kVar || e.base->text != input) {
    return std::nullopt;
  }
  const int idx = unit.FieldIndex(e.text);
  if (idx < 0) {
    return std::nullopt;
  }
  FieldRef ref;
  ref.index = idx;
  ref.is_bytes =
      unit.fields()[static_cast<size_t>(idx)].kind == grammar::FieldKind::kBytes;
  ref.name = e.text;
  return ref;
}

// Matches `hash(<input>.<key>) mod len(<array>)`.
struct HashMod {
  FieldRef key;
  std::string array;
};
std::optional<HashMod> MatchHashMod(const Expr& e, const SymEnv& env,
                                    const std::string& input,
                                    const grammar::Unit& unit) {
  if (e.kind != ExprKind::kBinary || e.op != BinOp::kMod) {
    return std::nullopt;
  }
  const Expr& lhs = *e.base;
  const Expr& rhs = *e.index;
  if (lhs.kind != ExprKind::kCall || lhs.text != "hash" || lhs.args.size() != 1) {
    return std::nullopt;
  }
  auto key = InputFieldRef(*lhs.args[0], input, unit);
  if (!key.has_value()) {
    return std::nullopt;
  }
  if (rhs.kind != ExprKind::kCall || rhs.text != "len" || rhs.args.size() != 1 ||
      LookupVar(env, *rhs.args[0], Sym::Kind::kChannelArray) == nullptr) {
    return std::nullopt;
  }
  HashMod hm;
  hm.key = std::move(*key);
  hm.array = rhs.args[0]->text;
  return hm;
}

// Matches the hash-route block:
//   let target = hash(input.key) mod len(arr)   (optional binding form)
//   input => arr[target]
// or the direct form `input => arr[hash(input.key) mod len(arr)]`.
std::optional<RulePlan> MatchRouteBlock(const std::vector<StmtPtr>& stmts,
                                        const SymEnv& env, const std::string& input,
                                        const grammar::Unit& unit) {
  const Stmt* send = nullptr;
  std::optional<HashMod> hm;
  std::string let_name;
  if (stmts.size() == 2 && stmts[0]->kind == StmtKind::kLet &&
      stmts[1]->kind == StmtKind::kSend) {
    hm = MatchHashMod(*stmts[0]->value, env, input, unit);
    let_name = stmts[0]->name;
    send = stmts[1].get();
  } else if (stmts.size() == 1 && stmts[0]->kind == StmtKind::kSend) {
    send = stmts[0].get();
  } else {
    return std::nullopt;
  }

  if (send->value == nullptr || send->value->kind != ExprKind::kVar ||
      send->value->text != input || send->send_stages.size() != 1) {
    return std::nullopt;
  }
  const Expr& target = *send->send_stages[0];
  if (target.kind != ExprKind::kIndex) {
    return std::nullopt;
  }
  const Sym* arr = LookupVar(env, *target.base, Sym::Kind::kChannelArray);
  if (arr == nullptr || arr->outs.empty()) {
    return std::nullopt;
  }
  if (hm.has_value()) {
    // Binding form: the index must be the let variable over the same array.
    if (target.index->kind != ExprKind::kVar || target.index->text != let_name ||
        target.base->text != hm->array) {
      return std::nullopt;
    }
  } else {
    hm = MatchHashMod(*target.index, env, input, unit);
    if (!hm.has_value() || target.base->text != hm->array) {
      return std::nullopt;
    }
  }

  RulePlan plan;
  plan.shape = RulePlan::Shape::kHashRoute;
  plan.route_outs = arr->outs;
  plan.key_field = hm->key.index;
  plan.key_is_bytes = hm->key.is_bytes;
  return plan;
}

// Matches `input.f = <const>` (kEq) or `input.f <> <const>` (kNeq), either
// operand order.
bool MatchFieldCmpConst(const Expr& e, const std::string& input,
                        const grammar::Unit& unit, BinOp want, FieldRef* field,
                        uint64_t* value) {
  if (e.kind != ExprKind::kBinary || e.op != want) {
    return false;
  }
  const Expr* a = e.base.get();
  const Expr* b = e.index.get();
  for (int swap = 0; swap < 2; ++swap) {
    auto ref = InputFieldRef(*a, input, unit);
    if (ref.has_value() && b->kind == ExprKind::kIntLit) {
      *field = std::move(*ref);
      *value = b->int_value;
      return true;
    }
    std::swap(a, b);
  }
  return false;
}

// Matches `dict[input.key]` against a kDict symbol.
struct DictGet {
  std::string dict;
  FieldRef key;
};
std::optional<DictGet> MatchDictGet(const Expr& e, const SymEnv& env,
                                    const std::string& input,
                                    const grammar::Unit& unit) {
  if (e.kind != ExprKind::kIndex) {
    return std::nullopt;
  }
  const Sym* d = LookupVar(env, *e.base, Sym::Kind::kDict);
  if (d == nullptr) {
    return std::nullopt;
  }
  auto key = InputFieldRef(*e.index, input, unit);
  // Dict keys are strings: a numeric key field would make the interpreter's
  // dict lookup always miss, so only byte fields are lowerable.
  if (!key.has_value() || !key->is_bytes) {
    return std::nullopt;
  }
  DictGet get;
  get.dict = d->dict;
  get.key = std::move(*key);
  return get;
}

// Matches the update_cache shape (non-terminal stage):
//   if input.f = <const>:
//       dict[input.key] := input
//   input
struct CacheUpdate {
  std::string dict;
  FieldRef key;
  FieldRef cmp;
  uint64_t cmp_value = 0;
};
std::optional<CacheUpdate> MatchCacheUpdateFun(const FunDecl& fun, const SymEnv& env,
                                               const std::string& input,
                                               const grammar::Unit& unit) {
  if (fun.body.size() != 2 || fun.body[0]->kind != StmtKind::kIf ||
      fun.body[1]->kind != StmtKind::kExpr) {
    return std::nullopt;
  }
  // The fun must return its input so the next stage forwards the same record.
  const Expr& ret = *fun.body[1]->value;
  if (ret.kind != ExprKind::kVar || ret.text != input) {
    return std::nullopt;
  }
  const Stmt& branch = *fun.body[0];
  CacheUpdate upd;
  if (!MatchFieldCmpConst(*branch.cond, input, unit, BinOp::kEq, &upd.cmp,
                          &upd.cmp_value) ||
      !branch.else_block.empty() || branch.then_block.size() != 1) {
    return std::nullopt;
  }
  const Stmt& store = *branch.then_block[0];
  if (store.kind != StmtKind::kAssign || store.value == nullptr ||
      store.value->kind != ExprKind::kVar || store.value->text != input) {
    return std::nullopt;
  }
  auto get = MatchDictGet(*store.target, env, input, unit);
  if (!get.has_value()) {
    return std::nullopt;
  }
  upd.dict = std::move(get->dict);
  upd.key = std::move(get->key);
  return upd;
}

// Matches the test_cache shape (terminal stage):
//   if dict[input.key] = None or input.f <> <const>:
//       <hash-route block over arr>
//   else:
//       dict[input.key] => client
std::optional<RulePlan> MatchTestCacheFun(const FunDecl& fun, const SymEnv& env,
                                          const std::string& input,
                                          const grammar::Unit& unit) {
  if (fun.body.size() != 1 || fun.body[0]->kind != StmtKind::kIf) {
    return std::nullopt;
  }
  const Stmt& branch = *fun.body[0];
  if (branch.cond->kind != ExprKind::kBinary || branch.cond->op != BinOp::kOr) {
    return std::nullopt;
  }
  // Left: dict[input.key] = None (None may appear on either side).
  const Expr& miss = *branch.cond->base;
  if (miss.kind != ExprKind::kBinary || miss.op != BinOp::kEq) {
    return std::nullopt;
  }
  const Expr* get_expr = miss.base.get();
  const Expr* none_expr = miss.index.get();
  if (none_expr->kind != ExprKind::kNoneLit) {
    std::swap(get_expr, none_expr);
  }
  if (none_expr->kind != ExprKind::kNoneLit) {
    return std::nullopt;
  }
  auto get = MatchDictGet(*get_expr, env, input, unit);
  if (!get.has_value()) {
    return std::nullopt;
  }
  // Right: input.f <> <const>.
  FieldRef cmp;
  uint64_t cmp_value = 0;
  if (!MatchFieldCmpConst(*branch.cond->index, input, unit, BinOp::kNeq, &cmp,
                          &cmp_value)) {
    return std::nullopt;
  }
  // Then: hash-route. Else: cached bytes to the client channel, same key.
  auto route = MatchRouteBlock(branch.then_block, env, input, unit);
  if (!route.has_value() || branch.else_block.size() != 1 ||
      branch.else_block[0]->kind != StmtKind::kSend) {
    return std::nullopt;
  }
  const Stmt& hit = *branch.else_block[0];
  auto hit_get = MatchDictGet(*hit.value, env, input, unit);
  if (!hit_get.has_value() || hit_get->dict != get->dict ||
      hit_get->key.index != get->key.index || hit.send_stages.size() != 1) {
    return std::nullopt;
  }
  const Sym* client = LookupVar(env, *hit.send_stages[0], Sym::Kind::kChannel);
  if (client == nullptr || client->outs.empty()) {
    return std::nullopt;
  }

  RulePlan plan = std::move(*route);
  plan.shape = RulePlan::Shape::kCacheTestRoute;
  plan.forward_out = client->outs.front();
  plan.dict = std::move(get->dict);
  plan.key_field = get->key.index;  // cache key (byte field) doubles as route key
  plan.key_is_bytes = true;
  plan.cmp_field = cmp.index;
  plan.cmp_is_bytes = cmp.is_bytes;
  plan.cmp_value = cmp_value;
  return plan;
}

// Analyses the first pipeline rule sourced from `param_name`.
std::optional<RulePlan> AnalyzeRule(const CompiledProgram& program,
                                    const ProcDecl& proc, const SymEnv& env,
                                    const std::string& param_name,
                                    const grammar::Unit& unit) {
  const Stmt* rule = nullptr;
  for (const StmtPtr& stmt : proc.body) {
    if (stmt->kind == StmtKind::kSend && stmt->value->kind == ExprKind::kVar &&
        stmt->value->text == param_name) {
      rule = stmt.get();
      break;
    }
  }
  if (rule == nullptr) {
    return std::nullopt;
  }

  std::optional<CacheUpdate> pending;  // a matched update_cache stage
  for (size_t si = 0; si < rule->send_stages.size(); ++si) {
    const Expr& stage = *rule->send_stages[si];
    const bool last = si + 1 == rule->send_stages.size();

    if (stage.kind == ExprKind::kVar) {
      // Terminal send to a scalar channel.
      const Sym* chan = LookupVar(env, stage, Sym::Kind::kChannel);
      if (chan == nullptr || chan->outs.empty() || !last) {
        return std::nullopt;
      }
      RulePlan plan;
      plan.forward_out = chan->outs.front();
      if (pending.has_value()) {
        plan.shape = RulePlan::Shape::kCacheUpdateForward;
        plan.dict = std::move(pending->dict);
        plan.key_field = pending->key.index;
        plan.key_is_bytes = true;
        plan.cmp_field = pending->cmp.index;
        plan.cmp_is_bytes = pending->cmp.is_bytes;
        plan.cmp_value = pending->cmp_value;
      } else {
        plan.shape = RulePlan::Shape::kForward;
      }
      return plan;
    }

    if (stage.kind != ExprKind::kCall) {
      return std::nullopt;
    }
    const FunDecl* fun = program.ast.FindFun(stage.text);
    if (fun == nullptr || fun->params.size() != stage.args.size() + 1) {
      return std::nullopt;
    }
    // Bind explicit args (must be plain names in scope) + the piped record.
    SymEnv fenv;
    for (size_t i = 0; i < stage.args.size(); ++i) {
      const Expr& a = *stage.args[i];
      if (a.kind != ExprKind::kVar) {
        return std::nullopt;
      }
      const auto it = env.find(a.text);
      if (it == env.end()) {
        return std::nullopt;
      }
      fenv[fun->params[i].name] = it->second;
    }
    const std::string& input = fun->params.back().name;

    if (!pending.has_value() && !last) {
      pending = MatchCacheUpdateFun(*fun, fenv, input, unit);
      if (pending.has_value()) {
        continue;
      }
      return std::nullopt;
    }
    if (!last || pending.has_value()) {
      return std::nullopt;  // terminal fun shapes cannot be composed further
    }
    if (auto plan = MatchRouteBlock(fun->body, fenv, input, unit)) {
      return plan;
    }
    if (auto plan = MatchTestCacheFun(*fun, fenv, input, unit)) {
      return plan;
    }
    return std::nullopt;
  }
  return std::nullopt;  // no terminal send: the record is dropped; keep interp
}

// ---------------------------------------------------------------- execution --

// Mirrors the interpreter's SerializeRecord (dict values for records are the
// serialized wire form; serialisation mutates length fields by design).
std::string SerializeGmsg(grammar::Message& msg) {
  static thread_local BufferPool pool(64, 16 * 1024);
  BufferChain chain(&pool);
  grammar::UnitSerializer serializer(msg.unit());
  const Status status = serializer.Serialize(msg, chain);
  FLICK_CHECK(status.ok());
  return chain.ToString();
}

// Numeric view of a field, mirroring the interpreter's mixed string/int
// comparison (short byte fields compare big-endian).
bool FieldNumeric(const grammar::Message& msg, int field, bool is_bytes,
                  uint64_t* out) {
  if (!is_bytes) {
    *out = msg.GetUInt(field);
    return true;
  }
  const std::string_view bytes = msg.GetBytes(field);
  if (bytes.empty() || bytes.size() > 8) {
    return false;
  }
  *out = LoadUInt(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(),
                  ByteOrder::kBig);
  return true;
}

// Interpreter-parity route index: hash(key) is masked positive, then int64
// mod selects the element.
size_t RouteIndex(const RulePlan& plan, const grammar::Message& msg) {
  uint64_t h = 0;
  if (plan.key_is_bytes) {
    h = HashBytes(msg.GetBytes(plan.key_field)) & 0x7fffffffffffffffull;
  } else {
    h = MixU64(msg.GetUInt(plan.key_field)) >> 1;
  }
  const int64_t n = static_cast<int64_t>(plan.route_outs.size());
  return n == 0 ? 0 : static_cast<size_t>(static_cast<int64_t>(h) % n);
}

bool EmitRecordCopy(runtime::EmitContext& emit, size_t out,
                    const grammar::Message& msg) {
  runtime::MsgRef ref = emit.NewMsg();
  ref->kind = runtime::Msg::Kind::kGrammar;
  ref->gmsg = msg;  // deep copy into the outgoing message
  return emit.Emit(out, std::move(ref));
}

// Executes one lowered plan against a parsed message. Blocked-retry
// discipline: CanEmit is checked before any side effect, so a re-delivered
// message replays cleanly.
runtime::HandleResult RunPlan(const RulePlan& plan, grammar::Message& msg,
                              runtime::EmitContext& emit,
                              runtime::StateStore* state) {
  switch (plan.shape) {
    case RulePlan::Shape::kForward: {
      if (!emit.CanEmit(static_cast<size_t>(plan.forward_out))) {
        return runtime::HandleResult::kBlocked;
      }
      (void)EmitRecordCopy(emit, static_cast<size_t>(plan.forward_out), msg);
      return runtime::HandleResult::kConsumed;
    }
    case RulePlan::Shape::kHashRoute: {
      const size_t out =
          static_cast<size_t>(plan.route_outs[RouteIndex(plan, msg)]);
      if (!emit.CanEmit(out)) {
        return runtime::HandleResult::kBlocked;
      }
      (void)EmitRecordCopy(emit, out, msg);
      return runtime::HandleResult::kConsumed;
    }
    case RulePlan::Shape::kCacheUpdateForward: {
      if (!emit.CanEmit(static_cast<size_t>(plan.forward_out))) {
        return runtime::HandleResult::kBlocked;
      }
      uint64_t v = 0;
      if (FieldNumeric(msg, plan.cmp_field, plan.cmp_is_bytes, &v) &&
          v == plan.cmp_value) {
        state->Put(plan.dict, std::string(msg.GetBytes(plan.key_field)),
                   SerializeGmsg(msg));
      }
      (void)EmitRecordCopy(emit, static_cast<size_t>(plan.forward_out), msg);
      return runtime::HandleResult::kConsumed;
    }
    case RulePlan::Shape::kCacheTestRoute: {
      uint64_t v = 0;
      const bool cacheable =
          FieldNumeric(msg, plan.cmp_field, plan.cmp_is_bytes, &v) &&
          v == plan.cmp_value;
      if (cacheable) {
        const std::string key(msg.GetBytes(plan.key_field));
        if (auto cached = state->Get(plan.dict, key); cached.has_value()) {
          if (!emit.CanEmit(static_cast<size_t>(plan.forward_out))) {
            return runtime::HandleResult::kBlocked;
          }
          runtime::MsgRef ref = emit.NewMsg();
          ref->kind = runtime::Msg::Kind::kBytes;  // cached wire form, as interp
          ref->bytes = std::move(*cached);
          (void)emit.Emit(static_cast<size_t>(plan.forward_out), std::move(ref));
          return runtime::HandleResult::kConsumed;
        }
      }
      const size_t out =
          static_cast<size_t>(plan.route_outs[RouteIndex(plan, msg)]);
      if (!emit.CanEmit(out)) {
        return runtime::HandleResult::kBlocked;
      }
      (void)EmitRecordCopy(emit, out, msg);
      return runtime::HandleResult::kConsumed;
    }
  }
  return runtime::HandleResult::kConsumed;
}

bool PlanNeedsState(const RulePlan& plan) {
  return plan.shape == RulePlan::Shape::kCacheUpdateForward ||
         plan.shape == RulePlan::Shape::kCacheTestRoute;
}

}  // namespace

ProcPlan AnalyzeProc(const CompiledProgram& program, const ProcDecl& proc,
                     const ProcWiring& wiring) {
  ProcPlan result;
  size_t max_input = 0;
  bool any_input = false;
  for (const auto& [name, ep] : wiring.endpoints) {
    for (size_t i : ep.inputs) {
      max_input = std::max(max_input, i);
      any_input = true;
    }
  }
  if (!any_input) {
    return result;
  }
  result.rules.resize(max_input + 1);

  // Names visible to pipeline rules: channel params and global dicts.
  SymEnv env;
  for (const Param& param : proc.params) {
    if (!param.channel.has_value()) {
      continue;
    }
    Sym sym;
    sym.kind = param.channel->is_array ? Sym::Kind::kChannelArray
                                       : Sym::Kind::kChannel;
    const auto ep = wiring.endpoints.find(param.name);
    if (ep != wiring.endpoints.end()) {
      for (size_t out : ep->second.outputs) {
        sym.outs.push_back(static_cast<int>(out));
      }
    }
    env[param.name] = std::move(sym);
  }
  for (const StmtPtr& stmt : proc.body) {
    if (stmt->kind == StmtKind::kGlobal) {
      Sym sym;
      sym.kind = Sym::Kind::kDict;
      sym.dict = proc.name + "." + stmt->name;  // matches MakeProcHandler's env
      env[stmt->name] = std::move(sym);
    }
  }

  for (const Param& param : proc.params) {
    if (!param.channel.has_value() || param.channel->in_type == "-") {
      continue;
    }
    const auto ep = wiring.endpoints.find(param.name);
    if (ep == wiring.endpoints.end()) {
      continue;
    }
    const grammar::Unit* unit = program.UnitFor(param.channel->in_type);
    if (unit == nullptr) {
      continue;
    }
    auto plan = AnalyzeRule(program, proc, env, param.name, *unit);
    if (!plan.has_value()) {
      continue;
    }
    for (size_t i : ep->second.inputs) {
      result.rules[i] = *plan;
    }
  }
  return result;
}

runtime::ComputeTask::Handler MakeLoweredProcHandler(
    std::shared_ptr<const CompiledProgram> program, const ProcDecl* proc,
    ProcWiring wiring, runtime::StateStore* state, std::string state_prefix,
    DslDispatchCounters counters) {
  auto plan = std::make_shared<ProcPlan>(AnalyzeProc(*program, *proc, wiring));
  if (state == nullptr) {
    // Cache shapes need the store; demote those inputs to the interpreter
    // (which no-ops dict access without a store, but stays semantically safe).
    for (auto& rule : plan->rules) {
      if (rule.has_value() && PlanNeedsState(*rule)) {
        rule.reset();
      }
    }
  }
  auto fallback =
      MakeProcHandler(std::move(program), proc, std::move(wiring), state,
                      std::move(state_prefix));

  return [plan, fallback = std::move(fallback), state,
          counters](runtime::Msg& msg, size_t input_index,
                    runtime::EmitContext& emit) -> runtime::HandleResult {
    if (msg.kind == runtime::Msg::Kind::kEof) {
      // All-or-nothing EOF broadcast (hand-written-service discipline).
      for (size_t out = 0; out < emit.output_count(); ++out) {
        if (!emit.CanEmit(out)) {
          return runtime::HandleResult::kBlocked;
        }
      }
      for (size_t out = 0; out < emit.output_count(); ++out) {
        runtime::MsgRef eof = emit.NewMsg();
        eof->kind = runtime::Msg::Kind::kEof;
        (void)emit.Emit(out, std::move(eof));
      }
      return runtime::HandleResult::kConsumed;
    }

    const RulePlan* rule = input_index < plan->rules.size() &&
                                   plan->rules[input_index].has_value()
                               ? &*plan->rules[input_index]
                               : nullptr;
    if (rule == nullptr || msg.kind != runtime::Msg::Kind::kGrammar) {
      if (counters.interp_fallbacks != nullptr) {
        counters.interp_fallbacks->fetch_add(1, std::memory_order_relaxed);
      }
      return fallback(msg, input_index, emit);
    }
    const runtime::HandleResult result = RunPlan(*rule, msg.gmsg, emit, state);
    if (result == runtime::HandleResult::kConsumed &&
        counters.lowered_msgs != nullptr) {
      counters.lowered_msgs->fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  };
}

}  // namespace flick::lang
