// Recursive-descent parser for the FLICK language.
#ifndef FLICK_LANG_PARSER_H_
#define FLICK_LANG_PARSER_H_

#include <string>

#include "base/result.h"
#include "lang/ast.h"

namespace flick::lang {

// Parses a full program from source text. Errors carry line information.
Result<Program> Parse(const std::string& source);

}  // namespace flick::lang

#endif  // FLICK_LANG_PARSER_H_
