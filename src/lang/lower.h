// Lowering pass (§4.3 / §5): turns checked proc pipeline rules into native
// dispatch handlers with pre-resolved field indices, bypassing the bounded
// evaluator's per-message Value boxing for the common middlebox shapes:
//
//   kForward             backends => client
//   kHashRoute           client => route(backends)        (keyed hash route)
//   kCacheUpdateForward  backends => update_cache(cache) => client
//   kCacheTestRoute      client => test_cache(client, backends, cache)
//
// AnalyzeProc structurally matches each input's first pipeline rule (inlining
// single-level stage function calls) against these templates. Anything it
// cannot prove falls back to the interpreter — per message, so a proc with
// one lowerable rule and one opaque rule still runs the fast path where it
// can. Lowered handlers reproduce the interpreter's observable semantics
// (hash masking, dict key/value encoding, cache hits emitted as raw bytes)
// but adopt the hand-written services' blocked-retry discipline: every side
// effect happens only after the committing emit is known to succeed.
#ifndef FLICK_LANG_LOWER_H_
#define FLICK_LANG_LOWER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/compile.h"

namespace flick::lang {

// One lowered pipeline rule, bound to a compute input. Field references are
// resolved to indices in the input type's synthesized grammar::Unit.
struct RulePlan {
  enum class Shape {
    kForward,             // copy input record to forward_out
    kHashRoute,           // hash(key) mod |route_outs| selects the output
    kCacheUpdateForward,  // if cmp_field == cmp_value: dict[key] := record; forward
    kCacheTestRoute,      // cached && cmp_field == cmp_value ? emit cached bytes
                          //   : hash-route the record
  };

  Shape shape = Shape::kForward;
  int forward_out = -1;             // kForward / kCacheUpdateForward / cache hits
  std::vector<int> route_outs;      // kHashRoute / kCacheTestRoute miss path
  int key_field = -1;               // hash / dict key field index
  bool key_is_bytes = true;
  int cmp_field = -1;               // field compared against cmp_value
  bool cmp_is_bytes = true;
  uint64_t cmp_value = 0;
  std::string dict;                 // state dict name ("<proc>.<global>")
};

// Per-proc analysis result: rules[i] is the plan for compute input i, or
// nullopt when that input must run through the interpreter.
struct ProcPlan {
  std::vector<std::optional<RulePlan>> rules;

  size_t lowered_inputs() const {
    size_t n = 0;
    for (const auto& r : rules) {
      n += r.has_value() ? 1 : 0;
    }
    return n;
  }
  bool fully_lowered() const {
    return !rules.empty() && lowered_inputs() == rules.size();
  }
};

// Structural pattern match of `proc`'s pipeline rules against the lowerable
// shapes. Never fails: unprovable rules come back as nullopt slots.
ProcPlan AnalyzeProc(const CompiledProgram& program, const ProcDecl& proc,
                     const ProcWiring& wiring);

// Dispatch counters, owned by the caller (services fold them into
// RegistryStats). Either pointer may be null.
struct DslDispatchCounters {
  std::atomic<uint64_t>* lowered_msgs = nullptr;
  std::atomic<uint64_t>* interp_fallbacks = nullptr;
};

// Builds a ComputeTask handler that runs lowered plans where AnalyzeProc
// proved them and falls back to the interpreter (MakeProcHandler) per message
// otherwise. Drop-in replacement for MakeProcHandler.
runtime::ComputeTask::Handler MakeLoweredProcHandler(
    std::shared_ptr<const CompiledProgram> program, const ProcDecl* proc,
    ProcWiring wiring, runtime::StateStore* state, std::string state_prefix,
    DslDispatchCounters counters = {});

}  // namespace flick::lang

#endif  // FLICK_LANG_LOWER_H_
