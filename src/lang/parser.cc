#include "lang/parser.h"

#include "lang/lexer.h"

namespace flick::lang {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    Program program;
    SkipNewlines();
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kType)) {
        auto decl = ParseTypeDecl();
        if (!decl.ok()) {
          return decl.status();
        }
        program.types.push_back(std::move(decl).value());
      } else if (At(TokenKind::kProc)) {
        auto decl = ParseProcDecl();
        if (!decl.ok()) {
          return decl.status();
        }
        program.procs.push_back(std::move(decl).value());
      } else if (At(TokenKind::kFun)) {
        auto decl = ParseFunDecl();
        if (!decl.ok()) {
          return decl.status();
        }
        program.funs.push_back(std::move(decl).value());
      } else {
        return Err("expected 'type', 'proc' or 'fun'");
      }
      SkipNewlines();
    }
    return program;
  }

 private:
  // ------------------------------------------------------------- plumbing ----
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  Token Take() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (At(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind) {
    if (!Accept(kind)) {
      return Status(StatusCode::kInvalidArgument,
                    "line " + std::to_string(Cur().line) + ": expected " +
                        TokenKindName(kind) + ", found " + TokenKindName(Cur().kind));
    }
    return OkStatus();
  }

  Status Err(const std::string& message) const {
    return Status(StatusCode::kInvalidArgument,
                  "line " + std::to_string(Cur().line) + ": " + message);
  }

  void SkipNewlines() {
    while (At(TokenKind::kNewline)) {
      ++pos_;
    }
  }

#define PARSE_OR_RETURN(var, call)    \
  auto var##_result = (call);         \
  if (!var##_result.ok()) {           \
    return var##_result.status();     \
  }                                   \
  auto var = std::move(var##_result).value()

  // ----------------------------------------------------------- type decls ----
  Result<TypeDecl> ParseTypeDecl() {
    TypeDecl decl;
    decl.line = Cur().line;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kType));
    if (!At(TokenKind::kIdent)) {
      return Err("expected type name");
    }
    decl.name = Take().text;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRecord));
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kIndent));
    while (!At(TokenKind::kDedent) && !At(TokenKind::kEof)) {
      SkipNewlines();
      if (At(TokenKind::kDedent)) {
        break;
      }
      PARSE_OR_RETURN(field, ParseFieldDecl());
      decl.fields.push_back(std::move(field));
      SkipNewlines();
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kDedent));
    return decl;
  }

  Result<FieldDecl> ParseFieldDecl() {
    FieldDecl field;
    field.line = Cur().line;
    if (Accept(TokenKind::kUnderscore)) {
      field.name.clear();
    } else if (At(TokenKind::kIdent)) {
      field.name = Take().text;
    } else {
      return Err("expected field name or '_'");
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    if (!At(TokenKind::kIdent)) {
      return Err("expected field type ('string' or 'integer')");
    }
    field.type = Take().text;
    if (field.type != "string" && field.type != "integer") {
      return Err("unknown field type '" + field.type + "'");
    }
    // Annotation block is optional (Listing 3's kv type omits it entirely).
    if (!At(TokenKind::kLBrace)) {
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      return field;
    }
    Take();  // consume '{'
    // annotations: key=value, comma separated
    while (!At(TokenKind::kRBrace)) {
      if (!At(TokenKind::kIdent)) {
        return Err("expected annotation name");
      }
      const std::string key = Take().text;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      if (key == "size") {
        PARSE_OR_RETURN(expr, ParseExpr());
        field.annotation.size = std::move(expr);
      } else if (key == "signed") {
        if (Accept(TokenKind::kTrue)) {
          field.annotation.is_signed = true;
        } else if (Accept(TokenKind::kFalse)) {
          field.annotation.is_signed = false;
        } else {
          return Err("expected true/false for 'signed'");
        }
      } else if (key == "ascii") {
        if (Accept(TokenKind::kTrue)) {
          field.annotation.is_ascii = true;
        } else if (Accept(TokenKind::kFalse)) {
          field.annotation.is_ascii = false;
        } else {
          return Err("expected true/false for 'ascii'");
        }
      } else {
        return Err("unknown annotation '" + key + "'");
      }
      if (!Accept(TokenKind::kComma)) {
        break;
      }
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
    return field;
  }

  // ----------------------------------------------------------- signatures ----
  Result<Param> ParseParam() {
    Param param;
    param.line = Cur().line;

    // Channel forms:   T/U name   |  -/U name  |  [T/U] name  |  [-/T] name
    if (At(TokenKind::kLBracket)) {
      Take();
      PARSE_OR_RETURN(ct, ParseChannelType());
      ct.is_array = true;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      if (!At(TokenKind::kIdent)) {
        return Err("expected channel-array parameter name");
      }
      param.name = Take().text;
      param.channel = std::move(ct);
      return param;
    }

    // Lookahead: IDENT '/' or '-' '/' begins a scalar channel type.
    if ((At(TokenKind::kIdent) && Peek(1).kind == TokenKind::kSlash) ||
        (At(TokenKind::kMinus) && Peek(1).kind == TokenKind::kSlash)) {
      PARSE_OR_RETURN(ct, ParseChannelType());
      if (!At(TokenKind::kIdent)) {
        return Err("expected channel parameter name");
      }
      param.name = Take().text;
      param.channel = std::move(ct);
      return param;
    }

    // Value forms:  name : type   |  name : ref dict<string*string>
    if (!At(TokenKind::kIdent)) {
      return Err("expected parameter");
    }
    param.name = Take().text;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    if (Accept(TokenKind::kRef)) {
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kDict));
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kLt));
      // dict<string*string> — element types are currently fixed.
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kIdent));
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kStar));
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kIdent));
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kGt));
      param.is_ref_dict = true;
      return param;
    }
    if (!At(TokenKind::kIdent)) {
      return Err("expected parameter type");
    }
    param.value_type = Take().text;
    return param;
  }

  Result<ChannelType> ParseChannelType() {
    ChannelType ct;
    if (Accept(TokenKind::kMinus)) {
      ct.in_type = "-";
    } else if (At(TokenKind::kIdent)) {
      ct.in_type = Take().text;
    } else {
      return Err("expected channel element type or '-'");
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kSlash));
    if (Accept(TokenKind::kMinus)) {
      ct.out_type = "-";
    } else if (At(TokenKind::kIdent)) {
      ct.out_type = Take().text;
    } else {
      return Err("expected channel element type or '-'");
    }
    return ct;
  }

  Result<std::vector<Param>> ParseParamList() {
    std::vector<Param> params;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!At(TokenKind::kRParen)) {
      while (true) {
        PARSE_OR_RETURN(param, ParseParam());
        params.push_back(std::move(param));
        if (!Accept(TokenKind::kComma)) {
          break;
        }
      }
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return params;
  }

  // ----------------------------------------------------------------- proc ----
  Result<ProcDecl> ParseProcDecl() {
    ProcDecl decl;
    decl.line = Cur().line;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kProc));
    if (!At(TokenKind::kIdent)) {
      return Err("expected process name");
    }
    decl.name = Take().text;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    PARSE_OR_RETURN(params, ParseParamList());
    decl.params = std::move(params);
    Accept(TokenKind::kColon);  // tolerate trailing ':' (Listing 3 style)
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
    PARSE_OR_RETURN(body, ParseBlock());
    decl.body = std::move(body);
    return decl;
  }

  Result<FunDecl> ParseFunDecl() {
    FunDecl decl;
    decl.line = Cur().line;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kFun));
    if (!At(TokenKind::kIdent)) {
      return Err("expected function name");
    }
    decl.name = Take().text;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    PARSE_OR_RETURN(params, ParseParamList());
    decl.params = std::move(params);
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (At(TokenKind::kIdent)) {
      decl.return_type = Take().text;
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
    PARSE_OR_RETURN(body, ParseBlock());
    decl.body = std::move(body);
    return decl;
  }

  // ------------------------------------------------------------ statements ----
  Result<std::vector<StmtPtr>> ParseBlock() {
    std::vector<StmtPtr> stmts;
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kIndent));
    while (!At(TokenKind::kDedent) && !At(TokenKind::kEof)) {
      SkipNewlines();
      if (At(TokenKind::kDedent)) {
        break;
      }
      PARSE_OR_RETURN(stmt, ParseStmt());
      stmts.push_back(std::move(stmt));
      SkipNewlines();
    }
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kDedent));
    return stmts;
  }

  Result<StmtPtr> ParseStmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Cur().line;

    if (Accept(TokenKind::kGlobal)) {
      stmt->kind = StmtKind::kGlobal;
      if (!At(TokenKind::kIdent)) {
        return Err("expected global name");
      }
      stmt->name = Take().text;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
      if (!At(TokenKind::kIdent) || Cur().text != "empty_dict") {
        return Err("global initialiser must be 'empty_dict'");
      }
      Take();
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      return StmtPtr(std::move(stmt));
    }

    if (Accept(TokenKind::kLet)) {
      stmt->kind = StmtKind::kLet;
      if (!At(TokenKind::kIdent)) {
        return Err("expected let binding name");
      }
      stmt->name = Take().text;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      PARSE_OR_RETURN(value, ParseExpr());
      stmt->value = std::move(value);
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      return StmtPtr(std::move(stmt));
    }

    if (Accept(TokenKind::kIf)) {
      stmt->kind = StmtKind::kIf;
      PARSE_OR_RETURN(cond, ParseExpr());
      stmt->cond = std::move(cond);
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      PARSE_OR_RETURN(then_block, ParseBlock());
      stmt->then_block = std::move(then_block);
      SkipNewlines();
      if (Accept(TokenKind::kElse)) {
        FLICK_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
        PARSE_OR_RETURN(else_block, ParseBlock());
        stmt->else_block = std::move(else_block);
      }
      return StmtPtr(std::move(stmt));
    }

    if (Accept(TokenKind::kFoldt)) {
      // foldt on <ident> ordering by <ident> combine <ident> => <expr>
      stmt->kind = StmtKind::kFoldt;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kOn));
      if (!At(TokenKind::kIdent)) {
        return Err("expected channel-array name after 'foldt on'");
      }
      stmt->foldt_channels = Take().text;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kOrdering));
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kBy));
      if (!At(TokenKind::kIdent)) {
        return Err("expected ordering field name");
      }
      stmt->foldt_order_field = Take().text;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kCombine));
      if (!At(TokenKind::kIdent)) {
        return Err("expected combine function name");
      }
      stmt->foldt_combine_fun = Take().text;
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kSend));
      PARSE_OR_RETURN(target, ParseExpr());
      stmt->foldt_target = std::move(target);
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      return StmtPtr(std::move(stmt));
    }

    // Remaining forms start with an expression:
    //   expr := expr        assignment
    //   expr => stage ...   send pipeline
    //   expr                expression statement / return value
    PARSE_OR_RETURN(expr, ParseExpr());

    if (Accept(TokenKind::kAssign)) {
      stmt->kind = StmtKind::kAssign;
      stmt->target = std::move(expr);
      PARSE_OR_RETURN(value, ParseExpr());
      stmt->value = std::move(value);
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      return StmtPtr(std::move(stmt));
    }

    if (At(TokenKind::kSend)) {
      stmt->kind = StmtKind::kSend;
      stmt->value = std::move(expr);
      while (Accept(TokenKind::kSend)) {
        PARSE_OR_RETURN(stage, ParseExpr());
        stmt->send_stages.push_back(std::move(stage));
      }
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
      return StmtPtr(std::move(stmt));
    }

    stmt->kind = StmtKind::kExpr;
    stmt->value = std::move(expr);
    FLICK_RETURN_IF_ERROR(Expect(TokenKind::kNewline));
    return StmtPtr(std::move(stmt));
  }

  // ----------------------------------------------------------- expressions ----
  // Precedence: or < and < comparison < additive < multiplicative < unary
  //             < postfix (call/field/index) < primary
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PARSE_OR_RETURN(lhs, ParseAnd());
    while (At(TokenKind::kOr)) {
      const int line = Take().line;
      PARSE_OR_RETURN(rhs, ParseAnd());
      lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PARSE_OR_RETURN(lhs, ParseComparison());
    while (At(TokenKind::kAnd)) {
      const int line = Take().line;
      PARSE_OR_RETURN(rhs, ParseComparison());
      lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    PARSE_OR_RETURN(lhs, ParseAdditive());
    while (true) {
      BinOp op;
      if (At(TokenKind::kEq)) {
        op = BinOp::kEq;
      } else if (At(TokenKind::kNeq)) {
        op = BinOp::kNeq;
      } else if (At(TokenKind::kLt)) {
        op = BinOp::kLt;
      } else if (At(TokenKind::kGt)) {
        op = BinOp::kGt;
      } else if (At(TokenKind::kLe)) {
        op = BinOp::kLe;
      } else if (At(TokenKind::kGe)) {
        op = BinOp::kGe;
      } else {
        return lhs;
      }
      const int line = Take().line;
      PARSE_OR_RETURN(rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), line);
    }
  }

  Result<ExprPtr> ParseAdditive() {
    PARSE_OR_RETURN(lhs, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      const BinOp op = At(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      const int line = Take().line;
      PARSE_OR_RETURN(rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    PARSE_OR_RETURN(lhs, ParseUnary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) || At(TokenKind::kMod)) {
      BinOp op = BinOp::kMul;
      if (At(TokenKind::kSlash)) {
        op = BinOp::kDiv;
      } else if (At(TokenKind::kMod)) {
        op = BinOp::kMod;
      }
      const int line = Take().line;
      PARSE_OR_RETURN(rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (At(TokenKind::kNot) || At(TokenKind::kMinus)) {
      const bool is_not = At(TokenKind::kNot);
      const int line = Take().line;
      PARSE_OR_RETURN(operand, ParseUnary());
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->line = line;
      expr->unary_op = is_not ? '!' : '-';
      expr->base = std::move(operand);
      return expr;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    PARSE_OR_RETURN(expr, ParsePrimary());
    while (true) {
      if (Accept(TokenKind::kDot)) {
        if (!At(TokenKind::kIdent)) {
          return Err("expected field name after '.'");
        }
        auto field = std::make_unique<Expr>();
        field->kind = ExprKind::kField;
        field->line = Cur().line;
        field->text = Take().text;
        field->base = std::move(expr);
        expr = std::move(field);
        continue;
      }
      if (Accept(TokenKind::kLBracket)) {
        auto index = std::make_unique<Expr>();
        index->kind = ExprKind::kIndex;
        index->line = Cur().line;
        index->base = std::move(expr);
        PARSE_OR_RETURN(sub, ParseExpr());
        index->index = std::move(sub);
        FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        expr = std::move(index);
        continue;
      }
      return expr;
    }
  }

  Result<ExprPtr> ParsePrimary() {
    auto expr = std::make_unique<Expr>();
    expr->line = Cur().line;

    if (At(TokenKind::kInt)) {
      expr->kind = ExprKind::kIntLit;
      expr->int_value = Take().int_value;
      return expr;
    }
    if (At(TokenKind::kString)) {
      expr->kind = ExprKind::kStringLit;
      expr->text = Take().text;
      return expr;
    }
    if (Accept(TokenKind::kTrue)) {
      expr->kind = ExprKind::kBoolLit;
      expr->bool_value = true;
      return expr;
    }
    if (Accept(TokenKind::kFalse)) {
      expr->kind = ExprKind::kBoolLit;
      expr->bool_value = false;
      return expr;
    }
    if (Accept(TokenKind::kNone)) {
      expr->kind = ExprKind::kNoneLit;
      return expr;
    }
    if (At(TokenKind::kIdent)) {
      const std::string name = Take().text;
      if (Accept(TokenKind::kLParen)) {
        expr->kind = ExprKind::kCall;
        expr->text = name;
        if (!At(TokenKind::kRParen)) {
          while (true) {
            PARSE_OR_RETURN(arg, ParseExpr());
            expr->args.push_back(std::move(arg));
            if (!Accept(TokenKind::kComma)) {
              break;
            }
          }
        }
        FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return expr;
      }
      expr->kind = ExprKind::kVar;
      expr->text = name;
      return expr;
    }
    if (Accept(TokenKind::kLParen)) {
      PARSE_OR_RETURN(inner, ParseExpr());
      FLICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return Err(std::string("unexpected token ") + TokenKindName(Cur().kind));
  }

  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line) {
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kBinary;
    expr->line = line;
    expr->op = op;
    expr->base = std::move(lhs);
    expr->index = std::move(rhs);
    return expr;
  }

  const Token& Peek(size_t ahead) const {
    const size_t j = pos_ + ahead;
    return j < tokens_.size() ? tokens_[j] : tokens_.back();
  }

#undef PARSE_OR_RETURN

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  auto tokens = Lex(source);
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(tokens).value()).Run();
}

}  // namespace flick::lang
