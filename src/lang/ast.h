// Abstract syntax tree for the FLICK language (§4; Listings 1 & 3).
//
// Program  := {TypeDecl | ProcDecl | FunDecl}
// TypeDecl := 'type' name ':' 'record' INDENT {FieldDecl} DEDENT
// FieldDecl:= (name | '_') ':' ('string' | 'integer') '{' annots '}'
// ProcDecl := 'proc' name ':' '(' channel-params ')' INDENT {Stmt} DEDENT
// FunDecl  := 'fun' name ':' '(' params ')' '->' '(' [type] ')' INDENT {Stmt} DEDENT
// Stmt     := global | let | if | assign | send-pipeline | foldt | expr
#ifndef FLICK_LANG_AST_H_
#define FLICK_LANG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace flick::lang {

// ------------------------------------------------------------- expressions ----

enum class ExprKind {
  kIntLit,
  kStringLit,
  kBoolLit,
  kNoneLit,
  kVar,        // identifier
  kField,      // base.field
  kIndex,      // base[index]
  kCall,       // callee(args...)
  kBinary,     // lhs op rhs
  kUnary,      // op operand ('not', '-')
};

enum class BinOp { kEq, kNeq, kLt, kGt, kLe, kGe, kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;

  uint64_t int_value = 0;       // kIntLit
  bool bool_value = false;      // kBoolLit
  std::string text;             // kStringLit payload / kVar name / kField name / kCall callee
  ExprPtr base;                 // kField / kIndex base; kUnary operand; kBinary lhs
  ExprPtr index;                // kIndex subscript; kBinary rhs
  std::vector<ExprPtr> args;    // kCall arguments
  BinOp op = BinOp::kEq;        // kBinary
  char unary_op = 0;            // '!' (not) or '-'
};

// -------------------------------------------------------------- statements ----

enum class StmtKind {
  kGlobal,   // global name := empty_dict
  kLet,      // let name = expr
  kAssign,   // target := expr           (dict store / record field write)
  kSend,     // expr => target { => target2 ... }  (pipeline)
  kIf,       // if cond: block [else: block]
  kExpr,     // expression statement (value of last one is the return value)
  kFoldt,    // foldt on <chan-array> ordering by <field> combine <fun> => <target>
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct SendStage {
  // Each stage is either a function application (name + extra args) or a
  // channel target expression.
  ExprPtr target;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::string name;                 // kGlobal / kLet name
  ExprPtr value;                    // kLet / kAssign rhs / kExpr / kSend source
  ExprPtr target;                   // kAssign lhs
  std::vector<ExprPtr> send_stages; // kSend: stages after the source
  ExprPtr cond;                     // kIf
  std::vector<StmtPtr> then_block;  // kIf
  std::vector<StmtPtr> else_block;  // kIf
  // kFoldt
  std::string foldt_channels;       // channel-array param name
  std::string foldt_order_field;    // record field ordered by
  std::string foldt_combine_fun;    // binary combine function name
  ExprPtr foldt_target;             // destination channel
};

// ------------------------------------------------------------ declarations ----

// Type annotation on a record field: {size=<expr>, signed=<bool>}.
struct FieldAnnotation {
  ExprPtr size;        // integer expr over literals and earlier field names
  bool is_signed = false;
  bool is_ascii = false;  // integer encoded as ASCII decimal + CRLF (RESP)
};

struct FieldDecl {
  std::string name;    // empty for '_'
  std::string type;    // "string" | "integer"
  FieldAnnotation annotation;
  int line = 0;
};

struct TypeDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  int line = 0;
};

// Channel endpoint type: producer/consumer record types; '-' = none.
struct ChannelType {
  std::string in_type;   // type read from the channel ('-' if write-only)
  std::string out_type;  // type written to the channel ('-' if read-only)
  bool is_array = false;
};

struct Param {
  std::string name;
  // Exactly one of: channel, value type name, or ref-dict.
  std::optional<ChannelType> channel;
  std::string value_type;   // record/type name, "integer", "string"
  bool is_ref_dict = false; // cache: ref dict<string*string>
  int line = 0;
};

struct ProcDecl {
  std::string name;
  std::vector<Param> params;   // channels only
  std::vector<StmtPtr> body;
  int line = 0;
};

struct FunDecl {
  std::string name;
  std::vector<Param> params;
  std::string return_type;     // empty = unit
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<TypeDecl> types;
  std::vector<ProcDecl> procs;
  std::vector<FunDecl> funs;

  const TypeDecl* FindType(const std::string& name) const {
    for (const auto& t : types) {
      if (t.name == name) {
        return &t;
      }
    }
    return nullptr;
  }
  const FunDecl* FindFun(const std::string& name) const {
    for (const auto& f : funs) {
      if (f.name == name) {
        return &f;
      }
    }
    return nullptr;
  }
  const ProcDecl* FindProc(const std::string& name) const {
    for (const auto& p : procs) {
      if (p.name == name) {
        return &p;
      }
    }
    return nullptr;
  }
};

}  // namespace flick::lang

#endif  // FLICK_LANG_AST_H_
