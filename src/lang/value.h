// Runtime values of the FLICK evaluator.
//
// Records reference grammar::Message objects (owned either by the incoming
// runtime::Msg or by the interpreter's temporary arena); channels are
// resolved to compute-task output indices at graph-binding time.
#ifndef FLICK_LANG_VALUE_H_
#define FLICK_LANG_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "grammar/message.h"
#include "lang/ast.h"

namespace flick::lang {

struct Value {
  enum class Kind {
    kUnit,
    kNone,
    kInt,
    kBool,
    kString,
    kRecord,
    kChannel,       // writable endpoint(s): outs holds output indices
    kChannelArray,  // outs holds one output index per element
    kDict,
  };

  Kind kind = Kind::kUnit;
  int64_t i = 0;
  bool b = false;
  std::string s;
  grammar::Message* record = nullptr;
  const TypeDecl* record_type = nullptr;
  std::vector<int> outs;
  std::string dict;

  static Value Unit() { return Value{}; }
  static Value None() {
    Value v;
    v.kind = Kind::kNone;
    return v;
  }
  static Value Int(int64_t x) {
    Value v;
    v.kind = Kind::kInt;
    v.i = x;
    return v;
  }
  static Value Bool(bool x) {
    Value v;
    v.kind = Kind::kBool;
    v.b = x;
    return v;
  }
  static Value Str(std::string x) {
    Value v;
    v.kind = Kind::kString;
    v.s = std::move(x);
    return v;
  }
  static Value Record(grammar::Message* msg, const TypeDecl* type) {
    Value v;
    v.kind = Kind::kRecord;
    v.record = msg;
    v.record_type = type;
    return v;
  }

  bool Truthy() const {
    switch (kind) {
      case Kind::kBool: return b;
      case Kind::kInt: return i != 0;
      case Kind::kNone: return false;
      case Kind::kUnit: return false;
      default: return true;
    }
  }
};

}  // namespace flick::lang

#endif  // FLICK_LANG_VALUE_H_
