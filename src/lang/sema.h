// Semantic analysis for FLICK programs (§4.3: "The FLICK language is
// strongly-typed for safety" / §3.2 "restricted to allow only computation
// guaranteed to terminate").
//
// Enforced here:
//   * name resolution: every referenced type, function, field and variable
//     exists; calls match arity;
//   * boundedness: user functions are first-order and non-recursive (call
//     graph must be acyclic; the grammar has no unbounded loop construct);
//   * channel direction: values can only be sent into writable channels, and
//     only channels can be send targets;
//   * anonymity: '_' record fields are not accessible from code;
//   * record field annotations: size expressions reference earlier numeric
//     fields only (checked again structurally when units are built);
//   * globals: only dictionaries, initialised with empty_dict.
#ifndef FLICK_LANG_SEMA_H_
#define FLICK_LANG_SEMA_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "lang/ast.h"

namespace flick::lang {

// Returns all diagnostics ("line N: message"); empty means the program is
// well-formed.
std::vector<std::string> Check(const Program& program);

// Convenience: first diagnostic as a Status.
Status CheckOk(const Program& program);

}  // namespace flick::lang

#endif  // FLICK_LANG_SEMA_H_
