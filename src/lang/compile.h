// FLICK program compilation (§4.3 / §5): source -> checked AST + synthesized
// message grammars + executable task-graph pieces.
//
// The paper's compiler emits C++ linked against the platform; this
// implementation compiles to the same task-graph structures and executes
// function bodies with a bounded evaluator (see DESIGN.md §2 for the
// substitution rationale). `codegen_cpp.h` emits the equivalent C++ source
// for inspection.
#ifndef FLICK_LANG_COMPILE_H_
#define FLICK_LANG_COMPILE_H_

#include <map>
#include <memory>
#include <string>

#include "base/result.h"
#include "grammar/unit.h"
#include "lang/ast.h"
#include "runtime/compute_task.h"
#include "runtime/state_store.h"

namespace flick::lang {

struct CompiledProgram {
  Program ast;
  // One synthesized wire grammar per record type (paper §4.2: "FLICK
  // generates the corresponding parsing and serialisation code").
  std::map<std::string, grammar::Unit> units;

  const grammar::Unit* UnitFor(const std::string& type_name) const {
    const auto it = units.find(type_name);
    return it == units.end() ? nullptr : &it->second;
  }
};

// Lex + parse + check + synthesize units.
Result<std::shared_ptr<CompiledProgram>> CompileSource(const std::string& source);

// Maps a proc's channel parameters onto a ComputeTask's IO indices.
// For array params, inputs/outputs are ordered by element index.
struct ProcEndpoint {
  std::vector<size_t> inputs;
  std::vector<size_t> outputs;
};
struct ProcWiring {
  std::map<std::string, ProcEndpoint> endpoints;

  // Reverse lookup: which channel param does compute input `index` feed?
  const std::string* ParamForInput(size_t index) const {
    for (const auto& [name, ep] : endpoints) {
      for (size_t i : ep.inputs) {
        if (i == index) {
          return &name;
        }
      }
    }
    return nullptr;
  }
};

// Builds a ComputeTask handler that interprets `proc`'s pipeline rules.
// `state_prefix` namespaces the proc's global dicts inside `state`.
runtime::ComputeTask::Handler MakeProcHandler(std::shared_ptr<const CompiledProgram> program,
                                              const ProcDecl* proc, ProcWiring wiring,
                                              runtime::StateStore* state,
                                              std::string state_prefix);

// foldt support: ordering/combining callbacks for MergeTask trees, driven by
// the DSL combine function and ordering field (Listing 3).
runtime::MergeTask::OrderFn MakeFoldtOrder(std::shared_ptr<const CompiledProgram> program,
                                           const std::string& record_type,
                                           const std::string& order_field);
runtime::MergeTask::CombineFn MakeFoldtCombine(std::shared_ptr<const CompiledProgram> program,
                                               const std::string& combine_fun);

}  // namespace flick::lang

#endif  // FLICK_LANG_COMPILE_H_
