#include "lang/lexer.h"

#include <cctype>
#include <map>

namespace flick::lang {
namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::map<std::string, TokenKind>{
      {"type", TokenKind::kType},       {"record", TokenKind::kRecord},
      {"proc", TokenKind::kProc},       {"fun", TokenKind::kFun},
      {"global", TokenKind::kGlobal},   {"let", TokenKind::kLet},
      {"if", TokenKind::kIf},           {"else", TokenKind::kElse},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},         {"mod", TokenKind::kMod},
      {"None", TokenKind::kNone},       {"ref", TokenKind::kRef},
      {"dict", TokenKind::kDict},       {"foldt", TokenKind::kFoldt},
      {"on", TokenKind::kOn},           {"ordering", TokenKind::kOrdering},
      {"by", TokenKind::kBy},           {"combine", TokenKind::kCombine},
      {"return", TokenKind::kReturn},   {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
  };
  return *kMap;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kString: return "string";
    case TokenKind::kType: return "'type'";
    case TokenKind::kRecord: return "'record'";
    case TokenKind::kProc: return "'proc'";
    case TokenKind::kFun: return "'fun'";
    case TokenKind::kGlobal: return "'global'";
    case TokenKind::kLet: return "'let'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kMod: return "'mod'";
    case TokenKind::kNone: return "'None'";
    case TokenKind::kRef: return "'ref'";
    case TokenKind::kDict: return "'dict'";
    case TokenKind::kFoldt: return "'foldt'";
    case TokenKind::kOn: return "'on'";
    case TokenKind::kOrdering: return "'ordering'";
    case TokenKind::kBy: return "'by'";
    case TokenKind::kCombine: return "'combine'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kSend: return "'=>'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kUnderscore: return "'_'";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kIndent: return "indent";
    case TokenKind::kDedent: return "dedent";
    case TokenKind::kEof: return "end of file";
    case TokenKind::kError: return "error";
  }
  return "?";
}

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  std::vector<int> indents{0};
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();
  bool at_line_start = true;
  // Bracket depth: newlines inside (...) or [...] are insignificant, which
  // lets signatures span lines as in the paper's listings.
  int bracket_depth = 0;

  auto push = [&](TokenKind kind, std::string text = "", uint64_t value = 0, int col = 0) {
    tokens.push_back(Token{kind, std::move(text), value, line, col});
  };

  while (i <= n) {
    if (at_line_start && bracket_depth == 0) {
      // Measure indentation; skip blank/comment-only lines entirely.
      size_t j = i;
      int width = 0;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) {
        width += source[j] == '\t' ? 8 : 1;
        ++j;
      }
      if (j >= n) {
        break;
      }
      if (source[j] == '\n') {
        i = j + 1;
        ++line;
        continue;
      }
      if (source[j] == '#') {
        while (j < n && source[j] != '\n') {
          ++j;
        }
        i = j < n ? j + 1 : j;
        ++line;
        continue;
      }
      if (width > indents.back()) {
        indents.push_back(width);
        push(TokenKind::kIndent);
      } else {
        while (width < indents.back()) {
          indents.pop_back();
          push(TokenKind::kDedent);
        }
        if (width != indents.back()) {
          return InvalidArgument("line " + std::to_string(line) + ": inconsistent indentation");
        }
      }
      i = j;
      at_line_start = false;
      continue;
    }

    if (i >= n) {
      break;
    }
    const char c = source[i];
    const int col = static_cast<int>(i) + 1;

    if (c == '\n') {
      ++i;
      ++line;
      if (bracket_depth == 0) {
        push(TokenKind::kNewline);
        at_line_start = true;
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t value = 0;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(source[i]))) {
          const char d = source[i];
          value = value * 16 +
                  static_cast<uint64_t>(std::isdigit(static_cast<unsigned char>(d))
                                            ? d - '0'
                                            : std::tolower(d) - 'a' + 10);
          ++i;
        }
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          value = value * 10 + static_cast<uint64_t>(source[i] - '0');
          ++i;
        }
      }
      push(TokenKind::kInt, "", value, col);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) || source[j] == '_')) {
        ++j;
      }
      std::string word = source.substr(i, j - i);
      i = j;
      if (word == "_") {
        push(TokenKind::kUnderscore, "_", 0, col);
        continue;
      }
      const auto it = Keywords().find(word);
      if (it != Keywords().end()) {
        push(it->second, word, 0, col);
      } else {
        push(TokenKind::kIdent, std::move(word), 0, col);
      }
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      std::string text;
      while (j < n && source[j] != '"') {
        if (source[j] == '\\' && j + 1 < n) {
          ++j;
          switch (source[j]) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            default: text.push_back(source[j]);
          }
        } else {
          text.push_back(source[j]);
        }
        ++j;
      }
      if (j >= n) {
        return InvalidArgument("line " + std::to_string(line) + ": unterminated string");
      }
      i = j + 1;
      push(TokenKind::kString, std::move(text), 0, col);
      continue;
    }

    auto two = [&](char second) { return i + 1 < n && source[i + 1] == second; };
    switch (c) {
      case ':':
        if (two('=')) {
          push(TokenKind::kAssign, ":=", 0, col);
          i += 2;
        } else {
          push(TokenKind::kColon, ":", 0, col);
          ++i;
        }
        continue;
      case '=':
        if (two('>')) {
          push(TokenKind::kSend, "=>", 0, col);
          i += 2;
        } else {
          push(TokenKind::kEq, "=", 0, col);
          ++i;
        }
        continue;
      case '-':
        if (two('>')) {
          push(TokenKind::kArrow, "->", 0, col);
          i += 2;
        } else {
          push(TokenKind::kMinus, "-", 0, col);
          ++i;
        }
        continue;
      case '<':
        if (two('>')) {
          push(TokenKind::kNeq, "<>", 0, col);
          i += 2;
        } else if (two('=')) {
          push(TokenKind::kLe, "<=", 0, col);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", 0, col);
          ++i;
        }
        continue;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, ">=", 0, col);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", 0, col);
          ++i;
        }
        continue;
      case ',': push(TokenKind::kComma, ",", 0, col); ++i; continue;
      case '(': push(TokenKind::kLParen, "(", 0, col); ++bracket_depth; ++i; continue;
      case ')': push(TokenKind::kRParen, ")", 0, col); --bracket_depth; ++i; continue;
      case '[': push(TokenKind::kLBracket, "[", 0, col); ++bracket_depth; ++i; continue;
      case ']': push(TokenKind::kRBracket, "]", 0, col); --bracket_depth; ++i; continue;
      case '{': push(TokenKind::kLBrace, "{", 0, col); ++i; continue;
      case '}': push(TokenKind::kRBrace, "}", 0, col); ++i; continue;
      case '+': push(TokenKind::kPlus, "+", 0, col); ++i; continue;
      case '*': push(TokenKind::kStar, "*", 0, col); ++i; continue;
      case '/': push(TokenKind::kSlash, "/", 0, col); ++i; continue;
      case '.': push(TokenKind::kDot, ".", 0, col); ++i; continue;
      case '|': ++i; continue;  // pipeline rule prefix in some listings; cosmetic
      default:
        return InvalidArgument("line " + std::to_string(line) + ": unexpected character '" +
                               std::string(1, c) + "'");
    }
  }

  // Close the final line and any open blocks.
  if (!tokens.empty() && tokens.back().kind != TokenKind::kNewline) {
    tokens.push_back(Token{TokenKind::kNewline, "", 0, line, 0});
  }
  while (indents.size() > 1) {
    indents.pop_back();
    tokens.push_back(Token{TokenKind::kDedent, "", 0, line, 0});
  }
  tokens.push_back(Token{TokenKind::kEof, "", 0, line, 0});
  return tokens;
}

}  // namespace flick::lang
