#include "lang/sema.h"

#include <map>
#include <set>

namespace flick::lang {
namespace {

bool IsBuiltin(const std::string& name) {
  return name == "hash" || name == "len" || name == "all_ready" || name == "add" ||
         name == "int" || name == "str";
}

class Checker {
 public:
  explicit Checker(const Program& program) : program_(program) {}

  std::vector<std::string> Run() {
    CheckTypes();
    CheckCallGraphAcyclic();
    for (const FunDecl& fun : program_.funs) {
      CheckFun(fun);
    }
    for (const ProcDecl& proc : program_.procs) {
      CheckProc(proc);
    }
    return std::move(diags_);
  }

 private:
  void Diag(int line, const std::string& message) {
    diags_.push_back("line " + std::to_string(line) + ": " + message);
  }

  // ------------------------------------------------------------- type decls ----
  void CheckTypes() {
    std::set<std::string> names;
    for (const TypeDecl& type : program_.types) {
      if (!names.insert(type.name).second) {
        Diag(type.line, "duplicate type '" + type.name + "'");
      }
      std::set<std::string> fields;
      std::set<std::string> numeric_so_far;
      for (const FieldDecl& field : type.fields) {
        if (!field.name.empty() && !fields.insert(field.name).second) {
          Diag(field.line, "duplicate field '" + field.name + "' in type " + type.name);
        }
        // Missing {size=...} is allowed: integers default to 8 bytes and
        // strings become length-prefixed (auto-framed) on the wire.
        if (field.annotation.size != nullptr) {
          CheckSizeExpr(*field.annotation.size, numeric_so_far, field.line);
        }
        if (field.annotation.is_ascii && field.type != "integer") {
          Diag(field.line, "'ascii' annotation is only valid on integer fields");
        }
        if (field.annotation.is_ascii && field.annotation.size != nullptr) {
          Diag(field.line, "'ascii' integer fields have variable width; drop the size annotation");
        }
        if (field.type == "integer" && !field.name.empty()) {
          numeric_so_far.insert(field.name);
        }
      }
    }
  }

  // Size expressions may use integer literals and earlier integer fields.
  void CheckSizeExpr(const Expr& expr, const std::set<std::string>& numeric, int line) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return;
      case ExprKind::kVar:
        if (numeric.count(expr.text) == 0) {
          Diag(line, "size expression references '" + expr.text +
                         "', which is not an earlier integer field");
        }
        return;
      case ExprKind::kBinary:
        if (expr.op != BinOp::kAdd && expr.op != BinOp::kSub && expr.op != BinOp::kMul) {
          Diag(line, "size expressions support only +, -, *");
        }
        CheckSizeExpr(*expr.base, numeric, line);
        CheckSizeExpr(*expr.index, numeric, line);
        return;
      default:
        Diag(line, "unsupported construct in size expression");
    }
  }

  // ----------------------------------------------- boundedness: no recursion ----
  void CheckCallGraphAcyclic() {
    // Gather call edges fun -> fun.
    std::map<std::string, std::set<std::string>> edges;
    for (const FunDecl& fun : program_.funs) {
      std::set<std::string> callees;
      for (const StmtPtr& stmt : fun.body) {
        CollectCalls(*stmt, &callees);
      }
      edges[fun.name] = std::move(callees);
    }
    // DFS colouring.
    std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
    for (const FunDecl& fun : program_.funs) {
      if (HasCycle(fun.name, edges, colour)) {
        Diag(fun.line, "function '" + fun.name +
                           "' is (mutually) recursive; FLICK forbids recursion "
                           "(bounded-resource guarantee, paper §3.2)");
        return;  // one diagnosis is enough
      }
    }
  }

  bool HasCycle(const std::string& node, std::map<std::string, std::set<std::string>>& edges,
                std::map<std::string, int>& colour) {
    if (colour[node] == 1) {
      return true;
    }
    if (colour[node] == 2) {
      return false;
    }
    colour[node] = 1;
    for (const std::string& next : edges[node]) {
      if (edges.count(next) != 0 && HasCycle(next, edges, colour)) {
        return true;
      }
    }
    colour[node] = 2;
    return false;
  }

  void CollectCalls(const Stmt& stmt, std::set<std::string>* out) {
    auto walk_expr = [&](const Expr& e, auto&& self) -> void {
      if (e.kind == ExprKind::kCall) {
        out->insert(e.text);
      }
      if (e.base) {
        self(*e.base, self);
      }
      if (e.index) {
        self(*e.index, self);
      }
      for (const ExprPtr& a : e.args) {
        self(*a, self);
      }
    };
    auto walk = [&](const Expr* e) {
      if (e != nullptr) {
        walk_expr(*e, walk_expr);
      }
    };
    walk(stmt.value.get());
    walk(stmt.target.get());
    walk(stmt.cond.get());
    walk(stmt.foldt_target.get());
    for (const ExprPtr& s : stmt.send_stages) {
      walk(s.get());
    }
    if (stmt.kind == StmtKind::kFoldt && !stmt.foldt_combine_fun.empty()) {
      out->insert(stmt.foldt_combine_fun);
    }
    for (const StmtPtr& s : stmt.then_block) {
      CollectCalls(*s, out);
    }
    for (const StmtPtr& s : stmt.else_block) {
      CollectCalls(*s, out);
    }
  }

  // ----------------------------------------------------------------- scopes ----
  struct Scope {
    // name -> kind
    enum class Kind { kChannel, kChannelArray, kRecord, kDict, kInt, kString, kLocal };
    std::map<std::string, Kind> names;
    std::map<std::string, ChannelType> channels;  // direction info
    std::map<std::string, std::string> record_types;
  };

  Scope ScopeFromParams(const std::vector<Param>& params) {
    Scope scope;
    for (const Param& p : params) {
      if (p.channel.has_value()) {
        scope.names[p.name] =
            p.channel->is_array ? Scope::Kind::kChannelArray : Scope::Kind::kChannel;
        scope.channels[p.name] = *p.channel;
        CheckChannelElemTypes(*p.channel, p.line);
      } else if (p.is_ref_dict) {
        scope.names[p.name] = Scope::Kind::kDict;
      } else if (p.value_type == "integer") {
        scope.names[p.name] = Scope::Kind::kInt;
      } else if (p.value_type == "string") {
        scope.names[p.name] = Scope::Kind::kString;
      } else {
        if (program_.FindType(p.value_type) == nullptr) {
          Diag(p.line, "unknown type '" + p.value_type + "' for parameter " + p.name);
        }
        scope.names[p.name] = Scope::Kind::kRecord;
        scope.record_types[p.name] = p.value_type;
      }
    }
    return scope;
  }

  void CheckChannelElemTypes(const ChannelType& ct, int line) {
    for (const std::string& t : {ct.in_type, ct.out_type}) {
      if (t != "-" && program_.FindType(t) == nullptr) {
        Diag(line, "unknown channel element type '" + t + "'");
      }
    }
  }

  // --------------------------------------------------------------- fun/proc ----
  void CheckFun(const FunDecl& fun) {
    if (!fun.return_type.empty() && fun.return_type != "integer" &&
        fun.return_type != "string" && program_.FindType(fun.return_type) == nullptr) {
      Diag(fun.line, "unknown return type '" + fun.return_type + "'");
    }
    Scope scope = ScopeFromParams(fun.params);
    CheckBlock(fun.body, scope);
  }

  void CheckProc(const ProcDecl& proc) {
    for (const Param& p : proc.params) {
      if (!p.channel.has_value()) {
        Diag(p.line, "process parameters must be channels");
      }
    }
    Scope scope = ScopeFromParams(proc.params);
    CheckBlock(proc.body, scope);
  }

  void CheckBlock(const std::vector<StmtPtr>& block, Scope& scope) {
    for (const StmtPtr& stmt : block) {
      CheckStmt(*stmt, scope);
    }
  }

  void CheckStmt(const Stmt& stmt, Scope& scope) {
    switch (stmt.kind) {
      case StmtKind::kGlobal:
        scope.names[stmt.name] = Scope::Kind::kDict;
        return;
      case StmtKind::kLet:
        CheckExpr(*stmt.value, scope);
        scope.names[stmt.name] = Scope::Kind::kLocal;
        return;
      case StmtKind::kAssign:
        // Only dictionary stores are assignable.
        if (stmt.target->kind != ExprKind::kIndex) {
          Diag(stmt.line, "assignment target must be a dictionary entry");
        } else {
          CheckExpr(*stmt.target->base, scope);
          CheckExpr(*stmt.target->index, scope);
          if (stmt.target->base->kind == ExprKind::kVar) {
            const auto it = scope.names.find(stmt.target->base->text);
            if (it != scope.names.end() && it->second != Scope::Kind::kDict) {
              Diag(stmt.line, "assignment target '" + stmt.target->base->text +
                                  "' is not a dictionary");
            }
          }
        }
        CheckExpr(*stmt.value, scope);
        return;
      case StmtKind::kSend: {
        CheckExpr(*stmt.value, scope);
        for (size_t i = 0; i < stmt.send_stages.size(); ++i) {
          const Expr& stage = *stmt.send_stages[i];
          if (stage.kind == ExprKind::kCall) {
            CheckCall(stage, scope, /*is_send_stage=*/true);
          } else {
            CheckSendTarget(stage, scope);
          }
        }
        return;
      }
      case StmtKind::kIf:
        CheckExpr(*stmt.cond, scope);
        {
          Scope then_scope = scope;
          CheckBlock(stmt.then_block, then_scope);
          Scope else_scope = scope;
          CheckBlock(stmt.else_block, else_scope);
        }
        return;
      case StmtKind::kExpr:
        CheckExpr(*stmt.value, scope);
        return;
      case StmtKind::kFoldt: {
        const auto it = scope.names.find(stmt.foldt_channels);
        if (it == scope.names.end() || it->second != Scope::Kind::kChannelArray) {
          Diag(stmt.line, "'foldt on' requires a channel-array parameter");
        }
        if (program_.FindFun(stmt.foldt_combine_fun) == nullptr) {
          Diag(stmt.line, "unknown combine function '" + stmt.foldt_combine_fun + "'");
        } else {
          const FunDecl* combine = program_.FindFun(stmt.foldt_combine_fun);
          if (combine->params.size() != 2) {
            Diag(stmt.line, "combine function must take exactly two records");
          }
        }
        CheckSendTarget(*stmt.foldt_target, scope);
        return;
      }
    }
  }

  // A send target must denote a writable channel (possibly indexed array).
  void CheckSendTarget(const Expr& target, Scope& scope) {
    const Expr* base = &target;
    if (target.kind == ExprKind::kIndex) {
      base = target.base.get();
      CheckExpr(*target.index, scope);
    }
    if (base->kind != ExprKind::kVar) {
      Diag(target.line, "send target must be a channel");
      return;
    }
    const auto it = scope.names.find(base->text);
    if (it == scope.names.end()) {
      Diag(target.line, "unknown channel '" + base->text + "'");
      return;
    }
    if (it->second != Scope::Kind::kChannel && it->second != Scope::Kind::kChannelArray &&
        it->second != Scope::Kind::kLocal) {
      Diag(target.line, "'" + base->text + "' is not a channel");
      return;
    }
    const auto ct = scope.channels.find(base->text);
    if (ct != scope.channels.end() && ct->second.out_type == "-") {
      Diag(target.line, "channel '" + base->text + "' is read-only here");
    }
    if (it->second == Scope::Kind::kChannelArray && target.kind != ExprKind::kIndex) {
      // Sending to a whole array is only meaningful as a pipeline source.
      Diag(target.line, "cannot send to a channel array without an index");
    }
  }

  void CheckCall(const Expr& call, Scope& scope, bool is_send_stage = false) {
    for (const ExprPtr& a : call.args) {
      CheckExpr(*a, scope);
    }
    if (IsBuiltin(call.text)) {
      return;
    }
    if (program_.FindType(call.text) != nullptr) {
      return;  // record constructor
    }
    const FunDecl* fun = program_.FindFun(call.text);
    if (fun == nullptr) {
      Diag(call.line, "unknown function '" + call.text + "'");
      return;
    }
    // In a send stage the current pipeline value is appended as the last
    // argument, so explicit args must be one fewer.
    const size_t expected = fun->params.size() - (is_send_stage ? 1 : 0);
    if (call.args.size() != expected) {
      Diag(call.line, "function '" + call.text + "' expects " + std::to_string(expected) +
                          " argument(s), got " + std::to_string(call.args.size()));
    }
  }

  void CheckExpr(const Expr& expr, Scope& scope) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kStringLit:
      case ExprKind::kBoolLit:
      case ExprKind::kNoneLit:
        return;
      case ExprKind::kVar: {
        if (scope.names.count(expr.text) == 0) {
          Diag(expr.line, "unknown identifier '" + expr.text + "'");
        }
        return;
      }
      case ExprKind::kField: {
        CheckExpr(*expr.base, scope);
        // If the base is a record-typed parameter, validate the field name.
        if (expr.base->kind == ExprKind::kVar) {
          const auto rt = scope.record_types.find(expr.base->text);
          if (rt != scope.record_types.end()) {
            const TypeDecl* type = program_.FindType(rt->second);
            if (type != nullptr) {
              bool found = false;
              for (const FieldDecl& f : type->fields) {
                if (!f.name.empty() && f.name == expr.text) {
                  found = true;
                  break;
                }
              }
              if (!found) {
                Diag(expr.line, "type '" + type->name + "' has no accessible field '" +
                                    expr.text + "' (anonymous '_' fields are sealed)");
              }
            }
          }
        }
        return;
      }
      case ExprKind::kIndex:
        CheckExpr(*expr.base, scope);
        CheckExpr(*expr.index, scope);
        return;
      case ExprKind::kCall:
        CheckCall(expr, scope);
        return;
      case ExprKind::kBinary:
        CheckExpr(*expr.base, scope);
        CheckExpr(*expr.index, scope);
        return;
      case ExprKind::kUnary:
        CheckExpr(*expr.base, scope);
        return;
    }
  }

  const Program& program_;
  std::vector<std::string> diags_;
};

}  // namespace

std::vector<std::string> Check(const Program& program) { return Checker(program).Run(); }

Status CheckOk(const Program& program) {
  auto diags = Check(program);
  if (diags.empty()) {
    return OkStatus();
  }
  return InvalidArgument(diags.front());
}

}  // namespace flick::lang
