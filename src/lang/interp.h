// Bounded evaluator for FLICK function bodies.
//
// Guarantees (paper §3.2 / §4.3):
//   * no recursion can execute (sema rejects it; the evaluator additionally
//     enforces a call-depth cap as defence in depth);
//   * every invocation is fuel-limited: each evaluated node consumes one fuel
//     unit, so a handler invocation performs a statically bounded amount of
//     work before returning to the scheduler.
#ifndef FLICK_LANG_INTERP_H_
#define FLICK_LANG_INTERP_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "lang/ast.h"
#include "lang/compile.h"
#include "lang/value.h"
#include "runtime/compute_task.h"
#include "runtime/state_store.h"

namespace flick::lang {

struct CompiledProgram;

class Interp {
 public:
  Interp(const CompiledProgram* program, runtime::StateStore* state, std::string state_prefix)
      : program_(program), state_(state), state_prefix_(std::move(state_prefix)) {}

  // Per-invocation side-channel: emission context + outcome flags.
  struct Effects {
    runtime::EmitContext* emit = nullptr;
    bool blocked = false;        // first send failed before any effect
    bool effects_done = false;   // at least one external effect happened
    uint64_t dropped_sends = 0;  // sends abandoned after prior effects
  };

  using Env = std::map<std::string, Value>;

  // Executes a block; returns the value of the last expression statement.
  Value ExecBlock(const std::vector<StmtPtr>& block, Env& env, Effects& fx);

  Value Eval(const Expr& expr, Env& env, Effects& fx);

  // Calls a user function with positional arguments.
  Value CallFun(const FunDecl& fun, std::vector<Value> args, Effects& fx);

  // Sends `value` to the channel denoted by `target` under `env`.
  // Returns false only when the caller should retry the whole invocation.
  bool Send(const Expr& target, const Value& value, Env& env, Effects& fx);

  // Allocates a temporary record of `type` owned by this Interp. Temps live
  // until ClearTemps().
  Value NewRecord(const std::string& type_name);

  void ClearTemps() { temps_.clear(); }

  void ResetFuel(uint64_t fuel = 1'000'000) { fuel_ = fuel; }
  bool out_of_fuel() const { return fuel_ == 0; }

 private:
  bool Burn() {
    if (fuel_ == 0) {
      return false;
    }
    --fuel_;
    return true;
  }

  Value EvalBinary(const Expr& expr, Env& env, Effects& fx);
  Value EvalCall(const Expr& expr, Env& env, Effects& fx);
  Value EvalField(const Expr& expr, Env& env, Effects& fx);
  Value EvalIndex(const Expr& expr, Env& env, Effects& fx);
  bool EmitValueTo(int output_index, const Value& value, Effects& fx);

  std::string DictName(const std::string& local) const { return state_prefix_ + "." + local; }

  const CompiledProgram* program_;
  runtime::StateStore* state_;
  std::string state_prefix_;
  std::deque<grammar::Message> temps_;
  uint64_t fuel_ = 1'000'000;
  int call_depth_ = 0;
  static constexpr int kMaxCallDepth = 32;
};

}  // namespace flick::lang

#endif  // FLICK_LANG_INTERP_H_
