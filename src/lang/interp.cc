#include "lang/interp.h"

#include "base/byte_order.h"
#include "base/hash.h"
#include "buffer/buffer_pool.h"
#include "grammar/serializer.h"

namespace flick::lang {
namespace {

// Numeric view of a short string (the paper compares `resp.opcode = 0x0c`
// where opcode is declared `string {size=1}`): big-endian interpretation.
bool StringAsUInt(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 8) {
    return false;
  }
  *out = LoadUInt(reinterpret_cast<const uint8_t*>(s.data()), s.size(), ByteOrder::kBig);
  return true;
}

std::string SerializeRecord(const Value& value) {
  static thread_local BufferPool pool(64, 16 * 1024);
  BufferChain chain(&pool);
  grammar::UnitSerializer serializer(value.record->unit());
  // Serialisation mutates length fields; that is the defined semantics.
  const Status status = serializer.Serialize(*value.record, chain);
  FLICK_CHECK(status.ok());
  return chain.ToString();
}

}  // namespace

Value Interp::ExecBlock(const std::vector<StmtPtr>& block, Env& env, Effects& fx) {
  Value last = Value::Unit();
  for (const StmtPtr& stmt : block) {
    if (!Burn() || fx.blocked) {
      return Value::Unit();
    }
    switch (stmt->kind) {
      case StmtKind::kGlobal:
        env[stmt->name] = [&] {
          Value v;
          v.kind = Value::Kind::kDict;
          v.dict = DictName(stmt->name);
          return v;
        }();
        break;
      case StmtKind::kLet:
        env[stmt->name] = Eval(*stmt->value, env, fx);
        break;
      case StmtKind::kAssign: {
        // Only dict stores pass sema: target is base[index].
        const Value dict = Eval(*stmt->target->base, env, fx);
        const Value key = Eval(*stmt->target->index, env, fx);
        const Value value = Eval(*stmt->value, env, fx);
        if (dict.kind == Value::Kind::kDict && key.kind == Value::Kind::kString) {
          std::string stored;
          if (value.kind == Value::Kind::kRecord) {
            stored = SerializeRecord(value);
          } else if (value.kind == Value::Kind::kString) {
            stored = value.s;
          } else if (value.kind == Value::Kind::kInt) {
            stored = std::to_string(value.i);
          }
          // No StateStore bound (e.g. stateless env): dict writes no-op.
          if (state_ != nullptr) {
            state_->Put(dict.dict, key.s, std::move(stored));
          }
          fx.effects_done = true;
        }
        break;
      }
      case StmtKind::kSend: {
        Value current = Eval(*stmt->value, env, fx);
        for (const ExprPtr& stage : stmt->send_stages) {
          if (fx.blocked) {
            return Value::Unit();
          }
          if (stage->kind == ExprKind::kCall && program_->ast.FindFun(stage->text) != nullptr) {
            // Pipeline stage function: explicit args + current value last.
            const FunDecl* fun = program_->ast.FindFun(stage->text);
            std::vector<Value> args;
            for (const ExprPtr& a : stage->args) {
              args.push_back(Eval(*a, env, fx));
            }
            args.push_back(current);
            current = CallFun(*fun, std::move(args), fx);
          } else {
            if (!Send(*stage, current, env, fx)) {
              return Value::Unit();
            }
            current = Value::Unit();
          }
        }
        break;
      }
      case StmtKind::kIf: {
        const Value cond = Eval(*stmt->cond, env, fx);
        Env inner = env;  // block scope
        if (cond.Truthy()) {
          last = ExecBlock(stmt->then_block, inner, fx);
        } else {
          last = ExecBlock(stmt->else_block, inner, fx);
        }
        break;
      }
      case StmtKind::kExpr:
        last = Eval(*stmt->value, env, fx);
        break;
      case StmtKind::kFoldt:
        // foldt is compiled to a MergeTask tree, never interpreted inline.
        break;
    }
  }
  return last;
}

Value Interp::CallFun(const FunDecl& fun, std::vector<Value> args, Effects& fx) {
  if (call_depth_ >= kMaxCallDepth || !Burn()) {
    return Value::Unit();
  }
  ++call_depth_;
  Env env;
  const size_t n = std::min(args.size(), fun.params.size());
  for (size_t i = 0; i < n; ++i) {
    env[fun.params[i].name] = std::move(args[i]);
  }
  Value result = ExecBlock(fun.body, env, fx);
  --call_depth_;
  return result;
}

bool Interp::EmitValueTo(int output_index, const Value& value, Effects& fx) {
  runtime::MsgRef msg = fx.emit->NewMsg();
  if (value.kind == Value::Kind::kRecord) {
    msg->kind = runtime::Msg::Kind::kGrammar;
    msg->gmsg = *value.record;  // deep copy into the outgoing message
  } else if (value.kind == Value::Kind::kString) {
    msg->kind = runtime::Msg::Kind::kBytes;
    msg->bytes = value.s;
  } else if (value.kind == Value::Kind::kInt) {
    msg->kind = runtime::Msg::Kind::kBytes;
    msg->bytes = std::to_string(value.i);
  } else {
    return true;  // nothing to send (unit/None): treat as no-op
  }
  if (!fx.emit->Emit(static_cast<size_t>(output_index), std::move(msg))) {
    if (!fx.effects_done) {
      fx.blocked = true;
      return false;
    }
    ++fx.dropped_sends;
    return true;
  }
  fx.effects_done = true;
  return true;
}

bool Interp::Send(const Expr& target, const Value& value, Env& env, Effects& fx) {
  if (fx.emit == nullptr) {
    return true;
  }
  // Resolve the channel value (possibly indexed array).
  Value chan;
  if (target.kind == ExprKind::kIndex) {
    const Value array = Eval(*target.base, env, fx);
    const Value idx = Eval(*target.index, env, fx);
    if (array.kind != Value::Kind::kChannelArray || idx.kind != Value::Kind::kInt ||
        array.outs.empty()) {
      return true;
    }
    const size_t element =
        static_cast<size_t>(idx.i) % array.outs.size();  // defensive clamp
    chan.kind = Value::Kind::kChannel;
    chan.outs = {array.outs[element]};
  } else {
    chan = Eval(target, env, fx);
  }
  if (chan.kind != Value::Kind::kChannel || chan.outs.empty()) {
    return true;
  }
  return EmitValueTo(chan.outs.front(), value, fx);
}

Value Interp::NewRecord(const std::string& type_name) {
  const grammar::Unit* unit = program_->UnitFor(type_name);
  const TypeDecl* type = program_->ast.FindType(type_name);
  if (unit == nullptr || type == nullptr) {
    return Value::Unit();
  }
  temps_.emplace_back();
  temps_.back().BindUnit(unit);
  return Value::Record(&temps_.back(), type);
}

Value Interp::Eval(const Expr& expr, Env& env, Effects& fx) {
  if (!Burn()) {
    return Value::Unit();
  }
  switch (expr.kind) {
    case ExprKind::kIntLit: return Value::Int(static_cast<int64_t>(expr.int_value));
    case ExprKind::kStringLit: return Value::Str(expr.text);
    case ExprKind::kBoolLit: return Value::Bool(expr.bool_value);
    case ExprKind::kNoneLit: return Value::None();
    case ExprKind::kVar: {
      const auto it = env.find(expr.text);
      return it == env.end() ? Value::Unit() : it->second;
    }
    case ExprKind::kField: return EvalField(expr, env, fx);
    case ExprKind::kIndex: return EvalIndex(expr, env, fx);
    case ExprKind::kCall: return EvalCall(expr, env, fx);
    case ExprKind::kBinary: return EvalBinary(expr, env, fx);
    case ExprKind::kUnary: {
      const Value v = Eval(*expr.base, env, fx);
      if (expr.unary_op == '!') {
        return Value::Bool(!v.Truthy());
      }
      return Value::Int(-v.i);
    }
  }
  return Value::Unit();
}

Value Interp::EvalField(const Expr& expr, Env& env, Effects& fx) {
  const Value base = Eval(*expr.base, env, fx);
  if (base.kind != Value::Kind::kRecord || base.record == nullptr ||
      base.record_type == nullptr) {
    return Value::Unit();
  }
  const grammar::Unit* unit = base.record->unit();
  const int index = unit->FieldIndex(expr.text);
  if (index < 0) {
    return Value::Unit();
  }
  const auto& field = unit->fields()[static_cast<size_t>(index)];
  if (field.kind == grammar::FieldKind::kUInt || field.kind == grammar::FieldKind::kVar) {
    return Value::Int(static_cast<int64_t>(base.record->GetUInt(index)));
  }
  return Value::Str(std::string(base.record->GetBytes(index)));
}

Value Interp::EvalIndex(const Expr& expr, Env& env, Effects& fx) {
  const Value base = Eval(*expr.base, env, fx);
  const Value idx = Eval(*expr.index, env, fx);
  if (base.kind == Value::Kind::kDict) {
    if (idx.kind != Value::Kind::kString) {
      return Value::None();
    }
    // No StateStore bound: every lookup misses.
    auto stored = state_ != nullptr ? state_->Get(base.dict, idx.s) : std::nullopt;
    if (!stored.has_value()) {
      return Value::None();
    }
    return Value::Str(std::move(*stored));
  }
  if (base.kind == Value::Kind::kChannelArray) {
    if (idx.kind != Value::Kind::kInt || base.outs.empty()) {
      return Value::Unit();
    }
    Value chan;
    chan.kind = Value::Kind::kChannel;
    chan.outs = {base.outs[static_cast<size_t>(idx.i) % base.outs.size()]};
    return chan;
  }
  if (base.kind == Value::Kind::kString) {
    if (idx.kind == Value::Kind::kInt && idx.i >= 0 &&
        static_cast<size_t>(idx.i) < base.s.size()) {
      return Value::Int(static_cast<uint8_t>(base.s[static_cast<size_t>(idx.i)]));
    }
  }
  return Value::Unit();
}

Value Interp::EvalCall(const Expr& expr, Env& env, Effects& fx) {
  // Builtins.
  if (expr.text == "hash") {
    if (expr.args.size() != 1) {
      return Value::Int(0);
    }
    const Value v = Eval(*expr.args[0], env, fx);
    if (v.kind == Value::Kind::kString) {
      return Value::Int(static_cast<int64_t>(HashBytes(v.s) & 0x7fffffffffffffffull));
    }
    if (v.kind == Value::Kind::kInt) {
      return Value::Int(static_cast<int64_t>(MixU64(static_cast<uint64_t>(v.i)) >> 1));
    }
    return Value::Int(0);
  }
  if (expr.text == "len") {
    if (expr.args.size() != 1) {
      return Value::Int(0);
    }
    const Value v = Eval(*expr.args[0], env, fx);
    if (v.kind == Value::Kind::kChannelArray) {
      return Value::Int(static_cast<int64_t>(v.outs.size()));
    }
    if (v.kind == Value::Kind::kString) {
      return Value::Int(static_cast<int64_t>(v.s.size()));
    }
    return Value::Int(0);
  }
  if (expr.text == "all_ready") {
    // Readiness is handled by the runtime's channel wakeups; inside the
    // evaluator the answer is always "yes" (messages only arrive when ready).
    return Value::Bool(true);
  }
  if (expr.text == "add") {
    // add(a, b): decimal string / integer addition (wordcount combine).
    if (expr.args.size() != 2) {
      return Value::Int(0);
    }
    const Value a = Eval(*expr.args[0], env, fx);
    const Value b = Eval(*expr.args[1], env, fx);
    auto as_int = [](const Value& v) -> int64_t {
      if (v.kind == Value::Kind::kInt) {
        return v.i;
      }
      if (v.kind == Value::Kind::kString) {
        int64_t x = 0;
        for (char c : v.s) {
          if (c < '0' || c > '9') {
            break;
          }
          x = x * 10 + (c - '0');
        }
        return x;
      }
      return 0;
    };
    return Value::Str(std::to_string(as_int(a) + as_int(b)));
  }
  if (expr.text == "int") {
    const Value v = expr.args.empty() ? Value::Unit() : Eval(*expr.args[0], env, fx);
    uint64_t n = 0;
    if (v.kind == Value::Kind::kString && StringAsUInt(v.s, &n)) {
      return Value::Int(static_cast<int64_t>(n));
    }
    return Value::Int(v.i);
  }
  if (expr.text == "str") {
    const Value v = expr.args.empty() ? Value::Unit() : Eval(*expr.args[0], env, fx);
    if (v.kind == Value::Kind::kInt) {
      return Value::Str(std::to_string(v.i));
    }
    return v;
  }

  // Record constructor: positional values for accessible (named bytes/uint)
  // fields in declaration order.
  if (program_->ast.FindType(expr.text) != nullptr) {
    Value rec = NewRecord(expr.text);
    if (rec.kind != Value::Kind::kRecord) {
      return Value::Unit();
    }
    const grammar::Unit* unit = rec.record->unit();
    size_t arg_i = 0;
    for (size_t f = 0; f < unit->fields().size() && arg_i < expr.args.size(); ++f) {
      const auto& field = unit->fields()[f];
      if (field.name.empty() || field.name.starts_with("__")) {
        continue;  // anonymous / synthesized length fields
      }
      const Value v = Eval(*expr.args[arg_i], env, fx);
      ++arg_i;
      if (field.kind == grammar::FieldKind::kUInt) {
        rec.record->SetUInt(static_cast<int>(f), static_cast<uint64_t>(v.i));
      } else if (field.kind == grammar::FieldKind::kBytes) {
        rec.record->SetBytes(static_cast<int>(f),
                             v.kind == Value::Kind::kString ? v.s : std::to_string(v.i));
      }
    }
    return rec;
  }

  // User function call.
  const FunDecl* fun = program_->ast.FindFun(expr.text);
  if (fun == nullptr) {
    return Value::Unit();
  }
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& a : expr.args) {
    args.push_back(Eval(*a, env, fx));
  }
  return CallFun(*fun, std::move(args), fx);
}

Value Interp::EvalBinary(const Expr& expr, Env& env, Effects& fx) {
  // Short-circuit logicals first.
  if (expr.op == BinOp::kAnd) {
    const Value l = Eval(*expr.base, env, fx);
    if (!l.Truthy()) {
      return Value::Bool(false);
    }
    return Value::Bool(Eval(*expr.index, env, fx).Truthy());
  }
  if (expr.op == BinOp::kOr) {
    const Value l = Eval(*expr.base, env, fx);
    if (l.Truthy()) {
      return Value::Bool(true);
    }
    return Value::Bool(Eval(*expr.index, env, fx).Truthy());
  }

  const Value l = Eval(*expr.base, env, fx);
  const Value r = Eval(*expr.index, env, fx);

  // Mixed string/int comparison: short strings compare numerically
  // (big-endian), mirroring `opcode = 0x0c` in Listing 1.
  auto numeric = [](const Value& v, int64_t* out) -> bool {
    if (v.kind == Value::Kind::kInt) {
      *out = v.i;
      return true;
    }
    if (v.kind == Value::Kind::kString) {
      uint64_t n = 0;
      if (StringAsUInt(v.s, &n)) {
        *out = static_cast<int64_t>(n);
        return true;
      }
    }
    return false;
  };

  auto compare = [&]() -> int {
    if (l.kind == Value::Kind::kString && r.kind == Value::Kind::kString) {
      return l.s.compare(r.s);
    }
    int64_t a = 0, b = 0;
    if (numeric(l, &a) && numeric(r, &b)) {
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    // None comparisons: None equals only None.
    if (l.kind == Value::Kind::kNone && r.kind == Value::Kind::kNone) {
      return 0;
    }
    return -2;  // incomparable
  };

  switch (expr.op) {
    case BinOp::kEq: {
      if (l.kind == Value::Kind::kNone || r.kind == Value::Kind::kNone) {
        return Value::Bool(l.kind == r.kind);
      }
      return Value::Bool(compare() == 0);
    }
    case BinOp::kNeq: {
      if (l.kind == Value::Kind::kNone || r.kind == Value::Kind::kNone) {
        return Value::Bool(l.kind != r.kind);
      }
      const int c = compare();
      return Value::Bool(c != 0);
    }
    case BinOp::kLt: return Value::Bool(compare() == -1);
    case BinOp::kGt: return Value::Bool(compare() == 1);
    case BinOp::kLe: {
      const int c = compare();
      return Value::Bool(c == 0 || c == -1);
    }
    case BinOp::kGe: {
      const int c = compare();
      return Value::Bool(c == 0 || c == 1);
    }
    case BinOp::kAdd:
      if (l.kind == Value::Kind::kString && r.kind == Value::Kind::kString) {
        return Value::Str(l.s + r.s);
      }
      return Value::Int(l.i + r.i);
    case BinOp::kSub: return Value::Int(l.i - r.i);
    case BinOp::kMul: return Value::Int(l.i * r.i);
    case BinOp::kDiv: return Value::Int(r.i == 0 ? 0 : l.i / r.i);
    case BinOp::kMod: return Value::Int(r.i == 0 ? 0 : l.i % r.i);
    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // handled above
  }
  return Value::Unit();
}

}  // namespace flick::lang
