// Indentation-aware lexer for the FLICK language.
#ifndef FLICK_LANG_LEXER_H_
#define FLICK_LANG_LEXER_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "lang/token.h"

namespace flick::lang {

// Tokenises `source`. On success the stream ends with matching DEDENTs and a
// single EOF token. Comments run from '#' to end of line.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace flick::lang

#endif  // FLICK_LANG_LEXER_H_
