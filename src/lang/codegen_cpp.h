// C++ code generation (extension).
//
// The paper's compiler emits C++ that links against the platform runtime
// (§5: "The FLICK compiler translates an input FLICK program to C++"). This
// pass emits a COMPILABLE translation unit: grammar-unit builders for every
// type, native ComputeTask handlers rendered from the lowering pass's rule
// plans (lang/lower.h) with field indices baked as constants, and
// GraphBuilder wiring for the canonical client + backend-array proc shape.
// Rules the lowering pass cannot prove route through an optional fallback
// handler the caller supplies (typically the interpreter); the checked
// source-level fun bodies ride along in an `#if 0` reference block.
#ifndef FLICK_LANG_CODEGEN_CPP_H_
#define FLICK_LANG_CODEGEN_CPP_H_

#include <string>

#include "lang/compile.h"

namespace flick::lang {

// Renders the whole program as one self-contained C++ translation unit in
// namespace flick::flickgen. Compiles against the project headers with no
// further editing (the ctest codegen compile smoke asserts exactly that).
std::string GenerateCpp(const CompiledProgram& program);

}  // namespace flick::lang

#endif  // FLICK_LANG_CODEGEN_CPP_H_
