// C++ code generation (extension).
//
// The paper's compiler emits C++ that links against the platform runtime
// (§5: "The FLICK compiler translates an input FLICK program to C++"). The
// primary execution path in this repo is the bounded evaluator; this pass
// emits the equivalent C++ a generated service would contain — useful for
// inspection, documentation, and as a migration path to ahead-of-time
// compilation.
#ifndef FLICK_LANG_CODEGEN_CPP_H_
#define FLICK_LANG_CODEGEN_CPP_H_

#include <string>

#include "lang/compile.h"

namespace flick::lang {

// Renders the whole program: unit-builder code for every type and a
// ComputeTask handler skeleton for every proc, with function bodies lowered
// to C++ statements.
std::string GenerateCpp(const CompiledProgram& program);

}  // namespace flick::lang

#endif  // FLICK_LANG_CODEGEN_CPP_H_
