#include "proto/http.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>

namespace flick::proto {
namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Strict unsigned decimal: every character a digit, no sign/whitespace, no
// overflow. atoi/strtoull silently accept garbage ("abc" -> 0-length body)
// or wrap huge values into a bogus size_t the framing loop then waits on —
// on a pooled wire that stalls every lease sharing the connection, so
// malformed numeric fields must be parse ERRORS, not best-effort zeros.
bool ParseStrictUint(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || end != s.data() + s.size()) {
    return false;  // non-digit, trailing junk, or overflow
  }
  *out = value;
  return true;
}

}  // namespace

void HttpMessage::Reset() {
  method.clear();
  target.clear();
  status_code = 0;
  reason.clear();
  version = "HTTP/1.1";
  headers.clear();
  body.clear();
  content_length = 0;
  keep_alive = true;
  wire_size = 0;
}

std::string_view HttpMessage::Header(std::string_view name) const {
  for (const HttpHeader& h : headers) {
    if (EqualsIgnoreCase(h.name, name)) {
      return h.value;
    }
  }
  return {};
}

void HttpMessage::SetHeader(std::string_view name, std::string_view value) {
  for (HttpHeader& h : headers) {
    if (EqualsIgnoreCase(h.name, name)) {
      h.value.assign(value);
      return;
    }
  }
  headers.push_back(HttpHeader{std::string(name), std::string(value)});
}

void HttpParser::Reset() {
  state_ = State::kStartLine;
  line_.clear();
  line_complete_ = false;
  header_bytes_ = 0;
  body_received_ = 0;
  wire_bytes_ = 0;
  fresh_ = true;
}

bool HttpParser::TakeLine(BufferChain& input) {
  while (!line_complete_) {
    std::string_view front = input.FrontView();
    if (front.empty()) {
      return false;
    }
    const size_t nl = front.find('\n');
    const size_t take = (nl == std::string_view::npos) ? front.size() : nl + 1;
    line_.append(front.data(), take);
    input.Consume(take);
    wire_bytes_ += take;
    header_bytes_ += take;
    if (nl != std::string_view::npos) {
      line_complete_ = true;
    }
    if (header_bytes_ > max_header_bytes_) {
      return true;  // caller will notice the oversize and error out
    }
  }
  return true;
}

ParseStatus HttpParser::ParseStartLine(HttpMessage* out) {
  std::string_view line(line_);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    // Tolerate leading blank lines between pipelined messages.
    line_.clear();
    line_complete_ = false;
    return ParseStatus::kNeedMore;  // re-enter; not an error
  }
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return ParseStatus::kError;
  }
  if (mode_ == Mode::kRequest) {
    out->is_request = true;
    out->method.assign(line.substr(0, sp1));
    out->target.assign(line.substr(sp1 + 1, sp2 - sp1 - 1));
    out->version.assign(line.substr(sp2 + 1));
  } else {
    out->is_request = false;
    out->version.assign(line.substr(0, sp1));
    // RFC 7230: the status code is exactly three digits. Reject anything
    // else instead of atoi's garbage-to-0 coercion.
    const std::string_view code = line.substr(sp1 + 1, sp2 - sp1 - 1);
    uint64_t status = 0;
    if (code.size() != 3 || !ParseStrictUint(code, &status) || status < 100) {
      return ParseStatus::kError;
    }
    out->status_code = static_cast<int>(status);
    out->reason.assign(line.substr(sp2 + 1));
  }
  out->keep_alive = out->version != "HTTP/1.0";
  line_.clear();
  line_complete_ = false;
  state_ = State::kHeaders;
  return ParseStatus::kNeedMore;  // sentinel meaning "continue"
}

ParseStatus HttpParser::ParseHeaderLine(HttpMessage* out) {
  std::string_view line(line_);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    // End of headers.
    line_.clear();
    line_complete_ = false;
    const std::string_view cl = out->Header("Content-Length");
    if (!cl.empty()) {
      // Compared as uint64 BEFORE the size_t narrowing so an overflowing
      // value can never wrap into a small bogus body length.
      uint64_t length = 0;
      if (!ParseStrictUint(cl, &length) || length > max_body_bytes_) {
        return ParseStatus::kError;
      }
      out->content_length = static_cast<size_t>(length);
    }
    const std::string_view conn = out->Header("Connection");
    if (EqualsIgnoreCase(conn, "close")) {
      out->keep_alive = false;
    } else if (EqualsIgnoreCase(conn, "keep-alive")) {
      out->keep_alive = true;
    }
    out->body.clear();
    out->body.reserve(out->content_length);
    body_received_ = 0;
    state_ = State::kBody;
    return ParseStatus::kNeedMore;
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return ParseStatus::kError;
  }
  out->headers.push_back(HttpHeader{std::string(Trim(line.substr(0, colon))),
                                    std::string(Trim(line.substr(colon + 1)))});
  line_.clear();
  line_complete_ = false;
  return ParseStatus::kNeedMore;
}

ParseStatus HttpParser::Feed(BufferChain& input, HttpMessage* out) {
  if (fresh_) {
    out->Reset();
    fresh_ = false;
  }
  while (true) {
    switch (state_) {
      case State::kStartLine:
      case State::kHeaders: {
        if (!TakeLine(input)) {
          return ParseStatus::kNeedMore;
        }
        if (header_bytes_ > max_header_bytes_) {
          Reset();
          return ParseStatus::kError;
        }
        const ParseStatus s = (state_ == State::kStartLine) ? ParseStartLine(out)
                                                            : ParseHeaderLine(out);
        if (s == ParseStatus::kError) {
          Reset();
          return ParseStatus::kError;
        }
        break;  // continue the loop
      }
      case State::kBody: {
        while (body_received_ < out->content_length) {
          std::string_view front = input.FrontView();
          if (front.empty()) {
            return ParseStatus::kNeedMore;
          }
          const size_t want = out->content_length - body_received_;
          const size_t take = front.size() < want ? front.size() : want;
          out->body.append(front.data(), take);
          input.Consume(take);
          body_received_ += take;
          wire_bytes_ += take;
        }
        out->wire_size = wire_bytes_;
        Reset();
        return ParseStatus::kDone;
      }
    }
  }
}

namespace {

void SerializeCommon(const HttpMessage& msg, std::string* out) {
  bool wrote_content_length = false;
  for (const HttpHeader& h : msg.headers) {
    if (EqualsIgnoreCase(h.name, "Content-Length")) {
      // Rewrite to the actual body size (grammar write-back semantics).
      out->append("Content-Length: ").append(std::to_string(msg.body.size())).append("\r\n");
      wrote_content_length = true;
      continue;
    }
    out->append(h.name).append(": ").append(h.value).append("\r\n");
  }
  if (!wrote_content_length && (!msg.body.empty() || !msg.is_request)) {
    out->append("Content-Length: ").append(std::to_string(msg.body.size())).append("\r\n");
  }
  out->append("\r\n");
  out->append(msg.body);
}

}  // namespace

void SerializeRequest(const HttpMessage& msg, std::string* out) {
  out->append(msg.method).append(" ").append(msg.target).append(" ").append(msg.version);
  out->append("\r\n");
  SerializeCommon(msg, out);
}

void SerializeResponse(const HttpMessage& msg, std::string* out) {
  out->append(msg.version).append(" ").append(std::to_string(msg.status_code));
  out->append(" ").append(msg.reason.empty() ? "OK" : msg.reason).append("\r\n");
  SerializeCommon(msg, out);
}

HttpMessage MakeRequest(std::string_view method, std::string_view target,
                        std::string_view body, bool keep_alive) {
  HttpMessage msg;
  msg.is_request = true;
  msg.method.assign(method);
  msg.target.assign(target);
  msg.body.assign(body);
  msg.keep_alive = keep_alive;
  if (!keep_alive) {
    msg.SetHeader("Connection", "close");
  }
  return msg;
}

HttpMessage MakeResponse(int status, std::string_view body, bool keep_alive) {
  HttpMessage msg;
  msg.is_request = false;
  msg.status_code = status;
  msg.reason = status == 200 ? "OK" : "Error";
  msg.body.assign(body);
  msg.keep_alive = keep_alive;
  if (!keep_alive) {
    msg.SetHeader("Connection", "close");
  }
  return msg;
}

}  // namespace flick::proto
