// Memcached binary protocol grammar (paper Listing 2) and typed wrappers.
//
// The unit mirrors the paper's grammar: 24-byte fixed header, a computed
// value_len var field with a serialize write-back into total_len, and
// dependent-length extras/key/value fields.
#ifndef FLICK_PROTO_MEMCACHED_H_
#define FLICK_PROTO_MEMCACHED_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "grammar/message.h"
#include "grammar/parser.h"
#include "grammar/serializer.h"
#include "grammar/unit.h"

namespace flick::proto {

// Binary protocol opcodes used by the use cases.
inline constexpr uint8_t kMemcachedGet = 0x00;
inline constexpr uint8_t kMemcachedSet = 0x01;
inline constexpr uint8_t kMemcachedGetK = 0x0c;  // GETK: reply echoes the key

inline constexpr uint8_t kMemcachedMagicRequest = 0x80;
inline constexpr uint8_t kMemcachedMagicResponse = 0x81;

inline constexpr uint16_t kMemcachedStatusOk = 0x0000;
inline constexpr uint16_t kMemcachedStatusKeyNotFound = 0x0001;
// Standard binary-protocol "internal error": the proxy answers this when a
// backend leg fails a request (deadline, open circuit, lost wire).
inline constexpr uint16_t kMemcachedStatusInternalError = 0x0084;

inline constexpr size_t kMemcachedHeaderSize = 24;

// The shared `cmd` unit (requests and replies share the format, §4.1).
// Field order matches Listing 2.
const grammar::Unit& MemcachedUnit();

// Projected variant materialising only opcode/key routing needs (§4.2:
// generated parsers skip fields the program never accesses). value bytes are
// framed but not copied.
const grammar::Unit& MemcachedRoutingUnit();

// Typed accessor over a parsed `cmd` message.
class MemcachedCommand {
 public:
  explicit MemcachedCommand(grammar::Message* msg) : msg_(msg) {}

  uint8_t magic() const { return static_cast<uint8_t>(msg_->GetUInt(kMagic)); }
  uint8_t opcode() const { return static_cast<uint8_t>(msg_->GetUInt(kOpcode)); }
  uint16_t status() const { return static_cast<uint16_t>(msg_->GetUInt(kStatus)); }
  uint32_t opaque() const { return static_cast<uint32_t>(msg_->GetUInt(kOpaque)); }
  uint64_t cas() const { return msg_->GetUInt(kCas); }
  std::string_view key() const { return msg_->GetBytes(kKey); }
  std::string_view value() const { return msg_->GetBytes(kValue); }
  std::string_view extras() const { return msg_->GetBytes(kExtras); }
  bool is_request() const { return magic() == kMemcachedMagicRequest; }
  bool is_response() const { return magic() == kMemcachedMagicResponse; }

  grammar::Message* message() { return msg_; }

  // Field indices in MemcachedUnit(), fixed by construction.
  static constexpr int kMagic = 0;
  static constexpr int kOpcode = 1;
  static constexpr int kKeyLen = 2;
  static constexpr int kExtrasLen = 3;
  static constexpr int kDataType = 4;
  static constexpr int kStatus = 5;
  static constexpr int kTotalLen = 6;
  static constexpr int kOpaque = 7;
  static constexpr int kCas = 8;
  static constexpr int kValueLen = 9;
  static constexpr int kExtras = 10;
  static constexpr int kKey = 11;
  static constexpr int kValue = 12;

 private:
  grammar::Message* msg_;
};

// Builders (fill `msg` in place; serialisation fixes up all length fields).
void BuildRequest(grammar::Message* msg, uint8_t opcode, std::string_view key,
                  std::string_view value = {}, uint32_t opaque = 0);
void BuildResponse(grammar::Message* msg, uint8_t opcode, uint16_t status,
                   std::string_view key, std::string_view value, uint32_t opaque = 0);

// Convenience: serialize a message to a string (tests, load generators).
std::string ToWire(grammar::Message& msg);

}  // namespace flick::proto

#endif  // FLICK_PROTO_MEMCACHED_H_
