#include "proto/hadoop.h"

#include "base/byte_order.h"

namespace flick::proto {
namespace {

using grammar::LenExpr;
using grammar::Unit;
using grammar::UnitBuilder;

Unit BuildHadoopKvUnit() {
  auto unit = UnitBuilder("kv")
                  .ByteOrder(ByteOrder::kBig)
                  .UInt("key_len", 2)
                  .Bytes("key", LenExpr::Field("key_len"))
                  .UInt("value_len", 4)
                  .Bytes("value", LenExpr::Field("value_len"))
                  .Build();
  FLICK_CHECK(unit.ok());
  return std::move(unit).value();
}

}  // namespace

const Unit& HadoopKvUnit() {
  static const Unit* unit = new Unit(BuildHadoopKvUnit());
  return *unit;
}

void BuildKv(grammar::Message* msg, std::string_view key, std::string_view value) {
  msg->BindUnit(&HadoopKvUnit());
  msg->SetBytes(HadoopKv::kKey, key);
  msg->SetBytes(HadoopKv::kValue, value);
}

void EncodeKv(std::string_view key, std::string_view value, std::string* out) {
  uint8_t raw[4];
  StoreUInt(raw, 2, ByteOrder::kBig, key.size());
  out->append(reinterpret_cast<char*>(raw), 2);
  out->append(key);
  StoreUInt(raw, 4, ByteOrder::kBig, value.size());
  out->append(reinterpret_cast<char*>(raw), 4);
  out->append(value);
}

std::string CombineCounts(std::string_view v1, std::string_view v2) {
  uint64_t a = 0, b = 0;
  for (char c : v1) {
    a = a * 10 + static_cast<uint64_t>(c - '0');
  }
  for (char c : v2) {
    b = b * 10 + static_cast<uint64_t>(c - '0');
  }
  return std::to_string(a + b);
}

}  // namespace flick::proto
