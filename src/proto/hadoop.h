// Hadoop intermediate key/value wire format (§2.1/§6.1: the shuffle-phase
// stream a combiner consumes). Framed as length-prefixed pairs:
//
//   kv := key_len : uint16  | key : bytes &length=key_len
//       | value_len : uint32 | value : bytes &length=value_len
//
// For the wordcount workload, values are decimal counts; Combine() adds them
// (the paper's `combine` function in Listing 3).
#ifndef FLICK_PROTO_HADOOP_H_
#define FLICK_PROTO_HADOOP_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "grammar/message.h"
#include "grammar/parser.h"
#include "grammar/unit.h"

namespace flick::proto {

const grammar::Unit& HadoopKvUnit();

class HadoopKv {
 public:
  explicit HadoopKv(grammar::Message* msg) : msg_(msg) {}

  std::string_view key() const { return msg_->GetBytes(kKey); }
  std::string_view value() const { return msg_->GetBytes(kValue); }

  static constexpr int kKeyLen = 0;
  static constexpr int kKey = 1;
  static constexpr int kValueLen = 2;
  static constexpr int kValue = 3;

 private:
  grammar::Message* msg_;
};

void BuildKv(grammar::Message* msg, std::string_view key, std::string_view value);

// Appends the wire form of (key, value) to `out`.
void EncodeKv(std::string_view key, std::string_view value, std::string* out);

// Wordcount combine: decimal-add two values (Listing 3's `combine`).
std::string CombineCounts(std::string_view v1, std::string_view v2);

}  // namespace flick::proto

#endif  // FLICK_PROTO_HADOOP_H_
