#include "proto/memcached.h"

#include "buffer/buffer_pool.h"

namespace flick::proto {
namespace {

using grammar::LenExpr;
using grammar::Unit;
using grammar::UnitBuilder;

Unit BuildMemcachedUnit() {
  // Listing 2, field for field. value_len is computed on parse as
  // total_len - (extras_len + key_len); on serialise it writes back
  // total_len = key_len + extras_len + $$ (with $$ = len(value)).
  auto unit =
      UnitBuilder("cmd")
          .ByteOrder(ByteOrder::kBig)
          .UInt("magic_code", 1)
          .UInt("opcode", 1)
          .UInt("key_len", 2)
          .UInt("extras_len", 1)
          .UInt("data_type", 1)  // anonymous in the paper; named for tooling
          .UInt("status_or_v_bucket", 2)
          .UInt("total_len", 4)
          .UInt("opaque", 4)
          .UInt("cas", 8)
          .Var("value_len", LenExpr::Field("total_len") -
                                (LenExpr::Field("extras_len") + LenExpr::Field("key_len")))
          .SerializeWriteback("total_len",
                              LenExpr::Field("key_len") + LenExpr::Field("extras_len") +
                                  LenExpr::Dollar(),
                              /*dollar_source=*/"value")
          .Bytes("extras", LenExpr::Field("extras_len"))
          .Bytes("key", LenExpr::Field("key_len"))
          .Bytes("value", LenExpr::Field("value_len"))
          .Build();
  FLICK_CHECK(unit.ok());
  return std::move(unit).value();
}

}  // namespace

const Unit& MemcachedUnit() {
  static const Unit* unit = new Unit(BuildMemcachedUnit());
  return *unit;
}

const Unit& MemcachedRoutingUnit() {
  static const Unit* unit = [] {
    // The router reads opcode + key and forwards whole messages; the value
    // payload itself is never inspected.
    return new Unit(MemcachedUnit().Project({"key"}));
  }();
  return *unit;
}

void BuildRequest(grammar::Message* msg, uint8_t opcode, std::string_view key,
                  std::string_view value, uint32_t opaque) {
  msg->BindUnit(&MemcachedUnit());
  msg->SetUInt(MemcachedCommand::kMagic, kMemcachedMagicRequest);
  msg->SetUInt(MemcachedCommand::kOpcode, opcode);
  msg->SetUInt(MemcachedCommand::kOpaque, opaque);
  msg->SetBytes(MemcachedCommand::kExtras, {});
  msg->SetBytes(MemcachedCommand::kKey, key);
  msg->SetBytes(MemcachedCommand::kValue, value);
}

void BuildResponse(grammar::Message* msg, uint8_t opcode, uint16_t status,
                   std::string_view key, std::string_view value, uint32_t opaque) {
  msg->BindUnit(&MemcachedUnit());
  msg->SetUInt(MemcachedCommand::kMagic, kMemcachedMagicResponse);
  msg->SetUInt(MemcachedCommand::kOpcode, opcode);
  msg->SetUInt(MemcachedCommand::kStatus, status);
  msg->SetUInt(MemcachedCommand::kOpaque, opaque);
  msg->SetBytes(MemcachedCommand::kExtras, {});
  msg->SetBytes(MemcachedCommand::kKey, key);
  msg->SetBytes(MemcachedCommand::kValue, value);
}

std::string ToWire(grammar::Message& msg) {
  static thread_local BufferPool pool(64, 4096);
  BufferChain chain(&pool);
  grammar::UnitSerializer serializer(msg.unit());
  const Status status = serializer.Serialize(msg, chain);
  FLICK_CHECK(status.ok());
  return chain.ToString();
}

}  // namespace flick::proto
