// HTTP/1.x message grammar (§4.2: "the FLICK framework provides reusable
// grammars for common protocols, such as HTTP and Memcached").
//
// This is the incremental parser the FLICK compiler would synthesise for the
// HTTP unit: resumable across arbitrary fragmentation, allocation-light
// (message objects are reused by input tasks), with Content-Length framed
// bodies. Chunked transfer encoding is not implemented (the paper's workloads
// use fixed-size payloads).
#ifndef FLICK_PROTO_HTTP_H_
#define FLICK_PROTO_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/buffer_chain.h"
#include "grammar/parser.h"  // for ParseStatus

namespace flick::proto {

using grammar::ParseStatus;

struct HttpHeader {
  std::string name;
  std::string value;
};

struct HttpMessage {
  bool is_request = true;

  // Request line.
  std::string method;
  std::string target;

  // Status line.
  int status_code = 0;
  std::string reason;

  std::string version = "HTTP/1.1";
  std::vector<HttpHeader> headers;
  std::string body;

  size_t content_length = 0;
  bool keep_alive = true;
  size_t wire_size = 0;

  void Reset();
  // Case-insensitive header lookup; empty view when absent.
  std::string_view Header(std::string_view name) const;
  void SetHeader(std::string_view name, std::string_view value);
};

class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode) : mode_(mode) {}

  // Same contract as grammar::UnitParser::Feed.
  ParseStatus Feed(BufferChain& input, HttpMessage* out);
  void Reset();

  bool mid_message() const { return state_ != State::kStartLine || !line_.empty(); }

  void set_max_header_bytes(size_t n) { max_header_bytes_ = n; }
  void set_max_body_bytes(size_t n) { max_body_bytes_ = n; }

 private:
  enum class State { kStartLine, kHeaders, kBody };

  // Pulls one CRLF/LF-terminated line into line_; false if input ran dry.
  bool TakeLine(BufferChain& input);
  ParseStatus ParseStartLine(HttpMessage* out);
  ParseStatus ParseHeaderLine(HttpMessage* out);

  Mode mode_;
  State state_ = State::kStartLine;
  std::string line_;
  bool line_complete_ = false;
  size_t header_bytes_ = 0;
  size_t body_received_ = 0;
  size_t wire_bytes_ = 0;
  bool fresh_ = true;
  size_t max_header_bytes_ = 64 * 1024;
  size_t max_body_bytes_ = 64 * 1024 * 1024;
};

// Serialisation (the output-task side).
void SerializeRequest(const HttpMessage& msg, std::string* out);
void SerializeResponse(const HttpMessage& msg, std::string* out);

// Canned builders used by services, tests and load generators.
HttpMessage MakeRequest(std::string_view method, std::string_view target,
                        std::string_view body = {}, bool keep_alive = true);
HttpMessage MakeResponse(int status, std::string_view body, bool keep_alive = true);

}  // namespace flick::proto

#endif  // FLICK_PROTO_HTTP_H_
