#include "buffer/buffer_pool.h"

namespace flick {

BufferRef& BufferRef::operator=(BufferRef&& other) noexcept {
  if (this != &other) {
    Release();
    buffer_ = other.buffer_;
    other.buffer_ = nullptr;
  }
  return *this;
}

void BufferRef::Release() {
  if (buffer_ != nullptr) {
    buffer_->pool_->Release(buffer_);
    buffer_ = nullptr;
  }
}

BufferPool::BufferPool(size_t count, size_t buffer_capacity, BufferPool* spill)
    : buffer_capacity_(buffer_capacity),
      spill_(spill),
      slab_(new uint8_t[count * buffer_capacity]),
      buffers_(count) {
  FLICK_CHECK(count > 0 && buffer_capacity > 0);
  for (size_t i = 0; i < count; ++i) {
    Buffer& b = buffers_[i];
    b.data_ = slab_.get() + i * buffer_capacity;
    b.capacity_ = buffer_capacity;
    b.pool_ = this;
    free_list_.PushBack(&b);
  }
  stats_.total = count;
}

BufferPool::~BufferPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  // All buffers must have been returned; leaking a BufferRef past the pool is
  // a lifetime bug in the caller.
  FLICK_CHECK(stats_.in_use == 0);
}

BufferRef BufferPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Buffer* b = free_list_.PopFront();
    if (b != nullptr) {
      b->Reset();
      stats_.in_use++;
      stats_.acquire_count++;
      if (stats_.in_use > stats_.high_watermark) {
        stats_.high_watermark = stats_.in_use;
      }
      return BufferRef(b);
    }
    stats_.exhausted_count++;
    if (spill_ != nullptr) {
      stats_.slice_spills++;
    }
  }
  // Slice dry: delegate outside the lock (the spilled buffer's back-pointer
  // routes its release straight to the spill pool, never through this slice).
  return spill_ != nullptr ? spill_->Acquire() : BufferRef();
}

void BufferPool::Release(Buffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  FLICK_DCHECK(buffer->pool_ == this);
  free_list_.PushBack(buffer);
  stats_.in_use--;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flick
