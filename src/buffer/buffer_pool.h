// Pre-allocated buffer pool (paper §5: "All buffers are drawn from a
// pre-allocated pool to avoid dynamic memory allocation").
//
// The pool carves one contiguous slab into fixed-capacity `Buffer` records at
// construction time. Acquire/Release never allocate; exhaustion is reported
// to the caller (kResourceExhausted) instead of growing, which is what gives
// task graphs their bounded memory footprint.
#ifndef FLICK_BUFFER_BUFFER_POOL_H_
#define FLICK_BUFFER_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "base/check.h"
#include "base/intrusive_list.h"

namespace flick {

class BufferPool;

// A fixed-capacity byte buffer with read/write cursors. `data[read, write)`
// is the readable region; `data[write, capacity)` is writable space.
class Buffer {
 public:
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t capacity() const { return capacity_; }

  size_t read_offset() const { return read_; }
  size_t write_offset() const { return write_; }
  size_t readable() const { return write_ - read_; }
  size_t writable() const { return capacity_ - write_; }

  const uint8_t* read_ptr() const { return data_ + read_; }
  uint8_t* write_ptr() { return data_ + write_; }

  void Produce(size_t n) {
    FLICK_DCHECK(n <= writable());
    write_ += n;
  }
  void Consume(size_t n) {
    FLICK_DCHECK(n <= readable());
    read_ += n;
  }
  void Reset() {
    read_ = 0;
    write_ = 0;
  }

 private:
  friend class BufferPool;
  friend class BufferRef;

  uint8_t* data_ = nullptr;
  size_t capacity_ = 0;
  size_t read_ = 0;
  size_t write_ = 0;
  IntrusiveListNode free_node_;
  BufferPool* pool_ = nullptr;
};

// RAII handle; returns the buffer to its pool on destruction. Movable only.
class BufferRef {
 public:
  BufferRef() = default;
  explicit BufferRef(Buffer* buffer) : buffer_(buffer) {}
  BufferRef(BufferRef&& other) noexcept : buffer_(other.buffer_) { other.buffer_ = nullptr; }
  BufferRef& operator=(BufferRef&& other) noexcept;
  BufferRef(const BufferRef&) = delete;
  BufferRef& operator=(const BufferRef&) = delete;
  ~BufferRef() { Release(); }

  Buffer* get() const { return buffer_; }
  Buffer* operator->() const { return buffer_; }
  Buffer& operator*() const { return *buffer_; }
  explicit operator bool() const { return buffer_ != nullptr; }

  void Release();

 private:
  Buffer* buffer_ = nullptr;
};

struct BufferPoolStats {
  size_t total = 0;
  size_t in_use = 0;
  size_t high_watermark = 0;
  uint64_t acquire_count = 0;
  uint64_t exhausted_count = 0;
  // Acquires this pool could not serve locally and delegated to its spill
  // parent (share-nothing shard slices: a spill means the slice is under-
  // sized or a shard is drawing another shard's traffic).
  uint64_t slice_spills = 0;
};

class BufferPool {
 public:
  // `count` buffers of `buffer_capacity` bytes each, allocated up front.
  // `spill`, when set, makes this pool a SLICE of `spill`: Acquire falls back
  // to the spill pool once the local free list is empty (counted in
  // slice_spills) instead of failing. Released buffers always return to the
  // pool that carved them (Buffer keeps a back-pointer), so a spilled
  // acquisition never pollutes the slice's free list. The spill pool must
  // outlive the slice.
  BufferPool(size_t count, size_t buffer_capacity, BufferPool* spill = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  // Returns an empty buffer, or a null ref if the pool is exhausted.
  BufferRef Acquire();

  size_t buffer_capacity() const { return buffer_capacity_; }
  BufferPoolStats stats() const;

  // Spill parent (null for the global pool / non-slices).
  BufferPool* spill() const { return spill_; }

 private:
  friend class BufferRef;
  void Release(Buffer* buffer);

  const size_t buffer_capacity_;
  BufferPool* const spill_;
  std::unique_ptr<uint8_t[]> slab_;
  std::vector<Buffer> buffers_;

  mutable std::mutex mutex_;
  IntrusiveList<Buffer, &Buffer::free_node_> free_list_;
  BufferPoolStats stats_;
};

}  // namespace flick

#endif  // FLICK_BUFFER_BUFFER_POOL_H_
