#include "buffer/buffer_chain.h"

#include <cstring>

#include "base/check.h"

namespace flick {

bool BufferChain::Append(const void* data, size_t size) {
  FLICK_CHECK(pool_ != nullptr);
  const auto* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    if (buffers_.empty() || first_ >= buffers_.size() ||
        buffers_.back()->writable() == 0) {
      BufferRef b = pool_->Acquire();
      if (!b) {
        return false;
      }
      buffers_.push_back(std::move(b));
    }
    Buffer& back = *buffers_.back();
    const size_t n = size < back.writable() ? size : back.writable();
    std::memcpy(back.write_ptr(), p, n);
    back.Produce(n);
    p += n;
    size -= n;
    readable_ += n;
  }
  return true;
}

void BufferChain::AppendBuffer(BufferRef buffer) {
  if (!buffer || buffer->readable() == 0) {
    return;
  }
  readable_ += buffer->readable();
  buffers_.push_back(std::move(buffer));
}

size_t BufferChain::Peek(size_t offset, void* out, size_t size) const {
  auto* dst = static_cast<uint8_t*>(out);
  size_t copied = 0;
  for (size_t i = first_; i < buffers_.size() && copied < size; ++i) {
    const Buffer& b = *buffers_[i];
    size_t avail = b.readable();
    const uint8_t* src = b.read_ptr();
    if (offset >= avail) {
      offset -= avail;
      continue;
    }
    src += offset;
    avail -= offset;
    offset = 0;
    const size_t n = (size - copied) < avail ? (size - copied) : avail;
    std::memcpy(dst + copied, src, n);
    copied += n;
  }
  return copied;
}

void BufferChain::Consume(size_t n) {
  FLICK_CHECK(n <= readable_);
  readable_ -= n;
  while (n > 0) {
    Buffer& b = *buffers_[first_];
    const size_t take = n < b.readable() ? n : b.readable();
    b.Consume(take);
    n -= take;
    if (b.readable() > 0) {
      break;  // n == 0 by the accounting invariant
    }
    const bool is_last = first_ + 1 == buffers_.size();
    if (is_last && b.writable() > 0) {
      break;  // keep the tail buffer as the current write target
    }
    buffers_[first_].Release();
    ++first_;
  }
  Compact();
}

size_t BufferChain::Read(void* out, size_t size) {
  const size_t n = Peek(0, out, size);
  Consume(n);
  return n;
}

void BufferChain::MoveFrom(BufferChain& other) {
  for (size_t i = other.first_; i < other.buffers_.size(); ++i) {
    if (other.buffers_[i]->readable() > 0) {
      readable_ += other.buffers_[i]->readable();
      buffers_.push_back(std::move(other.buffers_[i]));
    }
  }
  other.buffers_.clear();
  other.first_ = 0;
  other.readable_ = 0;
}

std::string_view BufferChain::FrontView() const {
  for (size_t i = first_; i < buffers_.size(); ++i) {
    const Buffer& b = *buffers_[i];
    if (b.readable() > 0) {
      return std::string_view(reinterpret_cast<const char*>(b.read_ptr()), b.readable());
    }
  }
  return {};
}

size_t BufferChain::PeekSlices(IoSlice* out, size_t max_slices) const {
  size_t n = 0;
  for (size_t i = first_; i < buffers_.size() && n < max_slices; ++i) {
    const Buffer& b = *buffers_[i];
    if (b.readable() == 0) {
      continue;
    }
    out[n++] = IoSlice{b.read_ptr(), b.readable()};
  }
  return n;
}

size_t BufferChain::ReserveSlices(MutIoSlice* out, size_t max_buffers) {
  FLICK_CHECK(pool_ != nullptr);
  if (reserve_.size() > max_buffers) {
    reserve_.resize(max_buffers);  // window shrank: excess returns to the pool
  }
  while (reserve_.size() < max_buffers) {
    BufferRef b = pool_->Acquire();
    if (!b) {
      break;  // pool pressure: the fill runs over what we have
    }
    reserve_.push_back(std::move(b));
  }
  for (size_t i = 0; i < reserve_.size(); ++i) {
    out[i] = MutIoSlice{reserve_[i]->write_ptr(), reserve_[i]->writable()};
  }
  return reserve_.size();
}

void BufferChain::CommitFill(size_t bytes) {
  size_t taken = 0;
  while (bytes > 0) {
    FLICK_CHECK(taken < reserve_.size());  // commit may not exceed the reserve
    Buffer& b = *reserve_[taken];
    const size_t n = bytes < b.writable() ? bytes : b.writable();
    b.Produce(n);
    readable_ += n;
    bytes -= n;
    buffers_.push_back(std::move(reserve_[taken]));
    ++taken;
  }
  reserve_.erase(reserve_.begin(), reserve_.begin() + static_cast<long>(taken));
  // Unfilled buffers stay reserved for the next fill: a would-block wakeup
  // costs no pool traffic at all. The excess drains back to the pool through
  // ReserveSlices as the caller's fill window shrinks — release-only, never
  // a release-then-reacquire round-trip.
}

void BufferChain::ReleaseReserve() { reserve_.clear(); }

std::string BufferChain::ToString() const {
  std::string out(readable_, '\0');
  Peek(0, out.data(), out.size());
  return out;
}

void BufferChain::Clear() {
  buffers_.clear();
  reserve_.clear();
  first_ = 0;
  readable_ = 0;
}

void BufferChain::Compact() {
  // Reclaim the vector prefix once it grows past a threshold so the chain's
  // footprint stays bounded by in-flight data, not history.
  if (first_ > 32 && first_ * 2 > buffers_.size()) {
    buffers_.erase(buffers_.begin(), buffers_.begin() + static_cast<long>(first_));
    first_ = 0;
  }
  if (readable_ == 0 && first_ >= buffers_.size()) {
    buffers_.clear();
    first_ = 0;
  }
}

}  // namespace flick
