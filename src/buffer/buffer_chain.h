// A byte stream assembled from pooled buffers. Input tasks append network
// fragments; parsers consume across buffer boundaries without copying except
// when a field straddles a boundary (then a bounded scratch copy is made by
// the reader).
#ifndef FLICK_BUFFER_BUFFER_CHAIN_H_
#define FLICK_BUFFER_BUFFER_CHAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/io_slice.h"
#include "buffer/buffer_pool.h"

namespace flick {

class BufferChain {
 public:
  BufferChain() = default;
  explicit BufferChain(BufferPool* pool) : pool_(pool) {}

  void set_pool(BufferPool* pool) { pool_ = pool; }
  BufferPool* pool() const { return pool_; }

  size_t readable() const { return readable_; }
  bool empty() const { return readable_ == 0; }

  // Appends `data`; draws buffers from the pool as needed. Returns false if
  // the pool is exhausted mid-append (already-appended bytes stay).
  bool Append(const void* data, size_t size);
  bool Append(std::string_view s) { return Append(s.data(), s.size()); }

  // Moves a filled buffer into the chain (zero copy hand-off from IO).
  void AppendBuffer(BufferRef buffer);

  // Copies up to `size` bytes at `offset` past the read position into `out`
  // without consuming. Returns bytes copied.
  size_t Peek(size_t offset, void* out, size_t size) const;

  // Consumes (discards) `n` readable bytes. n <= readable().
  void Consume(size_t n);

  // Copies and consumes up to `size` bytes into `out`; returns bytes read.
  size_t Read(void* out, size_t size);

  // Moves all content of `other` to the end of this chain.
  void MoveFrom(BufferChain& other);

  // Contiguous view of the first readable buffer (may be shorter than
  // readable()); empty when the chain is empty.
  std::string_view FrontView() const;

  // Scatter-gather view: fills `out[0..max_slices)` with the readable
  // segments in stream order, starting at the read position, WITHOUT
  // flattening or copying. Returns the number of slices filled; fewer than
  // max_slices means the whole chain is covered. The views stay valid until
  // the next mutating call (Append/Consume/Clear/...).
  size_t PeekSlices(IoSlice* out, size_t max_slices) const;

  std::string ToString() const;  // copies all readable bytes (tests only)

  void Clear();

 private:
  void Compact();

  BufferPool* pool_ = nullptr;
  std::vector<BufferRef> buffers_;
  size_t first_ = 0;  // index of first buffer with readable bytes
  size_t readable_ = 0;
};

}  // namespace flick

#endif  // FLICK_BUFFER_BUFFER_CHAIN_H_
