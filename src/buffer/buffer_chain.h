// A byte stream assembled from pooled buffers. Input tasks append network
// fragments; parsers consume across buffer boundaries without copying except
// when a field straddles a boundary (then a bounded scratch copy is made by
// the reader).
#ifndef FLICK_BUFFER_BUFFER_CHAIN_H_
#define FLICK_BUFFER_BUFFER_CHAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/io_slice.h"
#include "buffer/buffer_pool.h"

namespace flick {

class BufferChain {
 public:
  BufferChain() = default;
  explicit BufferChain(BufferPool* pool) : pool_(pool) {}

  void set_pool(BufferPool* pool) { pool_ = pool; }
  BufferPool* pool() const { return pool_; }

  size_t readable() const { return readable_; }
  bool empty() const { return readable_ == 0; }

  // Appends `data`; draws buffers from the pool as needed. Returns false if
  // the pool is exhausted mid-append (already-appended bytes stay).
  bool Append(const void* data, size_t size);
  bool Append(std::string_view s) { return Append(s.data(), s.size()); }

  // Moves a filled buffer into the chain (zero copy hand-off from IO).
  void AppendBuffer(BufferRef buffer);

  // Copies up to `size` bytes at `offset` past the read position into `out`
  // without consuming. Returns bytes copied.
  size_t Peek(size_t offset, void* out, size_t size) const;

  // Consumes (discards) `n` readable bytes. n <= readable().
  void Consume(size_t n);

  // Copies and consumes up to `size` bytes into `out`; returns bytes read.
  size_t Read(void* out, size_t size);

  // Moves all content of `other` to the end of this chain.
  void MoveFrom(BufferChain& other);

  // Contiguous view of the first readable buffer (may be shorter than
  // readable()); empty when the chain is empty.
  std::string_view FrontView() const;

  // Scatter-gather view: fills `out[0..max_slices)` with the readable
  // segments in stream order, starting at the read position, WITHOUT
  // flattening or copying. Returns the number of slices filled; fewer than
  // max_slices means the whole chain is covered. The views stay valid until
  // the next mutating call (Append/Consume/Clear/...).
  size_t PeekSlices(IoSlice* out, size_t max_slices) const;

  // --- vectored fill window (the write-side of a scatter read) --------------
  //
  // ReserveSlices + CommitFill bracket one Connection::Readv: reserve hands
  // out writable iovecs over up to `max_buffers` empty pool buffers, the
  // caller fills a prefix of them, and CommitFill appends exactly the
  // produced prefix to the chain. Unfilled buffers persist inside the chain
  // between calls, so a fill that produces nothing — the would-block wakeup
  // — consumes NO pool buffers: the old acquire-then-release-empty
  // round-trip per wakeup is gone. The cache drains back to the pool as the
  // caller's window shrinks (ReserveSlices trims to `max_buffers`), ending
  // at one buffer per idle connection.

  // Ensures up to `max_buffers` empty buffers are reserved (reusing the
  // cached reservation first, acquiring the rest) and exposes their writable
  // space as iovecs in fill order. Returns the number of slices; fewer than
  // `max_buffers` means pool pressure, 0 means nothing could be reserved.
  size_t ReserveSlices(MutIoSlice* out, size_t max_buffers);

  // Appends exactly the first `bytes` of the reserved window to the chain
  // (bytes <= reserved writable space). Buffers the fill never reached stay
  // reserved for the next fill.
  void CommitFill(size_t bytes);

  // Returns every reserved buffer to the pool (also done by Clear). Call
  // when the connection dies so an idle chain pins nothing.
  void ReleaseReserve();

  size_t reserved_buffers() const { return reserve_.size(); }

  std::string ToString() const;  // copies all readable bytes (tests only)

  void Clear();

 private:
  void Compact();

  BufferPool* pool_ = nullptr;
  std::vector<BufferRef> buffers_;
  std::vector<BufferRef> reserve_;  // empty buffers staged for the next fill
  size_t first_ = 0;  // index of first buffer with readable bytes
  size_t readable_ = 0;
};

}  // namespace flick

#endif  // FLICK_BUFFER_BUFFER_CHAIN_H_
