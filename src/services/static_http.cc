#include "services/static_http.h"

#include "services/graph_builder.h"

namespace flick::services {

void StaticHttpService::OnConnection(std::unique_ptr<Connection> conn,
                                     runtime::PlatformEnv& env) {
  GraphBuilder b("static-http", env);
  options_.wire.ApplyTo(b);
  auto client = b.Adopt(std::move(conn));

  auto request = b.Source(
      "http-in", client,
      std::make_unique<runtime::HttpDeserializer>(proto::HttpParser::Mode::kRequest));
  auto respond =
      b.Stage("respond",
              [this](runtime::Msg& msg, size_t, runtime::EmitContext& emit) {
                if (msg.kind == runtime::Msg::Kind::kEof) {
                  runtime::MsgRef eof = emit.NewMsg();
                  eof->kind = runtime::Msg::Kind::kEof;
                  return emit.Emit(0, std::move(eof))
                             ? runtime::HandleResult::kConsumed
                             : runtime::HandleResult::kBlocked;
                }
                runtime::MsgRef resp = emit.NewMsg();
                resp->kind = runtime::Msg::Kind::kHttp;
                resp->http = proto::MakeResponse(200, body_, msg.http.keep_alive);
                if (!emit.Emit(0, std::move(resp))) {
                  return runtime::HandleResult::kBlocked;
                }
                requests_.fetch_add(1, std::memory_order_relaxed);
                return runtime::HandleResult::kConsumed;
              })
          .From(request);
  b.Sink("http-out", client, std::make_unique<runtime::HttpSerializer>())
      .From(respond);

  if (const Status launched = b.Launch(registry_); !launched.ok()) {
    // Launch already closed every leg (client conn included) and returned
    // any pool leases; all that is left is to account for the failure.
    registry_.CountLaunchFailure();
  }
}

}  // namespace flick::services
