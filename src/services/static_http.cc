#include "services/static_http.h"

#include "runtime/compute_task.h"
#include "runtime/io_tasks.h"

namespace flick::services {

void StaticHttpService::OnConnection(std::unique_ptr<Connection> conn,
                                     runtime::PlatformEnv& env) {
  auto graph = std::make_unique<runtime::TaskGraph>("static-http");
  runtime::Channel* req_ch = graph->AddChannel(128);
  runtime::Channel* resp_ch = graph->AddChannel(128);

  Connection* raw = conn.get();
  auto* in = graph->AddTask<runtime::InputTask>(
      "http-in", std::move(conn),
      std::make_unique<runtime::HttpDeserializer>(proto::HttpParser::Mode::kRequest),
      req_ch, env.msgs, env.buffers);

  auto* compute = graph->AddTask<runtime::ComputeTask>(
      "respond",
      [this](runtime::Msg& msg, size_t, runtime::EmitContext& emit) {
        if (msg.kind == runtime::Msg::Kind::kEof) {
          runtime::MsgRef eof = emit.NewMsg();
          eof->kind = runtime::Msg::Kind::kEof;
          return emit.Emit(0, std::move(eof)) ? runtime::HandleResult::kConsumed
                                              : runtime::HandleResult::kBlocked;
        }
        runtime::MsgRef resp = emit.NewMsg();
        resp->kind = runtime::Msg::Kind::kHttp;
        resp->http = proto::MakeResponse(200, body_, msg.http.keep_alive);
        if (!emit.Emit(0, std::move(resp))) {
          return runtime::HandleResult::kBlocked;
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        return runtime::HandleResult::kConsumed;
      },
      env.msgs);
  compute->AddInput(req_ch, env.scheduler);
  compute->AddOutput(resp_ch);

  auto* out = graph->AddTask<runtime::OutputTask>(
      "http-out", std::make_unique<SharedConn>(raw),
      std::make_unique<runtime::HttpSerializer>(), resp_ch, env.buffers);
  resp_ch->BindConsumer(out, env.scheduler);

  env.poller->WatchConnection(raw, in);
  env.scheduler->NotifyRunnable(in);
  registry_.Adopt(std::move(graph), {raw}, env);
}

}  // namespace flick::services
