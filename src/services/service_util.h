// Shared plumbing for FLICK services: per-connection graph construction with
// automatic retirement (the graph-dispatcher role of §5 (ii)).
#ifndef FLICK_SERVICES_SERVICE_UTIL_H_
#define FLICK_SERVICES_SERVICE_UTIL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/platform.h"
#include "runtime/task_graph.h"

namespace flick::services {

// Non-owning connection proxy: lets an OutputTask write to a connection whose
// lifetime is owned by the peer InputTask of the same graph.
class SharedConn : public Connection {
 public:
  explicit SharedConn(Connection* conn) : conn_(conn) {}

  Result<size_t> Read(void* buf, size_t len) override { return conn_->Read(buf, len); }
  Result<size_t> Write(const void* buf, size_t len) override { return conn_->Write(buf, len); }
  void Close() override { conn_->Close(); }
  bool IsOpen() const override { return conn_->IsOpen(); }
  bool ReadReady() const override { return conn_->ReadReady(); }
  uint64_t id() const override { return conn_->id(); }

 private:
  Connection* conn_;
};

// Registry-wide construction/retirement counters, exposed so scaling work
// (sharded dispatchers, pooled backends) can observe graph churn without
// instrumenting every service.
struct RegistryStats {
  uint64_t graphs_adopted = 0;
  uint64_t graphs_unwatched = 0;  // passed retirement stage 1 (unwatch sweep)
  uint64_t graphs_retired = 0;    // passed stage 2 (drained and destroyed)
  uint64_t tasks_adopted = 0;
  uint64_t channels_adopted = 0;
  uint64_t detaches_run = 0;      // on_unwatch hooks executed (pool leases)
};

// Tracks live graphs for a service and reaps them (unwatching their
// connections, quiescing their tasks, destroying the graph) once all IO
// tasks have closed. Thread-safe; reaping runs on the poller thread.
class GraphRegistry {
 public:
  // Registers `graph` and arms a reaper. `conns` are the connections the
  // graph's tasks watch (unwatched at retirement). `on_unwatch`, when set,
  // runs exactly once at retirement stage 1 — GraphBuilder uses it to return
  // pool leases, severing every producer/consumer the graph shares with
  // external tasks.
  //
  // Retirement is staged and NON-BLOCKING (the reaper runs on the poller
  // thread, which must never spin-wait): once all IO tasks have closed, the
  // graph's connections are unwatched and `on_unwatch` runs — after that no
  // external party (poller or backend pool) can notify a graph task; on a
  // later sweep, once every task has gone idle (no pending notifications can
  // exist then — all inputs are closed, drained or detached), the graph is
  // destroyed.
  void Adopt(std::unique_ptr<runtime::TaskGraph> graph,
             std::vector<Connection*> conns, runtime::PlatformEnv& env,
             std::function<void()> on_unwatch = {}) {
    runtime::TaskGraph* raw = graph.get();
    graphs_adopted_.fetch_add(1, std::memory_order_relaxed);
    tasks_adopted_.fetch_add(raw->tasks().size(), std::memory_order_relaxed);
    channels_adopted_.fetch_add(raw->channel_count(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      graphs_.push_back(std::move(graph));
    }
    runtime::IoPoller* poller = env.poller;
    poller->AddReaper(
        [this, raw, poller, conns = std::move(conns),
         on_unwatch = std::move(on_unwatch), unwatched = false]() mutable -> bool {
          if (!raw->AllIoClosed()) {
            return false;
          }
          if (!unwatched) {
            for (Connection* conn : conns) {
              poller->UnwatchConnection(conn);
            }
            if (on_unwatch != nullptr) {
              on_unwatch();
              on_unwatch = nullptr;
              detaches_run_.fetch_add(1, std::memory_order_relaxed);
            }
            unwatched = true;
            graphs_unwatched_.fetch_add(1, std::memory_order_relaxed);
            return false;  // give in-flight notifications a sweep to settle
          }
          for (const auto& task : raw->tasks()) {
            if (task->sched_state.load(std::memory_order_acquire) !=
                runtime::Task::SchedState::kIdle) {
              return false;  // still draining; try next sweep
            }
          }
          {
            std::lock_guard<std::mutex> lock(mutex_);
            std::erase_if(graphs_, [raw](const auto& g) { return g.get() == raw; });
          }
          graphs_retired_.fetch_add(1, std::memory_order_relaxed);
          return true;
        });
  }

  size_t live_graphs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return graphs_.size();
  }

  RegistryStats stats() const {
    RegistryStats s;
    s.graphs_adopted = graphs_adopted_.load(std::memory_order_relaxed);
    s.graphs_unwatched = graphs_unwatched_.load(std::memory_order_relaxed);
    s.graphs_retired = graphs_retired_.load(std::memory_order_relaxed);
    s.tasks_adopted = tasks_adopted_.load(std::memory_order_relaxed);
    s.channels_adopted = channels_adopted_.load(std::memory_order_relaxed);
    s.detaches_run = detaches_run_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<runtime::TaskGraph>> graphs_;
  std::atomic<uint64_t> graphs_adopted_{0};
  std::atomic<uint64_t> graphs_unwatched_{0};
  std::atomic<uint64_t> graphs_retired_{0};
  std::atomic<uint64_t> tasks_adopted_{0};
  std::atomic<uint64_t> channels_adopted_{0};
  std::atomic<uint64_t> detaches_run_{0};
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_SERVICE_UTIL_H_
