// Shared plumbing for FLICK services: per-connection graph construction with
// automatic retirement (the graph-dispatcher role of §5 (ii)).
#ifndef FLICK_SERVICES_SERVICE_UTIL_H_
#define FLICK_SERVICES_SERVICE_UTIL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "base/time_util.h"
#include "runtime/io_tasks.h"
#include "runtime/platform.h"
#include "runtime/task_graph.h"

namespace flick::services {

// Non-owning connection proxy: lets an OutputTask write to a connection whose
// lifetime is owned by the peer InputTask of the same graph.
class SharedConn : public Connection {
 public:
  explicit SharedConn(Connection* conn) : conn_(conn) {}

  Result<size_t> Read(void* buf, size_t len) override { return conn_->Read(buf, len); }
  Result<size_t> Readv(const MutIoSlice* slices, size_t count) override {
    return conn_->Readv(slices, count);  // keep the underlying vectored path
  }
  Result<size_t> Write(const void* buf, size_t len) override { return conn_->Write(buf, len); }
  Result<size_t> Writev(const IoSlice* slices, size_t count) override {
    return conn_->Writev(slices, count);  // keep the underlying vectored path
  }
  void Close() override { conn_->Close(); }
  bool IsOpen() const override { return conn_->IsOpen(); }
  bool ReadReady() const override { return conn_->ReadReady(); }
  uint64_t id() const override { return conn_->id(); }

 private:
  Connection* conn_;
};

// Registry-wide construction/retirement counters, exposed so scaling work
// (sharded dispatchers, pooled backends) can observe graph churn without
// instrumenting every service.
struct RegistryStats {
  uint64_t graphs_adopted = 0;
  uint64_t graphs_unwatched = 0;  // passed retirement stage 1 (unwatch sweep)
  uint64_t graphs_retired = 0;    // passed stage 2 (drained and destroyed)
  uint64_t tasks_adopted = 0;
  uint64_t channels_adopted = 0;
  uint64_t detaches_run = 0;      // on_unwatch hooks executed (pool leases)
  uint64_t detaches_timed_out = 0;  // stage 1 forced past a stuck detach_ready

  // Output-batching counters aggregated over every OutputTask this registry
  // has hosted (live graphs summed at stats() time, retired graphs folded in
  // at destruction): vectored writes issued, high-water-forced flushes, and
  // the high-water of messages coalesced into one flush. With writev batching
  // writev_calls stays well below the message count — the per-PR perf
  // trajectory tracks that ratio.
  uint64_t writev_calls = 0;
  uint64_t flushes_forced = 0;
  uint64_t msgs_per_writev = 0;  // high-water, not a sum

  // Ingest-coalescing counters, aggregated the same way over every InputTask:
  // vectored fills that moved bytes, the high-water of bytes one fill moved,
  // and fills that proved the wire drained (each one a would-block probe the
  // legacy per-buffer read loop would have paid).
  uint64_t readv_calls = 0;
  uint64_t bytes_per_readv = 0;  // high-water, not a sum
  uint64_t fills_short = 0;
};

// Tracks live graphs for a service and reaps them (unwatching their
// connections, quiescing their tasks, destroying the graph) once all IO
// tasks have closed. Thread-safe; reaping runs on the poller thread.
class GraphRegistry {
 public:
  // Upper bound on how long a graph's detach_ready gate may hold retirement
  // stage 1 open. Generous against real drains (which finish in
  // milliseconds) while keeping graph lifetime bounded when the gated
  // dependency is wedged.
  static constexpr uint64_t kDetachReadyTimeoutNs = 30'000'000'000;

  // Registers `graph` and arms a reaper. `conns` are the connections the
  // graph's tasks watch (unwatched at retirement). `on_unwatch`, when set,
  // runs exactly once at retirement stage 1 — GraphBuilder uses it to return
  // pool leases, severing every producer/consumer the graph shares with
  // external tasks. `detach_ready`, when set, DELAYS stage 1 until it returns
  // true — pooled graphs use it (BackendPool::LeaseFinished) so a lease is
  // not returned while requests the graph committed still sit in its
  // channels. It must be cheap and non-blocking; it is polled per sweep.
  // The delay is BOUNDED: after kDetachReadyTimeoutNs of refusals stage 1
  // proceeds anyway (counted in detaches_timed_out) — a pathologically
  // wedged dependency may cost a graph its queued output, never an unbounded
  // graph leak.
  //
  // Retirement is staged and NON-BLOCKING (the reaper runs on the poller
  // thread, which must never spin-wait): once all IO tasks have closed (and
  // `detach_ready` holds), the graph's connections are unwatched and
  // `on_unwatch` runs — after that no external party (poller or backend pool)
  // can notify a graph task; on a later sweep, once every task has gone idle
  // (no pending notifications can exist then — all inputs are closed, drained
  // or detached), the graph is destroyed.
  void Adopt(std::unique_ptr<runtime::TaskGraph> graph,
             std::vector<Connection*> conns, runtime::PlatformEnv& env,
             std::function<void()> on_unwatch = {},
             std::function<bool()> detach_ready = {}) {
    runtime::TaskGraph* raw = graph.get();
    graphs_adopted_.fetch_add(1, std::memory_order_relaxed);
    tasks_adopted_.fetch_add(raw->tasks().size(), std::memory_order_relaxed);
    channels_adopted_.fetch_add(raw->channel_count(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      graphs_.push_back(std::move(graph));
    }
    runtime::IoPoller* poller = env.poller;
    poller->AddReaper(
        [this, raw, poller, conns = std::move(conns),
         on_unwatch = std::move(on_unwatch), detach_ready = std::move(detach_ready),
         unwatched = false, detach_deadline_ns = uint64_t{0}]() mutable -> bool {
          if (!raw->AllIoClosed()) {
            return false;
          }
          if (!unwatched) {
            if (detach_ready != nullptr && !detach_ready()) {
              const uint64_t now = MonotonicNanos();
              if (detach_deadline_ns == 0) {
                detach_deadline_ns = now + kDetachReadyTimeoutNs;
              }
              if (now < detach_deadline_ns) {
                return false;  // stream still draining into the pool
              }
              detaches_timed_out_.fetch_add(1, std::memory_order_relaxed);
            }
            detach_ready = nullptr;
            for (Connection* conn : conns) {
              poller->UnwatchConnection(conn);
            }
            if (on_unwatch != nullptr) {
              on_unwatch();
              on_unwatch = nullptr;
              detaches_run_.fetch_add(1, std::memory_order_relaxed);
            }
            unwatched = true;
            graphs_unwatched_.fetch_add(1, std::memory_order_relaxed);
            return false;  // give in-flight notifications a sweep to settle
          }
          for (const auto& task : raw->tasks()) {
            if (task->sched_state.load(std::memory_order_acquire) !=
                runtime::Task::SchedState::kIdle) {
              return false;  // still draining; try next sweep
            }
          }
          {
            // Fold + erase under one lock: a concurrent stats() must never
            // see the counters both folded in AND still live in graphs_.
            std::lock_guard<std::mutex> lock(mutex_);
            AccumulateBatchStats(*raw);
            std::erase_if(graphs_, [raw](const auto& g) { return g.get() == raw; });
          }
          graphs_retired_.fetch_add(1, std::memory_order_relaxed);
          return true;
        });
  }

  size_t live_graphs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return graphs_.size();
  }

  RegistryStats stats() const {
    RegistryStats s;
    s.graphs_adopted = graphs_adopted_.load(std::memory_order_relaxed);
    s.graphs_unwatched = graphs_unwatched_.load(std::memory_order_relaxed);
    s.graphs_retired = graphs_retired_.load(std::memory_order_relaxed);
    s.tasks_adopted = tasks_adopted_.load(std::memory_order_relaxed);
    s.channels_adopted = channels_adopted_.load(std::memory_order_relaxed);
    s.detaches_run = detaches_run_.load(std::memory_order_relaxed);
    s.detaches_timed_out = detaches_timed_out_.load(std::memory_order_relaxed);
    // Batching counters: accumulators AND live-graph fold-in are read under
    // the same lock the reaper folds+erases under, so a retiring graph is
    // counted by exactly one of the two paths and the aggregate never
    // transiently dips.
    std::lock_guard<std::mutex> lock(mutex_);
    s.writev_calls = writev_calls_.load(std::memory_order_relaxed);
    s.flushes_forced = flushes_forced_.load(std::memory_order_relaxed);
    s.msgs_per_writev = msgs_per_writev_.load(std::memory_order_relaxed);
    s.readv_calls = readv_calls_.load(std::memory_order_relaxed);
    s.bytes_per_readv = bytes_per_readv_.load(std::memory_order_relaxed);
    s.fills_short = fills_short_.load(std::memory_order_relaxed);
    for (const auto& graph : graphs_) {
      for (const runtime::OutputTask* out : graph->output_tasks()) {
        s.writev_calls += out->writev_calls();
        s.flushes_forced += out->flushes_forced();
        if (out->msgs_per_writev() > s.msgs_per_writev) {
          s.msgs_per_writev = out->msgs_per_writev();
        }
      }
      for (const runtime::InputTask* in : graph->input_tasks()) {
        s.readv_calls += in->readv_calls();
        s.fills_short += in->fills_short();
        if (in->bytes_per_readv() > s.bytes_per_readv) {
          s.bytes_per_readv = in->bytes_per_readv();
        }
      }
    }
    return s;
  }

 private:
  // Caller holds mutex_ (folded and erased in one critical section so a
  // concurrent stats() never counts a retiring graph twice).
  void AccumulateBatchStats(const runtime::TaskGraph& graph) {
    for (const runtime::OutputTask* out : graph.output_tasks()) {
      writev_calls_.fetch_add(out->writev_calls(), std::memory_order_relaxed);
      flushes_forced_.fetch_add(out->flushes_forced(), std::memory_order_relaxed);
      runtime::AtomicStoreMax(msgs_per_writev_, out->msgs_per_writev());
    }
    for (const runtime::InputTask* in : graph.input_tasks()) {
      readv_calls_.fetch_add(in->readv_calls(), std::memory_order_relaxed);
      fills_short_.fetch_add(in->fills_short(), std::memory_order_relaxed);
      runtime::AtomicStoreMax(bytes_per_readv_, in->bytes_per_readv());
    }
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<runtime::TaskGraph>> graphs_;
  std::atomic<uint64_t> graphs_adopted_{0};
  std::atomic<uint64_t> graphs_unwatched_{0};
  std::atomic<uint64_t> graphs_retired_{0};
  std::atomic<uint64_t> tasks_adopted_{0};
  std::atomic<uint64_t> channels_adopted_{0};
  std::atomic<uint64_t> detaches_run_{0};
  std::atomic<uint64_t> detaches_timed_out_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> flushes_forced_{0};
  std::atomic<uint64_t> msgs_per_writev_{0};
  std::atomic<uint64_t> readv_calls_{0};
  std::atomic<uint64_t> bytes_per_readv_{0};
  std::atomic<uint64_t> fills_short_{0};
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_SERVICE_UTIL_H_
