// Shared plumbing for FLICK services: per-connection graph construction with
// automatic retirement (the graph-dispatcher role of §5 (ii)).
#ifndef FLICK_SERVICES_SERVICE_UTIL_H_
#define FLICK_SERVICES_SERVICE_UTIL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "base/time_util.h"
#include "runtime/io_tasks.h"
#include "runtime/platform.h"
#include "runtime/task_graph.h"

namespace flick::services {

// Sentinel for service Options lifetime knobs: inherit the platform's
// policy (PlatformConfig{idle_timeout_ns, header_deadline_ns}) instead of
// overriding it per service. 0 explicitly disables the window.
inline constexpr uint64_t kInheritLifetimeNs = UINT64_MAX;

// How a service reaches its backends: through a shared BackendPool lease, or
// through dedicated per-client-graph connections (the paper's original
// kernel-stack shape).
enum class BackendMode { kPooled, kPerClient };

// What the pool does with a request whose wire died or whose response
// deadline expired before an answer arrived.
//
//   kNone        — fail fast: the issuing leg receives a kError reply and the
//                  dispatch stage translates it (502 / memcached error).
//                  Response order per lease is preserved, so this is the
//                  default for protocol paths where clients correlate by
//                  arrival order.
//   kSameBackend — re-issue on a sibling connection of the SAME backend
//                  (key-partitioned protocols must not change backend).
//   kAnyBackend  — re-issue on any healthy (closed-breaker, connected)
//                  backend, preferring a different one than the failed dial.
//
// Retried responses are handed back through the origin connection task (the
// reply channel's bound producer), so a retry may REORDER responses within a
// lease relative to requests that failed outright — only enable retries on
// paths that correlate responses explicitly or serialize their requests.
enum class RetryPolicy : uint8_t { kNone, kSameBackend, kAnyBackend };

struct BackendPoolConfig;  // backend_pool.h
class GraphBuilder;        // graph_builder.h

// The wire-policy knobs every client-facing service shares, in ONE struct.
// Each service embeds this as `Options::wire` instead of hand-copying the
// fields (mode, conns_per_backend, pipelining, batching, sharding, lifetime
// windows) into its own Options — adding a knob here reaches every service
// and its two plumbing sinks at once via the ApplyTo overloads.
struct WireOptions {
  // Backend transport shape. Services without a backend leg ignore it.
  BackendMode mode = BackendMode::kPooled;

  // Multiplexed pool connections per backend per stripe (see
  // BackendPoolConfig::conns_per_backend).
  size_t conns_per_backend = 2;

  // In-flight requests allowed per pooled connection (see
  // BackendPoolConfig::max_pipeline_depth).
  size_t max_pipeline_depth = 256;

  // Forced-flush threshold for batched writes — pooled backend wires AND the
  // service's client-facing sinks (1 = write per message).
  size_t flush_watermark_bytes = runtime::kDefaultFlushWatermark;

  // Adaptive rx fill-window cap for client sources and pooled reply legs
  // (1 = one-buffer reads).
  size_t fill_window = runtime::kDefaultFillWindow;

  // Pool stripes (see BackendPoolConfig::io_shards; 0 = one stripe per
  // platform IO shard, derived when the pool starts).
  size_t io_shards = 0;

  // Client-leg lifetime windows (see runtime/conn_lifetime.h): close idle
  // keep-alive clients / stalled partial requests after this long. Default
  // inherits the platform policy; 0 disables. Timer closes count into
  // RegistryStats{idle_closed, deadline_closed}.
  uint64_t idle_timeout_ns = kInheritLifetimeNs;
  uint64_t header_deadline_ns = kInheritLifetimeNs;

  // --- backend health plane (see BackendPoolConfig for semantics) ----------
  // Per-request response deadline on pooled wires, armed on the shard wheel
  // when the request enters the wire FIFO. Services arm a generous default so
  // a silently stalled backend fails requests instead of pinning leases to
  // the 30 s detach timeout; 0 disables.
  uint64_t request_deadline_ns = 2'000'000'000;
  // Circuit breaker: consecutive failures per (backend, stripe) that open
  // the circuit, and how long it stays open before a half-open probe.
  uint32_t breaker_failure_threshold = 3;
  uint64_t breaker_open_ns = 100'000'000;
  // Budgeted retries for failed in-flight requests (see RetryPolicy for the
  // ordering caveat; default off).
  RetryPolicy retry_policy = RetryPolicy::kNone;
  uint32_t max_retries_per_request = 1;
  // Token bucket shared by the whole pool: sustained retries/sec and burst.
  double retry_budget_per_sec = 100.0;
  uint32_t retry_burst = 32;

  // Copies the backend-facing knobs into a pool config (ports and codecs
  // remain the service's business).
  void ApplyTo(BackendPoolConfig& cfg) const;

  // Applies the builder-facing knobs to one connection's graph build:
  // batching/fill on every leg, lifetime overrides only when not inherited.
  GraphBuilder& ApplyTo(GraphBuilder& b) const;
};

// Non-owning connection proxy: lets an OutputTask write to a connection whose
// lifetime is owned by the peer InputTask of the same graph.
class SharedConn : public Connection {
 public:
  explicit SharedConn(Connection* conn) : conn_(conn) {}

  Result<size_t> Read(void* buf, size_t len) override { return conn_->Read(buf, len); }
  Result<size_t> Readv(const MutIoSlice* slices, size_t count) override {
    return conn_->Readv(slices, count);  // keep the underlying vectored path
  }
  Result<size_t> Write(const void* buf, size_t len) override { return conn_->Write(buf, len); }
  Result<size_t> Writev(const IoSlice* slices, size_t count) override {
    return conn_->Writev(slices, count);  // keep the underlying vectored path
  }
  void Close() override { conn_->Close(); }
  bool IsOpen() const override { return conn_->IsOpen(); }
  bool ReadReady() const override { return conn_->ReadReady(); }
  bool SetReadReadyHook(std::function<void()> hook) override {
    return conn_->SetReadReadyHook(std::move(hook));
  }
  uint64_t id() const override { return conn_->id(); }

 private:
  Connection* conn_;
};

// Registry-wide construction/retirement counters, exposed so scaling work
// (sharded dispatchers, pooled backends) can observe graph churn without
// instrumenting every service.
struct RegistryStats {
  uint64_t graphs_adopted = 0;
  uint64_t graphs_unwatched = 0;  // passed retirement stage 1 (unwatch sweep)
  uint64_t graphs_retired = 0;    // passed stage 2 (drained and destroyed)
  uint64_t tasks_adopted = 0;
  uint64_t channels_adopted = 0;
  uint64_t detaches_run = 0;      // on_unwatch hooks executed (pool leases)
  uint64_t detaches_timed_out = 0;  // stage 1 forced past a stuck detach_ready

  // Output-batching counters aggregated over every OutputTask this registry
  // has hosted (live graphs summed at stats() time, retired graphs folded in
  // at destruction): vectored writes issued, high-water-forced flushes, and
  // the high-water of messages coalesced into one flush. With writev batching
  // writev_calls stays well below the message count — the per-PR perf
  // trajectory tracks that ratio.
  uint64_t writev_calls = 0;
  uint64_t flushes_forced = 0;
  uint64_t msgs_per_writev = 0;  // high-water, not a sum

  // Ingest-coalescing counters, aggregated the same way over every InputTask:
  // vectored fills that moved bytes, the high-water of bytes one fill moved,
  // and fills that proved the wire drained (each one a would-block probe the
  // legacy per-buffer read loop would have paid).
  uint64_t readv_calls = 0;
  uint64_t bytes_per_readv = 0;  // high-water, not a sum
  uint64_t fills_short = 0;

  // Connection lifetime plane (see runtime/conn_lifetime.h). idle_closed /
  // deadline_closed count this registry's graphs whose client leg was closed
  // by a timer; the rest are summed over the IO shards this registry has
  // adopted graphs from: admission sheds (the conn never reached a service,
  // so attribution is per-shard), sweep duty cycle, and wheel health.
  uint64_t idle_closed = 0;
  uint64_t deadline_closed = 0;
  uint64_t admissions_shed = 0;
  uint64_t sweeps = 0;
  uint64_t sweeps_idle = 0;
  uint64_t timers_armed = 0;
  uint64_t timers_fired = 0;
  uint64_t timers_cancelled = 0;
  uint64_t timer_cascades = 0;

  // Memory plane, summed over the pools this registry's graphs draw from
  // (shard slices and their global spill parents, deduped at Adopt):
  // msg acquires that fell through to the HEAP, and acquires a shard slice
  // could not serve locally (buffer or msg) and delegated to the global
  // spill pool. Both 0 in a well-sized steady state.
  uint64_t msg_pool_misses = 0;
  uint64_t pool_slice_spills = 0;

  // Look-aside cache plane (services running in cache mode; all 0 otherwise).
  // hits: GETs answered from the StateStore without touching the backend
  // plane. misses: GETs forwarded to a backend with a populate armed on the
  // response path. invalidations: write-throughs (SET/DELETE) that purged the
  // key before forwarding. stale_populates_dropped: response-path populates
  // discarded because an invalidation won the race (the StateStore epoch
  // moved between miss and response) — nonzero is correct behaviour under a
  // racing write mix, but on a read-only steady state it must be exactly 0.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_stale_populates_dropped = 0;
  // GETs answered from the stale fallback dict while the backend's circuit
  // was open (memcached_proxy cache mode degrade path). 0 outside outages.
  uint64_t cache_stale_served = 0;

  // Graph builds whose Launch failed (listener/dial/adopt error). The client
  // connection is closed and the build discarded; nonzero under backend
  // outages or port exhaustion, 0 in a healthy steady state.
  uint64_t launch_failures = 0;

  // DSL dispatch plane (DslService; all 0 otherwise). lowered_msgs: messages
  // executed by a lowered native plan (lang/lower.h). interp_fallbacks:
  // messages that fell back to the bounded evaluator — an unprovable rule
  // shape or a non-grammar message. A fully lowered program under normal
  // traffic keeps interp_fallbacks at exactly 0.
  uint64_t dsl_lowered_msgs = 0;
  uint64_t dsl_interp_fallbacks = 0;
};

// Cache-plane counters, owned by the GraphRegistry (like
// runtime::ConnLifetimeCounters) and incremented by a service's dispatch
// stages; folded into RegistryStats at stats() time.
struct CacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> invalidations{0};
  std::atomic<uint64_t> stale_populates_dropped{0};
  std::atomic<uint64_t> stale_served{0};  // degrade path: see RegistryStats
};

// DSL dispatch counters, owned by the GraphRegistry like CacheCounters and
// incremented by DslService's (lowered or interpreted) proc handlers.
struct DslCounters {
  std::atomic<uint64_t> lowered_msgs{0};
  std::atomic<uint64_t> interp_fallbacks{0};
};

// Tracks live graphs for a service and reaps them (unwatching their
// connections, quiescing their tasks, destroying the graph) once all IO
// tasks have closed. Thread-safe; reaping runs on the poller thread.
class GraphRegistry {
 public:
  // Upper bound on how long a graph's detach_ready gate may hold retirement
  // stage 1 open. Generous against real drains (which finish in
  // milliseconds) while keeping graph lifetime bounded when the gated
  // dependency is wedged.
  static constexpr uint64_t kDetachReadyTimeoutNs = 30'000'000'000;

  // Retirement runs in two phases on the shard's timer wheel:
  //  - SCAN: ONE fixed-cadence periodic per (registry, shard) walks that
  //    shard's live graphs asking "is this graph's IO closed yet?" — a couple
  //    of atomic loads per graph. Per-graph timers don't scale here: 100k
  //    mostly-idle graphs each polling even at a lazy 64ms cap meant ~1.6M
  //    timer fires/s, saturating the poller; one scanner costs ~30 fires/s
  //    regardless of graph count and keeps close-detection latency flat.
  //  - CHECK (IO closed): a per-graph backoff poll running the staged
  //    teardown below at a snappy cadence, registered by the scanner only
  //    once the graph's IO is closed — so its fires are bounded by graph
  //    TURNOVER, not graph count.
  static constexpr uint64_t kRetireScanIntervalNs = 25'000'000;
  static constexpr uint64_t kRetireCheckMinNs = 1'000'000;
  static constexpr uint64_t kRetireCheckMaxNs = 64'000'000;

  // Cancels the per-shard retirement scanners. The platform must be stopped
  // (pollers joined) before a registry with adopted graphs is destroyed —
  // the scanners and staged polls reference `this`.
  ~GraphRegistry() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TrackedPoller& tracked : pollers_) {
      tracked.poller->wheel().CancelPeriodic(tracked.scan_token);
    }
    // Graphs that never reached retirement stage 1 (platform stopped first)
    // still have their connections watched: an edge hook on such a conn
    // captures a Task* about to be freed with the graph, and a peer that
    // writes after the free fires the hook into dead memory. Unwatch here —
    // SetReadReadyHook(nullptr) blocks until any in-flight fire drains — so
    // no external writer can reach a graph task once destruction begins.
    for (const PendingRetire& p : pending_retire_) {
      for (Connection* conn : p.conns) {
        p.poller->UnwatchConnection(conn);
      }
    }
  }

  // Registers `graph` with the adopting shard's retirement scanner (see the
  // SCAN/CHECK phases above). `conns` are the connections the
  // graph's tasks watch (unwatched at retirement). `on_unwatch`, when set,
  // runs exactly once at retirement stage 1 — GraphBuilder uses it to return
  // pool leases, severing every producer/consumer the graph shares with
  // external tasks. `detach_ready`, when set, DELAYS stage 1 until it returns
  // true — pooled graphs use it (BackendPool::LeaseFinished) so a lease is
  // not returned while requests the graph committed still sit in its
  // channels. It must be cheap and non-blocking; it is polled per
  // retirement check.
  // The delay is BOUNDED: after kDetachReadyTimeoutNs of refusals stage 1
  // proceeds anyway (counted in detaches_timed_out) — a pathologically
  // wedged dependency may cost a graph its queued output, never an unbounded
  // graph leak.
  //
  // Retirement is staged and NON-BLOCKING (the check runs on the poller
  // thread, which must never spin-wait): once all IO tasks have closed (and
  // `detach_ready` holds), the graph's connections are unwatched and
  // `on_unwatch` runs — after that no external party (poller or backend pool)
  // can notify a graph task; on a later sweep, once every task has gone idle
  // (no pending notifications can exist then — all inputs are closed, drained
  // or detached), the graph is destroyed.
  void Adopt(std::unique_ptr<runtime::TaskGraph> graph,
             std::vector<Connection*> conns, runtime::PlatformEnv& env,
             std::function<void()> on_unwatch = {},
             std::function<bool()> detach_ready = {}) {
    runtime::TaskGraph* raw = graph.get();
    graphs_adopted_.fetch_add(1, std::memory_order_relaxed);
    tasks_adopted_.fetch_add(raw->tasks().size(), std::memory_order_relaxed);
    channels_adopted_.fetch_add(raw->channel_count(), std::memory_order_relaxed);
    runtime::IoPoller* poller = env.poller;
    // Phase CHECK: staged teardown, registered only once the scan phase saw
    // the graph's IO closed.
    auto staged_retire =
        [this, raw, poller, conns,
         on_unwatch = std::move(on_unwatch), detach_ready = std::move(detach_ready),
         unwatched = false, detach_deadline_ns = uint64_t{0}]() mutable -> bool {
          if (!raw->AllIoClosed()) {
            return false;
          }
          if (!unwatched) {
            if (detach_ready != nullptr && !detach_ready()) {
              const uint64_t now = MonotonicNanos();
              if (detach_deadline_ns == 0) {
                detach_deadline_ns = now + kDetachReadyTimeoutNs;
              }
              if (now < detach_deadline_ns) {
                return false;  // stream still draining into the pool
              }
              detaches_timed_out_.fetch_add(1, std::memory_order_relaxed);
            }
            detach_ready = nullptr;
            for (Connection* conn : conns) {
              poller->UnwatchConnection(conn);
            }
            if (on_unwatch != nullptr) {
              on_unwatch();
              on_unwatch = nullptr;
              detaches_run_.fetch_add(1, std::memory_order_relaxed);
            }
            unwatched = true;
            graphs_unwatched_.fetch_add(1, std::memory_order_relaxed);
            return false;  // give in-flight notifications a check to settle
          }
          for (const auto& task : raw->tasks()) {
            if (task->sched_state.load(std::memory_order_acquire) !=
                runtime::Task::SchedState::kIdle) {
              return false;  // still draining; try next sweep
            }
          }
          {
            // Fold + erase under one lock: a concurrent stats() must never
            // see the counters both folded in AND still live in graphs_.
            std::lock_guard<std::mutex> lock(mutex_);
            AccumulateBatchStats(*raw);
            std::erase_if(graphs_, [raw](const auto& g) { return g.get() == raw; });
          }
          graphs_retired_.fetch_add(1, std::memory_order_relaxed);
          return true;
        };
    std::lock_guard<std::mutex> lock(mutex_);
    graphs_.push_back(std::move(graph));
    TrackPollerLocked(env.poller);  // registers the shard's scanner on first sight
    TrackPoolsLocked(env);          // memory-plane pools for stats()
    pending_retire_.push_back(
        PendingRetire{raw, poller, std::move(staged_retire), std::move(conns)});
  }

  size_t live_graphs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return graphs_.size();
  }

  // Close-reason counters for this registry's client legs; GraphBuilder
  // hands this to every adopted leg's InputTask at Launch.
  runtime::ConnLifetimeCounters& lifetime_counters() { return lifetime_; }

  // Cache-plane counters for this registry's dispatch stages (services
  // running in look-aside cache mode increment these; see RegistryStats).
  CacheCounters& cache_counters() { return cache_; }
  const CacheCounters& cache_counters() const { return cache_; }

  // DSL dispatch counters (DslService proc handlers; see RegistryStats).
  DslCounters& dsl_counters() { return dsl_; }
  const DslCounters& dsl_counters() const { return dsl_; }

  // Records a failed GraphBuilder::Launch (the builder already closed the
  // legs and returned any pool leases).
  void CountLaunchFailure() {
    launch_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  RegistryStats stats() const {
    RegistryStats s;
    s.graphs_adopted = graphs_adopted_.load(std::memory_order_relaxed);
    s.graphs_unwatched = graphs_unwatched_.load(std::memory_order_relaxed);
    s.graphs_retired = graphs_retired_.load(std::memory_order_relaxed);
    s.tasks_adopted = tasks_adopted_.load(std::memory_order_relaxed);
    s.channels_adopted = channels_adopted_.load(std::memory_order_relaxed);
    s.detaches_run = detaches_run_.load(std::memory_order_relaxed);
    s.detaches_timed_out = detaches_timed_out_.load(std::memory_order_relaxed);
    s.idle_closed = lifetime_.idle_closed.load(std::memory_order_relaxed);
    s.deadline_closed = lifetime_.deadline_closed.load(std::memory_order_relaxed);
    s.cache_hits = cache_.hits.load(std::memory_order_relaxed);
    s.cache_misses = cache_.misses.load(std::memory_order_relaxed);
    s.cache_invalidations = cache_.invalidations.load(std::memory_order_relaxed);
    s.cache_stale_populates_dropped =
        cache_.stale_populates_dropped.load(std::memory_order_relaxed);
    s.cache_stale_served = cache_.stale_served.load(std::memory_order_relaxed);
    s.launch_failures = launch_failures_.load(std::memory_order_relaxed);
    s.dsl_lowered_msgs = dsl_.lowered_msgs.load(std::memory_order_relaxed);
    s.dsl_interp_fallbacks = dsl_.interp_fallbacks.load(std::memory_order_relaxed);
    // Batching counters: accumulators AND live-graph fold-in are read under
    // the same lock the retirement timer folds+erases under, so a retiring graph is
    // counted by exactly one of the two paths and the aggregate never
    // transiently dips.
    std::lock_guard<std::mutex> lock(mutex_);
    s.writev_calls = writev_calls_.load(std::memory_order_relaxed);
    s.flushes_forced = flushes_forced_.load(std::memory_order_relaxed);
    s.msgs_per_writev = msgs_per_writev_.load(std::memory_order_relaxed);
    s.readv_calls = readv_calls_.load(std::memory_order_relaxed);
    s.bytes_per_readv = bytes_per_readv_.load(std::memory_order_relaxed);
    s.fills_short = fills_short_.load(std::memory_order_relaxed);
    for (const auto& graph : graphs_) {
      for (const runtime::OutputTask* out : graph->output_tasks()) {
        s.writev_calls += out->writev_calls();
        s.flushes_forced += out->flushes_forced();
        if (out->msgs_per_writev() > s.msgs_per_writev) {
          s.msgs_per_writev = out->msgs_per_writev();
        }
      }
      for (const runtime::InputTask* in : graph->input_tasks()) {
        s.readv_calls += in->readv_calls();
        s.fills_short += in->fills_short();
        if (in->bytes_per_readv() > s.bytes_per_readv) {
          s.bytes_per_readv = in->bytes_per_readv();
        }
      }
    }
    for (const TrackedPoller& tracked : pollers_) {
      runtime::IoPoller* poller = tracked.poller;
      s.admissions_shed += poller->admission().shed();
      s.sweeps += poller->sweeps();
      s.sweeps_idle += poller->sweeps_idle();
      const runtime::TimerStats t = poller->wheel().stats();
      s.timers_armed += t.armed;
      s.timers_fired += t.fired;
      s.timers_cancelled += t.cancelled;
      s.timer_cascades += t.cascade_moves;
    }
    for (runtime::MsgPool* pool : msg_pools_) {
      s.msg_pool_misses += pool->pool_misses();
      s.pool_slice_spills += pool->slice_spills();
    }
    for (BufferPool* pool : buffer_pools_) {
      s.pool_slice_spills += pool->stats().slice_spills;
    }
    return s;
  }

 private:
  // A shard this registry has adopted graphs from, plus its retirement
  // scanner's cancellation token.
  struct TrackedPoller {
    runtime::IoPoller* poller;
    uint64_t scan_token;
  };

  // A graph awaiting IO close, owned by its shard's scanner.
  struct PendingRetire {
    runtime::TaskGraph* graph;
    runtime::IoPoller* poller;
    std::function<bool()> staged;  // the CHECK-phase teardown
    std::vector<Connection*> conns;  // still watched until stage 1 unwatches
  };

  // Caller holds mutex_. Registries usually span a handful of shards, so a
  // linear dedup beats a set. First sight of a shard registers its scanner
  // periodic (mutex_ -> wheel lock; scanner fires take mutex_ with no wheel
  // lock held, so the order never inverts).
  void TrackPollerLocked(runtime::IoPoller* poller) {
    for (const TrackedPoller& seen : pollers_) {
      if (seen.poller == poller) {
        return;
      }
    }
    const uint64_t token = poller->wheel().AddPeriodic(
        kRetireScanIntervalNs, [this, poller]() -> bool {
          ScanForRetireOn(poller);
          return false;  // runs until the registry cancels it
        });
    pollers_.push_back(TrackedPoller{poller, token});
  }

  // Caller holds mutex_. Dedups the memory-plane pools an adopting env draws
  // from, walking each slice's spill chain so the global parent (where msg
  // heap misses are counted — slices spill, they never heap-allocate) is
  // tracked even when every env hands out a slice. A registry spans at most
  // shards + 1 pools of each kind, so linear dedup is fine.
  void TrackPoolsLocked(runtime::PlatformEnv& env) {
    for (runtime::MsgPool* pool = env.msgs; pool != nullptr; pool = pool->spill()) {
      if (std::find(msg_pools_.begin(), msg_pools_.end(), pool) == msg_pools_.end()) {
        msg_pools_.push_back(pool);
      }
    }
    for (BufferPool* pool = env.buffers; pool != nullptr; pool = pool->spill()) {
      if (std::find(buffer_pools_.begin(), buffer_pools_.end(), pool) ==
          buffer_pools_.end()) {
        buffer_pools_.push_back(pool);
      }
    }
  }

  // SCAN phase, on `poller`'s thread: hand every pending graph whose IO has
  // closed to a CHECK-phase backoff poll. The wheel re-entry happens outside
  // mutex_ (and outside the wheel lock — periodic callbacks fire unlocked).
  void ScanForRetireOn(runtime::IoPoller* poller) {
    std::vector<std::function<bool()>> ready;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t i = 0; i < pending_retire_.size();) {
        PendingRetire& p = pending_retire_[i];
        if (p.poller == poller && p.graph->AllIoClosed()) {
          ready.push_back(std::move(p.staged));
          p = std::move(pending_retire_.back());
          pending_retire_.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (auto& staged : ready) {
      poller->wheel().AddBackoffPoll(kRetireCheckMinNs, kRetireCheckMaxNs,
                                     std::move(staged));
    }
  }

  // Caller holds mutex_ (folded and erased in one critical section so a
  // concurrent stats() never counts a retiring graph twice).
  void AccumulateBatchStats(const runtime::TaskGraph& graph) {
    for (const runtime::OutputTask* out : graph.output_tasks()) {
      writev_calls_.fetch_add(out->writev_calls(), std::memory_order_relaxed);
      flushes_forced_.fetch_add(out->flushes_forced(), std::memory_order_relaxed);
      runtime::AtomicStoreMax(msgs_per_writev_, out->msgs_per_writev());
    }
    for (const runtime::InputTask* in : graph.input_tasks()) {
      readv_calls_.fetch_add(in->readv_calls(), std::memory_order_relaxed);
      fills_short_.fetch_add(in->fills_short(), std::memory_order_relaxed);
      runtime::AtomicStoreMax(bytes_per_readv_, in->bytes_per_readv());
    }
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<runtime::TaskGraph>> graphs_;
  std::vector<TrackedPoller> pollers_;  // shards graphs were adopted from
  std::vector<runtime::MsgPool*> msg_pools_;  // slices + spill parents, deduped
  std::vector<BufferPool*> buffer_pools_;
  std::vector<PendingRetire> pending_retire_;  // live graphs awaiting IO close
  runtime::ConnLifetimeCounters lifetime_;
  CacheCounters cache_;
  DslCounters dsl_;
  std::atomic<uint64_t> launch_failures_{0};
  std::atomic<uint64_t> graphs_adopted_{0};
  std::atomic<uint64_t> graphs_unwatched_{0};
  std::atomic<uint64_t> graphs_retired_{0};
  std::atomic<uint64_t> tasks_adopted_{0};
  std::atomic<uint64_t> channels_adopted_{0};
  std::atomic<uint64_t> detaches_run_{0};
  std::atomic<uint64_t> detaches_timed_out_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> flushes_forced_{0};
  std::atomic<uint64_t> msgs_per_writev_{0};
  std::atomic<uint64_t> readv_calls_{0};
  std::atomic<uint64_t> bytes_per_readv_{0};
  std::atomic<uint64_t> fills_short_{0};
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_SERVICE_UTIL_H_
