// Memcached proxy (§6.1, Figure 3b; Listing 1 §4.1 variant).
//
// Per-client-connection task graph with fan-out > 1: requests are hash-
// partitioned over the backends ("Requests are forwarded based on hash
// partitioning to a set of Memcached servers, each storing a disjoint
// section of the key space"); responses from any backend return to the
// client. Parsing uses the projected routing unit (opcode + key only) on the
// request path — the generated-parser optimisation of §4.2.
#ifndef FLICK_SERVICES_MEMCACHED_PROXY_H_
#define FLICK_SERVICES_MEMCACHED_PROXY_H_

#include <atomic>
#include <vector>

#include "runtime/platform.h"
#include "services/service_util.h"

namespace flick::services {

class MemcachedProxyService : public runtime::ServiceProgram {
 public:
  explicit MemcachedProxyService(std::vector<uint16_t> backend_ports)
      : backends_(std::move(backend_ports)) {}

  const char* name() const override { return "memcached-proxy"; }
  void OnConnection(std::unique_ptr<Connection> conn, runtime::PlatformEnv& env) override;

  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  size_t live_graphs() const { return registry_.live_graphs(); }

 private:
  std::vector<uint16_t> backends_;
  std::atomic<uint64_t> requests_{0};
  GraphRegistry registry_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_MEMCACHED_PROXY_H_
