// Memcached proxy (§6.1, Figure 3b; Listing 1 §4.1 variant).
//
// Per-client-connection task graph with fan-out > 1: requests are hash-
// partitioned over the backends ("Requests are forwarded based on hash
// partitioning to a set of Memcached servers, each storing a disjoint
// section of the key space"); responses from any backend return to the
// client. Parsing uses the projected routing unit (opcode + key only) on the
// request path — the generated-parser optimisation of §4.2.
//
// Backend transport comes in two modes:
//   * kPooled (default): all client graphs share one BackendPool —
//     conns_per_backend persistent pipelined connections per backend,
//     claimed via a PoolLease. Backend fd count is independent of client
//     concurrency.
//   * kPerClient: the paper's original shape — one dedicated connection per
//     backend per client graph (Figure 3b), dialled by the builder's FanOut.
//
// Orthogonally, Options::cache enables LOOK-ASIDE CACHE MODE (the classic
// memcached deployment shape, served in-path): GET/GETK hits are answered
// from the platform StateStore without acquiring a pool lease or touching a
// backend; misses are proxied as usual and populate the store on the
// response path under the invalidate-wins epoch protocol
// (StateStore::InvalidationEpoch / PutIfFresh); SET and other keyed writes
// write through to the backend and invalidate the cached entry. When a
// backend leg fails a GET outright (kError from the health plane), cache
// mode degrades to the last-known-good copy (CacheOptions::serve_stale).
// Counters land in RegistryStats{cache_hits, cache_misses,
// cache_invalidations, cache_stale_populates_dropped, cache_stale_served}.
#ifndef FLICK_SERVICES_MEMCACHED_PROXY_H_
#define FLICK_SERVICES_MEMCACHED_PROXY_H_

#include <atomic>
#include <memory>
#include <vector>

#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/graph_builder.h"
#include "services/service_util.h"

namespace flick::services {

class MemcachedProxyService : public runtime::ServiceProgram {
 public:
  struct CacheOptions {
    // Serve GET/GETK from the StateStore look-aside (see the header comment).
    // Off by default: pooled and per-client proxy modes are unchanged.
    bool enabled = false;
    // StateStore dictionary the cached entries live in. Capacity is the
    // platform's PlatformConfig::state_entries_per_dict (FIFO eviction).
    std::string dict = "memcached-cache";
    // Responses with values larger than this are proxied but never cached.
    size_t max_value_bytes = 64 * 1024;
    // Degrade-to-cache: keep a last-known-good copy of every populated
    // value in `dict + "/stale"` (plain Put — deliberately exempt from the
    // invalidate-wins protocol) and serve it when a backend leg FAILS a GET
    // (deadline expiry, open circuit, lost wire with no retry left). Stale
    // by design: outage availability over freshness. Counted in
    // RegistryStats::cache_stale_served.
    bool serve_stale = true;
  };

  struct Options {
    // The shared wire-policy knobs (transport mode, pooling, batching,
    // sharding, lifetime windows) — see services::WireOptions.
    WireOptions wire;
    // Look-aside cache mode, orthogonal to the wire mode.
    CacheOptions cache;
  };

  explicit MemcachedProxyService(std::vector<uint16_t> backend_ports);
  MemcachedProxyService(std::vector<uint16_t> backend_ports, Options options);

  const char* name() const override { return "memcached-proxy"; }
  void OnConnection(std::unique_ptr<Connection> conn, runtime::PlatformEnv& env) override;

  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  size_t live_graphs() const { return registry_.live_graphs(); }
  const GraphRegistry& registry() const { return registry_; }

  // Null in kPerClient mode.
  const BackendPool* pool() const { return pool_.get(); }
  // Mutable view for test hooks (CloseConnectionForTest).
  BackendPool* mutable_pool() { return pool_.get(); }

 private:
  NodeRef DispatchStage(GraphBuilder& b, size_t fan_out);
  NodeRef CachingDispatchStage(GraphBuilder& b, size_t fan_out,
                               runtime::StateStore* store);

  std::vector<uint16_t> backends_;
  Options options_;
  std::unique_ptr<BackendPool> pool_;
  std::atomic<uint64_t> requests_{0};
  GraphRegistry registry_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_MEMCACHED_PROXY_H_
