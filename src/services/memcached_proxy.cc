#include "services/memcached_proxy.h"

#include "base/hash.h"
#include "proto/memcached.h"

namespace flick::services {

MemcachedProxyService::MemcachedProxyService(std::vector<uint16_t> backend_ports)
    : MemcachedProxyService(std::move(backend_ports), Options()) {}

MemcachedProxyService::MemcachedProxyService(std::vector<uint16_t> backend_ports,
                                             Options options)
    : backends_(std::move(backend_ports)), options_(options) {
  if (options_.wire.mode == BackendMode::kPooled) {
    const grammar::Unit* unit = &proto::MemcachedUnit();
    BackendPoolConfig cfg;
    cfg.ports = backends_;
    options_.wire.ApplyTo(cfg);
    cfg.make_serializer = [unit] {
      return std::make_unique<runtime::GrammarSerializer>(unit);
    };
    cfg.make_deserializer = [unit] {
      return std::make_unique<runtime::GrammarDeserializer>(unit);
    };
    pool_ = std::make_unique<BackendPool>(std::move(cfg));
  }
}

// Dispatch: `hash(req.key) mod len(backends)` (Listing 1). Outputs 0..n-1
// are the backend legs (pooled or dedicated), output n the client; input 0
// is the client, inputs 1..n the backends — fixed by edge declaration order
// in OnConnection.
NodeRef MemcachedProxyService::DispatchStage(GraphBuilder& b, size_t n) {
  return b.Stage(
      "dispatch", [this, n](runtime::Msg& msg, size_t input_index,
                            runtime::EmitContext& emit) {
        if (msg.kind == runtime::Msg::Kind::kEof) {
          if (input_index != 0) {
            return runtime::HandleResult::kConsumed;
          }
          // Client left: signal all backend legs and the client leg (a
          // pooled leg treats the EOF as "this graph is done" without
          // touching the shared wire). All-or-nothing: a dropped EOF would
          // leave client-out open and the graph unretirable, so block until
          // every output has room — safe to pre-check, this stage is each
          // output's only producer.
          for (size_t o = 0; o <= n; ++o) {
            if (!emit.CanEmit(o)) {
              return runtime::HandleResult::kBlocked;
            }
          }
          for (size_t o = 0; o <= n; ++o) {
            runtime::MsgRef eof = emit.NewMsg();
            eof->kind = runtime::Msg::Kind::kEof;
            emit.Emit(o, std::move(eof));
          }
          return runtime::HandleResult::kConsumed;
        }
        if (input_index == 0) {
          // Request from the client: route by key hash.
          proto::MemcachedCommand cmd(&msg.gmsg);
          const size_t target = HashBytes(cmd.key()) % n;
          runtime::MsgRef fwd = emit.NewMsg();
          fwd->kind = runtime::Msg::Kind::kGrammar;
          fwd->gmsg = msg.gmsg;
          if (!emit.Emit(target, std::move(fwd))) {
            return runtime::HandleResult::kBlocked;
          }
          requests_.fetch_add(1, std::memory_order_relaxed);
          return runtime::HandleResult::kConsumed;
        }
        // Response from a backend: forward to the client (output n).
        runtime::MsgRef resp = emit.NewMsg();
        resp->kind = runtime::Msg::Kind::kGrammar;
        resp->gmsg = msg.gmsg;
        return emit.Emit(n, std::move(resp)) ? runtime::HandleResult::kConsumed
                                             : runtime::HandleResult::kBlocked;
      });
}

void MemcachedProxyService::OnConnection(std::unique_ptr<Connection> conn,
                                         runtime::PlatformEnv& env) {
  const size_t n = backends_.size();
  const grammar::Unit* unit = &proto::MemcachedUnit();

  GraphBuilder b("memcached-proxy", env);
  // One watermark for the whole write path: the pool config batches the
  // backend wires, this batches the client-facing sinks.
  options_.wire.ApplyTo(b);
  auto client = b.Adopt(std::move(conn));

  // Request path: parse with the projected unit (opcode/key only).
  auto request = b.Source("client-in", client,
                          std::make_unique<runtime::GrammarDeserializer>(unit));
  auto dispatch = DispatchStage(b, n).From(request);

  if (options_.wire.mode == BackendMode::kPooled) {
    // Shared transport: one lease over the pool's persistent connections.
    // Nothing is dialled; a pool failure poisons the builder and Launch()
    // returns the lease.
    auto legs = b.FanOutPooled(*pool_, /*capacity=*/64);
    for (auto& leg : legs) {
      leg.sink.From(dispatch);  // dispatch outputs 0..n-1
    }
    b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(dispatch);  // dispatch output n
    for (auto& leg : legs) {
      dispatch.From(leg.source);  // dispatch inputs 1..n
    }
  } else {
    // One persistent connection per backend for this client (Figure 3b). A
    // dial failure poisons the builder and Launch() closes the established
    // legs as well as the client.
    auto legs = b.FanOut(
        backends_, "backend",
        [unit] { return std::make_unique<runtime::GrammarSerializer>(unit); },
        [unit] { return std::make_unique<runtime::GrammarDeserializer>(unit); },
        /*capacity=*/64);
    for (auto& leg : legs) {
      leg.sink.From(dispatch);
    }
    b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(dispatch);
    for (auto& leg : legs) {
      dispatch.From(leg.source);
    }
  }

  (void)b.Launch(registry_);
}

}  // namespace flick::services
