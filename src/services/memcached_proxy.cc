#include "services/memcached_proxy.h"

#include "base/hash.h"
#include "proto/memcached.h"
#include "runtime/compute_task.h"
#include "runtime/io_tasks.h"

namespace flick::services {

void MemcachedProxyService::OnConnection(std::unique_ptr<Connection> conn,
                                         runtime::PlatformEnv& env) {
  const size_t n = backends_.size();
  // One persistent connection per backend for this client (Figure 3b).
  std::vector<std::unique_ptr<Connection>> backend_conns;
  backend_conns.reserve(n);
  for (uint16_t port : backends_) {
    auto bc = env.transport->Connect(port);
    if (!bc.ok()) {
      conn->Close();
      return;
    }
    backend_conns.push_back(std::move(bc).value());
  }

  auto graph = std::make_unique<runtime::TaskGraph>("memcached-proxy");
  runtime::Channel* req_ch = graph->AddChannel(128);
  runtime::Channel* client_out_ch = graph->AddChannel(128);
  // Channels are SPSC: one response channel per backend input task.
  std::vector<runtime::Channel*> fwd_chs;
  std::vector<runtime::Channel*> resp_chs;
  for (size_t b = 0; b < n; ++b) {
    fwd_chs.push_back(graph->AddChannel(64));
    resp_chs.push_back(graph->AddChannel(64));
  }

  Connection* client_raw = conn.get();

  // Request path: parse with the projected unit (opcode/key only).
  auto* client_in = graph->AddTask<runtime::InputTask>(
      "client-in", std::move(conn),
      std::make_unique<runtime::GrammarDeserializer>(&proto::MemcachedUnit()), req_ch,
      env.msgs, env.buffers);

  // Dispatch: `hash(req.key) mod len(backends)` (Listing 1).
  auto* dispatch = graph->AddTask<runtime::ComputeTask>(
      "dispatch",
      [this, n](runtime::Msg& msg, size_t input_index, runtime::EmitContext& emit) {
        if (msg.kind == runtime::Msg::Kind::kEof) {
          if (input_index == 0) {
            // Client left: close all backend legs.
            for (size_t b = 0; b < n; ++b) {
              runtime::MsgRef eof = emit.NewMsg();
              eof->kind = runtime::Msg::Kind::kEof;
              (void)emit.Emit(b, std::move(eof));
            }
            runtime::MsgRef eof = emit.NewMsg();
            eof->kind = runtime::Msg::Kind::kEof;
            (void)emit.Emit(n, std::move(eof));  // and the client leg
          }
          return runtime::HandleResult::kConsumed;
        }
        if (input_index == 0) {
          // Request from the client: route by key hash.
          proto::MemcachedCommand cmd(&msg.gmsg);
          const size_t target = HashBytes(cmd.key()) % n;
          runtime::MsgRef fwd = emit.NewMsg();
          fwd->kind = runtime::Msg::Kind::kGrammar;
          fwd->gmsg = msg.gmsg;
          if (!emit.Emit(target, std::move(fwd))) {
            return runtime::HandleResult::kBlocked;
          }
          requests_.fetch_add(1, std::memory_order_relaxed);
          return runtime::HandleResult::kConsumed;
        }
        // Response from a backend: forward to the client (output n).
        runtime::MsgRef resp = emit.NewMsg();
        resp->kind = runtime::Msg::Kind::kGrammar;
        resp->gmsg = msg.gmsg;
        return emit.Emit(n, std::move(resp)) ? runtime::HandleResult::kConsumed
                                             : runtime::HandleResult::kBlocked;
      },
      env.msgs);
  dispatch->AddInput(req_ch, env.scheduler);          // input 0: client
  for (runtime::Channel* ch : resp_chs) {
    dispatch->AddInput(ch, env.scheduler);            // inputs 1..n: backends
  }
  for (runtime::Channel* ch : fwd_chs) {
    dispatch->AddOutput(ch);            // outputs 0..n-1: backends
  }
  dispatch->AddOutput(client_out_ch);   // output n: client

  // Backend legs.
  std::vector<Connection*> watch;
  watch.push_back(client_raw);
  for (size_t b = 0; b < n; ++b) {
    Connection* braw = backend_conns[b].get();
    auto* bout = graph->AddTask<runtime::OutputTask>(
        "backend-out-" + std::to_string(b), std::move(backend_conns[b]),
        std::make_unique<runtime::GrammarSerializer>(&proto::MemcachedUnit()), fwd_chs[b],
        env.buffers);
    fwd_chs[b]->BindConsumer(bout, env.scheduler);
    auto* bin = graph->AddTask<runtime::InputTask>(
        "backend-in-" + std::to_string(b), std::make_unique<SharedConn>(braw),
        std::make_unique<runtime::GrammarDeserializer>(&proto::MemcachedUnit()),
        resp_chs[b], env.msgs, env.buffers);
    env.poller->WatchConnection(braw, bin);
    env.scheduler->NotifyRunnable(bin);
    watch.push_back(braw);
  }

  auto* client_out = graph->AddTask<runtime::OutputTask>(
      "client-out", std::make_unique<SharedConn>(client_raw),
      std::make_unique<runtime::GrammarSerializer>(&proto::MemcachedUnit()),
      client_out_ch, env.buffers);
  client_out_ch->BindConsumer(client_out, env.scheduler);

  env.poller->WatchConnection(client_raw, client_in);
  env.scheduler->NotifyRunnable(client_in);
  registry_.Adopt(std::move(graph), std::move(watch), env);
}

}  // namespace flick::services
