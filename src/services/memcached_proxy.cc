#include "services/memcached_proxy.h"

#include "base/hash.h"
#include "proto/memcached.h"
#include "services/graph_builder.h"

namespace flick::services {

void MemcachedProxyService::OnConnection(std::unique_ptr<Connection> conn,
                                         runtime::PlatformEnv& env) {
  const size_t n = backends_.size();
  const grammar::Unit* unit = &proto::MemcachedUnit();

  GraphBuilder b("memcached-proxy", env);
  auto client = b.Adopt(std::move(conn));

  // Request path: parse with the projected unit (opcode/key only).
  auto request = b.Source("client-in", client,
                          std::make_unique<runtime::GrammarDeserializer>(unit));

  // Dispatch: `hash(req.key) mod len(backends)` (Listing 1). Outputs 0..n-1
  // are the backend legs, output n the client; input 0 is the client,
  // inputs 1..n the backends — fixed below by edge declaration order.
  auto dispatch =
      b.Stage("dispatch",
              [this, n](runtime::Msg& msg, size_t input_index,
                        runtime::EmitContext& emit) {
                if (msg.kind == runtime::Msg::Kind::kEof) {
                  if (input_index == 0) {
                    // Client left: close all backend legs.
                    for (size_t o = 0; o < n; ++o) {
                      runtime::MsgRef eof = emit.NewMsg();
                      eof->kind = runtime::Msg::Kind::kEof;
                      (void)emit.Emit(o, std::move(eof));
                    }
                    runtime::MsgRef eof = emit.NewMsg();
                    eof->kind = runtime::Msg::Kind::kEof;
                    (void)emit.Emit(n, std::move(eof));  // and the client leg
                  }
                  return runtime::HandleResult::kConsumed;
                }
                if (input_index == 0) {
                  // Request from the client: route by key hash.
                  proto::MemcachedCommand cmd(&msg.gmsg);
                  const size_t target = HashBytes(cmd.key()) % n;
                  runtime::MsgRef fwd = emit.NewMsg();
                  fwd->kind = runtime::Msg::Kind::kGrammar;
                  fwd->gmsg = msg.gmsg;
                  if (!emit.Emit(target, std::move(fwd))) {
                    return runtime::HandleResult::kBlocked;
                  }
                  requests_.fetch_add(1, std::memory_order_relaxed);
                  return runtime::HandleResult::kConsumed;
                }
                // Response from a backend: forward to the client (output n).
                runtime::MsgRef resp = emit.NewMsg();
                resp->kind = runtime::Msg::Kind::kGrammar;
                resp->gmsg = msg.gmsg;
                return emit.Emit(n, std::move(resp))
                           ? runtime::HandleResult::kConsumed
                           : runtime::HandleResult::kBlocked;
              })
          .From(request);

  // One persistent connection per backend for this client (Figure 3b). A dial
  // failure poisons the builder and Launch() closes the already-established
  // legs as well as the client.
  auto legs = b.FanOut(
      backends_, "backend",
      [unit] { return std::make_unique<runtime::GrammarSerializer>(unit); },
      [unit] { return std::make_unique<runtime::GrammarDeserializer>(unit); },
      /*capacity=*/64);
  for (auto& leg : legs) {
    leg.sink.From(dispatch);  // dispatch outputs 0..n-1
  }
  b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
      .From(dispatch);  // dispatch output n
  for (auto& leg : legs) {
    dispatch.From(leg.source);  // dispatch inputs 1..n
  }

  (void)b.Launch(registry_);
}

}  // namespace flick::services
