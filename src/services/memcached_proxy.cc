#include "services/memcached_proxy.h"

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "base/hash.h"
#include "proto/memcached.h"
#include "runtime/state_store.h"

namespace flick::services {

MemcachedProxyService::MemcachedProxyService(std::vector<uint16_t> backend_ports)
    : MemcachedProxyService(std::move(backend_ports), Options()) {}

MemcachedProxyService::MemcachedProxyService(std::vector<uint16_t> backend_ports,
                                             Options options)
    : backends_(std::move(backend_ports)), options_(options) {
  if (options_.wire.mode == BackendMode::kPooled) {
    const grammar::Unit* unit = &proto::MemcachedUnit();
    BackendPoolConfig cfg;
    cfg.ports = backends_;
    options_.wire.ApplyTo(cfg);
    cfg.make_serializer = [unit] {
      return std::make_unique<runtime::GrammarSerializer>(unit);
    };
    cfg.make_deserializer = [unit] {
      return std::make_unique<runtime::GrammarDeserializer>(unit);
    };
    pool_ = std::make_unique<BackendPool>(std::move(cfg));
  }
}

// Dispatch: `hash(req.key) mod len(backends)` (Listing 1). Outputs 0..n-1
// are the backend legs (pooled or dedicated), output n the client; input 0
// is the client, inputs 1..n the backends — fixed by edge declaration order
// in OnConnection.
NodeRef MemcachedProxyService::DispatchStage(GraphBuilder& b, size_t n) {
  return b.Stage(
      "dispatch", [this, n](runtime::Msg& msg, size_t input_index,
                            runtime::EmitContext& emit) {
        if (msg.kind == runtime::Msg::Kind::kEof) {
          if (input_index != 0) {
            return runtime::HandleResult::kConsumed;
          }
          // Client left: signal all backend legs and the client leg (a
          // pooled leg treats the EOF as "this graph is done" without
          // touching the shared wire). All-or-nothing: a dropped EOF would
          // leave client-out open and the graph unretirable, so block until
          // every output has room — safe to pre-check, this stage is each
          // output's only producer.
          for (size_t o = 0; o <= n; ++o) {
            if (!emit.CanEmit(o)) {
              return runtime::HandleResult::kBlocked;
            }
          }
          for (size_t o = 0; o <= n; ++o) {
            runtime::MsgRef eof = emit.NewMsg();
            eof->kind = runtime::Msg::Kind::kEof;
            emit.Emit(o, std::move(eof));
          }
          return runtime::HandleResult::kConsumed;
        }
        if (input_index == 0) {
          // Request from the client: route by key hash.
          proto::MemcachedCommand cmd(&msg.gmsg);
          const size_t target = HashBytes(cmd.key()) % n;
          runtime::MsgRef fwd = emit.NewMsg();
          fwd->kind = runtime::Msg::Kind::kGrammar;
          fwd->gmsg = msg.gmsg;
          if (!emit.Emit(target, std::move(fwd))) {
            return runtime::HandleResult::kBlocked;
          }
          requests_.fetch_add(1, std::memory_order_relaxed);
          return runtime::HandleResult::kConsumed;
        }
        if (msg.kind == runtime::Msg::Kind::kError) {
          // The backend leg failed this request (deadline expiry, open
          // circuit, lost wire): answer INTERNAL_ERROR in its FIFO position
          // so the client fails fast instead of hanging. The plain stage
          // keeps no per-request state, so opcode/opaque cannot be echoed.
          runtime::MsgRef resp = emit.NewMsg();
          resp->kind = runtime::Msg::Kind::kGrammar;
          proto::BuildResponse(&resp->gmsg, proto::kMemcachedGet,
                               proto::kMemcachedStatusInternalError,
                               /*key=*/{}, /*value=*/msg.bytes);
          return emit.Emit(n, std::move(resp))
                     ? runtime::HandleResult::kConsumed
                     : runtime::HandleResult::kBlocked;
        }
        // Response from a backend: forward to the client (output n).
        runtime::MsgRef resp = emit.NewMsg();
        resp->kind = runtime::Msg::Kind::kGrammar;
        resp->gmsg = msg.gmsg;
        return emit.Emit(n, std::move(resp)) ? runtime::HandleResult::kConsumed
                                             : runtime::HandleResult::kBlocked;
      });
}

// Look-aside cache variant of the dispatch stage. Same topology (input 0
// client, inputs 1..n backends, outputs 0..n-1 backends, output n client),
// plus:
//  * GET/GETK hit: answered straight from the StateStore — build the
//    response locally (mirroring the backend's reply shape: OK, key echoed
//    only for GETK, requester's opaque) and emit to the client. No pool
//    lease, no backend leg touched.
//  * GET/GETK miss: snapshot the invalidation epoch, forward to the backend,
//    and remember the flight in a per-leg FIFO so the response path can
//    populate. Per-leg response order is FIFO (pool correlation for pooled
//    legs, a dedicated pipelined wire per client otherwise), so a plain
//    deque correlates responses to flights.
//  * Keyed write (SET et al.): invalidate the entry BEFORE forwarding (stale
//    hits stop immediately) and again on the response path (the backend has
//    committed; the second bump widens invalidate-wins coverage to populates
//    that read the pre-write value from the backend).
//
// Blocked-retry discipline (a kBlocked handler re-runs with the SAME
// message): every side effect — counters, store writes, flight records —
// happens only after the emit that commits the message has succeeded; the
// hit path pre-checks CanEmit before building the reply.
NodeRef MemcachedProxyService::CachingDispatchStage(GraphBuilder& b, size_t n,
                                                    runtime::StateStore* store) {
  struct Flight {
    enum class Kind : uint8_t { kNone, kPopulate, kInvalidate };
    std::string key;
    uint64_t epoch = 0;  // kPopulate: epoch snapshotted before the fetch
    Kind kind = Kind::kNone;
    // Echoed into the synthesized reply when the leg FAILS the flight
    // (degrade-to-cache / INTERNAL_ERROR paths).
    uint8_t opcode = proto::kMemcachedGet;
    uint32_t opaque = 0;
  };
  // Per-graph flight FIFOs, one per backend leg; the stage handler is the
  // only reader and writer (a graph's stage runs single-threaded).
  auto flights = std::make_shared<std::vector<std::deque<Flight>>>(n);
  CacheCounters* counters = &registry_.cache_counters();
  const CacheOptions cache = options_.cache;
  // Last-known-good copies live beside the cache dict, never invalidated.
  const std::string stale_dict = cache.dict + "/stale";
  return b.Stage(
      "dispatch", [this, n, store, flights, counters, cache, stale_dict](
                      runtime::Msg& msg, size_t input_index,
                      runtime::EmitContext& emit) {
        if (msg.kind == runtime::Msg::Kind::kEof) {
          if (input_index != 0) {
            return runtime::HandleResult::kConsumed;
          }
          // Client left: same all-or-nothing EOF broadcast as the plain
          // dispatch stage.
          for (size_t o = 0; o <= n; ++o) {
            if (!emit.CanEmit(o)) {
              return runtime::HandleResult::kBlocked;
            }
          }
          for (size_t o = 0; o <= n; ++o) {
            runtime::MsgRef eof = emit.NewMsg();
            eof->kind = runtime::Msg::Kind::kEof;
            emit.Emit(o, std::move(eof));
          }
          return runtime::HandleResult::kConsumed;
        }
        if (input_index == 0) {
          proto::MemcachedCommand cmd(&msg.gmsg);
          const uint8_t op = cmd.opcode();
          const bool is_get =
              op == proto::kMemcachedGet || op == proto::kMemcachedGetK;
          if (is_get) {
            const std::string key(cmd.key());
            if (std::optional<std::string> hit = store->Get(cache.dict, key)) {
              if (!emit.CanEmit(n)) {
                return runtime::HandleResult::kBlocked;
              }
              runtime::MsgRef resp = emit.NewMsg();
              resp->kind = runtime::Msg::Kind::kGrammar;
              proto::BuildResponse(&resp->gmsg, op, proto::kMemcachedStatusOk,
                                   op == proto::kMemcachedGetK
                                       ? std::string_view(key)
                                       : std::string_view{},
                                   *hit, cmd.opaque());
              emit.Emit(n, std::move(resp));
              counters->hits.fetch_add(1, std::memory_order_relaxed);
              requests_.fetch_add(1, std::memory_order_relaxed);
              return runtime::HandleResult::kConsumed;
            }
          }
          // Miss or non-GET: proxy through the backend plane.
          const size_t target = HashBytes(cmd.key()) % n;
          Flight flight;
          flight.opcode = op;
          flight.opaque = cmd.opaque();
          if (is_get) {
            flight.key = std::string(cmd.key());
            // Snapshot BEFORE the fetch is issued: any invalidation that
            // lands from here on must beat the populate.
            flight.epoch = store->InvalidationEpoch(cache.dict, flight.key);
            flight.kind = Flight::Kind::kPopulate;
          } else if (!cmd.key().empty()) {
            flight.key = std::string(cmd.key());
            flight.kind = Flight::Kind::kInvalidate;
          }
          runtime::MsgRef fwd = emit.NewMsg();
          fwd->kind = runtime::Msg::Kind::kGrammar;
          fwd->gmsg = msg.gmsg;
          if (!emit.Emit(target, std::move(fwd))) {
            return runtime::HandleResult::kBlocked;
          }
          if (flight.kind == Flight::Kind::kPopulate) {
            counters->misses.fetch_add(1, std::memory_order_relaxed);
          } else if (flight.kind == Flight::Kind::kInvalidate) {
            store->Erase(cache.dict, flight.key);
            counters->invalidations.fetch_add(1, std::memory_order_relaxed);
          }
          (*flights)[target].push_back(std::move(flight));
          requests_.fetch_add(1, std::memory_order_relaxed);
          return runtime::HandleResult::kConsumed;
        }
        // Response from backend leg input_index-1. Pre-check the client
        // output so the flight pop happens exactly once per response (this
        // stage is output n's only producer, so CanEmit cannot be raced).
        if (!emit.CanEmit(n)) {
          return runtime::HandleResult::kBlocked;
        }
        std::deque<Flight>& leg = (*flights)[input_index - 1];
        Flight flight;
        if (!leg.empty()) {
          flight = std::move(leg.front());
          leg.pop_front();
        }
        if (msg.kind == runtime::Msg::Kind::kError) {
          // The leg failed this flight (deadline expiry, open circuit, lost
          // wire with no retry left). A failed GET degrades to the
          // last-known-good copy when one exists — outage availability over
          // freshness; everything else answers INTERNAL_ERROR so the client
          // fails fast instead of hanging to the detach timeout.
          runtime::MsgRef resp = emit.NewMsg();
          resp->kind = runtime::Msg::Kind::kGrammar;
          if (flight.kind == Flight::Kind::kPopulate && cache.serve_stale) {
            if (std::optional<std::string> stale =
                    store->Get(stale_dict, flight.key)) {
              proto::BuildResponse(&resp->gmsg, flight.opcode,
                                   proto::kMemcachedStatusOk,
                                   flight.opcode == proto::kMemcachedGetK
                                       ? std::string_view(flight.key)
                                       : std::string_view{},
                                   *stale, flight.opaque);
              emit.Emit(n, std::move(resp));
              counters->stale_served.fetch_add(1, std::memory_order_relaxed);
              return runtime::HandleResult::kConsumed;
            }
          }
          proto::BuildResponse(&resp->gmsg, flight.opcode,
                               proto::kMemcachedStatusInternalError,
                               /*key=*/{}, /*value=*/msg.bytes, flight.opaque);
          emit.Emit(n, std::move(resp));
          return runtime::HandleResult::kConsumed;
        }
        if (flight.kind == Flight::Kind::kPopulate) {
          proto::MemcachedCommand resp(&msg.gmsg);
          if (resp.status() == proto::kMemcachedStatusOk &&
              resp.value().size() <= cache.max_value_bytes) {
            if (!store->PutIfFresh(cache.dict, flight.key,
                                   std::string(resp.value()), flight.epoch)) {
              counters->stale_populates_dropped.fetch_add(
                  1, std::memory_order_relaxed);
            }
            if (cache.serve_stale) {
              // Last-known-good copy for degrade-to-cache: a plain Put,
              // deliberately exempt from invalidate-wins — staleness is the
              // feature when the backend is gone.
              store->Put(stale_dict, flight.key, std::string(resp.value()));
            }
          }
        } else if (flight.kind == Flight::Kind::kInvalidate) {
          store->Erase(cache.dict, flight.key);
        }
        runtime::MsgRef resp = emit.NewMsg();
        resp->kind = runtime::Msg::Kind::kGrammar;
        resp->gmsg = msg.gmsg;
        emit.Emit(n, std::move(resp));
        return runtime::HandleResult::kConsumed;
      });
}

void MemcachedProxyService::OnConnection(std::unique_ptr<Connection> conn,
                                         runtime::PlatformEnv& env) {
  const size_t n = backends_.size();
  const grammar::Unit* unit = &proto::MemcachedUnit();

  GraphBuilder b("memcached-proxy", env);
  // One watermark for the whole write path: the pool config batches the
  // backend wires, this batches the client-facing sinks.
  options_.wire.ApplyTo(b);
  auto client = b.Adopt(std::move(conn));

  // Request path: parse with the projected unit (opcode/key only).
  auto request = b.Source("client-in", client,
                          std::make_unique<runtime::GrammarDeserializer>(unit));
  auto dispatch = (options_.cache.enabled
                       ? CachingDispatchStage(b, n, env.state)
                       : DispatchStage(b, n))
                      .From(request);

  if (options_.wire.mode == BackendMode::kPooled) {
    // Shared transport: one lease over the pool's persistent connections.
    // Nothing is dialled; a pool failure poisons the builder and Launch()
    // returns the lease.
    auto legs = b.FanOutPooled(*pool_, /*capacity=*/64);
    for (auto& leg : legs) {
      leg.sink.From(dispatch);  // dispatch outputs 0..n-1
    }
    b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(dispatch);  // dispatch output n
    for (auto& leg : legs) {
      dispatch.From(leg.source);  // dispatch inputs 1..n
    }
  } else {
    // One persistent connection per backend for this client (Figure 3b). A
    // dial failure poisons the builder and Launch() closes the established
    // legs as well as the client.
    auto legs = b.FanOut(
        backends_, "backend",
        [unit] { return std::make_unique<runtime::GrammarSerializer>(unit); },
        [unit] { return std::make_unique<runtime::GrammarDeserializer>(unit); },
        /*capacity=*/64);
    for (auto& leg : legs) {
      leg.sink.From(dispatch);
    }
    b.Sink("client-out", client, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(dispatch);
    for (auto& leg : legs) {
      dispatch.From(leg.source);
    }
  }

  if (const Status launched = b.Launch(registry_); !launched.ok()) {
    // Launch already closed every leg (client conn included) and returned
    // any pool leases; all that is left is to account for the failure.
    registry_.CountLaunchFailure();
  }
}

}  // namespace flick::services
