#include "services/hadoop_agg.h"

#include "proto/hadoop.h"
#include "runtime/compute_task.h"
#include "runtime/io_tasks.h"

namespace flick::services {
namespace {

int OrderByKey(const runtime::Msg& a, const runtime::Msg& b) {
  const auto ka = a.gmsg.GetBytes(proto::HadoopKv::kKey);
  const auto kb = b.gmsg.GetBytes(proto::HadoopKv::kKey);
  const int cmp = ka.compare(kb);
  return cmp < 0 ? -1 : (cmp == 0 ? 0 : 1);
}

void CombineByAdding(runtime::Msg& into, const runtime::Msg& from) {
  const std::string combined =
      proto::CombineCounts(into.gmsg.GetBytes(proto::HadoopKv::kValue),
                           from.gmsg.GetBytes(proto::HadoopKv::kValue));
  into.gmsg.SetBytes(proto::HadoopKv::kValue, combined);
}

}  // namespace

void HadoopAggService::OnConnection(std::unique_ptr<Connection> conn,
                                    runtime::PlatformEnv& env) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(conn));
    if (static_cast<int>(pending_.size()) < expected_mappers_) {
      return;
    }
  }
  BuildGraph(env);
}

void HadoopAggService::BuildGraph(runtime::PlatformEnv& env) {
  std::vector<std::unique_ptr<Connection>> mappers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mappers.swap(pending_);
  }

  auto reducer_conn = env.transport->Connect(reducer_port_);
  if (!reducer_conn.ok()) {
    for (auto& m : mappers) {
      m->Close();
    }
    return;
  }

  auto graph = std::make_unique<runtime::TaskGraph>("hadoop-agg");
  std::vector<Connection*> watch;

  // Leaves: one input task per mapper connection.
  std::vector<runtime::Channel*> level;
  for (size_t m = 0; m < mappers.size(); ++m) {
    runtime::Channel* ch = graph->AddChannel(256);
    Connection* raw = mappers[m].get();
    auto* in = graph->AddTask<runtime::InputTask>(
        "mapper-in-" + std::to_string(m), std::move(mappers[m]),
        std::make_unique<runtime::GrammarDeserializer>(&proto::HadoopKvUnit()), ch,
        env.msgs, env.buffers);
    env.poller->WatchConnection(raw, in);
    env.scheduler->NotifyRunnable(in);
    watch.push_back(raw);
    level.push_back(ch);
  }

  // Binary merge tree ("combining elements in a pair-wise manner until only
  // the result remains", §4.3).
  int merge_id = 0;
  while (level.size() > 1) {
    std::vector<runtime::Channel*> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      runtime::Channel* out = graph->AddChannel(256);
      auto* merge = graph->AddTask<runtime::MergeTask>(
          "merge-" + std::to_string(merge_id++), OrderByKey, CombineByAdding);
      merge->BindInputs(level[i], level[i + 1], env.scheduler);
      merge->BindOutput(out);
      next.push_back(out);
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());  // odd stream carries to the next level
    }
    level = std::move(next);
  }

  auto* out = graph->AddTask<runtime::OutputTask>(
      "reducer-out", std::move(reducer_conn).value(),
      std::make_unique<runtime::GrammarSerializer>(&proto::HadoopKvUnit()), level.front(),
      env.buffers);
  level.front()->BindConsumer(out, env.scheduler);

  registry_.Adopt(std::move(graph), std::move(watch), env);
}

}  // namespace flick::services
