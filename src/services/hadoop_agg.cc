#include "services/hadoop_agg.h"

#include "proto/hadoop.h"
#include "services/graph_builder.h"

namespace flick::services {
namespace {

int OrderByKey(const runtime::Msg& a, const runtime::Msg& b) {
  const auto ka = a.gmsg.GetBytes(proto::HadoopKv::kKey);
  const auto kb = b.gmsg.GetBytes(proto::HadoopKv::kKey);
  const int cmp = ka.compare(kb);
  return cmp < 0 ? -1 : (cmp == 0 ? 0 : 1);
}

void CombineByAdding(runtime::Msg& into, const runtime::Msg& from) {
  const std::string combined =
      proto::CombineCounts(into.gmsg.GetBytes(proto::HadoopKv::kValue),
                           from.gmsg.GetBytes(proto::HadoopKv::kValue));
  into.gmsg.SetBytes(proto::HadoopKv::kValue, combined);
}

}  // namespace

HadoopAggService::HadoopAggService(int expected_mappers, uint16_t reducer_port,
                                   Options options)
    : expected_mappers_(expected_mappers),
      reducer_port_(reducer_port),
      options_(options) {
  if (options_.wire.mode == BackendMode::kPooled) {
    const grammar::Unit* unit = &proto::HadoopKvUnit();
    BackendPoolConfig cfg;
    cfg.ports = {reducer_port_};
    options_.wire.ApplyTo(cfg);
    cfg.make_serializer = [unit] {
      return std::make_unique<runtime::GrammarSerializer>(unit);
    };
    // The reducer never answers; the codec is required by the pool contract
    // and would only run if the peer (unexpectedly) wrote back.
    cfg.make_deserializer = [unit] {
      return std::make_unique<runtime::GrammarDeserializer>(unit);
    };
    pool_ = std::make_unique<BackendPool>(std::move(cfg));
  }
}

void HadoopAggService::OnConnection(std::unique_ptr<Connection> conn,
                                    runtime::PlatformEnv& env) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(conn));
    if (static_cast<int>(pending_.size()) < expected_mappers_) {
      return;
    }
  }
  BuildGraph(env);
}

void HadoopAggService::BuildGraph(runtime::PlatformEnv& env) {
  std::vector<std::unique_ptr<Connection>> mappers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mappers.swap(pending_);
  }

  // Claim the reducer slot BEFORE wiring anything: if every pool slot is
  // busy (more concurrent batches than wire.conns_per_backend), this batch
  // falls back
  // to a dedicated dialled leg instead of being dropped — slot pressure must
  // never lose data the mappers already sent.
  PoolLease reducer_lease;
  if (pool_ != nullptr && pool_->EnsureStarted(env).ok()) {
    auto lease = pool_->AcquireExclusive(/*backend_index=*/0, env.io_shard);
    if (lease.ok()) {
      reducer_lease = std::move(lease).value();
    }
  }
  if (pool_ != nullptr && !reducer_lease.valid()) {
    dedicated_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  const grammar::Unit* unit = &proto::HadoopKvUnit();
  GraphBuilder b("hadoop-agg", env);
  options_.wire.ApplyTo(b.DefaultCapacity(256));

  // Leaves: one input task per mapper connection. If the reducer leg below
  // fails, Launch() closes every adopted mapper connection.
  std::vector<NodeRef> streams;
  for (size_t m = 0; m < mappers.size(); ++m) {
    auto mapper = b.Adopt(std::move(mappers[m]));
    streams.push_back(b.Source("mapper-in-" + std::to_string(m), mapper,
                               std::make_unique<runtime::GrammarDeserializer>(unit)));
  }

  // Binary merge tree ("combining elements in a pair-wise manner until only
  // the result remains", §4.3), rooted at the reducer leg.
  auto root = b.MergeTree("merge", std::move(streams), OrderByKey, CombineByAdding);
  if (reducer_lease.valid()) {
    // Streaming sink on an exclusive lease: the reducer wire outlives this
    // graph and the next batch's graph claims it again without a dial.
    b.ExclusivePoolLeg(*pool_, std::move(reducer_lease), /*backend_index=*/0)
        .From(root);
  } else {
    auto reducer = b.Connect(reducer_port_);
    b.Sink("reducer-out", reducer, std::make_unique<runtime::GrammarSerializer>(unit))
        .From(root);
  }

  if (const Status launched = b.Launch(registry_); !launched.ok()) {
    // Launch already closed every leg (client conn included) and returned
    // any pool leases; all that is left is to account for the failure.
    registry_.CountLaunchFailure();
  }
}

}  // namespace flick::services
