#include "services/hadoop_agg.h"

#include "proto/hadoop.h"
#include "services/graph_builder.h"

namespace flick::services {
namespace {

int OrderByKey(const runtime::Msg& a, const runtime::Msg& b) {
  const auto ka = a.gmsg.GetBytes(proto::HadoopKv::kKey);
  const auto kb = b.gmsg.GetBytes(proto::HadoopKv::kKey);
  const int cmp = ka.compare(kb);
  return cmp < 0 ? -1 : (cmp == 0 ? 0 : 1);
}

void CombineByAdding(runtime::Msg& into, const runtime::Msg& from) {
  const std::string combined =
      proto::CombineCounts(into.gmsg.GetBytes(proto::HadoopKv::kValue),
                           from.gmsg.GetBytes(proto::HadoopKv::kValue));
  into.gmsg.SetBytes(proto::HadoopKv::kValue, combined);
}

}  // namespace

void HadoopAggService::OnConnection(std::unique_ptr<Connection> conn,
                                    runtime::PlatformEnv& env) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(conn));
    if (static_cast<int>(pending_.size()) < expected_mappers_) {
      return;
    }
  }
  BuildGraph(env);
}

void HadoopAggService::BuildGraph(runtime::PlatformEnv& env) {
  std::vector<std::unique_ptr<Connection>> mappers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mappers.swap(pending_);
  }

  const grammar::Unit* unit = &proto::HadoopKvUnit();
  GraphBuilder b("hadoop-agg", env);
  b.DefaultCapacity(256);

  // Leaves: one input task per mapper connection. If the reducer dial below
  // fails, Launch() closes every adopted mapper connection.
  std::vector<NodeRef> streams;
  for (size_t m = 0; m < mappers.size(); ++m) {
    auto mapper = b.Adopt(std::move(mappers[m]));
    streams.push_back(b.Source("mapper-in-" + std::to_string(m), mapper,
                               std::make_unique<runtime::GrammarDeserializer>(unit)));
  }

  // Binary merge tree ("combining elements in a pair-wise manner until only
  // the result remains", §4.3), rooted at the reducer connection.
  auto root = b.MergeTree("merge", std::move(streams), OrderByKey, CombineByAdding);
  auto reducer = b.Connect(reducer_port_);
  b.Sink("reducer-out", reducer, std::make_unique<runtime::GrammarSerializer>(unit))
      .From(root);

  (void)b.Launch(registry_);
}

}  // namespace flick::services
