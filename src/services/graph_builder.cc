#include "services/graph_builder.h"

#include <utility>

#include "runtime/io_tasks.h"
#include "runtime/task_graph.h"

namespace flick::services {
namespace {

// Deep copy for Tee duplication: pooled Msg objects retain internal buffer
// capacity, so steady-state copies do not allocate.
void CopyMsg(runtime::Msg& dst, const runtime::Msg& src) {
  dst.kind = src.kind;
  dst.conn_id = src.conn_id;
  dst.route = src.route;
  switch (src.kind) {
    case runtime::Msg::Kind::kGrammar:
      dst.gmsg = src.gmsg;
      break;
    case runtime::Msg::Kind::kHttp:
      dst.http = src.http;
      break;
    case runtime::Msg::Kind::kBytes:
      dst.bytes = src.bytes;
      break;
    case runtime::Msg::Kind::kEof:
      break;
    case runtime::Msg::Kind::kError:
      dst.bytes = src.bytes;  // reason string
      break;
  }
}

// All-or-nothing duplication: either every output accepts a copy or the
// message is redelivered, so a partially full fan-out never drops or
// double-sends a message.
runtime::HandleResult TeeHandler(runtime::Msg& msg, size_t /*input_index*/,
                                 runtime::EmitContext& emit) {
  for (size_t i = 0; i < emit.output_count(); ++i) {
    if (!emit.CanEmit(i)) {
      return runtime::HandleResult::kBlocked;
    }
  }
  for (size_t i = 0; i < emit.output_count(); ++i) {
    runtime::MsgRef copy = emit.NewMsg();
    CopyMsg(*copy, msg);
    emit.Emit(i, std::move(copy));
  }
  return runtime::HandleResult::kConsumed;
}

}  // namespace

NodeRef NodeRef::From(NodeRef upstream, size_t capacity) {
  if (builder_ == nullptr || !upstream.valid()) {
    return *this;
  }
  if (upstream.builder_ != builder_) {
    builder_->Poison(InvalidArgument("edge spans two builders"));
    return *this;
  }
  builder_->AddEdge(upstream.index_, index_, capacity);
  return *this;
}

GraphBuilder::GraphBuilder(std::string name, runtime::PlatformEnv& env)
    : name_(std::move(name)), env_(env) {}

GraphBuilder::~GraphBuilder() { ReleaseAllLegs(); }

GraphBuilder& GraphBuilder::DefaultCapacity(size_t capacity) {
  if (capacity > 0) {
    default_capacity_ = capacity;
  }
  return *this;
}

GraphBuilder& GraphBuilder::FlushWatermark(size_t bytes) {
  flush_watermark_ = bytes;
  return *this;
}

GraphBuilder& GraphBuilder::FillWindow(size_t buffers) {
  // 0 normalises to 1 (legacy one-buffer reads), matching
  // AdaptiveFillWindow::set_max so the knob means the same thing on client
  // sources and pooled wires.
  fill_window_ = buffers == 0 ? 1 : buffers;
  return *this;
}

GraphBuilder& GraphBuilder::IdleTimeout(uint64_t ns) {
  idle_timeout_override_ = ns;
  return *this;
}

GraphBuilder& GraphBuilder::HeaderDeadline(uint64_t ns) {
  header_deadline_override_ = ns;
  return *this;
}

ConnRef GraphBuilder::Adopt(std::unique_ptr<Connection> conn) {
  if (conn == nullptr) {
    Poison(InvalidArgument("Adopt: null connection"));
    return ConnRef();
  }
  // Recorded even on a poisoned builder so cleanup closes it.
  ConnSpec spec;
  spec.raw = conn.get();
  spec.owned = std::move(conn);
  conns_.push_back(std::move(spec));
  return ConnRef(conns_.size() - 1);
}

ConnRef GraphBuilder::Connect(uint16_t port) {
  if (!status_.ok()) {
    return ConnRef();  // already failing: do not dial further legs
  }
  auto conn = env_.transport->Connect(port);
  if (!conn.ok()) {
    Poison(conn.status());
    return ConnRef();
  }
  const ConnRef ref = Adopt(std::move(conn).value());
  if (ref.valid()) {
    conns_[ref.index_].client = false;  // backend wire: no lifetime deadlines
  }
  return ref;
}

NodeRef GraphBuilder::Source(std::string name, ConnRef conn,
                             std::unique_ptr<runtime::Deserializer> codec,
                             size_t capacity) {
  if (!status_.ok()) {
    return NodeRef();
  }
  if (!conn.valid() || codec == nullptr) {
    Poison(InvalidArgument("Source '" + name + "': invalid connection or codec"));
    return NodeRef();
  }
  if (conns_[conn.index_].source_node != static_cast<size_t>(-1)) {
    Poison(InvalidArgument("Source '" + name + "': connection already has a reader"));
    return NodeRef();
  }
  NodeSpec spec;
  spec.kind = NodeKind::kSource;
  spec.name = std::move(name);
  spec.conn = conn.index_;
  spec.deserializer = std::move(codec);
  spec.preferred_capacity = capacity;
  NodeRef ref = AddNode(std::move(spec));
  conns_[conn.index_].source_node = ref.index_;
  conns_[conn.index_].referenced = true;
  return ref;
}

NodeRef GraphBuilder::Stage(std::string name, runtime::ComputeTask::Handler handler) {
  if (!status_.ok()) {
    return NodeRef();
  }
  if (handler == nullptr) {
    Poison(InvalidArgument("Stage '" + name + "': null handler"));
    return NodeRef();
  }
  NodeSpec spec;
  spec.kind = NodeKind::kStage;
  spec.name = std::move(name);
  spec.handler = std::move(handler);
  return AddNode(std::move(spec));
}

NodeRef GraphBuilder::Sink(std::string name, ConnRef conn,
                           std::unique_ptr<runtime::Serializer> codec) {
  if (!status_.ok()) {
    return NodeRef();
  }
  if (!conn.valid() || codec == nullptr) {
    Poison(InvalidArgument("Sink '" + name + "': invalid connection or codec"));
    return NodeRef();
  }
  // One writer per wire: a second OutputTask would interleave partial writes
  // on the same connection.
  if (conns_[conn.index_].sink_node != static_cast<size_t>(-1)) {
    Poison(InvalidArgument("Sink '" + name + "': connection already has a writer"));
    return NodeRef();
  }
  NodeSpec spec;
  spec.kind = NodeKind::kSink;
  spec.name = std::move(name);
  spec.conn = conn.index_;
  spec.serializer = std::move(codec);
  NodeRef ref = AddNode(std::move(spec));
  conns_[conn.index_].sink_node = ref.index_;
  conns_[conn.index_].referenced = true;
  return ref;
}

NodeRef GraphBuilder::Merge(std::string name, runtime::MergeTask::OrderFn order,
                            runtime::MergeTask::CombineFn combine, size_t capacity) {
  if (!status_.ok()) {
    return NodeRef();
  }
  if (order == nullptr || combine == nullptr) {
    Poison(InvalidArgument("Merge '" + name + "': null order/combine"));
    return NodeRef();
  }
  NodeSpec spec;
  spec.kind = NodeKind::kMerge;
  spec.name = std::move(name);
  spec.order = std::move(order);
  spec.combine = std::move(combine);
  spec.preferred_capacity = capacity;
  return AddNode(std::move(spec));
}

NodeRef GraphBuilder::Tee(std::string name) {
  if (!status_.ok()) {
    return NodeRef();
  }
  NodeSpec spec;
  spec.kind = NodeKind::kTee;
  spec.name = std::move(name);
  return AddNode(std::move(spec));
}

size_t GraphBuilder::PoolUseIndex(BackendPool& pool) {
  for (size_t i = 0; i < pool_uses_.size(); ++i) {
    // Exclusive legs own their lease; only the shared lease is reused.
    if (pool_uses_[i].pool == &pool && !pool_uses_[i].lease.exclusive()) {
      return i;
    }
  }
  // Lease from the launching shard's stripe: the whole leg — graph tasks,
  // watches, pooled wire — stays on one shard unless the stripe is exhausted.
  auto lease = pool.Acquire(env_.io_shard);
  if (!lease.ok()) {
    Poison(lease.status());
    return static_cast<size_t>(-1);
  }
  pool_uses_.push_back(PoolUse{&pool, std::move(lease).value()});
  return pool_uses_.size() - 1;
}

GraphBuilder::PooledLeg GraphBuilder::PoolLeg(BackendPool& pool, size_t backend_index,
                                              size_t capacity) {
  if (!status_.ok()) {
    return PooledLeg{};
  }
  if (Status s = pool.EnsureStarted(env_); !s.ok()) {
    Poison(std::move(s));
    return PooledLeg{};
  }
  if (backend_index >= pool.backend_count()) {
    Poison(InvalidArgument("PoolLeg: backend index out of range"));
    return PooledLeg{};
  }
  const size_t use = PoolUseIndex(pool);
  if (!status_.ok()) {
    return PooledLeg{};
  }
  const std::string suffix = "-" + std::to_string(backend_index);
  PooledLeg leg;
  {
    NodeSpec spec;
    spec.kind = NodeKind::kPoolSink;
    spec.name = "pool-out" + suffix;
    spec.preferred_capacity = capacity;
    leg.sink = AddNode(std::move(spec));
  }
  {
    NodeSpec spec;
    spec.kind = NodeKind::kPoolSource;
    spec.name = "pool-in" + suffix;
    spec.preferred_capacity = capacity;
    leg.source = AddNode(std::move(spec));
  }
  pool_bindings_.push_back(
      PoolBinding{use, backend_index, leg.sink.index_, leg.source.index_});
  return leg;
}

NodeRef GraphBuilder::ExclusivePoolLeg(BackendPool& pool, size_t backend_index,
                                       size_t capacity) {
  if (!status_.ok()) {
    return NodeRef();
  }
  if (Status s = pool.EnsureStarted(env_); !s.ok()) {
    Poison(std::move(s));
    return NodeRef();
  }
  if (backend_index >= pool.backend_count()) {
    Poison(InvalidArgument("ExclusivePoolLeg: backend index out of range"));
    return NodeRef();
  }
  // Own lease per exclusive leg — never shared with the builder's pooled
  // fan-out lease, so the claimed slot is this stream's alone.
  auto lease = pool.AcquireExclusive(backend_index, env_.io_shard);
  if (!lease.ok()) {
    Poison(lease.status());
    return NodeRef();
  }
  return ExclusivePoolLeg(pool, std::move(lease).value(), backend_index, capacity);
}

NodeRef GraphBuilder::ExclusivePoolLeg(BackendPool& pool, PoolLease lease,
                                       size_t backend_index, size_t capacity) {
  if (!status_.ok()) {
    pool.Release(lease);  // poisoned builders must not strand a caller's lease
    return NodeRef();
  }
  if (!lease.valid() || !lease.exclusive() || backend_index >= pool.backend_count()) {
    pool.Release(lease);
    Poison(InvalidArgument("ExclusivePoolLeg: invalid lease or backend index"));
    return NodeRef();
  }
  pool_uses_.push_back(PoolUse{&pool, std::move(lease)});
  NodeSpec spec;
  spec.kind = NodeKind::kPoolSink;
  spec.name = "pool-stream-out-" + std::to_string(backend_index);
  spec.preferred_capacity = capacity;
  NodeRef sink = AddNode(std::move(spec));
  pool_bindings_.push_back(PoolBinding{pool_uses_.size() - 1, backend_index,
                                       sink.index_, PoolBinding::kInvalid});
  return sink;
}

std::vector<GraphBuilder::PooledLeg> GraphBuilder::FanOutPooled(BackendPool& pool,
                                                                size_t capacity) {
  std::vector<PooledLeg> legs;
  if (!status_.ok()) {
    return legs;
  }
  if (Status s = pool.EnsureStarted(env_); !s.ok()) {
    Poison(std::move(s));
    return legs;
  }
  legs.reserve(pool.backend_count());
  for (size_t i = 0; i < pool.backend_count(); ++i) {
    legs.push_back(PoolLeg(pool, i, capacity));
    if (!status_.ok()) {
      break;
    }
  }
  return legs;
}

std::vector<GraphBuilder::Leg> GraphBuilder::FanOut(
    const std::vector<uint16_t>& ports, const std::string& base,
    const SerializerFactory& make_serializer,
    const DeserializerFactory& make_deserializer, size_t capacity) {
  std::vector<Leg> legs;
  legs.reserve(ports.size());
  for (size_t i = 0; i < ports.size(); ++i) {
    Leg leg;
    leg.conn = Connect(ports[i]);
    if (!status_.ok()) {
      // A failed dial poisons the builder; Launch() closes the i established
      // legs (the memcached k-th-connect leak the hand-rolled wiring had).
      legs.push_back(leg);
      continue;
    }
    const std::string suffix = "-" + std::to_string(i);
    leg.sink = Sink(base + "-out" + suffix, leg.conn, make_serializer());
    leg.source = Source(base + "-in" + suffix, leg.conn, make_deserializer(), capacity);
    if (leg.sink.valid() && capacity > 0) {
      nodes_[leg.sink.index_].preferred_capacity = capacity;
    }
    legs.push_back(std::move(leg));
  }
  return legs;
}

NodeRef GraphBuilder::MergeTree(const std::string& base, std::vector<NodeRef> streams,
                                runtime::MergeTask::OrderFn order,
                                runtime::MergeTask::CombineFn combine,
                                size_t capacity) {
  if (!status_.ok()) {
    return NodeRef();
  }
  if (streams.empty()) {
    Poison(InvalidArgument("MergeTree '" + base + "': no input streams"));
    return NodeRef();
  }
  for (const NodeRef& s : streams) {
    if (!s.valid()) {
      Poison(InvalidArgument("MergeTree '" + base + "': invalid input stream"));
      return NodeRef();
    }
  }
  int merge_id = 0;
  while (streams.size() > 1) {
    std::vector<NodeRef> next;
    for (size_t i = 0; i + 1 < streams.size(); i += 2) {
      NodeRef m = Merge(base + "-" + std::to_string(merge_id++), order, combine, capacity);
      m.From(streams[i]).From(streams[i + 1]);
      next.push_back(m);
    }
    if (streams.size() % 2 == 1) {
      next.push_back(streams.back());  // odd stream carries to the next level
    }
    streams = std::move(next);
  }
  return streams.front();
}

NodeRef GraphBuilder::AddNode(NodeSpec spec) {
  nodes_.push_back(std::move(spec));
  return NodeRef(this, nodes_.size() - 1);
}

void GraphBuilder::AddEdge(size_t from, size_t to, size_t capacity) {
  edges_.push_back(EdgeSpec{from, to, capacity});
  const size_t index = edges_.size() - 1;
  nodes_[from].out_edges.push_back(index);
  nodes_[to].in_edges.push_back(index);
}

void GraphBuilder::Poison(Status status) {
  if (status_.ok()) {
    status_ = std::move(status);
  }
}

void GraphBuilder::ReleaseAllLegs() {
  for (ConnSpec& conn : conns_) {
    if (conn.owned != nullptr) {
      conn.owned->Close();
      conn.owned.reset();
    }
  }
  // Pooled legs are returned, not closed: the wires belong to the pool and
  // keep serving other graphs.
  for (PoolUse& use : pool_uses_) {
    use.pool->Release(use.lease);
  }
  pool_uses_.clear();
}

Status GraphBuilder::Validate() const {
  for (const NodeSpec& node : nodes_) {
    const size_t in = node.in_edges.size();
    const size_t out = node.out_edges.size();
    switch (node.kind) {
      case NodeKind::kSource:
        if (in != 0 || out != 1) {
          return InvalidArgument("source '" + node.name + "' needs exactly one consumer");
        }
        break;
      case NodeKind::kSink:
        if (in != 1 || out != 0) {
          return InvalidArgument("sink '" + node.name + "' needs exactly one producer");
        }
        break;
      case NodeKind::kMerge:
        if (in != 2 || out != 1) {
          return InvalidArgument("merge '" + node.name + "' needs two inputs, one output");
        }
        break;
      case NodeKind::kStage:
        // A stage with no outputs would hand its handler an empty emit
        // vector, turning the first Emit(0, ...) into an out-of-bounds
        // access at run time; reject it here instead.
        if (in == 0 || out == 0) {
          return InvalidArgument("stage '" + node.name +
                                 "' needs >=1 inputs and >=1 outputs");
        }
        break;
      case NodeKind::kTee:
        if (in != 1 || out == 0) {
          return InvalidArgument("tee '" + node.name + "' needs one input and >=1 outputs");
        }
        break;
      case NodeKind::kPoolSink:
        if (in != 1 || out != 0) {
          return InvalidArgument("pool sink '" + node.name + "' needs exactly one producer");
        }
        break;
      case NodeKind::kPoolSource:
        if (in != 0 || out != 1) {
          return InvalidArgument("pool source '" + node.name +
                                 "' needs exactly one consumer");
        }
        break;
    }
  }
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (!conns_[i].referenced) {
      return InvalidArgument("connection leg " + std::to_string(i) +
                             " has no source or sink");
    }
  }
  return OkStatus();
}

size_t GraphBuilder::ResolveCapacity(const EdgeSpec& edge) const {
  if (edge.capacity > 0) {
    return edge.capacity;
  }
  if (nodes_[edge.from].preferred_capacity > 0) {
    return nodes_[edge.from].preferred_capacity;
  }
  if (nodes_[edge.to].preferred_capacity > 0) {
    return nodes_[edge.to].preferred_capacity;
  }
  return default_capacity_;
}

std::unique_ptr<Connection> GraphBuilder::TakeConn(size_t conn_index) {
  ConnSpec& conn = conns_[conn_index];
  if (conn.owned != nullptr) {
    return std::move(conn.owned);
  }
  return std::make_unique<SharedConn>(conn.raw);
}

Status GraphBuilder::Launch(GraphRegistry& registry) {
  if (launched_) {
    return FailedPrecondition("Launch called twice");
  }
  launched_ = true;
  if (!status_.ok()) {
    ReleaseAllLegs();
    return status_;
  }
  if (Status v = Validate(); !v.ok()) {
    status_ = v;
    ReleaseAllLegs();
    return v;
  }

  auto graph = std::make_unique<runtime::TaskGraph>(name_);

  std::vector<runtime::Channel*> channels(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    channels[i] = graph->AddChannel(ResolveCapacity(edges_[i]));
  }

  // Declaration order doubles as construction order, so the first node
  // referencing a leg receives the owning Connection.
  for (NodeSpec& node : nodes_) {
    switch (node.kind) {
      case NodeKind::kSource: {
        auto* task = graph->AddTask<runtime::InputTask>(
            node.name, TakeConn(node.conn), std::move(node.deserializer),
            channels[node.out_edges[0]], env_.msgs, env_.buffers);
        task->set_fill_window(fill_window_);
        conns_[node.conn].source_task = task;
        ++stats_.sources;
        break;
      }
      case NodeKind::kStage:
      case NodeKind::kTee: {
        runtime::ComputeTask::Handler handler =
            node.kind == NodeKind::kTee ? TeeHandler : std::move(node.handler);
        auto* task = graph->AddTask<runtime::ComputeTask>(node.name, std::move(handler),
                                                          env_.msgs);
        for (size_t e : node.in_edges) {
          task->AddInput(channels[e], env_.scheduler);
        }
        for (size_t e : node.out_edges) {
          task->AddOutput(channels[e]);
        }
        ++(node.kind == NodeKind::kTee ? stats_.tees : stats_.stages);
        break;
      }
      case NodeKind::kSink: {
        runtime::Channel* in = channels[node.in_edges[0]];
        auto* task = graph->AddTask<runtime::OutputTask>(
            node.name, TakeConn(node.conn), std::move(node.serializer), in,
            env_.buffers);
        task->set_flush_watermark(flush_watermark_);
        in->BindConsumer(task, env_.scheduler);
        ++stats_.sinks;
        break;
      }
      case NodeKind::kMerge: {
        auto* task = graph->AddTask<runtime::MergeTask>(node.name, std::move(node.order),
                                                        std::move(node.combine));
        task->BindInputs(channels[node.in_edges[0]], channels[node.in_edges[1]],
                         env_.scheduler);
        task->BindOutput(channels[node.out_edges[0]]);
        ++stats_.merges;
        break;
      }
      case NodeKind::kPoolSink:
        // No task: the edge channel is consumed by the pool's connection
        // task, bound below once all graph tasks exist.
        ++stats_.pooled_legs;
        break;
      case NodeKind::kPoolSource:
        break;  // produced by the pool's connection task, bound below
    }
  }

  // Pin every graph task to the accepting shard's worker group: the graph's
  // buffers come from that shard's pool slice and its watches live on that
  // shard's poller, so its compute must stay on the matching cores too
  // (share-nothing column). One group (unsharded env) makes this a no-op.
  for (const auto& task : graph->tasks()) {
    task->shard_affinity = static_cast<int>(env_.io_shard);
  }

  stats_.tasks = graph->tasks().size();
  stats_.channels = graph->channel_count();
  stats_.connections = conns_.size();
  stats_.flush_watermark = flush_watermark_;
  stats_.fill_window = fill_window_;
  stats_.io_shard = env_.io_shard;

  // Bind pooled legs before IO activation: once a graph task is notified it
  // may push requests, and the pool must already be the consumer. Streaming
  // legs (no source node) attach without a reply channel.
  for (const PoolBinding& binding : pool_bindings_) {
    PoolUse& use = pool_uses_[binding.pool_use];
    runtime::Channel* requests = channels[nodes_[binding.sink_node].in_edges[0]];
    runtime::Channel* replies =
        binding.source_node == PoolBinding::kInvalid
            ? nullptr
            : channels[nodes_[binding.source_node].out_edges[0]];
    if (replies == nullptr) {
      ++stats_.exclusive_legs;
    }
    use.pool->Attach(use.lease, binding.backend_index, requests, replies);
  }

  // Connection lifetime plane: platform policy with per-builder overrides,
  // armed on every CLIENT leg's input task (backend wires are the service's
  // own and must not be idle-closed under it). Close reasons count into the
  // registry the graph retires through.
  runtime::ConnLifetimeConfig lifetime;
  if (env_.lifetime != nullptr) {
    lifetime = *env_.lifetime;
  }
  if (idle_timeout_override_ != kInheritLifetime) {
    lifetime.idle_timeout_ns = idle_timeout_override_;
  }
  if (header_deadline_override_ != kInheritLifetime) {
    lifetime.header_deadline_ns = header_deadline_override_;
  }
  if (lifetime.deadlines_enabled()) {
    for (const ConnSpec& conn : conns_) {
      if (conn.client && conn.source_task != nullptr) {
        conn.source_task->EnableLifetime(&env_.poller->wheel(), env_.scheduler,
                                         lifetime,
                                         &registry.lifetime_counters());
      }
    }
  }

  std::vector<runtime::IoBinding> bindings;
  std::vector<Connection*> watched;
  for (const ConnSpec& conn : conns_) {
    if (conn.source_task != nullptr) {
      bindings.push_back(runtime::IoBinding{conn.raw, conn.source_task});
      watched.push_back(conn.raw);
    }
  }
  stats_.watched = watched.size();

  // Lease ownership moves to the registry: the on_unwatch hook returns every
  // lease at retirement stage 1, severing the pool's hold on graph channels
  // before destruction becomes possible. Stage 1 is additionally gated on the
  // pool having consumed each leg's EOF (the channel's last message), so a
  // lease is never returned while requests the graph committed still sit in
  // its channels — the EOF-mid-batch case flushes instead of dropping.
  std::function<void()> on_unwatch;
  std::function<bool()> detach_ready;
  if (!pool_uses_.empty()) {
    auto uses = std::make_shared<std::vector<PoolUse>>(std::move(pool_uses_));
    pool_uses_.clear();
    on_unwatch = [uses]() {
      for (PoolUse& use : *uses) {
        use.pool->Release(use.lease);
      }
    };
    detach_ready = [uses]() {
      for (const PoolUse& use : *uses) {
        if (!use.pool->LeaseFinished(use.lease)) {
          return false;
        }
      }
      return true;
    };
  }

  env_.ActivateIo(bindings);
  registry.Adopt(std::move(graph), std::move(watched), env_, std::move(on_unwatch),
                 std::move(detach_ready));
  return OkStatus();
}

}  // namespace flick::services
