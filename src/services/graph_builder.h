// Declarative per-connection task-graph builder: the one place that turns a
// service's *description* of its graph (Figure 3's shapes) into a correctly
// wired, watched, scheduled and registered TaskGraph.
//
// Services declare connection legs (Adopt / Connect / FanOut), nodes
// (Source / Stage / Sink / Merge / Tee) and edges (NodeRef::From), then call
// Launch(). Launch performs, in one audited sequence, everything services
// used to hand-roll:
//   * channel allocation with per-edge capacities,
//   * task construction in declaration order (stage input/output indices
//     follow edge declaration order),
//   * consumer/scheduler binding,
//   * connection ownership: the first node referencing a leg owns the
//     Connection; every later reference is aliased through SharedConn
//     (read/write splits on one wire),
//   * watch-then-notify IO activation via PlatformEnv::ActivateIo,
//   * staged GraphRegistry adoption, and
//   * failure-path cleanup — if any Connect() failed, or the graph is
//     malformed, every already-opened leg (client and backends alike) is
//     closed instead of leaked.
//
// Example (the HTTP load balancer of §6.1, Figure 3a):
//
//   GraphBuilder b("http-lb", env);
//   auto client  = b.Adopt(std::move(conn));
//   auto backend = b.Connect(port);
//   auto req = b.Source("client-in", client,
//                       std::make_unique<runtime::HttpDeserializer>(mode));
//   auto fwd = b.Stage("dispatch", handler).From(req);
//   b.Sink("backend-out", backend,
//          std::make_unique<runtime::HttpSerializer>()).From(fwd);
//   auto ret = b.Source("backend-in", backend,
//                       std::make_unique<runtime::RawDeserializer>());
//   b.Sink("client-out", client,
//          std::make_unique<runtime::RawSerializer>()).From(ret);
//   b.Launch(registry);
#ifndef FLICK_SERVICES_GRAPH_BUILDER_H_
#define FLICK_SERVICES_GRAPH_BUILDER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/codec.h"
#include "runtime/compute_task.h"
#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/service_util.h"

namespace flick::services {

class GraphBuilder;

// Handle to a connection leg owned by the builder until Launch().
class ConnRef {
 public:
  ConnRef() = default;
  bool valid() const { return index_ != kInvalid; }

 private:
  friend class GraphBuilder;
  static constexpr size_t kInvalid = static_cast<size_t>(-1);
  explicit ConnRef(size_t index) : index_(index) {}
  size_t index_ = kInvalid;
};

// Handle to a declared node. From(upstream) declares an edge carrying
// upstream's output stream into this node and returns this node, so
// declarations chain: b.Stage("f", fn).From(src).
class NodeRef {
 public:
  NodeRef() = default;
  bool valid() const { return builder_ != nullptr; }

  // Declares an edge upstream -> this node. `capacity` overrides the channel
  // capacity for this edge (0 = inherit, see GraphBuilder::DefaultCapacity).
  // Input/output indices of stages follow the order edges are declared.
  NodeRef From(NodeRef upstream, size_t capacity = 0);

 private:
  friend class GraphBuilder;
  NodeRef(GraphBuilder* builder, size_t index) : builder_(builder), index_(index) {}
  GraphBuilder* builder_ = nullptr;
  size_t index_ = 0;
};

// Per-graph construction stats filled in by Launch(). Runtime batching
// counters (writev_calls / msgs_per_writev / flushes_forced) accumulate on
// the OutputTasks and are aggregated by RegistryStats; launch stats record
// the batching *configuration* the graph was built with.
struct GraphLaunchStats {
  size_t sources = 0;
  size_t stages = 0;
  size_t sinks = 0;
  size_t merges = 0;
  size_t tees = 0;
  size_t tasks = 0;
  size_t channels = 0;
  size_t connections = 0;  // legs adopted or dialled (dedicated wires)
  size_t watched = 0;      // legs with a read-side input task
  size_t pooled_legs = 0;  // legs served by a BackendPool lease (no dial)
  size_t exclusive_legs = 0;  // streaming legs on an exclusive lease
  size_t flush_watermark = 0; // forced-flush threshold applied to the sinks
  size_t fill_window = 0;     // rx fill-window cap applied to the sources
  size_t io_shard = 0;        // IO shard the graph's legs are pinned to
};

class GraphBuilder {
 public:
  using SerializerFactory = std::function<std::unique_ptr<runtime::Serializer>()>;
  using DeserializerFactory = std::function<std::unique_ptr<runtime::Deserializer>()>;

  // One dialled backend leg of a fan-out (Figure 3b): the wire, the sink
  // carrying requests to it and the source carrying its responses back.
  struct Leg {
    ConnRef conn;
    NodeRef sink;
    NodeRef source;
  };

  // One pooled backend leg: same sink/source shape as Leg, but the wire is a
  // shared BackendPool connection claimed through a lease — nothing is
  // dialled and nothing is closed when the graph retires.
  struct PooledLeg {
    NodeRef sink;    // requests into the pool
    NodeRef source;  // correlated responses back from the pool
  };

  GraphBuilder(std::string name, runtime::PlatformEnv& env);

  // Closes every adopted/dialled leg and returns every pool lease that was
  // never handed to a launched graph — abandoning a builder can not leak
  // connections or leases.
  ~GraphBuilder();

  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;

  // Channel capacity used for edges that specify none. Initially 128.
  GraphBuilder& DefaultCapacity(size_t capacity);

  // Forced-flush threshold applied to every Sink's OutputTask at Launch:
  // messages drained in one run slice coalesce into one vectored write, with
  // a mid-slice flush once the backlog reaches `bytes`
  // (runtime::kDefaultFlushWatermark initially; 1 = write per message,
  // 0 = slice-end flushes only). This is the builder-leg flush control the
  // batched output path is steered with.
  GraphBuilder& FlushWatermark(size_t bytes);

  // Cap on every Source's adaptive rx fill window: pool buffers one vectored
  // read may span (runtime::kDefaultFillWindow initially; 0 or 1 = legacy
  // one-buffer reads, matching BackendPoolConfig::fill_window). The
  // read-side mirror of FlushWatermark.
  GraphBuilder& FillWindow(size_t buffers);

  // Connection-lifetime overrides for this graph's CLIENT legs (adopted
  // connections; dialled/pooled backend wires are never deadline-closed by
  // the builder). Default: inherit the platform policy
  // (PlatformEnv::lifetime). 0 disables the window for this graph.
  GraphBuilder& IdleTimeout(uint64_t ns);
  GraphBuilder& HeaderDeadline(uint64_t ns);

  // --- connection legs -------------------------------------------------------

  // Takes ownership of an accepted connection (the client leg).
  ConnRef Adopt(std::unique_ptr<Connection> conn);

  // Dials a backend. On failure the builder is poisoned: every later call is
  // a no-op and Launch() closes all already-opened legs and reports why.
  ConnRef Connect(uint16_t port);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // --- nodes -----------------------------------------------------------------

  // Input task: conn -> deserializer -> typed stream. `capacity` is the
  // preferred capacity of the source's output channel (0 = default).
  NodeRef Source(std::string name, ConnRef conn,
                 std::unique_ptr<runtime::Deserializer> codec, size_t capacity = 0);

  // Compute task running `handler` over all inbound edges (round-robin).
  NodeRef Stage(std::string name, runtime::ComputeTask::Handler handler);

  // Output task: stream -> serializer -> conn.
  NodeRef Sink(std::string name, ConnRef conn,
               std::unique_ptr<runtime::Serializer> codec);

  // foldt node (§4.3): merges two key-ordered streams. Exactly two inbound
  // edges (left = first declared) and one outbound edge.
  NodeRef Merge(std::string name, runtime::MergeTask::OrderFn order,
                runtime::MergeTask::CombineFn combine, size_t capacity = 0);

  // Duplicates one inbound stream to every outbound edge (message copies).
  NodeRef Tee(std::string name);

  // --- fan-out / fan-in primitives ------------------------------------------

  // Dials one leg per port and declares its sink/source pair named
  // "<base>-out-<i>" / "<base>-in-<i>". `capacity` becomes the preferred
  // capacity of each leg's channels. Wiring to a dispatch stage stays with
  // the caller so input/output index order is explicit.
  std::vector<Leg> FanOut(const std::vector<uint16_t>& ports, const std::string& base,
                          const SerializerFactory& make_serializer,
                          const DeserializerFactory& make_deserializer,
                          size_t capacity = 0);

  // Declares one pooled leg per backend of `pool` under a single lease
  // (Figure 3b with shared transport): leg i carries requests to backend i
  // and receives that backend's correlated responses. The pool is started on
  // first use; a start or lease failure poisons the builder, and a poisoned
  // Launch RETURNS the lease to the pool — pooled wires are never closed by
  // graph cleanup. `capacity` is the preferred capacity of each leg's
  // channels.
  std::vector<PooledLeg> FanOutPooled(BackendPool& pool, size_t capacity = 0);

  // Single pooled leg to one backend of `pool` (the HTTP LB's sticky-backend
  // shape). Multiple PoolLeg/FanOutPooled calls against the same pool share
  // one lease per builder.
  PooledLeg PoolLeg(BackendPool& pool, size_t backend_index, size_t capacity = 0);

  // Streaming (write-only) pooled leg on its OWN exclusive lease: sole future
  // use of one connection slot, no pipelining with other graphs' traffic, no
  // response path — the long-lived streaming-sink shape (hadoop_agg's reducer
  // leg). Returns the sink node to wire `.From(stream)`. Retirement waits for
  // the stream's EOF to reach the pool before the lease is returned, so no
  // in-channel data is ever dropped; the wire persists for the next lease.
  NodeRef ExclusivePoolLeg(BackendPool& pool, size_t backend_index,
                           size_t capacity = 0);

  // Same, over a lease the caller already holds (AcquireExclusive) — for
  // services that acquire BEFORE wiring so an exhausted pool can fall back
  // to a dedicated leg instead of poisoning the whole graph (hadoop_agg).
  // The builder takes ownership; on a poisoned builder or invalid lease the
  // lease is returned to the pool.
  NodeRef ExclusivePoolLeg(BackendPool& pool, PoolLease lease, size_t backend_index,
                           size_t capacity = 0);

  // Pairwise binary merge tree over `streams` ("combining elements in a
  // pair-wise manner until only the result remains", §4.3). Returns the root
  // stream; with a single input stream no merge node is created.
  NodeRef MergeTree(const std::string& base, std::vector<NodeRef> streams,
                    runtime::MergeTask::OrderFn order,
                    runtime::MergeTask::CombineFn combine, size_t capacity = 0);

  // --- launch ----------------------------------------------------------------

  // Materialises the graph: validates the topology, allocates channels,
  // constructs and wires tasks, activates IO (watch-then-notify) and adopts
  // the graph into `registry`. On any failure all legs are closed and the
  // error is returned; the builder is single-shot either way.
  Status Launch(GraphRegistry& registry);

  // Valid after a successful Launch().
  const GraphLaunchStats& stats() const { return stats_; }

 private:
  friend class NodeRef;

  enum class NodeKind { kSource, kStage, kSink, kMerge, kTee, kPoolSink, kPoolSource };

  struct NodeSpec {
    NodeKind kind;
    std::string name;
    size_t conn = ConnRef::kInvalid;  // sources/sinks
    std::unique_ptr<runtime::Deserializer> deserializer;
    std::unique_ptr<runtime::Serializer> serializer;
    runtime::ComputeTask::Handler handler;
    runtime::MergeTask::OrderFn order;
    runtime::MergeTask::CombineFn combine;
    size_t preferred_capacity = 0;  // for edges touching this node
    std::vector<size_t> in_edges;   // edge indices, declaration order
    std::vector<size_t> out_edges;
  };

  struct EdgeSpec {
    size_t from;
    size_t to;
    size_t capacity = 0;  // 0 = resolve from endpoints / default
  };

  struct ConnSpec {
    std::unique_ptr<Connection> owned;
    Connection* raw = nullptr;
    size_t source_node = static_cast<size_t>(-1);   // reading node, if any
    size_t sink_node = static_cast<size_t>(-1);     // writing node, if any
    bool referenced = false;                        // used by any node
    bool client = true;  // adopted leg (false = dialled backend wire)
    runtime::InputTask* source_task = nullptr;      // filled during Launch
  };

  // One lease per (builder, pool) for shared legs; exclusive legs each carry
  // their own lease. Legs record which lease slot they bind.
  struct PoolUse {
    BackendPool* pool;
    PoolLease lease;
  };
  struct PoolBinding {
    size_t pool_use;       // index into pool_uses_
    size_t backend_index;  // backend within the pool
    size_t sink_node;      // kPoolSink node index
    size_t source_node;    // kPoolSource node index; kInvalid = streaming leg
    static constexpr size_t kInvalid = static_cast<size_t>(-1);
  };

  NodeRef AddNode(NodeSpec spec);
  void AddEdge(size_t from, size_t to, size_t capacity);
  void Poison(Status status);

  // The ONE failure/abandon path: closes every owned leg (adopted or
  // dialled) and returns every pool lease. Partial FanOut dials and failed
  // FanOutPooled acquisitions are cleaned up identically — dedicated wires
  // close, pooled wires go back to their pool.
  void ReleaseAllLegs();

  size_t PoolUseIndex(BackendPool& pool);
  Status Validate() const;
  size_t ResolveCapacity(const EdgeSpec& edge) const;

  // Hands out the leg's Connection: the first taker owns it, later takers
  // get a SharedConn alias.
  std::unique_ptr<Connection> TakeConn(size_t conn_index);

  std::string name_;
  runtime::PlatformEnv& env_;
  Status status_;
  bool launched_ = false;
  size_t default_capacity_ = 128;
  size_t flush_watermark_ = runtime::kDefaultFlushWatermark;
  size_t fill_window_ = runtime::kDefaultFillWindow;
  static constexpr uint64_t kInheritLifetime = UINT64_MAX;
  uint64_t idle_timeout_override_ = kInheritLifetime;
  uint64_t header_deadline_override_ = kInheritLifetime;
  std::vector<ConnSpec> conns_;
  std::vector<NodeSpec> nodes_;
  std::vector<EdgeSpec> edges_;
  std::vector<PoolUse> pool_uses_;
  std::vector<PoolBinding> pool_bindings_;
  GraphLaunchStats stats_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_GRAPH_BUILDER_H_
