// Hadoop data aggregator (§6.1, Figure 3c; Listing 3).
//
// One task graph per reducer: k mapper connections feed input tasks
// (deserialising the kv stream); a binary tree of foldt MergeTasks combines
// values of equal keys pairwise ("Compute tasks combine the data with each
// compute task taking two input streams and producing one output"); the root
// serialises back to the Hadoop wire format towards the reducer.
//
// The combine is a partial aggregation (a Hadoop combiner): counts of
// adjacent equal keys are merged, totals are always preserved.
//
// The reducer leg defaults to a pooled EXCLUSIVE lease (BackendPool in
// non-pipelined streaming mode): the reducer wire persists across
// aggregation graphs — successive mapper batches reuse it instead of
// redialling — while exclusivity keeps the long-lived stream from
// interleaving with any other lease's traffic. Retirement waits for the
// stream's EOF to reach the pool, so no combined pair is dropped. The
// paper-shape dedicated dial remains available via Options.
#ifndef FLICK_SERVICES_HADOOP_AGG_H_
#define FLICK_SERVICES_HADOOP_AGG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/service_util.h"

namespace flick::services {

class HadoopAggService : public runtime::ServiceProgram {
 public:
  struct Options {
    // The shared wire-policy knobs — see services::WireOptions. Here
    // wire.conns_per_backend is the number of pool slots to the reducer ==
    // aggregation graphs that may stream concurrently (each claims one
    // exclusively); wire.mode selects the pooled exclusive lease (default)
    // vs a dedicated dialled reducer connection per graph (paper shape).
    // Mapper legs are ingest-only, so the lifetime windows govern stalled
    // mapper streams.
    WireOptions wire;
  };

  // Builds the aggregation graph once `expected_mappers` connections arrived;
  // the combined stream is written to `reducer_port`.
  HadoopAggService(int expected_mappers, uint16_t reducer_port)
      : HadoopAggService(expected_mappers, reducer_port, Options{}) {}
  HadoopAggService(int expected_mappers, uint16_t reducer_port, Options options);

  const char* name() const override { return "hadoop-agg"; }
  void OnConnection(std::unique_ptr<Connection> conn, runtime::PlatformEnv& env) override;

  size_t live_graphs() const { return registry_.live_graphs(); }
  const GraphRegistry& registry() const { return registry_; }

  // Null in kPerClient mode.
  const BackendPool* pool() const { return pool_.get(); }

  // Batches that fell back to a dedicated dialled reducer leg because every
  // pool slot was exclusively held (concurrent batches > reducer_conns).
  uint64_t dedicated_fallbacks() const {
    return dedicated_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  void BuildGraph(runtime::PlatformEnv& env);

  const int expected_mappers_;
  const uint16_t reducer_port_;
  const Options options_;
  std::unique_ptr<BackendPool> pool_;
  std::atomic<uint64_t> dedicated_fallbacks_{0};
  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> pending_;
  GraphRegistry registry_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_HADOOP_AGG_H_
