// Hadoop data aggregator (§6.1, Figure 3c; Listing 3).
//
// One task graph per reducer: k mapper connections feed input tasks
// (deserialising the kv stream); a binary tree of foldt MergeTasks combines
// values of equal keys pairwise ("Compute tasks combine the data with each
// compute task taking two input streams and producing one output"); the root
// serialises back to the Hadoop wire format towards the reducer.
//
// The combine is a partial aggregation (a Hadoop combiner): counts of
// adjacent equal keys are merged, totals are always preserved.
#ifndef FLICK_SERVICES_HADOOP_AGG_H_
#define FLICK_SERVICES_HADOOP_AGG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/platform.h"
#include "services/service_util.h"

namespace flick::services {

class HadoopAggService : public runtime::ServiceProgram {
 public:
  // Builds the aggregation graph once `expected_mappers` connections arrived;
  // the combined stream is written to `reducer_port`.
  HadoopAggService(int expected_mappers, uint16_t reducer_port)
      : expected_mappers_(expected_mappers), reducer_port_(reducer_port) {}

  const char* name() const override { return "hadoop-agg"; }
  void OnConnection(std::unique_ptr<Connection> conn, runtime::PlatformEnv& env) override;

  size_t live_graphs() const { return registry_.live_graphs(); }

 private:
  void BuildGraph(runtime::PlatformEnv& env);

  const int expected_mappers_;
  const uint16_t reducer_port_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> pending_;
  GraphRegistry registry_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_HADOOP_AGG_H_
