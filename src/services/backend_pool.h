// Shared backend connection pool with request pipelining.
//
// The paper's middlebox scenarios (Figure 3b, Listing 1) dispatch each client
// request to a set of backends. Dedicated legs — one dialled connection per
// backend per client graph — make backend fd count and dial latency scale
// with client concurrency. A BackendPool inverts that: each (pool, backend)
// pair keeps a fixed set of persistent, multiplexed connections; client
// graphs claim a lightweight PoolLease instead of dialling, and requests
// from many graphs are pipelined onto one wire. Responses are correlated
// back to the issuing graph through a per-connection FIFO of pending lease
// ids — valid because both supported protocols answer in request order on a
// single connection (memcached binary responses are FIFO; HTTP/1.1 pipelines
// via content-length framing, which is why the pooled HTTP return path must
// parse responses instead of raw-forwarding them).
//
// Integration: services never touch this class's channel plumbing directly.
// GraphBuilder::FanOutPooled / PoolLeg declare pooled legs; Launch() binds
// the legs' edge channels to the lease and GraphRegistry detaches the lease
// at graph retirement (stage 1, before the idle sweep, so no external
// producer can notify a graph task once destruction is possible).
//
// Threading: every pooled connection is driven by one PoolConnTask scheduled
// like any other task. All per-connection state is guarded by a per-
// connection mutex; attach/detach (poller thread) and Run (worker threads)
// serialise on it. Wire readability wakes the task through the normal poller
// watch; a per-stripe periodic timer on the shard's wheel ticks disconnected
// connections so a backend that comes back is redialled without client
// involvement.
//
// Sharding: under a sharded IO plane the pool is STRIPED — one stripe per IO
// shard, each with its own slice of wires (watched by that shard's poller,
// redialled by that shard's wheel ticker), its own mutex and its own round-robin
// cursor. A graph launched on shard k leases from stripe k, so the hot
// acquire/release path never contends with other shards; it spills to a
// neighbour stripe only when its own is exhausted (counted in
// stripe_spills). The global mutex survives only for the cold path: start
// and layout-wide folds (stats, live_connections).
#ifndef FLICK_SERVICES_BACKEND_POOL_H_
#define FLICK_SERVICES_BACKEND_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/codec.h"
#include "runtime/platform.h"
#include "services/service_util.h"  // BackendMode, WireOptions

namespace flick::services {

class BackendPool;

namespace internal {
class PoolConnTask;
class BackendHealth;
struct PoolOutbox;
}  // namespace internal

struct BackendPoolConfig {
  std::vector<uint16_t> ports;

  // Multiplexed connections kept per backend PER STRIPE. Backend connection
  // count is ports.size() * conns_per_backend * stripes, independent of
  // client concurrency.
  size_t conns_per_backend = 1;

  // Stripes the pool's wires are partitioned into — one per IO shard, each
  // with its own lease mutex and round-robin cursor, its connections watched
  // by that shard's poller. The hot lease path (Acquire/Release from a
  // graph on shard k) touches only stripe k's lock; it crosses stripes only
  // when the home stripe is exhausted (counted in stripe_spills). 0 =
  // derive from the platform's shard count at EnsureStarted.
  size_t io_shards = 0;

  // In-flight (sent, unanswered) requests allowed per connection. When the
  // cap is hit the connection stops draining request channels; channel
  // backpressure propagates to the issuing graphs.
  size_t max_pipeline_depth = 256;

  // Backlog bytes a connection batches before a forced mid-slice flush.
  // Requests drained in one run slice coalesce into one vectored write (the
  // pooled wire is where many graphs' small writes pile up); the watermark
  // bounds buffer-pool pressure. 1 = write per message (the pre-batching
  // shape, kept for the fig5 comparison series); 0 = slice-end flushes only.
  size_t flush_watermark_bytes = runtime::kDefaultFlushWatermark;

  // Cap on the adaptive rx fill window: pool buffers one vectored read may
  // span when draining pipelined replies (the read-side mirror of the flush
  // watermark; 1 = legacy one-buffer reads). An idle wire holds one buffer;
  // a hot one amortises up to this many buffers per transport read.
  size_t fill_window = runtime::kDefaultFillWindow;

  // Minimum spacing between redial attempts for a disconnected connection.
  uint64_t redial_interval_ns = 1'000'000;

  // --- health plane --------------------------------------------------------

  // Response deadline per in-flight request, armed on the stripe's shard
  // wheel when the request enters the wire FIFO. Expiry drops the wire (the
  // byte stream's correlation is unknowable once the head response is
  // overdue), fails or retries the in-flight entries, and counts a breaker
  // failure. 0 disables (the raw-config default, so channel-level tests that
  // deliberately park requests keep their semantics; services arm it via
  // WireOptions).
  uint64_t request_deadline_ns = 0;

  // Circuit breaker per (backend, stripe): consecutive failures — failed
  // dials, lost wires, deadline expiries, parse errors — before the circuit
  // opens. While open every dial is refused and queued requests fail fast;
  // after breaker_open_ns one half-open probe dial is allowed, its outcome
  // closing or re-opening the circuit. This is the single source of truth
  // for "this backend is down" (it replaced the per-conn 3-strikes counter).
  uint32_t breaker_failure_threshold = 3;
  uint64_t breaker_open_ns = 100'000'000;

  // Retry policy for requests whose wire died or deadline expired (see
  // services::RetryPolicy for semantics + the response-ordering caveat).
  RetryPolicy retry_policy = RetryPolicy::kNone;
  uint32_t max_retries_per_request = 1;

  // Pool-wide retry token bucket: a flapping backend must not amplify load
  // into a retry storm. Exhaustion fails the request (retries_denied).
  double retry_budget_per_sec = 100.0;
  uint32_t retry_burst = 32;

  // Wire codecs: requests out, responses in. The deserializer must frame
  // complete responses (response correlation is per-message).
  std::function<std::unique_ptr<runtime::Serializer>()> make_serializer;
  std::function<std::unique_ptr<runtime::Deserializer>()> make_deserializer;
};

// Pool health, aggregated over all connections. Monotonic except where noted.
struct BackendPoolStats {
  uint64_t conns_dialed = 0;        // successful dials, including redials
  uint64_t dial_failures = 0;
  uint64_t reconnects = 0;          // dials after a lost connection
  uint64_t disconnects = 0;         // wire losses (peer close / wire error)
  uint64_t leases_acquired = 0;
  uint64_t leases_released = 0;
  uint64_t lease_waits = 0;         // leases that landed on a disconnected conn
  uint64_t requests_forwarded = 0;
  uint64_t responses_routed = 0;
  uint64_t responses_dropped = 0;   // lease already detached, or wire lost
  uint64_t response_parse_errors = 0;  // malformed responses that cost a wire
  uint64_t max_pipeline_depth = 0;  // high-water in-flight requests (any conn)
  uint64_t writev_calls = 0;        // vectored transport writes issued
  uint64_t flushes_forced = 0;      // flushes triggered by the high-water mark
  uint64_t msgs_per_writev = 0;     // high-water requests coalesced per flush
  uint64_t readv_calls = 0;         // vectored transport reads that moved bytes
  uint64_t bytes_per_readv = 0;     // high-water bytes moved by one fill
  uint64_t fills_short = 0;         // fills that proved the wire drained
  uint64_t reads_legacy_equivalent = 0;  // reads the per-buffer path would issue
  uint64_t stripes = 0;             // layout: stripes the pool was started with
  uint64_t stripe_spills = 0;       // leases that left their home stripe
  uint64_t live_connections = 0;    // snapshot, not monotonic

  // --- health plane --------------------------------------------------------
  uint64_t breaker_opens = 0;       // closed/half-open -> open transitions
  uint64_t breaker_half_opens = 0;  // open -> half-open (probe window armed)
  uint64_t breaker_closes = 0;      // half-open -> closed (probe succeeded)
  uint64_t request_deadline_expiries = 0;  // deadline events (one per wire drop)
  uint64_t requests_failed = 0;     // kError replies delivered to legs
  uint64_t retries_spent = 0;       // re-issues that found a healthy target
  uint64_t retries_denied = 0;      // budget/attempts/target exhausted
};

// Move-only claim on one pooled connection per backend. Handed out by
// BackendPool::Acquire (via GraphBuilder::FanOutPooled) and returned either
// by GraphRegistry at graph retirement or by the builder's failure cleanup —
// never by closing the underlying wire. Destruction does NOT auto-release
// (the pool may already be gone during platform teardown); holders release
// explicitly while the pool is alive.
class PoolLease {
 public:
  // Backends an exclusive lease does not cover (and, for any lease, slots
  // that are not claimed).
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  PoolLease() = default;
  ~PoolLease();

  PoolLease(PoolLease&& other) noexcept { *this = std::move(other); }
  PoolLease& operator=(PoolLease&& other) noexcept;
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  bool valid() const { return pool_ != nullptr; }
  uint64_t id() const { return id_; }
  size_t backend_count() const { return conn_index_.size(); }

  // The stripe every claimed slot of this lease lives in. Normally the
  // acquiring graph's IO shard; differs only when the home stripe was
  // exhausted and the acquisition spilled.
  size_t stripe() const { return stripe_; }

  // Exclusive leases (AcquireExclusive) hold sole future use of one
  // connection slot: no later lease — shared or exclusive — lands on that
  // slot until this one is released. Used for long-lived streaming sinks
  // that must not interleave with pipelined request/response traffic.
  bool exclusive() const { return exclusive_; }

 private:
  friend class BackendPool;

  BackendPool* pool_ = nullptr;
  uint64_t id_ = 0;
  bool exclusive_ = false;
  size_t stripe_ = 0;
  std::vector<size_t> conn_index_;  // per backend: claimed slot within stripe_
};

class BackendPool {
 public:
  explicit BackendPool(BackendPoolConfig config);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  // Idempotent. Creates the per-connection tasks, registers the redial
  // ticker and kicks the initial dials (performed on worker threads). The
  // pool must be destroyed only after the platform has stopped — the same
  // lifetime contract services already have with GraphRegistry.
  Status EnsureStarted(runtime::PlatformEnv& env);

  // Claims one connection per backend within one stripe — `preferred_stripe`
  // (the caller's IO shard; GraphBuilder passes env.io_shard) when it has a
  // free slot for every backend, else the nearest stripe that does (counted
  // in stripe_spills). Within a stripe placement is round-robin over the
  // slots that are not exclusively held, preferring connected wires over
  // dead ones. Fails if the pool has no backends, was never started, or
  // EVERY stripe has a backend with all slots exclusively claimed; a
  // temporarily disconnected backend still yields a lease (requests queue
  // until redial).
  Result<PoolLease> Acquire(size_t preferred_stripe = 0);

  // Claims sole use of one connection slot of `backend_index` (the ROADMAP's
  // non-pipelined mode for long-lived streaming sinks, e.g. the hadoop
  // reducer leg), from `preferred_stripe` with the same spill rule as
  // Acquire. Only a slot with NO live leases — shared or exclusive — is
  // eligible, so the stream never interleaves with pipelined traffic already
  // on the wire; the wire itself persists across leases (release returns the
  // slot, it never closes the connection). Fails with kResourceExhausted
  // when every stripe's slots for that backend are claimed or carrying live
  // leases.
  Result<PoolLease> AcquireExclusive(size_t backend_index,
                                     size_t preferred_stripe = 0);

  // Binds one backend's slice of `lease` to a graph's edge channels:
  // `requests` (graph -> pool) and `replies` (pool -> graph). Must happen
  // before the graph's IO is activated. Called by GraphBuilder::Launch.
  // `replies == nullptr` declares a streaming (write-only) leg: requests are
  // serialized onto the wire without occupying pipeline-correlation slots,
  // and an EOF popped from `requests` marks the leg's stream finished.
  void Attach(const PoolLease& lease, size_t backend_index,
              runtime::Channel* requests, runtime::Channel* replies);

  // True once every attached leg of `lease` has consumed its EOF — the
  // request channel is FIFO, so everything the graph committed before EOF is
  // already serialized toward the wire (flushing continues independently of
  // the lease). Already-detached legs count as finished. The GraphRegistry
  // gates retirement-stage-1 detach on this so a lease is never returned
  // while committed requests still sit in the graph's channels — which is
  // also the contract pooled legs impose on services: the graph must
  // propagate EOF into every pool sink (all builder services' dispatch
  // stages do) or retirement stalls.
  bool LeaseFinished(const PoolLease& lease) const;

  // Detaches every attached leg and invalidates the lease. Idempotent. After
  // Release returns, the pool no longer reads from or writes to any channel
  // of the leasing graph. In-flight responses for the lease are dropped on
  // arrival (the FIFO correlation slot is kept so later responses still
  // route correctly).
  void Release(PoolLease& lease);

  // True when EVERY stripe's circuit breaker for `backend_index` is open —
  // i.e. no stripe will dial or serve this backend right now. Services use
  // it to drop open-circuit backends from rotation (http_lb) or to trigger
  // degrade paths (memcached serve-stale). Lock-free (atomic state reads).
  bool BackendBreakerOpen(size_t backend_index) const;

  size_t backend_count() const { return config_.ports.size(); }
  size_t conns_per_backend() const { return config_.conns_per_backend; }
  // Stripes the pool was started with (0 before EnsureStarted).
  size_t stripes() const;
  bool started() const { return started_.load(std::memory_order_acquire); }
  size_t live_connections() const;
  BackendPoolStats stats() const;

  // --- test/ops introspection ------------------------------------------------

  // Live-lease count per slot of one backend's stripe (placement fairness /
  // dead-slot-skew checks).
  std::vector<uint32_t> SlotActiveLeases(size_t backend_index, size_t stripe = 0) const;

  // Forcibly drops one wire (as a peer close would) and defers its redial by
  // `redial_hold_ns`. Test hook for constructing mixed live/dead slot states
  // deterministically.
  void CloseConnectionForTest(size_t backend_index, size_t slot, size_t stripe = 0,
                              uint64_t redial_hold_ns = 0);

 private:
  friend class internal::PoolConnTask;
  friend class internal::BackendHealth;

  // One backend's slice of one stripe. All fields are guarded by the owning
  // stripe's mutex except `conns`, whose LAYOUT is immutable after
  // EnsureStarted (the tasks themselves carry their own locks/atomics), and
  // `health`, which carries its own leaf lock.
  struct StripeBackend {
    uint16_t port = 0;
    std::vector<std::unique_ptr<internal::PoolConnTask>> conns;
    std::unique_ptr<internal::BackendHealth> health;  // circuit breaker
    size_t next_rr = 0;  // round-robin lease placement cursor
    std::vector<uint8_t> exclusive_claimed;  // per slot
    std::vector<uint32_t> active_leases;     // per slot
  };

  // One IO shard's share of the pool: its own lock and cursors, its wires
  // watched by that shard's poller. The hot lease path locks exactly one of
  // these; the global mutex_ survives only for start and layout reads.
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<StripeBackend> backends;  // one per backend port
  };

  // Picks one non-exclusive slot per backend inside `stripe`; commits the
  // lease bookkeeping only when every backend yielded a slot.
  Result<PoolLease> AcquireFromStripe(size_t stripe);
  Result<PoolLease> AcquireExclusiveFromStripe(size_t backend_index, size_t stripe);

  // Delivers a run slice's cross-connection work — retries to re-issue,
  // foreign replies/failures to hand back to origin tasks — with NO conn
  // mutex held (the caller's Run wrapper already dropped its own). Retries
  // take a budget token and a healthy target here; entries that get neither
  // fail back to their origin.
  void DispatchOutbox(internal::PoolConnTask* from, size_t stripe_index,
                      size_t backend_index, internal::PoolOutbox&& outbox);

  // Token-bucket admission for one retry. Lock-bound but failure-path only.
  bool TryTakeRetryToken();

  BackendPoolConfig config_;

  mutable std::mutex mutex_;  // guards EnsureStarted + cold-path layout
  std::atomic<bool> started_{false};  // release-published after stripes_ built
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Per-stripe redial periodics on the stripes' shard wheels; cancelled at
  // destruction (the pollers outlive the pool by contract, so the wheels are
  // still valid then).
  struct RedialTicker {
    runtime::TimerWheel* wheel;
    uint64_t token;
  };
  std::vector<RedialTicker> redial_tickers_;

  runtime::Scheduler* scheduler_ = nullptr;

  std::atomic<uint64_t> next_lease_id_{1};
  std::atomic<uint64_t> leases_acquired_{0};
  std::atomic<uint64_t> leases_released_{0};
  std::atomic<uint64_t> lease_waits_{0};
  std::atomic<uint64_t> stripe_spills_{0};

  // Retry token bucket (failure path only, so a plain mutex is fine).
  std::mutex retry_mutex_;
  double retry_tokens_ = 0.0;          // guarded by retry_mutex_
  uint64_t retry_refill_ns_ = 0;       // guarded by retry_mutex_; 0 = unfilled
  std::atomic<uint64_t> retries_spent_{0};
  std::atomic<uint64_t> retries_denied_{0};
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_BACKEND_POOL_H_
