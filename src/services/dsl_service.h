// DSL-driven network service: runs a compiled FLICK program (Listing 1's
// caching Memcached router by default) as a live middlebox.
//
// This is the full paper pipeline: FLICK source -> compiler (parser + checker
// + unit synthesis) -> per-connection task graph whose compute task executes
// the proc's pipeline rules -> platform.
#ifndef FLICK_SERVICES_DSL_SERVICE_H_
#define FLICK_SERVICES_DSL_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "lang/compile.h"
#include "runtime/platform.h"
#include "services/service_util.h"

namespace flick::services {

// The paper's Listing 1 (caching Memcached router) in FLICK source form.
extern const char kMemcachedRouterSource[];

class DslService : public runtime::ServiceProgram {
 public:
  struct Options {
    // The shared wire-policy knobs — see services::WireOptions. DSL graphs
    // dial dedicated backend legs (the paper's kernel-stack shape), so the
    // client-facing subset applies: batching/fill and lifetime windows.
    WireOptions wire;
  };

  // `client_param` / `backends_param`: names of the proc's channel params.
  // The service opens one connection per entry of `backend_ports` for each
  // accepted client connection.
  static Result<std::unique_ptr<DslService>> Create(const std::string& source,
                                                    const std::string& proc_name,
                                                    std::vector<uint16_t> backend_ports,
                                                    Options options = {});

  const char* name() const override { return name_.c_str(); }
  void OnConnection(std::unique_ptr<Connection> conn, runtime::PlatformEnv& env) override;

  const lang::CompiledProgram& program() const { return *program_; }
  size_t live_graphs() const { return registry_.live_graphs(); }

 private:
  DslService() = default;

  std::shared_ptr<lang::CompiledProgram> program_;
  const lang::ProcDecl* proc_ = nullptr;
  std::string name_;
  std::string client_param_;
  std::string backends_param_;
  const grammar::Unit* client_in_unit_ = nullptr;
  const grammar::Unit* backend_in_unit_ = nullptr;
  std::vector<uint16_t> backend_ports_;
  Options options_;
  GraphRegistry registry_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_DSL_SERVICE_H_
