// DSL-driven network service: runs a compiled FLICK program (Listing 1's
// caching Memcached router by default) as a live middlebox.
//
// This is the full paper pipeline: FLICK source -> compiler (parser + checker
// + unit synthesis) -> lowering pass (lang/lower.h: native dispatch handlers
// with pre-resolved field indices, interpreter fallback for unprovable rules)
// -> per-connection task graph on the pooled/sharded runtime. Backend legs
// run through the striped BackendPool by default (request deadlines, circuit
// breakers and budgeted retries for free); Options::wire.mode == kPerClient
// restores the paper's original dedicated-connection shape.
//
// Dispatch observability: RegistryStats{dsl_lowered_msgs,
// dsl_interp_fallbacks} count messages executed by lowered plans vs the
// bounded evaluator. A fully lowered program keeps dsl_interp_fallbacks at 0.
#ifndef FLICK_SERVICES_DSL_SERVICE_H_
#define FLICK_SERVICES_DSL_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "lang/compile.h"
#include "lang/lower.h"
#include "runtime/platform.h"
#include "services/backend_pool.h"
#include "services/service_util.h"

namespace flick::services {

// The paper's Listing 1 (caching Memcached router) in FLICK source form.
extern const char kMemcachedRouterSource[];

// A RESP (Redis) GET/SET router over the fixed-arity-3 subset
// `*3\r\n$<n>\r\n<cmd>\r\n$<n>\r\n<key>\r\n$<n>\r\n<val>\r\n` (GET carries an
// empty value). Requests hash-route on the key; backend replies are RESP bulk
// strings forwarded to the client. Framing uses the grammar plane's
// ascii-integer fields ({ascii=true}).
extern const char kRespRouterSource[];

class DslService : public runtime::ServiceProgram {
 public:
  struct Options {
    // The shared wire-policy knobs — see services::WireOptions. kPooled mode
    // (default) shares one striped BackendPool across all client graphs;
    // kPerClient dials dedicated backend legs per graph.
    WireOptions wire;
    // Run rules through the lowering pass (lang/lower.h). Off = every message
    // goes through the bounded evaluator — the interp arm of BM_DslAblation.
    bool lower = true;
  };

  // The service opens (kPerClient) or leases (kPooled) one backend leg per
  // entry of `backend_ports` for each accepted client connection.
  static Result<std::unique_ptr<DslService>> Create(const std::string& source,
                                                    const std::string& proc_name,
                                                    std::vector<uint16_t> backend_ports);
  static Result<std::unique_ptr<DslService>> Create(const std::string& source,
                                                    const std::string& proc_name,
                                                    std::vector<uint16_t> backend_ports,
                                                    Options options);

  const char* name() const override { return name_.c_str(); }
  void OnConnection(std::unique_ptr<Connection> conn, runtime::PlatformEnv& env) override;

  const lang::CompiledProgram& program() const { return *program_; }
  size_t live_graphs() const { return registry_.live_graphs(); }
  const GraphRegistry& registry() const { return registry_; }
  RegistryStats stats() const { return registry_.stats(); }

  // Null in kPerClient mode or when the proc has no backend array.
  const BackendPool* pool() const { return pool_.get(); }
  BackendPool* mutable_pool() { return pool_.get(); }

 private:
  DslService() = default;

  runtime::ComputeTask::Handler BuildHandler(const lang::ProcWiring& wiring,
                                             runtime::PlatformEnv& env);

  std::shared_ptr<lang::CompiledProgram> program_;
  const lang::ProcDecl* proc_ = nullptr;
  std::string name_;
  std::string client_param_;
  std::string backends_param_;
  const grammar::Unit* client_in_unit_ = nullptr;    // client reads
  const grammar::Unit* client_out_unit_ = nullptr;   // client writes
  const grammar::Unit* backend_in_unit_ = nullptr;   // backend replies
  const grammar::Unit* backend_out_unit_ = nullptr;  // backend requests
  std::vector<uint16_t> backend_ports_;
  Options options_;
  std::unique_ptr<BackendPool> pool_;
  GraphRegistry registry_;
};

}  // namespace flick::services

#endif  // FLICK_SERVICES_DSL_SERVICE_H_
